//! §1.4's fixed-buffer thought experiment, run for real: a `B`-flit buffer
//! per edge spent as B virtual channels versus as one B-flit virtual
//! cut-through buffer, on the instance where the difference is starkest.
//!
//! ```text
//! cargo run --release --example vct_vs_vc
//! ```

use wormhole_baselines::cut_through::vct_as_short_wormhole;
use wormhole_baselines::greedy_wormhole::greedy_wormhole;
use wormhole_core::bounds::superlinear_speedup;
use wormhole_routing::prelude::*;
use wormhole_topology::lowerbound::build;

fn main() {
    // The B=1 worst case: every pair of base messages shares an edge.
    let net = build(1, 41, 2, false);
    let d = net.dilation;
    let l = 2 * d;
    println!(
        "Worst-case instance: C = {}, D = {d}, L = {l}, {} messages\n",
        net.congestion(),
        net.num_messages()
    );

    let base = greedy_wormhole(&net.graph, &net.paths, l, 1, 1).total_steps;
    println!("Budget-free baseline (1 VC, 1-flit buffer): {base} flit steps\n");

    println!(
        "{:>8} | {:>14} | {:>10} | {:>14} | {:>10} | {:>12}",
        "budget B", "VC wormhole", "VC speedup", "VCT (=L/B worm)", "VCT speedup", "paper pred"
    );
    println!("{}", "-".repeat(84));
    for b in [2u32, 4, 8] {
        // Spend the budget as B virtual channels...
        let ff = first_fit(&net.paths, &net.graph, b, FirstFitOrder::Input);
        let best = match adaptive_min_colors(&net.paths, &net.graph, b, 3 + b as u64, 64) {
            Some(rep) if rep.coloring.num_colors() < ff.num_colors() => rep.coloring,
            _ => ff,
        };
        let sched = ColorSchedule::new(best, l, d);
        let vc = sched
            .execute_checked(&net.graph, &net.paths, l, b)
            .total_steps;
        // ...or as one B-flit single-message buffer (VCT ≈ wormhole with
        // L/B superflits at the same channel rate).
        let ct = vct_as_short_wormhole(&net.graph, &net.paths, l, b, 1).total_steps;
        println!(
            "{:>8} | {:>14} | {:>10.1} | {:>14} | {:>11.1} | {:>11.1}x",
            b,
            vc,
            base as f64 / vc as f64,
            ct,
            base as f64 / ct as f64,
            superlinear_speedup(d, b)
        );
    }
    println!(
        "\nSame silicon, different spending: virtual channels turn the buffer\n\
         budget into a superlinear speedup (≈ B·D^(1-1/B)); cut-through\n\
         buffering stays ≈ linear. This is the paper's design message."
    );
}
