//! The Theorem 2.2.1 construction, inspected: build the subset network,
//! verify its defining property (every B+1 base messages share a primary
//! edge), route it, and watch the measured time respect the progress bound.
//!
//! ```text
//! cargo run --release --example lower_bound_demo
//! ```

use wormhole_core::lower_bound::measure;
use wormhole_topology::lowerbound::build;
use wormhole_topology::subsets::enumerate_subsets;

fn main() {
    let b = 2u32;
    let net = build(b, 41, 2, false);
    println!(
        "Theorem 2.2.1 network for B = {b}: M' = {} base messages, C = {}, D = {}, \
         {} primary edges, {} nodes",
        net.m_prime,
        net.congestion(),
        net.dilation,
        net.primary_edges.len(),
        net.graph.num_nodes()
    );

    // The defining property: every (B+1)-subset of base messages passes
    // through its own primary edge.
    let mut checked = 0u32;
    for s in enumerate_subsets(net.m_prime, b + 1) {
        let shared = net.shared_primary_edge(&s);
        for &m in &s {
            assert!(
                net.base_path(m).edges().contains(&shared),
                "construction broken for subset {s:?}"
            );
        }
        checked += 1;
    }
    println!(
        "verified: all {checked} subsets of {} messages share an edge\n",
        b + 1
    );

    // Route it with L = 2D (the theorem needs L = (1+Ω(1))·D).
    let l = 2 * net.dilation;
    let run = measure(&net, l, 5);
    println!("L = {l} flits per message, routed with B = {b} virtual channels:");
    println!(
        "  greedy wormhole      : {:>7} flit steps",
        run.greedy_steps
    );
    println!(
        "  first-fit schedule   : {:>7} flit steps",
        run.scheduled_steps
    );
    println!(
        "  progress bound (L-D)M/B : {:>4} flit steps",
        run.progress_bound
    );
    println!(
        "  asymptotic form LCD^(1/B)/B : {:.0}",
        run.asymptotic_bound
    );
    assert!(run.bound_respected());
    println!(
        "\nOnly B messages can make progress per flit step (every B+1 share an\n\
         edge), so NO schedule can beat the bound — both measurements sit above it."
    );
}
