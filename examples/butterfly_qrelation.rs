//! The §3.1 randomized two-pass butterfly algorithm end to end, with a
//! per-round trace: duplication, coloring into Δ subrounds, discard-on-
//! delay, and resending — delivering a full q-relation w.h.p.
//!
//! ```text
//! cargo run --release --example butterfly_qrelation
//! ```

use wormhole_core::butterfly::algorithm::{route_q_relation, AlgoParams};
use wormhole_routing::prelude::*;

fn main() {
    let k = 10u32; // 1024-input butterfly
    let n = 1u32 << k;
    let q = k; // the featured regime q = log n
    let l = k;
    let rel = QRelation::random_relation(n, q, 99);
    println!(
        "q-relation on a {n}-input two-pass butterfly: q = {q}, L = {l}, {} messages\n",
        rel.len()
    );

    for b in [1u32, 2, 3] {
        let res = route_q_relation(k, &rel, &AlgoParams::new(b, l, 7));
        println!(
            "B = {b}: Δ = {} colors, {} of {} planned rounds, {} flit steps (formula {:.0})",
            res.delta,
            res.rounds.len(),
            res.planned_rounds,
            res.flit_steps,
            res.formula_flit_steps
        );
        for (i, r) in res.rounds.iter().enumerate() {
            println!(
                "    round {i}: {:>6} copies routed, {:>5} originals delivered, {:>5} remain (≤{} copies/input)",
                r.copies, r.newly_delivered, r.remaining, r.max_per_input
            );
        }
        assert!(
            res.all_delivered,
            "w.h.p. delivery failed — try another seed"
        );
        println!();
    }
    println!(
        "Δ = β·q·log^(1/B)n/B shrinks superlinearly with B, and the round\n\
         time Δ·L + 2·log n shrinks with it — the §3 headline."
    );
}
