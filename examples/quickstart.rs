//! Quickstart: build a butterfly (Fig. 1), route a random permutation with
//! greedy wormhole routing at several virtual-channel counts, and print
//! what the VCs buy.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use wormhole_routing::prelude::*;

fn main() {
    let k = 7; // 128-input butterfly
    let n = 1u32 << k;
    let bf = Butterfly::new(k);
    println!(
        "Butterfly: n = {n}, {} nodes, {} edges (Fig. 1 structure)\n",
        bf.graph().num_nodes(),
        bf.graph().num_edges()
    );

    // One random permutation: each input sends one L-flit message to a
    // unique output along its unique greedy path.
    let rel = QRelation::random_relation(n, 1, 2024);
    let paths: Vec<Path> = rel
        .pairs
        .iter()
        .map(|&(s, d)| bf.greedy_path(s, d))
        .collect();
    let paths = PathSet::new(paths);
    let c = paths.congestion(bf.graph());
    let d = paths.dilation();
    let l = 16u32;
    println!("Workload: random permutation, C = {c}, D = {d}, L = {l} flits\n");

    println!(
        "{:>3} | {:>10} | {:>10} | {:>8} | {:>8}",
        "B", "flit steps", "speedup", "stalls", "max VCs"
    );
    println!("{}", "-".repeat(52));
    let mut base = 0u64;
    for b in [1u32, 2, 3, 4] {
        let specs = specs_from_paths(&paths, l);
        let result = wormhole_run(bf.graph(), &specs, &SimConfig::new(b));
        assert_eq!(result.outcome, Outcome::Completed);
        if b == 1 {
            base = result.total_steps;
        }
        println!(
            "{:>3} | {:>10} | {:>10.2} | {:>8} | {:>8}",
            b,
            result.total_steps,
            base as f64 / result.total_steps as f64,
            result.total_stalls,
            result.max_vcs_in_use
        );
    }
    println!(
        "\nUnblocked floor is D + L − 1 = {} flit steps; virtual channels\n\
         close most of the gap between greedy routing and that floor.",
        d + l - 1
    );
}
