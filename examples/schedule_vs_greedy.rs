//! The paper's scheduling pipeline in action: take a congested workload,
//! build (a) the footnote-5 naive conflict-free schedule, (b) a first-fit
//! B-bounded schedule, and (c) the Theorem 2.1.6 LLL-refined schedule, and
//! execute each on the flit simulator next to plain greedy routing.
//!
//! ```text
//! cargo run --release --example schedule_vs_greedy
//! ```

use wormhole_baselines::greedy_wormhole::greedy_wormhole;
use wormhole_baselines::naive_coloring::naive_schedule;
use wormhole_routing::prelude::*;
use wormhole_topology::random_nets::LeveledNet;

fn main() {
    let b = 2u32;
    let l = 12u32;
    let net = LeveledNet::random(24, 10, 2, 7);
    let paths = net.random_walk_paths(160, 8);
    let g = net.graph();
    let (c, d) = (paths.congestion(g), paths.dilation());
    println!(
        "Random leveled network: C = {c}, D = {d}, L = {l}, B = {b}, {} messages\n",
        paths.len()
    );

    // (a) naive conflict-free schedule (footnote 5).
    let naive = naive_schedule(&paths, g, l);
    let naive_run = naive.execute_checked(g, &paths, l, b);

    // (b) first-fit B-bounded schedule.
    let ff = first_fit(&paths, g, b, FirstFitOrder::Input);
    let ff_sched = ColorSchedule::new(ff, l, d);
    let ff_run = ff_sched.execute_checked(g, &paths, l, b);

    // (c) Theorem 2.1.6 pipeline (adaptive split factors).
    let lll = adaptive_min_colors(&paths, g, b, 3, 64).expect("refinement failed");
    let lll_sched = ColorSchedule::new(lll.coloring, l, d);
    let lll_run = lll_sched.execute_checked(g, &paths, l, b);

    // (d) greedy online (no schedule).
    let greedy = greedy_wormhole(g, &paths, l, b, 5);

    println!(
        "{:<28} | {:>7} | {:>10} | {:>7}",
        "scheduler", "classes", "flit steps", "stalls"
    );
    println!("{}", "-".repeat(62));
    println!(
        "{:<28} | {:>7} | {:>10} | {:>7}",
        "naive conflict-free (fn.5)",
        naive.coloring.num_colors(),
        naive_run.total_steps,
        naive_run.total_stalls
    );
    println!(
        "{:<28} | {:>7} | {:>10} | {:>7}",
        "first-fit B-bounded",
        ff_sched.coloring.num_colors(),
        ff_run.total_steps,
        ff_run.total_stalls
    );
    println!(
        "{:<28} | {:>7} | {:>10} | {:>7}",
        "LLL refinement (Thm 2.1.6)",
        lll_sched.coloring.num_colors(),
        lll_run.total_steps,
        lll_run.total_stalls
    );
    println!(
        "{:<28} | {:>7} | {:>10} | {:>7}",
        "greedy online (no schedule)", "-", greedy.total_steps, greedy.total_stalls
    );
    println!(
        "\nB-bounded schedules need ≈ D/log D fewer classes than the naive\n\
         one ({} vs {}); greedy is fast here but carries no worst-case\n\
         guarantee (see experiment E3 for where it degrades).",
        ff_sched.coloring.num_colors(),
        naive.coloring.num_colors()
    );
}
