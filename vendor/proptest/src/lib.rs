//! Hermetic in-tree stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x surface the workspace tests
//! use: the [`proptest!`] macro over functions whose arguments are drawn
//! from integer-range strategies or [`bool::ANY`], plus `prop_assert!`,
//! `prop_assert_eq!`, and `prop_assume!`. Cases are sampled with a seeded
//! deterministic RNG (no shrinking, no persistence files): a failure
//! message reports the generated inputs so the case can be reproduced by
//! a hand-written test.
#![forbid(unsafe_code)]

/// Strategies: types that can generate a random value per test case.
pub mod strategy {
    use rand::prelude::*;

    /// A value generator (subset of `proptest::strategy::Strategy`).
    pub trait Strategy {
        /// The generated value type.
        type Value: std::fmt::Debug + Clone;
        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut StdRng) -> f64 {
            rng.random_range(self.clone())
        }
    }
}

/// Boolean strategies (subset of `proptest::bool`).
pub mod bool {
    use rand::prelude::*;

    /// Uniform `true`/`false`.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl crate::strategy::Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.random_bool(0.5)
        }
    }
}

/// Runner configuration and errors (subset of `proptest::test_runner`).
pub mod test_runner {
    /// Per-`proptest!` block configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// An assertion failed: the whole test fails.
        Fail(String),
        /// A `prop_assume!` rejected the inputs: the case is skipped.
        Reject,
    }

    impl TestCaseError {
        /// A failed-assertion error.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }
}

/// Everything the `proptest!` macro and its callers need in scope.
pub mod prelude {
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

#[doc(hidden)]
pub mod __rt {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use rand::prelude::{SeedableRng, StdRng};

    /// FNV-1a over the test name: decorrelates per-test RNG streams.
    pub fn name_hash(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Seeded random-case test runner (subset of `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::__rt::ProptestConfig = $cfg;
            let base = $crate::__rt::name_hash(stringify!($name));
            let mut rejected: u32 = 0;
            for case in 0..config.cases {
                let mut rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(
                    base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(
                    let $arg = $crate::__rt::Strategy::sample(&($strat), &mut rng);
                )+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, ",)+),
                    $($arg.clone()),+
                );
                let outcome = (|| -> ::core::result::Result<(), $crate::__rt::TestCaseError> {
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::__rt::TestCaseError::Reject) => rejected += 1,
                    Err($crate::__rt::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {case} failed for {name}: {msg}\n  inputs: {inputs}",
                            name = stringify!($name),
                        );
                    }
                }
            }
            assert!(
                rejected < config.cases,
                "every case was rejected by prop_assume! in {}",
                stringify!($name)
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Assertion that fails the current random case with its inputs printed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion for random cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Skips the current case when its sampled inputs are invalid.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(x in 3u32..10, y in 0usize..=4, flag in crate::bool::ANY) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
            if flag {
                prop_assert!(x >= 3);
            } else {
                prop_assert!(x < 10);
            }
        }

        #[test]
        fn assume_skips_invalid(a in 0u32..10, b in 0u32..10) {
            prop_assume!(a != b);
            prop_assert!(a != b);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        fn always_fails(x in 0u32..2) {
            prop_assert!(x > 100, "x was {x}");
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_report_inputs() {
        always_fails();
    }
}
