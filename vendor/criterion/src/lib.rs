//! Hermetic in-tree stand-in for the `criterion` crate.
//!
//! Supports the subset of the criterion 0.5 API the workspace benches use
//! (groups, `bench_with_input`, `bench_function`, `BenchmarkId`,
//! `sample_size`, `measurement_time`) and reports median wall-clock time
//! per iteration. No statistical analysis, plots, or baselines — just
//! enough to keep `cargo bench` meaningful without registry access.
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level bench driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _parent: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &name.to_string(),
            self.sample_size,
            self.measurement_time,
            &mut f,
        );
        self
    }
}

/// A named group sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; the stub warms up with a single
    /// untimed call per benchmark instead of a timed phase.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, self.measurement_time, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Benchmarks a closure without an input parameter.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        run_one(&label, self.sample_size, self.measurement_time, &mut f);
        self
    }

    /// Ends the group (no-op; matches the criterion API).
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Passed to bench closures; `iter` times the hot path.
pub struct Bencher {
    samples: Vec<Duration>,
    wanted: usize,
    budget: Duration,
}

impl Bencher {
    /// Times `routine`, collecting one sample per call until the sample
    /// count or the time budget is reached.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let wanted = self.wanted;
        let started = Instant::now();
        // One warmup call, untimed.
        std_black_box(routine());
        while self.samples.len() < wanted {
            let t0 = Instant::now();
            std_black_box(routine());
            self.samples.push(t0.elapsed());
            if started.elapsed() > self.budget && !self.samples.is_empty() {
                break;
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, budget: Duration, f: &mut F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(samples),
        wanted: samples,
        budget,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let (lo, hi) = (b.samples[0], b.samples[b.samples.len() - 1]);
    println!(
        "{label:<50} median {median:>10.2?}   [{lo:.2?} .. {hi:.2?}]   n={}",
        b.samples.len()
    );
}

/// Declares a bench group function (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point (criterion-compatible).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_collects() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_with_input(BenchmarkId::new("id", 1), &2u32, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            })
        });
        group.finish();
        assert!(calls >= 3, "warmup + samples must run the routine");
    }
}
