//! Hermetic in-tree stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the small subset of the `rand` 0.9 API it actually
//! uses: [`rngs::StdRng`] (seedable, deterministic), integer
//! [`Rng::random_range`], [`Rng::random_bool`], and slice
//! [`prelude::SliceRandom::shuffle`]. The generator is xoshiro256++
//! seeded via SplitMix64 — not the upstream ChaCha12, but a high-quality
//! deterministic PRNG with the same call-site semantics (every consumer
//! seeds explicitly, so cross-library stream equality is never relied on).
#![forbid(unsafe_code)]

/// Seedable RNG constructors (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates an RNG from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The core sampling trait (subset of `rand::Rng`).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from an integer range (`low..high` or `low..=high`).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 uniform mantissa bits, exactly representable in an f64.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

/// Ranges that can be sampled uniformly (subset of `rand::distr`).
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1), scaled into the range.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

/// Unbiased uniform draw in `0..span` (`span ≥ 1`) by rejection.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span >= 1);
    if span == 1 {
        return 0;
    }
    // Rejection zone keeps the draw exactly uniform.
    let zone = u64::MAX - ((u64::MAX as u128 + 1) % span) as u64;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return (v as u128) % span;
        }
    }
}

/// Named RNG types (subset of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// The common imports (subset of `rand::prelude`).
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, SampleRange, SeedableRng, SliceRandom};
}

/// Slice shuffling (subset of `rand::seq::SliceRandom`).
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Partial Fisher–Yates: after the call the first `amount` elements
    /// are a uniform random sample (in random order); returns the shuffled
    /// prefix and untouched-order suffix.
    fn partial_shuffle<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        amount: usize,
    ) -> (&mut [Self::Item], &mut [Self::Item]);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }

    fn partial_shuffle<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        amount: usize,
    ) -> (&mut [T], &mut [T]) {
        let amount = amount.min(self.len());
        for i in 0..amount {
            let j = rng.random_range(i..self.len());
            self.swap(i, j);
        }
        self.split_at_mut(amount)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(0usize..=4);
            assert!(y <= 4);
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.random_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }
}
