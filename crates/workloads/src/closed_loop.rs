//! Closed-loop clients: finite outstanding-request windows and
//! request→reply dependency chains.
//!
//! Open-loop injection offers load regardless of what the network
//! delivers — past the saturation knee the backlog (and therefore the
//! measured latency) grows without bound. Real services are *closed*:
//! a client keeps at most `window` requests outstanding, each reply
//! spawns the next request after a think time, and congestion therefore
//! throttles injection instead of inflating a queue. The two
//! methodologies diverge exactly at the knee, which is where
//! virtual-channel benefit is decided — experiment `x11_closed_loop`
//! plots the divergence.
//!
//! [`ClosedLoopSource`] implements the
//! [`TrafficSource`] pull contract: each of `clients × window` slots
//! runs an independent chain *request → (server think) → reply →
//! (client think) → next request*, with every random draw taken from
//! the slot's own seeded RNG in chain order. Because the simulator
//! flushes deliveries in canonical `(time, id)` order before any poll
//! (see `wormhole_flitsim::source`), the whole run is deterministic per
//! seed and bit-identical across engines.

use std::collections::BTreeMap;

use rand::prelude::*;
use rand::rngs::StdRng;

use wormhole_flitsim::config::SimConfig;
use wormhole_flitsim::message::MessageSpec;
use wormhole_flitsim::open_loop::{windowed_stats_from, OpenLoopConfig};
use wormhole_flitsim::source::TrafficSource;
use wormhole_flitsim::stats::{ClosedLoopStats, LatencyStats, SimResult};
use wormhole_flitsim::wormhole;

use crate::mix;
use crate::substrate::Substrate;

/// Salt separating slot RNG streams from the open-loop endpoint streams.
const SLOT_STREAM_SALT: u64 = 0x636c_6f73_6564_6c70;

/// A closed-loop client/server workload over a [`Substrate`].
///
/// The first `clients` endpoints are clients, the last `servers`
/// endpoints are servers (the partitions must not overlap). Each client
/// owns `window` chain slots; a slot issues a `req_len`-flit request to
/// a uniformly drawn server, the server replies with `reply_len` flits
/// after a uniform `server_delay`, and the slot issues its next request
/// a uniform `think` after the reply lands — until a request would be
/// released at or after `horizon`.
#[derive(Clone, Debug)]
pub struct ClosedLoopConfig {
    /// Number of client endpoints (endpoints `0..clients`).
    pub clients: u32,
    /// Number of server endpoints (the last `servers` endpoints).
    pub servers: u32,
    /// Outstanding-request window (chain slots) per client.
    pub window: u32,
    /// Request length in flits.
    pub req_len: u32,
    /// Reply length in flits.
    pub reply_len: u32,
    /// Client think time between a reply and the next request,
    /// uniform in `think.0..=think.1` steps.
    pub think: (u64, u64),
    /// Server service time between a request and its reply, uniform in
    /// `server_delay.0..=server_delay.1` steps.
    pub server_delay: (u64, u64),
    /// Initial per-slot release jitter, uniform in `0..=start_spread`
    /// (desynchronizes the first wave of requests).
    pub start_spread: u64,
    /// No request is released at or after this step; in-flight chains
    /// may still finish.
    pub horizon: u64,
    /// Master seed; every slot derives an independent stream from it.
    pub seed: u64,
}

impl ClosedLoopConfig {
    fn validate(&self, sub: &Substrate) {
        assert!(self.clients >= 1 && self.servers >= 1, "empty partition");
        assert!(
            self.clients + self.servers <= sub.endpoints(),
            "client ({}) and server ({}) partitions overlap on {} endpoints",
            self.clients,
            self.servers,
            sub.endpoints()
        );
        assert!(self.window >= 1, "window must be at least 1");
        assert!(
            self.req_len >= 1 && self.reply_len >= 1,
            "zero-flit message"
        );
        assert!(self.think.0 <= self.think.1, "empty think range");
        assert!(
            self.server_delay.0 <= self.server_delay.1,
            "empty server_delay range"
        );
        assert!(self.horizon >= 1, "empty horizon");
    }
}

/// Which half of a chain a scheduled message is.
#[derive(Clone, Copy, Debug)]
enum Kind {
    /// Client → server; delivery schedules the reply.
    Request,
    /// Server → client; delivery completes the chain.
    Reply,
}

/// A message scheduled for a future (or current) release.
#[derive(Clone, Copy, Debug)]
struct Scheduled {
    client: u32,
    slot: u32,
    server: u32,
    kind: Kind,
}

/// Per-emitted-message bookkeeping (indexed by message id).
#[derive(Clone, Copy, Debug)]
struct MsgMeta {
    release: u64,
    length: u32,
    sched: Scheduled,
}

/// What a chain slot is doing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SlotPhase {
    /// Waiting for a scheduled request release or thinking after a
    /// reply.
    Idle,
    /// A chain is in flight; payload is the request's release step.
    InFlight(u64),
    /// The horizon passed; the slot issues no further requests.
    Retired,
}

/// Per-slot chain state.
struct SlotState {
    rng: StdRng,
    phase: SlotPhase,
}

/// The pull-based closed-loop source. See the module docs; drive it with
/// [`run_closed_loop`] (or `wormhole::run_source` directly) and read the
/// result's [`SimResult::closed_loop`].
pub struct ClosedLoopSource<'a> {
    sub: &'a Substrate,
    cfg: ClosedLoopConfig,
    /// Slot states, indexed `client * window + slot`.
    slots: Vec<SlotState>,
    /// Scheduled emissions keyed by `(release, schedule seq)` — the
    /// BTreeMap order is the emission order, and ids are assigned in
    /// pop order, so `(release, id)` emission order holds by
    /// construction.
    sched: BTreeMap<(u64, u64), Scheduled>,
    seq: u64,
    next_id: u32,
    meta: Vec<MsgMeta>,
    requests_issued: u64,
    chains_completed: u64,
    chain_latencies: Vec<u64>,
    /// Completed-chain busy steps per client.
    backlog: Vec<u64>,
    /// Fault awareness ([`ClosedLoopSource::with_faults`]): from the
    /// first kill time on, freshly issued messages route via
    /// [`Substrate::route_avoiding`] against the end-of-plan dead set.
    fault: Option<(u64, Vec<bool>)>,
}

impl<'a> ClosedLoopSource<'a> {
    /// Builds the source and schedules every slot's first request.
    pub fn new(sub: &'a Substrate, cfg: &ClosedLoopConfig) -> Self {
        cfg.validate(sub);
        let mut s = Self {
            sub,
            cfg: cfg.clone(),
            slots: Vec::new(),
            sched: BTreeMap::new(),
            seq: 0,
            next_id: 0,
            meta: Vec::new(),
            requests_issued: 0,
            chains_completed: 0,
            chain_latencies: Vec::new(),
            backlog: vec![0; cfg.clients as usize],
            fault: None,
        };
        for c in 0..cfg.clients {
            for slot in 0..cfg.window {
                let mut rng = StdRng::seed_from_u64(mix(mix(cfg.seed ^ SLOT_STREAM_SALT, c), slot));
                let offset = rng.random_range(0..=cfg.start_spread);
                s.slots.push(SlotState {
                    rng,
                    phase: SlotPhase::Idle,
                });
                s.schedule_request(c, slot, offset);
            }
        }
        s
    }

    /// Makes the source fault-aware: once `plan`'s first kill time is
    /// reached, newly issued requests and replies route via
    /// [`Substrate::route_avoiding`] against the plan's **end-of-plan**
    /// dead set (conservative: an edge that dies later is avoided from
    /// the first kill on, so a rerouted message is never severed by a
    /// subsequent kill of the same plan). Where the substrate has no
    /// diversity the canonical route is kept — the message is discarded
    /// on release and [`TrafficSource::on_discarded`] reissues it, which
    /// is exactly the collapse the diversity-free control arms measure.
    pub fn with_faults(
        mut self,
        plan: &wormhole_topology::fault::FaultPlan,
        graph: &wormhole_topology::graph::Graph,
    ) -> Self {
        if let Some(at) = plan.first_kill_at() {
            self.fault = Some((at, plan.dead_edges(graph)));
        }
        self
    }

    /// The route for a message released at `release` — canonical until
    /// the first kill, fault-avoiding (where possible) afterwards.
    fn route_for(&self, src: u32, dst: u32, release: u64) -> wormhole_topology::path::Path {
        if let Some((first_kill, dead)) = &self.fault {
            if release >= *first_kill {
                if let Some(p) = self.sub.route_avoiding(src, dst, dead) {
                    return p;
                }
            }
        }
        self.sub.route(src, dst)
    }

    #[inline]
    fn slot_idx(&self, client: u32, slot: u32) -> usize {
        (client * self.cfg.window + slot) as usize
    }

    /// Endpoint id of server index `k`.
    #[inline]
    fn server_endpoint(&self, k: u32) -> u32 {
        self.sub.endpoints() - self.cfg.servers + k
    }

    /// Draws the slot's next server and schedules its request, unless
    /// the release falls at or past the horizon (the slot retires).
    fn schedule_request(&mut self, client: u32, slot: u32, release: u64) {
        let si = self.slot_idx(client, slot);
        if release >= self.cfg.horizon {
            self.slots[si].phase = SlotPhase::Retired;
            return;
        }
        let k = self.slots[si].rng.random_range(0..self.cfg.servers);
        let server = self.server_endpoint(k);
        debug_assert!(self.sub.injects(client, server), "partitions overlap");
        self.sched.insert(
            (release, self.seq),
            Scheduled {
                client,
                slot,
                server,
                kind: Kind::Request,
            },
        );
        self.seq += 1;
    }

    /// Finalizes the run's chain statistics, charging chains still in
    /// flight up to `end` (the measured horizon: a saturated closed
    /// loop's outstanding chains are backlog, not noise).
    pub fn stats(&self, end: u64) -> ClosedLoopStats {
        let mut backlog = self.backlog.clone();
        for c in 0..self.cfg.clients {
            for slot in 0..self.cfg.window {
                if let SlotPhase::InFlight(start) = self.slots[self.slot_idx(c, slot)].phase {
                    backlog[c as usize] += end.saturating_sub(start);
                }
            }
        }
        let think = backlog
            .iter()
            .map(|&b| (self.cfg.window as u64 * end).saturating_sub(b))
            .collect();
        ClosedLoopStats {
            clients: self.cfg.clients as usize,
            window: self.cfg.window,
            requests_issued: self.requests_issued,
            chains_completed: self.chains_completed,
            chain_latency: LatencyStats::from_samples(&self.chain_latencies),
            per_client_think: think,
            per_client_backlog: backlog,
        }
    }

    /// `(release, length)` of emitted message `id` — windowed-stats
    /// metadata.
    pub fn released(&self, id: usize) -> (u64, u32) {
        let m = &self.meta[id];
        (m.release, m.length)
    }

    /// Number of messages emitted so far.
    pub fn emitted(&self) -> usize {
        self.meta.len()
    }

    /// Number of chain slots still in flight — chains that neither
    /// completed nor retired cleanly. Zero after a faulted run means
    /// every severed half-chain was reissued and completed; nonzero
    /// counts chains wedged on dead edges with no route diversity left.
    pub fn open_chains(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s.phase, SlotPhase::InFlight(_)))
            .count()
    }
}

impl TrafficSource for ClosedLoopSource<'_> {
    fn next_release(&mut self, _now: u64) -> Option<u64> {
        self.sched.keys().next().map(|&(r, _)| r)
    }

    fn take_ready(&mut self, now: u64, out: &mut Vec<(u32, MessageSpec)>) {
        while let Some((&(release, seq), &sched)) = self.sched.iter().next() {
            if release > now {
                break;
            }
            self.sched.remove(&(release, seq));
            let (src, dst, length) = match sched.kind {
                Kind::Request => (sched.client, sched.server, self.cfg.req_len),
                Kind::Reply => (sched.server, sched.client, self.cfg.reply_len),
            };
            if let Kind::Request = sched.kind {
                let si = self.slot_idx(sched.client, sched.slot);
                // A fault-retried request keeps the chain's original
                // start; only a fresh chain opens a new latency window.
                if !matches!(self.slots[si].phase, SlotPhase::InFlight(_)) {
                    self.slots[si].phase = SlotPhase::InFlight(release);
                }
                self.requests_issued += 1;
            }
            let spec =
                MessageSpec::new(self.route_for(src, dst, release), length).release_at(release);
            self.meta.push(MsgMeta {
                release,
                length,
                sched,
            });
            out.push((self.next_id, spec));
            self.next_id += 1;
        }
    }

    fn on_delivered(&mut self, id: u32, finished: u64) {
        let m = self.meta[id as usize];
        let si = self.slot_idx(m.sched.client, m.sched.slot);
        match m.sched.kind {
            Kind::Request => {
                // The server turns the request around after its service
                // time; zero delay means the reply releases the same
                // step the delivery is flushed (never in the past).
                let (lo, hi) = self.cfg.server_delay;
                let delay = self.slots[si].rng.random_range(lo..=hi);
                self.sched.insert(
                    (finished + delay, self.seq),
                    Scheduled {
                        kind: Kind::Reply,
                        ..m.sched
                    },
                );
                self.seq += 1;
            }
            Kind::Reply => {
                let start = match self.slots[si].phase {
                    SlotPhase::InFlight(start) => start,
                    other => panic!("reply for a slot in phase {other:?}"),
                };
                self.chains_completed += 1;
                self.chain_latencies.push(finished - start);
                self.backlog[m.sched.client as usize] += finished - start;
                self.slots[si].phase = SlotPhase::Idle;
                let (lo, hi) = self.cfg.think;
                let think = self.slots[si].rng.random_range(lo..=hi);
                self.schedule_request(m.sched.client, m.sched.slot, finished + think);
            }
        }
    }

    fn on_discarded(&mut self, id: u32, t: u64) {
        // A discarded half-chain is reissued (same endpoints, fresh
        // message id) one step later; the chain keeps its original
        // start, so the retry cost shows up in the chain latency. At or
        // past the horizon nothing new is issued — the chain stays
        // in flight and is charged as backlog, matching the
        // request-issue horizon rule (and bounding fault-retry loops on
        // substrates with no route diversity left).
        let m = self.meta[id as usize];
        if t + 1 >= self.cfg.horizon {
            return;
        }
        self.sched.insert((t + 1, self.seq), m.sched);
        self.seq += 1;
    }

    fn reactive(&self) -> bool {
        true
    }
}

/// Runs a closed-loop workload to the open-loop step cap, attaching both
/// the windowed [`SimResult::open_loop`] measurement (over the emitted
/// requests *and* replies) and the chain-level
/// [`SimResult::closed_loop`] statistics.
pub fn run_closed_loop(
    sub: &Substrate,
    cfg: &ClosedLoopConfig,
    sim_cfg: &SimConfig,
    ol: &OpenLoopConfig,
) -> SimResult {
    let mut capped = sim_cfg.clone();
    capped.max_steps = capped.max_steps.min(ol.step_cap());
    let mut source = ClosedLoopSource::new(sub, cfg);
    let mut result = wormhole::run_source(sub.graph(), &mut source, &capped);
    let end = result.total_steps;
    result.open_loop = Some(windowed_stats_from(
        source
            .meta
            .iter()
            .zip(&result.messages)
            .map(|(m, o)| (m.release, m.length, o.finished)),
        ol,
    ));
    result.closed_loop = Some(source.stats(end));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormhole_flitsim::config::Engine;
    use wormhole_flitsim::stats::Outcome;

    fn small_cfg(window: u32, horizon: u64) -> ClosedLoopConfig {
        ClosedLoopConfig {
            clients: 4,
            servers: 4,
            window,
            req_len: 2,
            reply_len: 4,
            think: (2, 6),
            server_delay: (1, 3),
            start_spread: 8,
            horizon,
            seed: 11,
        }
    }

    #[test]
    fn chains_complete_and_self_limit() {
        let sub = Substrate::butterfly(3); // 8 endpoints
        let cfg = small_cfg(2, 400);
        let ol = OpenLoopConfig::new(50, 300).drain(200);
        let r = run_closed_loop(&sub, &cfg, &SimConfig::new(2), &ol);
        assert_eq!(r.outcome, Outcome::Completed, "{:?}", r.outcome);
        let cl = r.closed_loop.unwrap();
        assert!(cl.chains_completed > 0, "{cl:?}");
        assert_eq!(cl.requests_issued, cl.chains_completed, "run drained");
        assert!(cl.chain_latency.p50 > 0);
        // The structural guarantee closed loops exist for: never more
        // than clients × window in flight.
        assert_eq!(cl.outstanding_bound(), 8);
        assert_eq!(cl.per_client_think.len(), 4);
        assert!(cl.total_think() > 0);
        assert!(cl.total_backlog() > 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let sub = Substrate::butterfly(3);
        let cfg = small_cfg(2, 300);
        let ol = OpenLoopConfig::new(50, 200).drain(200);
        let a = run_closed_loop(&sub, &cfg, &SimConfig::new(2), &ol);
        let b = run_closed_loop(&sub, &cfg, &SimConfig::new(2), &ol);
        assert!(a.same_execution(&b));
        assert_eq!(a.closed_loop.unwrap(), b.closed_loop.unwrap());
    }

    #[test]
    fn engines_agree_on_closed_loop_runs() {
        // The reactive-source path disables the event engine's batched
        // fast-forwards but keeps park/wake and idle jumps; the
        // delivery-flush canonicalization must make the engines (and
        // their derived chain stats) identical.
        let sub = Substrate::torus_with(4, 2, crate::RoutingDiscipline::DatelineClasses);
        let mut cfg = small_cfg(2, 300);
        cfg.clients = 6;
        cfg.servers = 6;
        let ol = OpenLoopConfig::new(50, 200).drain(200);
        for b in [1u32, 2] {
            let ev = run_closed_loop(&sub, &cfg, &SimConfig::new(b), &ol);
            let lg = run_closed_loop(&sub, &cfg, &SimConfig::new(b).engine(Engine::Legacy), &ol);
            assert!(ev.same_execution(&lg), "engines diverged at B={b}");
            assert_eq!(ev.closed_loop.unwrap(), lg.closed_loop.unwrap());
        }
    }

    #[test]
    fn window_bounds_outstanding_requests() {
        // With zero think and zero server delay the loop runs as hot as
        // it can; in-flight messages still never exceed clients × window
        // (requests) + clients × window (replies).
        let sub = Substrate::butterfly(3);
        let cfg = ClosedLoopConfig {
            clients: 4,
            servers: 4,
            window: 1,
            req_len: 2,
            reply_len: 2,
            think: (0, 0),
            server_delay: (0, 0),
            start_spread: 0,
            horizon: 200,
            seed: 3,
        };
        let ol = OpenLoopConfig::new(20, 180).drain(100);
        let r = run_closed_loop(&sub, &cfg, &SimConfig::new(1), &ol);
        let cl = r.closed_loop.clone().unwrap();
        assert!(cl.chains_completed > 10);
        // Backlog at any instant is bounded by the window structure.
        let olstats = r.open_loop.unwrap();
        assert!(olstats.backlog.0 <= 2 * cl.outstanding_bound() as usize);
        assert!(olstats.backlog.1 <= 2 * cl.outstanding_bound() as usize);
    }

    #[test]
    fn faulted_benes_chains_reissue_and_complete() {
        use wormhole_topology::fault::FaultPlan;
        // Kill a middle-stage edge of each client's canonical route to
        // its aligned server while the loop is in full swing. The Benes
        // has middle-column diversity, so every severed half-chain is
        // reissued on a surviving route and the loop drains completely.
        let sub = Substrate::benes(3); // 8 endpoints
        let cfg = ClosedLoopConfig {
            clients: 4,
            servers: 4,
            window: 2,
            req_len: 4,
            reply_len: 4,
            think: (0, 2),
            server_delay: (0, 2),
            start_spread: 4,
            horizon: 300,
            seed: 7,
        };
        let mut plan = FaultPlan::new();
        let mut seen = Vec::new();
        for c in 0..cfg.clients {
            let p = sub.route(c, c + cfg.clients);
            let e = p.edges()[p.edges().len() / 2];
            if !seen.contains(&e) {
                seen.push(e);
                plan = plan.kill_link(40, e);
            }
        }
        let run = |engine| {
            let sim = SimConfig::new(2).engine(engine).faults(plan.clone());
            let mut src = ClosedLoopSource::new(&sub, &cfg).with_faults(&plan, sub.graph());
            let r = wormhole::run_source(sub.graph(), &mut src, &sim);
            let cl = src.stats(r.total_steps);
            (r, cl, src.open_chains())
        };
        let (r, cl, open) = run(Engine::EventDriven);
        assert_eq!(r.outcome, Outcome::Completed, "{:?}", r.outcome);
        assert!(r.kills_applied > 0);
        assert!(r.fault_discards > 0, "kills should sever in-flight worms");
        assert_eq!(open, 0, "every severed chain reissued and completed");
        assert!(cl.chains_completed > 0, "{cl:?}");
        let (rl, cll, _) = run(Engine::Legacy);
        assert!(r.same_execution(&rl), "engines diverged on faulted Benes");
        assert_eq!(cl, cll);
    }

    #[test]
    fn faulted_butterfly_retries_stop_at_horizon() {
        use wormhole_topology::fault::FaultPlan;
        // The butterfly has exactly one route per pair: a killed edge
        // permanently wedges every chain crossing it. Retries are
        // reissued (and discarded dead-on-arrival) until the horizon,
        // then stop; the run still drains, with the wedged chains left
        // in flight as backlog rather than spinning forever.
        let sub = Substrate::butterfly(3);
        let cfg = small_cfg(2, 200);
        let p = sub.route(0, 4);
        let plan = FaultPlan::new().kill_link(30, p.edges()[1]);
        let run = |engine| {
            let sim = SimConfig::new(2).engine(engine).faults(plan.clone());
            let mut src = ClosedLoopSource::new(&sub, &cfg).with_faults(&plan, sub.graph());
            let r = wormhole::run_source(sub.graph(), &mut src, &sim);
            let cl = src.stats(r.total_steps);
            (r, cl, src.open_chains())
        };
        let (r, cl, open) = run(Engine::EventDriven);
        assert_eq!(r.outcome, Outcome::Completed, "{:?}", r.outcome);
        assert!(r.fault_discards > 0, "{r:?}");
        assert!(open > 0, "wedged chains never complete: {cl:?}");
        assert!(cl.chains_completed > 0, "unaffected pairs keep looping");
        // The retry loop is bounded: reissues run right up to the
        // horizon and no further.
        assert!(r.total_steps + 1 >= cfg.horizon, "{}", r.total_steps);
        let (rl, cll, _) = run(Engine::Legacy);
        assert!(
            r.same_execution(&rl),
            "engines diverged on wedged butterfly"
        );
        assert_eq!(cl, cll);
    }

    #[test]
    #[should_panic(expected = "partitions overlap")]
    fn overlapping_partitions_rejected() {
        let sub = Substrate::butterfly(3); // 8 endpoints
        let mut cfg = small_cfg(1, 100);
        cfg.clients = 5;
        cfg.servers = 5;
        let _ = ClosedLoopSource::new(&sub, &cfg);
    }
}
