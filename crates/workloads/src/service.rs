//! Service-style traffic scenarios: heavy-tailed message sizes,
//! client/server endpoint partitions, incast (fan-in onto a few hot
//! servers), and diurnal load ramps.
//!
//! The synthetic patterns in [`crate::patterns`] stress the *topology*
//! (bit permutations, tornado, …); a [`ServiceScenario`] instead stresses
//! the *traffic shape* datacenter-style services exhibit: request sizes
//! drawn from a bounded Pareto (most messages short, rare multi-hundred
//! flit worms holding channels for a long time — exactly the regime
//! where virtual channels let short worms overtake), all traffic flowing
//! from a client partition into a server partition with a configurable
//! fraction concentrated on a few hot servers, and an injection rate
//! that ramps sinusoidally so a single run crosses the saturation knee
//! in both directions.
//!
//! A scenario generates [`TraceRow`]s (so it composes with the streaming
//! trace format and [`crate::trace::TraceSource`]), routes them into
//! `MessageSpec`s, or derives a matching [`ClosedLoopConfig`] for
//! closed-loop runs over the same partitions.

use rand::prelude::*;
use rand::rngs::StdRng;

use wormhole_flitsim::message::MessageSpec;

use crate::closed_loop::ClosedLoopConfig;
use crate::substrate::Substrate;
use crate::trace::TraceRow;
use crate::{mix, DST_STREAM_SALT};

/// A client/server service workload description. See the module docs.
#[derive(Clone, Debug)]
pub struct ServiceScenario {
    /// The network substrate (owns the graph and the routing function).
    pub substrate: Substrate,
    /// Number of client endpoints (endpoints `0..clients`); only clients
    /// inject.
    pub clients: u32,
    /// Number of server endpoints (the last `servers` endpoints).
    pub servers: u32,
    /// How many of the servers are "hot" (the first `hot_servers` of the
    /// server partition). `0` disables incast.
    pub hot_servers: u32,
    /// Probability a request targets a hot server (fan-in intensity).
    pub hot_fraction: f64,
    /// Pareto tail index for message lengths (smaller ⇒ heavier tail;
    /// `1 < α ≤ 3` is the service-traffic regime).
    pub alpha: f64,
    /// Minimum message length in flits (the Pareto scale `x_m ≥ 1`).
    pub min_len: u32,
    /// Maximum message length in flits (truncation bound).
    pub max_len: u32,
    /// Mean per-client injection probability per step.
    pub base_rate: f64,
    /// Diurnal modulation depth in `[0, 1]`: the instantaneous rate is
    /// `base_rate · (1 + amplitude · sin(2πt / period))`, clamped to
    /// `[0, 1]`.
    pub diurnal_amplitude: f64,
    /// Diurnal period in steps.
    pub diurnal_period: u64,
    /// Master seed; per-client streams derive from it.
    pub seed: u64,
}

impl ServiceScenario {
    /// Builds and validates a scenario.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        substrate: Substrate,
        clients: u32,
        servers: u32,
        base_rate: f64,
        seed: u64,
    ) -> Self {
        let s = Self {
            substrate,
            clients,
            servers,
            hot_servers: 1,
            hot_fraction: 0.25,
            alpha: 1.5,
            min_len: 1,
            max_len: 64,
            base_rate,
            diurnal_amplitude: 0.0,
            diurnal_period: 1000,
            seed,
        };
        s.validate();
        s
    }

    /// Sets the incast shape: `hot` hot servers absorbing `fraction` of
    /// the requests.
    pub fn incast(mut self, hot: u32, fraction: f64) -> Self {
        self.hot_servers = hot;
        self.hot_fraction = fraction;
        self.validate();
        self
    }

    /// Sets the bounded-Pareto length distribution.
    pub fn pareto_lengths(mut self, alpha: f64, min_len: u32, max_len: u32) -> Self {
        self.alpha = alpha;
        self.min_len = min_len;
        self.max_len = max_len;
        self.validate();
        self
    }

    /// Sets the diurnal ramp (depth in `[0, 1]`, period in steps).
    pub fn diurnal(mut self, amplitude: f64, period: u64) -> Self {
        self.diurnal_amplitude = amplitude;
        self.diurnal_period = period;
        self.validate();
        self
    }

    fn validate(&self) {
        assert!(self.clients >= 1 && self.servers >= 1, "empty partition");
        assert!(
            self.clients + self.servers <= self.substrate.endpoints(),
            "client ({}) and server ({}) partitions overlap on {} endpoints",
            self.clients,
            self.servers,
            self.substrate.endpoints()
        );
        assert!(
            self.hot_servers <= self.servers,
            "more hot servers than servers"
        );
        assert!(
            (0.0..=1.0).contains(&self.hot_fraction),
            "hot_fraction is a probability"
        );
        assert!(self.alpha > 1.0, "Pareto tail index must exceed 1");
        assert!(
            1 <= self.min_len && self.min_len <= self.max_len,
            "need 1 <= min_len <= max_len"
        );
        assert!(
            (0.0..=1.0).contains(&self.base_rate),
            "base_rate is a probability"
        );
        assert!(
            (0.0..=1.0).contains(&self.diurnal_amplitude),
            "diurnal amplitude in [0, 1]"
        );
        assert!(self.diurnal_period >= 1, "diurnal period must be positive");
    }

    /// Instantaneous per-client injection probability at step `t`.
    pub fn rate_at(&self, t: u64) -> f64 {
        let phase = 2.0 * std::f64::consts::PI * (t % self.diurnal_period) as f64
            / self.diurnal_period as f64;
        (self.base_rate * (1.0 + self.diurnal_amplitude * phase.sin())).clamp(0.0, 1.0)
    }

    /// Bounded-Pareto inverse CDF over `[min_len, max_len]`.
    fn draw_length(&self, rng: &mut StdRng) -> u32 {
        let u = rng.random_range(0.0..1.0);
        let xm = self.min_len as f64;
        let xx = self.max_len as f64;
        let x = xm / (1.0 - u * (1.0 - (xm / xx).powf(self.alpha))).powf(1.0 / self.alpha);
        (x as u32).clamp(self.min_len, self.max_len)
    }

    /// Endpoint id of server index `k` (servers are the last endpoints).
    fn server_endpoint(&self, k: u32) -> u32 {
        self.substrate.endpoints() - self.servers + k
    }

    /// Generates the timed rows for injection steps `0..window`, sorted
    /// by `(release, src)`. Deterministic per seed; each client owns two
    /// decorrelated streams (arrivals vs destinations/lengths), so one
    /// client's trace is independent of the others and of the window.
    pub fn generate_rows(&self, window: u64) -> Vec<TraceRow> {
        let mut stamped: Vec<TraceRow> = Vec::new();
        for src in 0..self.clients {
            let mut arrival_rng = StdRng::seed_from_u64(mix(self.seed, src));
            let mut draw_rng = StdRng::seed_from_u64(mix(self.seed ^ DST_STREAM_SALT, src));
            for t in 0..window {
                if !arrival_rng.random_bool(self.rate_at(t)) {
                    continue;
                }
                let hot = self.hot_servers > 0 && draw_rng.random_bool(self.hot_fraction);
                let k = if hot {
                    draw_rng.random_range(0..self.hot_servers)
                } else {
                    draw_rng.random_range(0..self.servers)
                };
                stamped.push(TraceRow {
                    src,
                    dst: self.server_endpoint(k),
                    release: t,
                    length: self.draw_length(&mut draw_rng),
                });
            }
        }
        stamped.sort_by_key(|r| (r.release, r.src));
        stamped
    }

    /// Generates and routes the scenario into simulator-ready specs.
    pub fn generate(&self, window: u64) -> Vec<MessageSpec> {
        self.generate_rows(window)
            .into_iter()
            .map(|r| {
                MessageSpec::new(self.substrate.route(r.src, r.dst), r.length).release_at(r.release)
            })
            .collect()
    }

    /// Derives a closed-loop configuration over the same client/server
    /// partitions: `window` outstanding chains per client, request
    /// length `min_len`, reply length `max_len` (the heavy response is
    /// what occupies the fabric), and think/service times scaled so the
    /// open- and closed-loop offered loads are comparable at
    /// `base_rate`.
    pub fn closed_loop(&self, window: u32, horizon: u64, start_spread: u64) -> ClosedLoopConfig {
        // A chain injects ~(min_len + max_len) flits per cycle of
        // think + flight; pick a mean think that would offer base_rate
        // flits/step per client if the network were infinitely fast.
        let per_chain = (self.min_len + self.max_len) as f64;
        let mean_think = if self.base_rate > 0.0 {
            (window as f64 * per_chain / self.base_rate.min(1.0)).min(1e6) as u64
        } else {
            horizon
        };
        ClosedLoopConfig {
            clients: self.clients,
            servers: self.servers,
            window,
            req_len: self.min_len,
            reply_len: self.max_len,
            think: (mean_think / 2, mean_think + mean_think / 2),
            server_delay: (1, (self.max_len as u64).max(2)),
            start_spread,
            horizon,
            seed: self.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> ServiceScenario {
        ServiceScenario::new(Substrate::butterfly(4), 8, 8, 0.2, 17)
            .incast(2, 0.5)
            .pareto_lengths(1.5, 2, 40)
    }

    #[test]
    fn rows_are_sorted_in_window_and_partitioned() {
        let s = scenario();
        let rows = s.generate_rows(500);
        assert!(!rows.is_empty());
        assert!(rows
            .windows(2)
            .all(|w| (w[0].release, w[0].src) <= (w[1].release, w[1].src)));
        let n = s.substrate.endpoints();
        for r in &rows {
            assert!(r.release < 500);
            assert!(r.src < 8, "injections come from clients only");
            assert!(r.dst >= n - 8, "traffic lands on servers only");
            assert!((2..=40).contains(&r.length));
        }
    }

    #[test]
    fn lengths_are_heavy_tailed_but_bounded() {
        let s = scenario();
        let rows = s.generate_rows(4000);
        let short = rows.iter().filter(|r| r.length <= 4).count();
        let long = rows.iter().filter(|r| r.length >= 20).count();
        // Bounded Pareto with α=1.5: most mass near x_m, a real tail.
        assert!(short > rows.len() / 2, "{short}/{}", rows.len());
        assert!(long > 0, "tail never sampled in {} rows", rows.len());
    }

    #[test]
    fn incast_concentrates_on_hot_servers() {
        let s = scenario();
        let rows = s.generate_rows(4000);
        let n = s.substrate.endpoints();
        let hot = rows.iter().filter(|r| r.dst < n - 8 + 2).count();
        let frac = hot as f64 / rows.len() as f64;
        // 50% aimed at the hot pair + the uniform share landing there.
        assert!(frac > 0.45, "hot fraction {frac}");
    }

    #[test]
    fn diurnal_ramp_modulates_rate() {
        let s = ServiceScenario::new(Substrate::butterfly(4), 8, 8, 0.2, 5).diurnal(0.9, 400);
        assert!(s.rate_at(100) > s.rate_at(0)); // peak of sin at period/4
        assert!(s.rate_at(300) < s.rate_at(0)); // trough at 3·period/4
        let rows = s.generate_rows(400);
        let first_half = rows.iter().filter(|r| r.release < 200).count();
        let second_half = rows.len() - first_half;
        assert!(
            first_half > second_half,
            "ramp up then down: {first_half} vs {second_half}"
        );
    }

    #[test]
    fn rows_route_and_derive_closed_loop() {
        let s = scenario();
        let specs = s.generate(200);
        assert!(specs.iter().all(|m| !m.path.is_empty()));
        let cl = s.closed_loop(2, 1000, 16);
        assert_eq!(cl.clients, 8);
        assert_eq!(cl.servers, 8);
        assert_eq!(cl.req_len, 2);
        assert_eq!(cl.reply_len, 40);
        assert!(cl.think.0 <= cl.think.1);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = scenario().generate_rows(300);
        let b = scenario().generate_rows(300);
        assert_eq!(a, b);
    }
}
