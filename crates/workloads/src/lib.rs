//! Open-loop synthetic traffic workloads for the wormhole reproduction.
//!
//! The paper (Cole–Maggs–Sitaraman '96) evaluates virtual-channel benefit
//! on *batch* instances — a fixed message set routed to completion. The
//! standard NoC methodology for the same question is *open-loop*: every
//! endpoint injects messages by a timed arrival process, destinations
//! follow a synthetic pattern, and latency/throughput curves against
//! offered load locate the saturation knee. This crate generates those
//! timed workloads; `wormhole_flitsim::open_loop` measures them.
//!
//! A [`Workload`] is a [`Substrate`] (butterfly / mesh / torus /
//! hypercube) × a [`TrafficPattern`] (uniform, permutation, transpose,
//! bit-reversal, bit-complement, shuffle, hotspot, tornado, neighbor) ×
//! an [`ArrivalProcess`] (Bernoulli or bursty on/off) × a message length
//! and a seed. Generation is deterministic per seed, with independent
//! per-endpoint streams.
//!
//! # Example
//!
//! ```
//! use wormhole_workloads::{ArrivalProcess, Substrate, TrafficPattern, Workload};
//!
//! let w = Workload::new(
//!     Substrate::butterfly(4),
//!     TrafficPattern::UniformRandom,
//!     ArrivalProcess::bernoulli(0.1),
//!     4,  // flits per message
//!     42, // seed
//! );
//! let specs = w.generate(200);
//! assert!(!specs.is_empty());
//! assert!(specs.iter().all(|s| s.release < 200));
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod closed_loop;
pub mod patterns;
pub mod service;
pub mod substrate;
pub mod trace;

pub use arrivals::ArrivalProcess;
pub use closed_loop::{run_closed_loop, ClosedLoopConfig, ClosedLoopSource};
pub use patterns::{PatternSampler, TrafficPattern};
pub use service::ServiceScenario;
pub use substrate::Substrate;
pub use trace::{read_trace, write_trace, TraceReader, TraceRow, TraceSource};
pub use wormhole_topology::mesh::RoutingDiscipline;

use rand::prelude::*;
use rand::rngs::StdRng;

use wormhole_flitsim::message::MessageSpec;

/// A complete open-loop workload description.
#[derive(Clone, Debug)]
pub struct Workload {
    /// The network substrate (owns the graph and the routing function).
    pub substrate: Substrate,
    /// Destination selection rule.
    pub pattern: TrafficPattern,
    /// Per-endpoint injection process.
    pub arrivals: ArrivalProcess,
    /// Message length in flits (`L ≥ 1`).
    pub msg_len: u32,
    /// Master seed; all randomness (pattern + arrivals) derives from it.
    pub seed: u64,
}

impl Workload {
    /// Builds a workload description (validates the pattern/substrate
    /// combination immediately by constructing a sampler).
    pub fn new(
        substrate: Substrate,
        pattern: TrafficPattern,
        arrivals: ArrivalProcess,
        msg_len: u32,
        seed: u64,
    ) -> Self {
        assert!(msg_len >= 1, "a message has at least its header flit");
        // Validate eagerly so misconfigurations fail at build, not generate.
        let _ = PatternSampler::new(pattern.clone(), &substrate, seed);
        Self {
            substrate,
            pattern,
            arrivals,
            msg_len,
            seed,
        }
    }

    /// Mean offered load in flits per endpoint per flit step.
    pub fn offered_flit_rate(&self) -> f64 {
        self.arrivals.offered_rate() * self.msg_len as f64
    }

    /// Generates the timed message stream for injection steps
    /// `0..window`, sorted by release time (ties by source endpoint).
    ///
    /// Each endpoint owns two independent RNG streams derived from
    /// `(seed, endpoint)` — one for arrival times, one for destinations —
    /// so the trace for endpoint `e` does not change when the window or
    /// another endpoint's traffic changes (growing the window only
    /// appends), and the whole stream is identical across runs with the
    /// same seed.
    pub fn generate(&self, window: u64) -> Vec<MessageSpec> {
        self.generate_rows(window)
            .into_iter()
            .map(|r| {
                MessageSpec::new(self.substrate.route(r.src, r.dst), r.length).release_at(r.release)
            })
            .collect()
    }

    /// Generates the same stream as [`Workload::generate`], but as
    /// routing-free [`TraceRow`]s — the trace-format view of the
    /// workload. `generate` is exactly `generate_rows` + routing, so a
    /// written trace replayed through [`trace::TraceSource`] reproduces
    /// the direct simulation bit for bit.
    pub fn generate_rows(&self, window: u64) -> Vec<TraceRow> {
        let sampler = PatternSampler::new(self.pattern.clone(), &self.substrate, self.seed);
        let n = self.substrate.endpoints();
        // (release, src) sort keys keep the stream deterministic and
        // release-ordered, as the simulator expects of open-loop input.
        let mut stamped: Vec<TraceRow> = Vec::new();
        for src in 0..n {
            let mut arrival_rng = StdRng::seed_from_u64(mix(self.seed, src));
            let mut dst_rng = StdRng::seed_from_u64(mix(self.seed ^ DST_STREAM_SALT, src));
            for t in self.arrivals.arrival_times(window, &mut arrival_rng) {
                let dst = sampler.draw(src, &mut dst_rng);
                if !self.substrate.injects(src, dst) {
                    continue;
                }
                stamped.push(TraceRow {
                    src,
                    dst,
                    release: t,
                    length: self.msg_len,
                });
            }
        }
        stamped.sort_by_key(|r| (r.release, r.src));
        stamped
    }
}

/// Separates each endpoint's destination stream from its arrival stream.
const DST_STREAM_SALT: u64 = 0x6473_745f_7374_7265;

/// SplitMix64-style mix of the master seed and an endpoint id, so
/// per-endpoint streams are decorrelated.
pub(crate) fn mix(seed: u64, endpoint: u32) -> u64 {
    let mut z = seed ^ (endpoint as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_butterfly(rate: f64, seed: u64) -> Workload {
        Workload::new(
            Substrate::butterfly(4),
            TrafficPattern::UniformRandom,
            ArrivalProcess::bernoulli(rate),
            4,
            seed,
        )
    }

    #[test]
    fn same_seed_same_stream() {
        let a = uniform_butterfly(0.2, 9).generate(300);
        let b = uniform_butterfly(0.2, 9).generate(300);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.release, y.release);
            assert_eq!(x.length, y.length);
            assert_eq!(x.path.edges(), y.path.edges());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = uniform_butterfly(0.2, 1).generate(300);
        let b = uniform_butterfly(0.2, 2).generate(300);
        let same = a.len() == b.len()
            && a.iter()
                .zip(&b)
                .all(|(x, y)| x.release == y.release && x.path.edges() == y.path.edges());
        assert!(!same, "independent seeds should not reproduce the stream");
    }

    #[test]
    fn stream_is_release_sorted_and_in_window() {
        let specs = uniform_butterfly(0.3, 5).generate(200);
        assert!(specs.windows(2).all(|w| w[0].release <= w[1].release));
        assert!(specs.iter().all(|s| s.release < 200));
    }

    #[test]
    fn injection_rate_tracks_offered_load() {
        let w = uniform_butterfly(0.1, 3);
        let window = 4000u64;
        let specs = w.generate(window);
        let expected = 16.0 * window as f64 * 0.1;
        let got = specs.len() as f64;
        assert!(
            (got - expected).abs() < expected * 0.1,
            "injected {got}, expected ≈ {expected}"
        );
        assert!((w.offered_flit_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn window_prefix_property() {
        // Growing the window only appends arrivals; the prefix stream is
        // unchanged (per-endpoint streams are window-independent).
        let small = uniform_butterfly(0.2, 12).generate(100);
        let large = uniform_butterfly(0.2, 12).generate(200);
        let large_prefix: Vec<_> = large.iter().filter(|s| s.release < 100).collect();
        assert_eq!(small.len(), large_prefix.len());
        for (a, b) in small.iter().zip(large_prefix) {
            assert_eq!(a.release, b.release);
            assert_eq!(a.path.edges(), b.path.edges());
        }
    }

    #[test]
    fn mesh_self_traffic_is_skipped() {
        let w = Workload::new(
            Substrate::torus(4, 2),
            TrafficPattern::UniformRandom,
            ArrivalProcess::bernoulli(0.5),
            2,
            7,
        );
        let specs = w.generate(200);
        assert!(!specs.is_empty());
        assert!(specs.iter().all(|s| !s.path.is_empty()));
    }

    #[test]
    fn deterministic_pattern_routes_match_map() {
        let w = Workload::new(
            Substrate::butterfly(4),
            TrafficPattern::BitReversal,
            ArrivalProcess::bernoulli(0.3),
            3,
            21,
        );
        let specs = w.generate(100);
        assert!(!specs.is_empty());
        let g = w.substrate.graph();
        let sampler = PatternSampler::new(w.pattern.clone(), &w.substrate, w.seed);
        let map = sampler.dest_map().unwrap();
        for s in &specs {
            let src = s.path.src(g).0; // level-0 node id == column
            let dst_col = s.path.dst(g).0 % 16;
            assert_eq!(map[src as usize], dst_col);
        }
    }

    #[test]
    fn bursty_workload_generates() {
        let w = Workload::new(
            Substrate::hypercube(4),
            TrafficPattern::Permutation,
            ArrivalProcess::bursty(0.1, 16.0),
            5,
            33,
        );
        let specs = w.generate(2000);
        let rate = specs.len() as f64 / (2000.0 * 16.0);
        // Permutation fixed points never inject; allow a generous band.
        assert!(rate > 0.05 && rate < 0.15, "rate {rate}");
    }
}
