//! External trace replay: a streaming `(src, dst, release, length)`
//! format and a pull-based [`TraceSource`] that feeds it to the
//! simulator incrementally — a trace bigger than RAM is replayed row by
//! row, never materialized as a `Vec<MessageSpec>`.
//!
//! # Format
//!
//! One row per line, four whitespace-separated decimal columns:
//!
//! ```text
//! # src dst release length
//! 0 5 0 4
//! 3 1 2 16
//! ```
//!
//! Blank lines and `#` comments are skipped. Rows must be sorted by
//! non-decreasing `release` (the reader enforces it): a streaming replay
//! cannot look arbitrarily far ahead for an out-of-order release, and
//! sorted rows make the id assignment (sequential, in row order) agree
//! with the `(release, id)` emission order the
//! [`TrafficSource`] contract requires.
//!
//! The round-trip invariant — [`write_trace`] then [`read_trace`]
//! reproduces the rows, and replaying a written [`Workload`] trace is
//! bit-identical to simulating `Workload::generate` directly — is
//! enforced by `tests/source_equiv.rs`.
//!
//! [`Workload`]: crate::Workload

use std::io::{self, BufRead, Write};

use wormhole_flitsim::message::MessageSpec;
use wormhole_flitsim::source::TrafficSource;

use crate::substrate::Substrate;

/// One trace row: endpoints, release step, and length in flits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRow {
    /// Source endpoint (dense substrate endpoint space).
    pub src: u32,
    /// Destination endpoint.
    pub dst: u32,
    /// Release (injection-availability) step.
    pub release: u64,
    /// Message length in flits (`≥ 1`).
    pub length: u32,
}

/// Writes rows in the trace format, with a leading column-name comment.
pub fn write_trace<W: Write>(w: &mut W, rows: &[TraceRow]) -> io::Result<()> {
    writeln!(w, "# src dst release length")?;
    for r in rows {
        writeln!(w, "{} {} {} {}", r.src, r.dst, r.release, r.length)?;
    }
    Ok(())
}

/// Incremental trace reader: yields rows one at a time, enforcing the
/// format (four decimal columns, non-decreasing releases) with
/// line-numbered errors. Never buffers more than one line.
///
/// Every line — including the last — must end in a newline, as
/// [`write_trace`] emits them: a final line missing its `\n` cannot be
/// told apart from a file truncated mid-row, so it is a line-numbered
/// [`io::ErrorKind::UnexpectedEof`] error, never a silently accepted
/// partial row. An empty trace (zero bytes) is valid and yields no rows.
pub struct TraceReader<R: BufRead> {
    inner: R,
    line_no: usize,
    last_release: u64,
    buf: String,
}

impl<R: BufRead> TraceReader<R> {
    /// Wraps a buffered reader positioned at the start of a trace.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            line_no: 0,
            last_release: 0,
            buf: String::new(),
        }
    }

    fn parse_row(&self, line: &str) -> Result<TraceRow, String> {
        let mut cols = line.split_whitespace();
        let mut field = |name: &str| {
            cols.next()
                .ok_or_else(|| format!("missing column `{name}`"))
        };
        let src = field("src")?;
        let dst = field("dst")?;
        let release = field("release")?;
        let length = field("length")?;
        if cols.next().is_some() {
            return Err("more than four columns".to_string());
        }
        let parse_u32 = |name: &str, s: &str| {
            s.parse::<u32>()
                .map_err(|e| format!("bad `{name}` value {s:?}: {e}"))
        };
        let row = TraceRow {
            src: parse_u32("src", src)?,
            dst: parse_u32("dst", dst)?,
            release: release
                .parse::<u64>()
                .map_err(|e| format!("bad `release` value {release:?}: {e}"))?,
            length: parse_u32("length", length)?,
        };
        if row.length == 0 {
            return Err("zero-length message".to_string());
        }
        Ok(row)
    }
}

impl<R: BufRead> Iterator for TraceReader<R> {
    type Item = io::Result<TraceRow>;

    fn next(&mut self) -> Option<io::Result<TraceRow>> {
        loop {
            self.buf.clear();
            self.line_no += 1;
            match self.inner.read_line(&mut self.buf) {
                Ok(0) => return None,
                // A final line without its newline is indistinguishable
                // from a trace cut off mid-row ("0 1 5 12" truncated to
                // "0 1 5 1" still parses): reject it rather than
                // silently replaying a corrupted tail.
                Ok(_) if !self.buf.ends_with('\n') => {
                    return Some(Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        format!(
                            "trace line {}: truncated final line (missing trailing \
                             newline; the trace may have been cut off mid-row)",
                            self.line_no
                        ),
                    )));
                }
                Ok(_) => {}
                Err(e) => return Some(Err(e)),
            }
            let line = self.buf.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fail = |msg: String| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("trace line {}: {msg}", self.line_no),
                )
            };
            return Some(match self.parse_row(line) {
                Ok(row) => {
                    if row.release < self.last_release {
                        Err(fail(format!(
                            "release {} decreases (previous row was {})",
                            row.release, self.last_release
                        )))
                    } else {
                        self.last_release = row.release;
                        Ok(row)
                    }
                }
                Err(msg) => Err(fail(msg)),
            });
        }
    }
}

/// Reads a whole trace eagerly — the small-trace convenience on top of
/// the streaming [`TraceReader`].
pub fn read_trace<R: BufRead>(r: R) -> io::Result<Vec<TraceRow>> {
    TraceReader::new(r).collect()
}

/// Pull-based replay of a trace over a [`Substrate`]: rows are read —
/// and routed — only as simulated time reaches them, so the working set
/// is one row regardless of trace size. Ids are assigned sequentially in
/// row order; with releases non-decreasing (reader-enforced) that is
/// exactly the `(release, id)` emission order the contract requires.
///
/// Malformed rows, out-of-range endpoints, and rows the substrate does
/// not inject (`src == dst` on node-addressed substrates) panic with the
/// offending line: a trace replay has no caller to hand an error to
/// mid-simulation, and silently dropping rows would skew the workload.
pub struct TraceSource<'a, R: BufRead> {
    sub: &'a Substrate,
    reader: TraceReader<R>,
    /// One-row lookahead: the next not-yet-released row.
    pending: Option<TraceRow>,
    next_id: u32,
    /// Per-emitted-id `(release, length)`, for windowed stats.
    meta: Vec<(u64, u32)>,
}

impl<'a, R: BufRead> TraceSource<'a, R> {
    /// Starts a streaming replay of `reader`'s trace over `sub`.
    pub fn new(sub: &'a Substrate, reader: R) -> Self {
        let mut s = Self {
            sub,
            reader: TraceReader::new(reader),
            pending: None,
            next_id: 0,
            meta: Vec::new(),
        };
        s.advance();
        s
    }

    /// Pulls the next row into the lookahead slot.
    fn advance(&mut self) {
        self.pending = match self.reader.next() {
            None => None,
            Some(Ok(row)) => {
                let n = self.sub.endpoints();
                assert!(
                    row.src < n && row.dst < n,
                    "trace row {}: endpoint out of range ({} -> {} on {})",
                    self.reader.line_no,
                    row.src,
                    row.dst,
                    self.sub.name()
                );
                assert!(
                    self.sub.injects(row.src, row.dst),
                    "trace row {}: substrate {} does not inject {} -> {}",
                    self.reader.line_no,
                    self.sub.name(),
                    row.src,
                    row.dst
                );
                Some(row)
            }
            Some(Err(e)) => panic!("trace replay failed: {e}"),
        };
    }

    /// `(release, length)` per emitted id — the metadata
    /// `wormhole_flitsim::open_loop::windowed_stats_from` needs.
    pub fn meta(&self) -> &[(u64, u32)] {
        &self.meta
    }

    /// Number of messages emitted so far.
    pub fn emitted(&self) -> usize {
        self.meta.len()
    }
}

impl<R: BufRead> TrafficSource for TraceSource<'_, R> {
    fn next_release(&mut self, _now: u64) -> Option<u64> {
        self.pending.as_ref().map(|r| r.release)
    }

    fn take_ready(&mut self, now: u64, out: &mut Vec<(u32, MessageSpec)>) {
        while let Some(row) = self.pending {
            if row.release > now {
                break;
            }
            let spec = MessageSpec::new(self.sub.route(row.src, row.dst), row.length)
                .release_at(row.release);
            self.meta.push((row.release, row.length));
            out.push((self.next_id, spec));
            self.next_id += 1;
            self.advance();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn round_trips_rows() {
        let rows = vec![
            TraceRow {
                src: 0,
                dst: 3,
                release: 0,
                length: 4,
            },
            TraceRow {
                src: 2,
                dst: 1,
                release: 0,
                length: 1,
            },
            TraceRow {
                src: 1,
                dst: 2,
                release: 7,
                length: 16,
            },
        ];
        let mut buf = Vec::new();
        write_trace(&mut buf, &rows).unwrap();
        let back = read_trace(BufReader::new(&buf[..])).unwrap();
        assert_eq!(rows, back);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let text = "# header\n\n0 1 0 2\n  # mid comment\n1 0 3 2\n";
        let rows = read_trace(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].release, 3);
    }

    #[test]
    fn errors_carry_the_line_and_column() {
        let text = "0 1 0 2\n0 x 1 2\n";
        let err = read_trace(BufReader::new(text.as_bytes())).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("dst"), "{msg}");
    }

    #[test]
    fn rejects_decreasing_releases() {
        let text = "0 1 5 2\n1 0 4 2\n";
        let err = read_trace(BufReader::new(text.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("decreases"), "{err}");
    }

    #[test]
    fn rejects_zero_length_and_extra_columns() {
        let z = read_trace(BufReader::new("0 1 0 0\n".as_bytes())).unwrap_err();
        assert!(z.to_string().contains("zero-length"), "{z}");
        let x = read_trace(BufReader::new("0 1 0 2 9\n".as_bytes())).unwrap_err();
        assert!(x.to_string().contains("four columns"), "{x}");
    }

    #[test]
    fn rejects_truncated_final_row_with_line_number() {
        // "0 1 5 12" cut off after the first digit of `length`: the
        // fragment parses as a complete row, so only the missing
        // newline betrays the truncation.
        let text = "0 1 0 2\n1 0 5 1";
        let err = read_trace(BufReader::new(text.as_bytes())).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("truncated"), "{msg}");
        // Truncation mid-comment is just as suspect.
        let c = read_trace(BufReader::new("# header".as_bytes())).unwrap_err();
        assert_eq!(c.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn empty_trace_is_valid_and_yields_no_rows() {
        let rows = read_trace(BufReader::new("".as_bytes())).unwrap();
        assert!(rows.is_empty());
        // Writer output round-trips even for zero rows: the header
        // comment ends in a newline, so nothing is "truncated".
        let mut buf = Vec::new();
        write_trace(&mut buf, &[]).unwrap();
        assert!(read_trace(BufReader::new(&buf[..])).unwrap().is_empty());
    }

    #[test]
    fn streaming_source_emits_in_order() {
        let sub = Substrate::butterfly(3);
        let text = "0 1 0 2\n2 3 0 2\n1 0 6 3\n";
        let mut src = TraceSource::new(&sub, BufReader::new(text.as_bytes()));
        assert_eq!(src.next_release(0), Some(0));
        let mut out = Vec::new();
        src.take_ready(0, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, 0);
        assert_eq!(out[1].0, 1);
        assert_eq!(src.next_release(0), Some(6));
        out.clear();
        src.take_ready(10, &mut out);
        assert_eq!(out[0].0, 2);
        assert_eq!(out[0].1.length, 3);
        assert_eq!(src.next_release(10), None);
        assert_eq!(src.emitted(), 3);
        assert_eq!(src.meta()[2], (6, 3));
    }
}
