//! Synthetic traffic patterns over a dense endpoint space.
//!
//! The standard NoC evaluation suite: address-bit permutations
//! (transpose, bit-reversal, bit-complement, shuffle), digit patterns for
//! meshes/tori (tornado, neighbor), randomized patterns (uniform random,
//! random permutation), and hotspot concentration. Deterministic patterns
//! map every source to a fixed destination; stochastic patterns draw a
//! destination per message from a seeded stream.

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::substrate::Substrate;

/// A synthetic traffic pattern (destination selection rule).
#[derive(Clone, Debug, PartialEq)]
pub enum TrafficPattern {
    /// Every message draws an independent uniformly random destination.
    UniformRandom,
    /// A fixed uniformly random permutation (drawn once per workload seed).
    Permutation,
    /// Swap the high and low halves of the address bits: `(a, b) → (b, a)`.
    /// Needs a power-of-two endpoint count with an even number of bits.
    Transpose,
    /// Reverse the address bits. Needs a power-of-two endpoint count.
    BitReversal,
    /// Complement every address bit. Needs a power-of-two endpoint count.
    BitComplement,
    /// Perfect shuffle: rotate the address bits left by one. Needs a
    /// power-of-two endpoint count.
    Shuffle,
    /// With probability `fraction`, send to a uniformly random member of
    /// `hotspots`; otherwise uniform random over all endpoints.
    Hotspot {
        /// Probability a message targets a hotspot (`0 ≤ fraction ≤ 1`).
        fraction: f64,
        /// The hotspot endpoints (must be non-empty and in range).
        hotspots: Vec<u32>,
    },
    /// Tornado: offset each digit by `⌈radix/2⌉ − 1` (mesh/torus digits
    /// in dimension 0; the endpoint ring elsewhere) — the classic
    /// worst case for minimal routing on rings.
    Tornado,
    /// Nearest neighbor: `+1` in dimension 0 (the endpoint ring on
    /// non-mesh substrates).
    Neighbor,
}

impl TrafficPattern {
    /// Short lowercase name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            TrafficPattern::UniformRandom => "uniform",
            TrafficPattern::Permutation => "permutation",
            TrafficPattern::Transpose => "transpose",
            TrafficPattern::BitReversal => "bit-reversal",
            TrafficPattern::BitComplement => "bit-complement",
            TrafficPattern::Shuffle => "shuffle",
            TrafficPattern::Hotspot { .. } => "hotspot",
            TrafficPattern::Tornado => "tornado",
            TrafficPattern::Neighbor => "neighbor",
        }
    }

    /// Whether every source maps to one fixed destination.
    pub fn is_deterministic(&self) -> bool {
        !matches!(
            self,
            TrafficPattern::UniformRandom | TrafficPattern::Hotspot { .. }
        )
    }
}

/// A pattern bound to a substrate: validates the combination once and
/// serves destination draws.
#[derive(Clone, Debug)]
pub struct PatternSampler {
    pattern: TrafficPattern,
    n: u32,
    /// Fixed destination map for deterministic patterns.
    dest_map: Option<Vec<u32>>,
}

impl PatternSampler {
    /// Binds `pattern` to `substrate`. Deterministic patterns materialize
    /// their destination map here (the random permutation uses `seed`).
    ///
    /// Panics if the pattern's structural requirements do not hold (e.g.
    /// bit patterns on a non-power-of-two endpoint count).
    pub fn new(pattern: TrafficPattern, substrate: &Substrate, seed: u64) -> Self {
        let n = substrate.endpoints();
        assert!(n >= 2, "patterns need at least two endpoints");
        let bits = n.trailing_zeros();
        let is_pow2 = n.is_power_of_two();
        let dest_map = match &pattern {
            TrafficPattern::UniformRandom | TrafficPattern::Hotspot { .. } => {
                if let TrafficPattern::Hotspot { fraction, hotspots } = &pattern {
                    assert!(
                        (0.0..=1.0).contains(fraction),
                        "hotspot fraction is a probability"
                    );
                    assert!(!hotspots.is_empty(), "hotspot list is empty");
                    assert!(
                        hotspots.iter().all(|&h| h < n),
                        "hotspot endpoint out of range"
                    );
                }
                None
            }
            TrafficPattern::Permutation => {
                let mut perm: Vec<u32> = (0..n).collect();
                perm.shuffle(&mut StdRng::seed_from_u64(seed ^ 0x7065_726d));
                Some(perm)
            }
            TrafficPattern::Transpose => {
                assert!(
                    is_pow2 && bits.is_multiple_of(2),
                    "transpose needs 2^(2m) endpoints, got {n}"
                );
                let half = bits / 2;
                let lo_mask = (1u32 << half) - 1;
                Some(
                    (0..n)
                        .map(|s| ((s & lo_mask) << half) | (s >> half))
                        .collect(),
                )
            }
            TrafficPattern::BitReversal => {
                assert!(is_pow2, "bit-reversal needs 2^m endpoints, got {n}");
                Some((0..n).map(|s| s.reverse_bits() >> (32 - bits)).collect())
            }
            TrafficPattern::BitComplement => {
                assert!(is_pow2, "bit-complement needs 2^m endpoints, got {n}");
                Some((0..n).map(|s| s ^ (n - 1)).collect())
            }
            TrafficPattern::Shuffle => {
                assert!(is_pow2, "shuffle needs 2^m endpoints, got {n}");
                Some(
                    (0..n)
                        .map(|s| ((s << 1) | (s >> (bits - 1))) & (n - 1))
                        .collect(),
                )
            }
            TrafficPattern::Tornado => Some(tornado_map(substrate)),
            TrafficPattern::Neighbor => Some(neighbor_map(substrate)),
        };
        Self {
            pattern,
            n,
            dest_map,
        }
    }

    /// The bound pattern.
    pub fn pattern(&self) -> &TrafficPattern {
        &self.pattern
    }

    /// Destination for a message from `src`; `rng` feeds the stochastic
    /// patterns and is untouched by deterministic ones.
    pub fn draw(&self, src: u32, rng: &mut StdRng) -> u32 {
        debug_assert!(src < self.n);
        match (&self.pattern, &self.dest_map) {
            (_, Some(map)) => map[src as usize],
            (TrafficPattern::UniformRandom, None) => rng.random_range(0..self.n),
            (TrafficPattern::Hotspot { fraction, hotspots }, None) => {
                if rng.random_bool(*fraction) {
                    hotspots[rng.random_range(0..hotspots.len())]
                } else {
                    rng.random_range(0..self.n)
                }
            }
            _ => unreachable!("deterministic patterns always carry a map"),
        }
    }

    /// The fixed destination map, if the pattern is deterministic.
    pub fn dest_map(&self) -> Option<&[u32]> {
        self.dest_map.as_deref()
    }
}

/// Tornado offsets: on a mesh/torus, `+(⌈radix/2⌉ − 1)` in dimension 0
/// (wrapped); elsewhere the endpoint index ring stands in for the radix.
fn tornado_map(substrate: &Substrate) -> Vec<u32> {
    let n = substrate.endpoints();
    match substrate {
        Substrate::Mesh(m) => {
            let radix = m.radix();
            let off = radix.div_ceil(2) - 1;
            (0..n)
                .map(|s| {
                    let d0 = s % radix;
                    (s - d0) + (d0 + off) % radix
                })
                .collect()
        }
        _ => {
            let off = n.div_ceil(2) - 1;
            (0..n).map(|s| (s + off) % n).collect()
        }
    }
}

/// Neighbor offsets: `+1` in dimension 0 (wrapped on the digit ring for
/// meshes/tori, the endpoint ring elsewhere).
fn neighbor_map(substrate: &Substrate) -> Vec<u32> {
    let n = substrate.endpoints();
    match substrate {
        Substrate::Mesh(m) => {
            let radix = m.radix();
            (0..n)
                .map(|s| {
                    let d0 = s % radix;
                    (s - d0) + (d0 + 1) % radix
                })
                .collect()
        }
        _ => (0..n).map(|s| (s + 1) % n).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_permutation(map: &[u32]) -> bool {
        let mut seen = vec![false; map.len()];
        for &d in map {
            if seen[d as usize] {
                return false;
            }
            seen[d as usize] = true;
        }
        true
    }

    #[test]
    fn deterministic_patterns_are_true_permutations() {
        let subs = [
            Substrate::butterfly(4),
            Substrate::hypercube(4),
            Substrate::torus(4, 2),
        ];
        let pats = [
            TrafficPattern::Permutation,
            TrafficPattern::Transpose,
            TrafficPattern::BitReversal,
            TrafficPattern::BitComplement,
            TrafficPattern::Shuffle,
            TrafficPattern::Tornado,
            TrafficPattern::Neighbor,
        ];
        for s in &subs {
            for p in &pats {
                let sampler = PatternSampler::new(p.clone(), s, 11);
                let map = sampler.dest_map().expect("deterministic pattern");
                assert!(
                    is_permutation(map),
                    "{} on {} is not a permutation",
                    p.name(),
                    s.name()
                );
            }
        }
    }

    #[test]
    fn classic_bit_patterns_match_definitions() {
        let s = Substrate::butterfly(4); // 16 endpoints, 4 bits
        let t = PatternSampler::new(TrafficPattern::Transpose, &s, 0);
        assert_eq!(t.dest_map().unwrap()[0b0111], 0b1101); // (01,11) -> (11,01)
        let r = PatternSampler::new(TrafficPattern::BitReversal, &s, 0);
        assert_eq!(r.dest_map().unwrap()[0b0011], 0b1100);
        let c = PatternSampler::new(TrafficPattern::BitComplement, &s, 0);
        assert_eq!(c.dest_map().unwrap()[0b0101], 0b1010);
        let sh = PatternSampler::new(TrafficPattern::Shuffle, &s, 0);
        assert_eq!(sh.dest_map().unwrap()[0b1001], 0b0011);
    }

    #[test]
    fn tornado_on_torus_offsets_dimension_zero() {
        let s = Substrate::torus(8, 2);
        let t = PatternSampler::new(TrafficPattern::Tornado, &s, 0);
        let map = t.dest_map().unwrap();
        // Endpoint (x=1, y=2) = 1 + 2*8 = 17 goes to x = (1+3)%8 = 4, y = 2.
        assert_eq!(map[17], 4 + 2 * 8);
    }

    #[test]
    fn neighbor_wraps_the_digit_ring() {
        let s = Substrate::torus(4, 2);
        let map = PatternSampler::new(TrafficPattern::Neighbor, &s, 0)
            .dest_map()
            .unwrap()
            .to_vec();
        assert_eq!(map[3], 0); // x: 3 -> 0, y unchanged
        assert_eq!(map[4 + 3], 4); // same in row 1
    }

    #[test]
    fn tornado_on_odd_radix_torus() {
        // radix 5 → offset ⌈5/2⌉−1 = 2; only dimension 0 moves.
        let s = Substrate::torus(5, 2);
        let map = PatternSampler::new(TrafficPattern::Tornado, &s, 0)
            .dest_map()
            .unwrap()
            .to_vec();
        assert!(is_permutation(&map));
        for y in 0..5u32 {
            for x in 0..5u32 {
                assert_eq!(map[(x + 5 * y) as usize], (x + 2) % 5 + 5 * y);
            }
        }
        // No fixed points: every endpoint injects.
        assert!(map.iter().enumerate().all(|(s, &d)| s as u32 != d));
    }

    #[test]
    fn tornado_offset_not_coprime_with_radix_still_permutes() {
        // radix 6 → offset 2, gcd(2, 6) = 2: the per-digit rotation is
        // still a bijection of the digit ring, so the map permutes.
        let s = Substrate::torus(6, 2);
        let map = PatternSampler::new(TrafficPattern::Tornado, &s, 0)
            .dest_map()
            .unwrap()
            .to_vec();
        assert!(is_permutation(&map));
        assert_eq!(map[4], 0); // x: 4 → (4+2)%6 = 0
        assert_eq!(map[6 + 5], 6 + 1); // row 1, x: 5 → 1
    }

    #[test]
    fn tornado_on_radix_two_is_the_identity() {
        // Degenerate stride: ⌈2/2⌉−1 = 0 hops — every endpoint maps to
        // itself, so node-based substrates inject nothing.
        let s = Substrate::torus(2, 3);
        let map = PatternSampler::new(TrafficPattern::Tornado, &s, 0)
            .dest_map()
            .unwrap()
            .to_vec();
        assert!(map.iter().enumerate().all(|(i, &d)| i as u32 == d));
        assert!((0..s.endpoints()).all(|e| !s.injects(e, map[e as usize])));
    }

    #[test]
    fn odd_radix_digit_patterns_are_permutations() {
        // Digit patterns must permute on substrates the bit patterns
        // reject: odd radices and odd dimension counts.
        for s in [
            Substrate::torus(5, 2),
            Substrate::torus(3, 3),
            Substrate::torus(7, 1),
            Substrate::mesh(5, 3),
        ] {
            for p in [
                TrafficPattern::Tornado,
                TrafficPattern::Neighbor,
                TrafficPattern::Permutation,
            ] {
                let map = PatternSampler::new(p.clone(), &s, 13)
                    .dest_map()
                    .unwrap()
                    .to_vec();
                assert!(
                    is_permutation(&map),
                    "{} on {} is not a permutation",
                    p.name(),
                    s.name()
                );
            }
        }
    }

    #[test]
    fn transpose_on_square_torus_swaps_coordinates() {
        // 4^2 = 16 endpoints, 4 address bits: the low half is the x digit
        // and the high half the y digit, so the bit-half swap is exactly
        // the (x, y) → (y, x) reflection.
        let s = Substrate::torus(4, 2);
        let map = PatternSampler::new(TrafficPattern::Transpose, &s, 0)
            .dest_map()
            .unwrap()
            .to_vec();
        for y in 0..4u32 {
            for x in 0..4u32 {
                assert_eq!(map[(x + 4 * y) as usize], y + 4 * x);
            }
        }
        // Diagonal endpoints are reflection fixed points — node-based
        // substrates skip them as self-traffic.
        for d in 0..4u32 {
            let e = d + 4 * d;
            assert_eq!(map[e as usize], e);
            assert!(!s.injects(e, e));
        }
    }

    #[test]
    #[should_panic(expected = "transpose needs")]
    fn transpose_rejects_non_square_mesh() {
        // 2^3 = 8 endpoints: a power of two, but 3 bits do not split into
        // equal halves — no coordinate transpose exists.
        PatternSampler::new(TrafficPattern::Transpose, &Substrate::mesh(2, 3), 0);
    }

    #[test]
    fn hotspot_fraction_is_respected() {
        let s = Substrate::butterfly(5);
        let hotspots = vec![3u32, 17];
        let sampler = PatternSampler::new(
            TrafficPattern::Hotspot {
                fraction: 0.4,
                hotspots: hotspots.clone(),
            },
            &s,
            0,
        );
        let mut rng = StdRng::seed_from_u64(5);
        let draws = 200_000;
        let hits = (0..draws)
            .filter(|_| hotspots.contains(&sampler.draw(0, &mut rng)))
            .count();
        // Expected = fraction + (1 - fraction) * |hotspots| / n
        //          = 0.4 + 0.6 * 2/32 = 0.4375.
        let observed = hits as f64 / draws as f64;
        assert!(
            (observed - 0.4375).abs() < 0.01,
            "hotspot hit rate {observed} != 0.4375"
        );
    }

    #[test]
    fn uniform_covers_all_destinations() {
        let s = Substrate::butterfly(3);
        let sampler = PatternSampler::new(TrafficPattern::UniformRandom, &s, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[sampler.draw(0, &mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    #[should_panic(expected = "transpose needs")]
    fn transpose_rejects_odd_bit_counts() {
        PatternSampler::new(TrafficPattern::Transpose, &Substrate::butterfly(3), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn hotspot_rejects_bad_endpoints() {
        PatternSampler::new(
            TrafficPattern::Hotspot {
                fraction: 0.1,
                hotspots: vec![999],
            },
            &Substrate::butterfly(3),
            0,
        );
    }
}
