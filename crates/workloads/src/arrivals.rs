//! Arrival processes: when each endpoint injects a message.
//!
//! Open-loop evaluation drives every endpoint with an independent timed
//! process, regardless of network state (the network cannot push back —
//! that is what makes the latency/throughput curves meaningful).
//! Two processes cover the standard methodology:
//!
//! * **Bernoulli** — inject with probability `rate` each flit step;
//!   memoryless, the discrete analog of Poisson arrivals;
//! * **bursty on/off** — a two-state Markov-modulated process: an *on*
//!   endpoint injects with probability `rate_on` per step; transitions
//!   `on → off` and `off → on` happen with the given per-step
//!   probabilities. Mean offered load is `rate_on · π_on` where
//!   `π_on = p_off_to_on / (p_on_to_off + p_off_to_on)`.

use rand::prelude::*;
use rand::rngs::StdRng;

/// A per-endpoint arrival process.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalProcess {
    /// Independent injection with probability `rate` per flit step.
    Bernoulli {
        /// Injection probability per endpoint per step (`0 ≤ rate ≤ 1`).
        rate: f64,
    },
    /// Two-state Markov-modulated on/off bursts.
    OnOff {
        /// Injection probability per step while *on*.
        rate_on: f64,
        /// Per-step probability of an *on* endpoint turning *off*.
        p_on_to_off: f64,
        /// Per-step probability of an *off* endpoint turning *on*.
        p_off_to_on: f64,
    },
}

impl ArrivalProcess {
    /// Bernoulli arrivals at `rate`.
    pub fn bernoulli(rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate is a probability");
        ArrivalProcess::Bernoulli { rate }
    }

    /// Bursty arrivals with the same mean load as `bernoulli(rate)`:
    /// bursts of expected length `burst_len` steps at twice the mean
    /// rate (symmetric 50% duty cycle, so the on-state peak is
    /// `2·rate`). Requires `rate ≤ 0.5` — beyond that the peak would
    /// exceed one message per step and the mean-load contract breaks.
    pub fn bursty(rate: f64, burst_len: f64) -> Self {
        assert!(burst_len >= 1.0, "bursts last at least one step");
        assert!(
            (0.0..=0.5).contains(&rate),
            "bursty mean rate must be ≤ 0.5 (peak is 2·rate)"
        );
        let rate_on = 2.0 * rate;
        let p = 1.0 / burst_len;
        ArrivalProcess::OnOff {
            rate_on,
            p_on_to_off: p,
            p_off_to_on: p,
        }
    }

    /// Mean offered load in messages per endpoint per flit step.
    pub fn offered_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Bernoulli { rate } => rate,
            ArrivalProcess::OnOff {
                rate_on,
                p_on_to_off,
                p_off_to_on,
            } => {
                let pi_on = p_off_to_on / (p_on_to_off + p_off_to_on);
                rate_on * pi_on
            }
        }
    }

    /// Generates the arrival step times for one endpoint over
    /// `0..window`, driven by `rng`. The on/off chain starts in its
    /// stationary distribution so the window is statistically uniform.
    pub fn arrival_times(&self, window: u64, rng: &mut StdRng) -> Vec<u64> {
        let mut out = Vec::new();
        match *self {
            ArrivalProcess::Bernoulli { rate } => {
                if rate == 0.0 {
                    return out;
                }
                for t in 0..window {
                    if rng.random_bool(rate) {
                        out.push(t);
                    }
                }
            }
            ArrivalProcess::OnOff {
                rate_on,
                p_on_to_off,
                p_off_to_on,
            } => {
                let pi_on = p_off_to_on / (p_on_to_off + p_off_to_on);
                let mut on = rng.random_bool(pi_on);
                for t in 0..window {
                    if on && rate_on > 0.0 && rng.random_bool(rate_on) {
                        out.push(t);
                    }
                    let flip = if on { p_on_to_off } else { p_off_to_on };
                    if flip > 0.0 && rng.random_bool(flip) {
                        on = !on;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bernoulli_rate_matches() {
        let mut rng = StdRng::seed_from_u64(3);
        let times = ArrivalProcess::bernoulli(0.2).arrival_times(50_000, &mut rng);
        let rate = times.len() as f64 / 50_000.0;
        assert!((rate - 0.2).abs() < 0.01, "measured {rate}");
    }

    #[test]
    fn onoff_mean_load_matches_bernoulli() {
        let p = ArrivalProcess::bursty(0.15, 20.0);
        assert!((p.offered_rate() - 0.15).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(4);
        let times = p.arrival_times(200_000, &mut rng);
        let rate = times.len() as f64 / 200_000.0;
        assert!((rate - 0.15).abs() < 0.01, "measured {rate}");
    }

    #[test]
    fn onoff_is_burstier_than_bernoulli() {
        // Compare variance of arrivals per 100-step bin at equal load.
        let bins = |times: &[u64]| {
            let mut v = vec![0u32; 2000];
            for &t in times {
                v[(t / 100) as usize] += 1;
            }
            let mean = v.iter().sum::<u32>() as f64 / v.len() as f64;
            v.iter().map(|&c| (c as f64 - mean).powi(2)).sum::<f64>() / v.len() as f64
        };
        let mut rng = StdRng::seed_from_u64(5);
        let smooth = bins(&ArrivalProcess::bernoulli(0.2).arrival_times(200_000, &mut rng));
        let bursty = bins(&ArrivalProcess::bursty(0.2, 50.0).arrival_times(200_000, &mut rng));
        assert!(
            bursty > 2.0 * smooth,
            "on/off variance {bursty} should dwarf Bernoulli {smooth}"
        );
    }

    #[test]
    fn times_are_strictly_increasing_and_in_window() {
        let mut rng = StdRng::seed_from_u64(6);
        for p in [
            ArrivalProcess::bernoulli(0.5),
            ArrivalProcess::bursty(0.3, 10.0),
        ] {
            let times = p.arrival_times(1000, &mut rng);
            assert!(times.windows(2).all(|w| w[0] < w[1]));
            assert!(times.iter().all(|&t| t < 1000));
        }
    }

    #[test]
    #[should_panic(expected = "peak is 2·rate")]
    fn bursty_rejects_unattainable_mean() {
        ArrivalProcess::bursty(0.6, 10.0);
    }

    #[test]
    fn zero_rate_is_silent() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(ArrivalProcess::bernoulli(0.0)
            .arrival_times(1000, &mut rng)
            .is_empty());
    }
}
