//! Uniform endpoint-indexed view over the network substrates.
//!
//! Synthetic traffic patterns are defined on a dense endpoint space
//! `0..endpoints()`; each substrate maps endpoints onto its own node ids
//! and supplies its canonical oblivious route:
//!
//! * **butterfly** — endpoints are the `n = 2^k` columns; endpoint `s`
//!   injects at input `(s, 0)` and endpoint `d` receives at output
//!   `(d, k)`, connected by the unique greedy path;
//! * **Beneš** — endpoints are the `n = 2^k` terminals; endpoint `s`
//!   injects at level 0 and endpoint `d` receives at level `2k`, routed
//!   through the canonical mid-column `s ^ d`;
//! * **mesh / torus** — endpoints are the nodes, routed dimension-order
//!   (e-cube); tori can opt into the Dally–Seitz dateline discipline
//!   ([`Substrate::torus_with`]), which doubles every physical channel
//!   into a class-0/class-1 edge pair and switches class at each
//!   dimension's dateline, making the routes deadlock-free by
//!   construction;
//! * **hypercube** — endpoints are the nodes, routed e-cube.

use wormhole_topology::benes::BenesNetwork;
use wormhole_topology::butterfly::Butterfly;
use wormhole_topology::graph::{Graph, NodeId};
use wormhole_topology::hypercube::Hypercube;
use wormhole_topology::mesh::{Mesh, RoutingDiscipline};
use wormhole_topology::path::Path;
use wormhole_topology::region::RegionPlan;

/// A network with a dense endpoint space and an oblivious routing function.
#[derive(Clone, Debug)]
pub enum Substrate {
    /// One-pass butterfly; endpoints are columns (inputs ↦ outputs).
    Butterfly(Butterfly),
    /// Beneš network; endpoints are terminals (inputs ↦ outputs).
    Benes(BenesNetwork),
    /// Mesh or torus; endpoints are nodes.
    Mesh(Mesh),
    /// Hypercube; endpoints are nodes.
    Hypercube(Hypercube),
}

impl Substrate {
    /// A `2^k`-input one-pass butterfly.
    pub fn butterfly(k: u32) -> Self {
        Substrate::Butterfly(Butterfly::new(k))
    }

    /// A `2^k`-terminal Beneš network (`2k` edge levels), routed
    /// obliviously: the message from `s` to `d` takes the canonical
    /// mid-column `s ^ d` at the central level, which makes the route a
    /// pure function of the endpoints (like the butterfly's greedy path)
    /// while still spreading distinct destination streams over distinct
    /// middle columns. Like every leveled network, the routing graph is
    /// feedforward — the analytic bound backend accepts it.
    pub fn benes(k: u32) -> Self {
        Substrate::Benes(BenesNetwork::new(k))
    }

    /// A `radix`-ary `dims`-dimensional mesh.
    pub fn mesh(radix: u32, dims: u32) -> Self {
        Substrate::Mesh(Mesh::new(radix, dims, false))
    }

    /// A `radix`-ary `dims`-dimensional torus with naive (single-class)
    /// dimension-order routing — deadlock-prone under wormhole switching.
    pub fn torus(radix: u32, dims: u32) -> Self {
        Self::torus_with(radix, dims, RoutingDiscipline::Naive)
    }

    /// A `radix`-ary `dims`-dimensional torus under an explicit
    /// [`RoutingDiscipline`]: [`RoutingDiscipline::DatelineClasses`]
    /// builds the two-class routing graph and routes with the
    /// per-dimension dateline switch (deadlock-free by construction);
    /// [`RoutingDiscipline::AdaptiveEscape`] adds a third, adaptive VC
    /// lane on every physical channel for per-hop adaptive route
    /// selection (`wormhole_flitsim::config::RouteSelection`), with the
    /// dateline pair serving as its escape network. The canonical
    /// [`Substrate::route`] stays the oblivious dateline route either
    /// way — adaptive runs read only its endpoints.
    pub fn torus_with(radix: u32, dims: u32, discipline: RoutingDiscipline) -> Self {
        Substrate::Mesh(Mesh::new_disciplined(radix, dims, true, discipline))
    }

    /// The underlying [`Mesh`], when this substrate is mesh-based — the
    /// [`wormhole_topology::adaptive::AdaptiveRouter`] implementation an
    /// adaptive simulation runs against.
    pub fn as_mesh(&self) -> Option<&Mesh> {
        match self {
            Substrate::Mesh(m) => Some(m),
            _ => None,
        }
    }

    /// A `2^dim`-node hypercube.
    pub fn hypercube(dim: u32) -> Self {
        Substrate::Hypercube(Hypercube::new(dim))
    }

    /// Number of traffic endpoints.
    pub fn endpoints(&self) -> u32 {
        match self {
            Substrate::Butterfly(bf) => bf.n_inputs(),
            Substrate::Benes(bn) => bn.n(),
            Substrate::Mesh(m) => m.num_nodes(),
            Substrate::Hypercube(h) => h.num_nodes(),
        }
    }

    /// The underlying simulation graph.
    pub fn graph(&self) -> &Graph {
        match self {
            Substrate::Butterfly(bf) => bf.graph(),
            Substrate::Benes(bn) => bn.graph(),
            Substrate::Mesh(m) => m.graph(),
            Substrate::Hypercube(h) => h.graph(),
        }
    }

    /// The routing discipline in force (non-torus substrates are
    /// [`RoutingDiscipline::Naive`]: their canonical routes are already
    /// deadlock-free or the naive arm by definition).
    pub fn discipline(&self) -> RoutingDiscipline {
        match self {
            Substrate::Mesh(m) => m.discipline(),
            _ => RoutingDiscipline::Naive,
        }
    }

    /// The canonical oblivious route between two endpoints under the
    /// substrate's discipline. Empty exactly when the substrate is
    /// node-based and `src == dst` (a butterfly always crosses its `k`
    /// levels, even within one column).
    ///
    /// Panics on out-of-range endpoints — a hard `assert!` even in
    /// release builds, because an out-of-range id on a node-based
    /// substrate would otherwise silently route to the wrong node (this
    /// is a cold path; the check is free in practice).
    pub fn route(&self, src: u32, dst: u32) -> Path {
        assert!(
            src < self.endpoints() && dst < self.endpoints(),
            "endpoint out of range: {src} -> {dst} on {}",
            self.name()
        );
        match self {
            Substrate::Butterfly(bf) => bf.greedy_path(src, dst),
            Substrate::Benes(bn) => bn.path(src, src ^ dst, dst),
            Substrate::Mesh(m) => m.route(NodeId(src), NodeId(dst)),
            Substrate::Hypercube(h) => h.ecube_path(NodeId(src), NodeId(dst)),
        }
    }

    /// The canonical route if it survives `dead`, or an alternative that
    /// does — `None` when every route this substrate can offer crosses a
    /// dead edge.
    ///
    /// Only the Beneš network has oblivious path diversity to spend: it
    /// tries the canonical mid-column `src ^ dst` first, then every
    /// other mid-column in ascending order, and returns the first fully
    /// alive route. The butterfly's input→output path is unique, and the
    /// mesh/torus/hypercube canonical routes are fixed by their
    /// discipline (adaptive runs route around faults per hop *inside*
    /// the simulator instead), so those substrates return the canonical
    /// route or nothing.
    pub fn route_avoiding(&self, src: u32, dst: u32, dead: &[bool]) -> Option<Path> {
        let alive = |p: &Path| p.edges().iter().all(|&e| !dead[e.idx()]);
        match self {
            Substrate::Benes(bn) => {
                let canonical = src ^ dst;
                std::iter::once(canonical)
                    .chain((0..bn.n()).filter(|&mid| mid != canonical))
                    .map(|mid| bn.path(src, mid, dst))
                    .find(alive)
            }
            _ => {
                let p = self.route(src, dst);
                alive(&p).then_some(p)
            }
        }
    }

    /// Whether a `src → dst` pair injects a message. Node-based substrates
    /// skip self-traffic (the route is empty); the butterfly and Beneš
    /// route every pair, including same-terminal ones (the route always
    /// crosses every level).
    pub fn injects(&self, src: u32, dst: u32) -> bool {
        matches!(self, Substrate::Butterfly(_) | Substrate::Benes(_)) || src != dst
    }

    /// A [`RegionPlan`] with (at most) `k` regions whose cuts respect
    /// this substrate's geometry, for the partitioned parallel engine
    /// (`wormhole_flitsim::config::Engine::Parallel`):
    ///
    /// * **mesh / torus** — region boundaries fall on whole coordinate
    ///   planes of the last (highest-stride) dimension, so each region
    ///   is a slab and only the slab-face channels (plus wraparound on
    ///   tori) cross the cut;
    /// * **butterfly / Beneš** — boundaries fall on whole levels
    ///   (node ids are level-major), so regions are stage groups and
    ///   only inter-stage channels cross;
    /// * **hypercube** — plain contiguous index ranges (halving the id
    ///   range splits on the top address bit, i.e. into subcubes).
    ///
    /// `k` is clamped to the number of alignable blocks; the plan is
    /// never empty. Alignment only shapes the cut — any plan is correct,
    /// aligned plans just minimize cross-region traffic.
    pub fn region_plan(&self, k: u32) -> RegionPlan {
        let g = self.graph();
        let align = match self {
            Substrate::Butterfly(bf) => bf.n_inputs(),
            Substrate::Benes(bn) => bn.n(),
            Substrate::Mesh(m) => m.num_nodes() / m.radix(),
            Substrate::Hypercube(_) => 1,
        };
        RegionPlan::contiguous_aligned(g, k, align)
    }

    /// Short human-readable name for tables.
    pub fn name(&self) -> String {
        match self {
            Substrate::Butterfly(bf) => format!("butterfly(n={})", bf.n_inputs()),
            Substrate::Benes(bn) => format!("benes(n={})", bn.n()),
            Substrate::Mesh(m) if m.wraps() && m.classes() > 1 => {
                format!(
                    "torus({}^{},{})",
                    m.radix(),
                    m.dims(),
                    m.discipline().name()
                )
            }
            Substrate::Mesh(m) if m.wraps() => {
                format!("torus({}^{})", m.radix(), m.dims())
            }
            Substrate::Mesh(m) => format!("mesh({}^{})", m.radix(), m.dims()),
            Substrate::Hypercube(h) => format!("hypercube(2^{})", h.dim()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_counts() {
        assert_eq!(Substrate::butterfly(4).endpoints(), 16);
        assert_eq!(Substrate::benes(3).endpoints(), 8);
        assert_eq!(Substrate::mesh(4, 2).endpoints(), 16);
        assert_eq!(Substrate::torus(3, 3).endpoints(), 27);
        assert_eq!(Substrate::hypercube(5).endpoints(), 32);
    }

    #[test]
    fn routes_are_valid_paths() {
        for s in [
            Substrate::butterfly(3),
            Substrate::benes(2),
            Substrate::mesh(3, 2),
            Substrate::torus(4, 2),
            Substrate::torus_with(4, 2, RoutingDiscipline::DatelineClasses),
            Substrate::torus_with(4, 2, RoutingDiscipline::AdaptiveEscape),
            Substrate::hypercube(3),
        ] {
            let n = s.endpoints();
            for src in 0..n {
                for dst in 0..n {
                    if !s.injects(src, dst) {
                        continue;
                    }
                    let p = s.route(src, dst);
                    assert!(!p.is_empty(), "{}: {src}->{dst} empty", s.name());
                    p.validate(s.graph()).unwrap();
                }
            }
        }
    }

    #[test]
    fn region_plans_respect_geometry() {
        // Butterfly stages: k=3 → 16 nodes in 4 levels of 4; a 2-region
        // plan cuts between levels, so only one level's out-channels
        // (2·n_inputs wires after class-free dedup = 8 edges) cross.
        let bf = Substrate::butterfly(2);
        let p = bf.region_plan(2);
        assert_eq!(p.num_regions(), 2);
        assert_eq!(p.lookahead(), 1);
        assert_eq!(p.cross_edges(), 2 * bf.endpoints() as u64);
        // Torus slabs: 4x4 with k=4 → one row per region; every edge in
        // the first dimension stays inside its slab.
        let t = Substrate::torus_with(4, 2, RoutingDiscipline::DatelineClasses);
        let p = t.region_plan(4);
        assert_eq!(p.num_regions(), 4);
        // k beyond the alignable block count clamps instead of panicking.
        let p = t.region_plan(64);
        assert_eq!(p.num_regions(), 4);
        // Hypercube halves are subcubes.
        let p = Substrate::hypercube(4).region_plan(2);
        assert_eq!(p.num_regions(), 2);
        assert_eq!(p.node_regions()[7], 0);
        assert_eq!(p.node_regions()[8], 1);
    }

    #[test]
    fn butterfly_routes_self_traffic_mesh_does_not() {
        let bf = Substrate::butterfly(3);
        assert!(bf.injects(2, 2));
        assert_eq!(bf.route(2, 2).len(), 3);
        let m = Substrate::mesh(3, 2);
        assert!(!m.injects(4, 4));
    }

    #[test]
    fn benes_routes_connect_terminals_and_feedforward() {
        let s = Substrate::benes(3);
        let Substrate::Benes(bn) = &s else {
            unreachable!()
        };
        let g = s.graph();
        assert!(g.is_feedforward());
        for src in 0..8 {
            for dst in 0..8 {
                assert!(s.injects(src, dst), "Beneš routes every pair");
                let p = s.route(src, dst);
                assert_eq!(p.len(), 6, "2k edge levels");
                assert_eq!(p.src(g), bn.input(src));
                assert_eq!(p.dst(g), bn.output(dst));
            }
        }
    }

    #[test]
    fn names_render() {
        assert_eq!(Substrate::butterfly(3).name(), "butterfly(n=8)");
        assert_eq!(Substrate::benes(3).name(), "benes(n=8)");
        assert_eq!(Substrate::mesh(4, 2).name(), "mesh(4^2)");
        assert_eq!(Substrate::torus(4, 2).name(), "torus(4^2)");
        assert_eq!(
            Substrate::torus_with(4, 2, RoutingDiscipline::DatelineClasses).name(),
            "torus(4^2,dateline)"
        );
        assert_eq!(
            Substrate::torus_with(4, 2, RoutingDiscipline::AdaptiveEscape).name(),
            "torus(4^2,adaptive)"
        );
        assert_eq!(Substrate::hypercube(4).name(), "hypercube(2^4)");
    }

    #[test]
    fn as_mesh_exposes_the_adaptive_router() {
        let s = Substrate::torus_with(4, 2, RoutingDiscipline::AdaptiveEscape);
        let m = s.as_mesh().expect("torus is mesh-based");
        assert_eq!(m.discipline(), RoutingDiscipline::AdaptiveEscape);
        assert!(Substrate::butterfly(3).as_mesh().is_none());
    }

    #[test]
    fn discipline_is_exposed() {
        assert_eq!(
            Substrate::torus(4, 2).discipline(),
            RoutingDiscipline::Naive
        );
        assert_eq!(
            Substrate::torus_with(4, 2, RoutingDiscipline::DatelineClasses).discipline(),
            RoutingDiscipline::DatelineClasses
        );
        assert_eq!(
            Substrate::butterfly(3).discipline(),
            RoutingDiscipline::Naive
        );
    }

    #[test]
    fn dateline_torus_routes_switch_class_on_wrap() {
        let s = Substrate::torus_with(8, 1, RoutingDiscipline::DatelineClasses);
        let Substrate::Mesh(m) = &s else {
            unreachable!()
        };
        let p = s.route(6, 1); // crosses the wrap edge 7 -> 0
        assert_eq!(p.len(), 3);
        let classes: Vec<u32> = p.edges().iter().map(|&e| m.edge_vc_class(e)).collect();
        assert_eq!(classes, vec![0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "endpoint out of range")]
    fn out_of_range_endpoint_panics_in_release_too() {
        Substrate::torus(4, 2).route(0, 16);
    }

    #[test]
    fn benes_reroutes_around_dead_edges_butterfly_cannot() {
        let bn = Substrate::benes(3);
        let g = bn.graph();
        let canonical = bn.route(2, 5);
        let mut dead = vec![false; g.num_edges()];
        // With no faults the canonical mid-column route comes back.
        assert_eq!(bn.route_avoiding(2, 5, &dead), Some(canonical.clone()));
        // Kill one canonical edge: the detour must avoid it, keep the
        // endpoints, and still be a valid path.
        dead[canonical.edges()[2].idx()] = true;
        let detour = bn.route_avoiding(2, 5, &dead).expect("Beneš has diversity");
        assert!(detour.edges().iter().all(|&e| !dead[e.idx()]));
        assert_eq!(detour.src(g), canonical.src(g));
        assert_eq!(detour.dst(g), canonical.dst(g));
        detour.validate(g).unwrap();

        // The butterfly's unique path has nothing to fall back on.
        let bf = Substrate::butterfly(3);
        let p = bf.route(2, 5);
        let mut dead = vec![false; bf.graph().num_edges()];
        dead[p.edges()[1].idx()] = true;
        assert_eq!(bf.route_avoiding(2, 5, &dead), None);
        assert!(
            bf.route_avoiding(1, 0, &dead).is_some(),
            "others unaffected"
        );
    }
}
