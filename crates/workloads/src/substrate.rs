//! Uniform endpoint-indexed view over the network substrates.
//!
//! Synthetic traffic patterns are defined on a dense endpoint space
//! `0..endpoints()`; each substrate maps endpoints onto its own node ids
//! and supplies its canonical oblivious route:
//!
//! * **butterfly** — endpoints are the `n = 2^k` columns; endpoint `s`
//!   injects at input `(s, 0)` and endpoint `d` receives at output
//!   `(d, k)`, connected by the unique greedy path;
//! * **mesh / torus** — endpoints are the nodes, routed dimension-order
//!   (e-cube);
//! * **hypercube** — endpoints are the nodes, routed e-cube.

use wormhole_topology::butterfly::Butterfly;
use wormhole_topology::graph::{Graph, NodeId};
use wormhole_topology::hypercube::Hypercube;
use wormhole_topology::mesh::Mesh;
use wormhole_topology::path::Path;

/// A network with a dense endpoint space and an oblivious routing function.
#[derive(Clone, Debug)]
pub enum Substrate {
    /// One-pass butterfly; endpoints are columns (inputs ↦ outputs).
    Butterfly(Butterfly),
    /// Mesh or torus; endpoints are nodes.
    Mesh(Mesh),
    /// Hypercube; endpoints are nodes.
    Hypercube(Hypercube),
}

impl Substrate {
    /// A `2^k`-input one-pass butterfly.
    pub fn butterfly(k: u32) -> Self {
        Substrate::Butterfly(Butterfly::new(k))
    }

    /// A `radix`-ary `dims`-dimensional mesh.
    pub fn mesh(radix: u32, dims: u32) -> Self {
        Substrate::Mesh(Mesh::new(radix, dims, false))
    }

    /// A `radix`-ary `dims`-dimensional torus.
    pub fn torus(radix: u32, dims: u32) -> Self {
        Substrate::Mesh(Mesh::new(radix, dims, true))
    }

    /// A `2^dim`-node hypercube.
    pub fn hypercube(dim: u32) -> Self {
        Substrate::Hypercube(Hypercube::new(dim))
    }

    /// Number of traffic endpoints.
    pub fn endpoints(&self) -> u32 {
        match self {
            Substrate::Butterfly(bf) => bf.n_inputs(),
            Substrate::Mesh(m) => m.num_nodes(),
            Substrate::Hypercube(h) => h.num_nodes(),
        }
    }

    /// The underlying simulation graph.
    pub fn graph(&self) -> &Graph {
        match self {
            Substrate::Butterfly(bf) => bf.graph(),
            Substrate::Mesh(m) => m.graph(),
            Substrate::Hypercube(h) => h.graph(),
        }
    }

    /// The canonical oblivious route between two endpoints. Empty exactly
    /// when the substrate is node-based and `src == dst` (a butterfly
    /// always crosses its `k` levels, even within one column).
    pub fn route(&self, src: u32, dst: u32) -> Path {
        debug_assert!(src < self.endpoints() && dst < self.endpoints());
        match self {
            Substrate::Butterfly(bf) => bf.greedy_path(src, dst),
            Substrate::Mesh(m) => m.dimension_order_path(NodeId(src), NodeId(dst)),
            Substrate::Hypercube(h) => h.ecube_path(NodeId(src), NodeId(dst)),
        }
    }

    /// Whether a `src → dst` pair injects a message. Node-based substrates
    /// skip self-traffic (the route is empty); the butterfly routes every
    /// pair, including same-column ones.
    pub fn injects(&self, src: u32, dst: u32) -> bool {
        matches!(self, Substrate::Butterfly(_)) || src != dst
    }

    /// Short human-readable name for tables.
    pub fn name(&self) -> String {
        match self {
            Substrate::Butterfly(bf) => format!("butterfly(n={})", bf.n_inputs()),
            Substrate::Mesh(m) if m.wraps() => {
                format!("torus({}^{})", m.radix(), m.dims())
            }
            Substrate::Mesh(m) => format!("mesh({}^{})", m.radix(), m.dims()),
            Substrate::Hypercube(h) => format!("hypercube(2^{})", h.dim()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_counts() {
        assert_eq!(Substrate::butterfly(4).endpoints(), 16);
        assert_eq!(Substrate::mesh(4, 2).endpoints(), 16);
        assert_eq!(Substrate::torus(3, 3).endpoints(), 27);
        assert_eq!(Substrate::hypercube(5).endpoints(), 32);
    }

    #[test]
    fn routes_are_valid_paths() {
        for s in [
            Substrate::butterfly(3),
            Substrate::mesh(3, 2),
            Substrate::torus(4, 2),
            Substrate::hypercube(3),
        ] {
            let n = s.endpoints();
            for src in 0..n {
                for dst in 0..n {
                    if !s.injects(src, dst) {
                        continue;
                    }
                    let p = s.route(src, dst);
                    assert!(!p.is_empty(), "{}: {src}->{dst} empty", s.name());
                    p.validate(s.graph()).unwrap();
                }
            }
        }
    }

    #[test]
    fn butterfly_routes_self_traffic_mesh_does_not() {
        let bf = Substrate::butterfly(3);
        assert!(bf.injects(2, 2));
        assert_eq!(bf.route(2, 2).len(), 3);
        let m = Substrate::mesh(3, 2);
        assert!(!m.injects(4, 4));
    }

    #[test]
    fn names_render() {
        assert_eq!(Substrate::butterfly(3).name(), "butterfly(n=8)");
        assert_eq!(Substrate::mesh(4, 2).name(), "mesh(4^2)");
        assert_eq!(Substrate::torus(4, 2).name(), "torus(4^2)");
        assert_eq!(Substrate::hypercube(4).name(), "hypercube(2^4)");
    }
}
