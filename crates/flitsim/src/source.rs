//! Pull-based traffic sources: the simulator's injection interface.
//!
//! Historically every runner took a pre-generated `&[MessageSpec]` slice,
//! hard-coding the open-loop assumption that injection can never react to
//! what the network delivers. [`TrafficSource`] inverts the interface:
//! the simulator *pulls* messages from the source as virtual time
//! advances and *notifies* it of every delivery, so a source can throttle
//! injection on congestion (closed-loop clients), stream a trace larger
//! than RAM, or synthesize traffic on the fly.
//!
//! # Contract
//!
//! A source hands out messages tagged with **source-assigned ids**. Ids
//! index the [`SimResult::messages`](crate::stats::SimResult::messages)
//! vector, must be unique over the run, and should be dense (the
//! simulator sizes per-message state by the largest id seen). The driver
//! loop interacts with the source under these rules, identical for both
//! engines:
//!
//! * [`take_ready`](TrafficSource::take_ready)`(now)` is called once per
//!   simulated step (and after every idle jump) and must emit every
//!   message with `release ≤ now` that has not been emitted yet, in
//!   ascending `(release, id)` order — the admission order the legacy
//!   stepper has always used, and part of the bit-identity contract.
//! * [`next_release`](TrafficSource::next_release)`(now)` peeks the
//!   earliest release time of any message the source currently knows
//!   about (it may be `≤ now` if not yet taken). `None` means the source
//!   is dry *given what it has seen*: with no active worms left in the
//!   network the run is complete. Idle networks jump straight to the
//!   returned time, so an understated value costs time, an overstated
//!   one skips releases.
//! * [`on_delivered`](TrafficSource::on_delivered) /
//!   [`on_discarded`](TrafficSource::on_discarded) close the loop. The
//!   simulator buffers the step's completions and flushes them in
//!   ascending `(time, id)` order *before* the next `next_release` /
//!   `take_ready` interaction, so the callback order is canonical and
//!   engine-independent — a reactive source fed by the event-driven
//!   engine sees exactly the sequence the legacy stepper would produce.
//! * [`reactive`](TrafficSource::reactive) must return `true` if
//!   deliveries can spawn new releases. The event engine then disables
//!   its batched fast-forwards (a batch could run past a release spawned
//!   mid-batch) while keeping park/wake and the idle-network jump, both
//!   of which remain exact.
//!
//! # Replay equivalence
//!
//! [`ReplaySource`] adapts any `Vec<MessageSpec>` to the pull interface.
//! Ids are the original vector indices and emission follows `(release,
//! id)` order, so `run(graph, &specs, cfg)` — which routes through a
//! `ReplaySource` internally — is **bit-identical** to the historical
//! slice path: same admissions, same arbitration tie-breaks, same
//! `SimResult`, message for message. The differential proptests in
//! `tests/proptest_source_equiv.rs` enforce this on both engines.

use crate::message::MessageSpec;

/// A pull-based message stream driving a simulation run. See the module
/// docs for the full contract.
pub trait TrafficSource {
    /// Earliest release time of any not-yet-emitted message the source
    /// currently knows about, or `None` if it is dry. May be `≤ now`
    /// (a ready message not yet taken). Must not change between calls
    /// unless a `take_ready` or delivery notification intervened.
    fn next_release(&mut self, now: u64) -> Option<u64>;

    /// Appends every not-yet-emitted message with `release ≤ now` to
    /// `out` as `(id, spec)` pairs, in ascending `(release, id)` order.
    fn take_ready(&mut self, now: u64, out: &mut Vec<(u32, MessageSpec)>);

    /// Notification that message `id` finished at end-of-step time
    /// `finished`. Flushed in canonical `(finished, id)` order.
    fn on_delivered(&mut self, _id: u32, _finished: u64) {}

    /// Notification that message `id` was discarded during step `t`
    /// (under [`crate::config::BlockedPolicy::Discard`]).
    fn on_discarded(&mut self, _id: u32, _t: u64) {}

    /// Whether deliveries can spawn new releases. `true` disables the
    /// event engine's batched fast-forwards (park/wake and idle jumps
    /// stay on). Defaults to `false` (open-loop).
    fn reactive(&self) -> bool {
        false
    }

    /// If `Some(n)`, the run's `SimResult::messages` is padded with
    /// default outcomes to length `n` — so a capped replay still reports
    /// one outcome per input spec, released or not, exactly like the
    /// historical slice path.
    fn id_bound(&self) -> Option<u32> {
        None
    }
}

/// Adapts a pre-generated spec vector to the [`TrafficSource`] pull
/// interface: the open-loop path, required bit-identical to the
/// historical slice API (ids are the vector indices; emission follows
/// `(release, id)` order).
pub struct ReplaySource {
    /// Spec per id; taken (moved out) on emission.
    slots: Vec<Option<MessageSpec>>,
    /// Ids sorted by `(release, id)` — the admission order.
    order: Vec<u32>,
    cursor: usize,
}

impl ReplaySource {
    /// Wraps an owned spec vector. Ids are the vector indices.
    pub fn new(specs: Vec<MessageSpec>) -> Self {
        let mut order: Vec<u32> = (0..specs.len() as u32).collect();
        order.sort_by_key(|&i| (specs[i as usize].release, i));
        Self {
            slots: specs.into_iter().map(Some).collect(),
            order,
            cursor: 0,
        }
    }

    /// Wraps a borrowed slice (one clone; the simulation dominates).
    pub fn from_slice(specs: &[MessageSpec]) -> Self {
        Self::new(specs.to_vec())
    }

    /// Number of messages this source replays.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the source replays no messages at all.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

impl TrafficSource for ReplaySource {
    fn next_release(&mut self, _now: u64) -> Option<u64> {
        self.order.get(self.cursor).map(|&i| {
            self.slots[i as usize]
                .as_ref()
                .expect("unemitted slot is populated")
                .release
        })
    }

    fn take_ready(&mut self, now: u64, out: &mut Vec<(u32, MessageSpec)>) {
        while let Some(&i) = self.order.get(self.cursor) {
            let mi = i as usize;
            if self.slots[mi].as_ref().expect("unemitted slot").release > now {
                break;
            }
            out.push((i, self.slots[mi].take().expect("emitted once")));
            self.cursor += 1;
        }
    }

    fn id_bound(&self) -> Option<u32> {
        Some(self.slots.len() as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormhole_topology::graph::{GraphBuilder, NodeId};
    use wormhole_topology::path::Path;

    fn spec(release: u64) -> MessageSpec {
        let mut b = GraphBuilder::new(2);
        let e = b.add_edge(NodeId(0), NodeId(1));
        let _ = b.build();
        MessageSpec::new(Path::new(vec![e]), 2).release_at(release)
    }

    #[test]
    fn replay_emits_in_release_id_order() {
        // Unsorted input: emission must follow (release, id), ids keep
        // their original indices.
        let mut src = ReplaySource::new(vec![spec(5), spec(0), spec(5), spec(2)]);
        assert_eq!(src.id_bound(), Some(4));
        assert_eq!(src.next_release(0), Some(0));
        let mut out = Vec::new();
        src.take_ready(2, &mut out);
        let ids: Vec<u32> = out.iter().map(|(i, _)| *i).collect();
        assert_eq!(ids, vec![1, 3]);
        assert_eq!(src.next_release(2), Some(5));
        out.clear();
        src.take_ready(100, &mut out);
        let ids: Vec<u32> = out.iter().map(|(i, _)| *i).collect();
        assert_eq!(ids, vec![0, 2], "same release ties break by id");
        assert_eq!(src.next_release(100), None);
    }

    #[test]
    fn replay_take_before_release_is_empty() {
        let mut src = ReplaySource::new(vec![spec(10)]);
        let mut out = Vec::new();
        src.take_ready(9, &mut out);
        assert!(out.is_empty());
        assert_eq!(src.next_release(9), Some(10));
    }

    #[test]
    fn empty_replay_is_dry() {
        let mut src = ReplaySource::new(Vec::new());
        assert_eq!(src.next_release(0), None);
        assert!(src.is_empty());
        assert_eq!(src.len(), 0);
    }
}
