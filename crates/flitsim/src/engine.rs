//! The event-driven full-bandwidth engine.
//!
//! Drives the same simulation state as the legacy stepper in
//! [`crate::wormhole`] but does per-step work proportional to the worms
//! that can actually *do* something this step:
//!
//! * **Wait-queue wakeups** — a worm that loses arbitration parks on an
//!   intrusive per-edge waiter list (`waiter_head` / `next_waiter`, both
//!   flat arrays) and is reconsidered only when that edge releases a VC.
//!   While parked it costs nothing; its stalls are settled arithmetically
//!   on wakeup (`stalls += wake − park`), because a parked worm's edge
//!   provably stays full for the whole interval (see the invariants in
//!   the [`crate::wormhole`] module docs), so the legacy stepper would
//!   have lost the same arbitration at every one of those steps.
//! * **Contention-free fast-forward** — when nothing is parked and the
//!   runnable set provably cannot interact before the next release —
//!   either every worm is draining into its delivery buffer (drains only
//!   ever *decrement* holder counts, which commutes), or the worms'
//!   paths are pairwise edge- and source-router-disjoint (checked with
//!   epoch-stamped per-edge/per-router scratch and memoized until the
//!   membership changes; router-disjointness keeps the per-router
//!   occupancy samples behind `max_pool_in_use` engine-exact) — each
//!   worm free-runs independently to `min(next release, step cap, its
//!   finish)`: header steps in a tight `O(1)`-per-advance loop, and the
//!   deterministic drain phase (`finish at advance = hops + L − 1`)
//!   collapsed to a closed form by [`Sim::fast_drain`]. A fully idle
//!   network jumps straight to the next message release. Fast-forwards
//!   never cross a release time or the step cap, so every arbitration
//!   decision — and every release-at-`t`-visible-at-`t+1` boundary —
//!   still happens at its exact legacy step.
//!
//! Near saturation this turns the `O(active)` per-step rescan (where
//! `active` includes the entire source-queued backlog) into
//! `O(runnable + wakeups)`; at low load it replaces per-step stepping
//! with per-*event* work (one `O(1)` update per flit advance, `O(path)`
//! per drain).

use crate::config::BlockedPolicy;
use crate::events::DeadlockReport;
use crate::stats::Outcome;
use crate::wormhole::Sim;

const NONE: u32 = u32::MAX;

struct EventState {
    /// Head of the waiter list per wait key (`NONE` = empty). The key is
    /// the wanted **edge** under the static VC policy and the wanted
    /// edge's **source router** under [`VcPolicy::RouterPooled`]
    /// ([`Sim::wait_key`]): pooling lets a release on any sibling edge
    /// return shared credit, so every waiter of the router must be
    /// reconsidered — the pool-release wakeup rule.
    ///
    /// [`VcPolicy::RouterPooled`]: crate::config::VcPolicy::RouterPooled
    waiter_head: Vec<u32>,
    /// Next waiter per message (intrusive list through the parked set).
    next_waiter: Vec<u32>,
    /// Step at which each parked worm lost its arbitration.
    parked_at: Vec<u64>,
    parked: Vec<bool>,
    /// Released, unretired, unparked worms — the per-step working set.
    runnable: Vec<u32>,
    n_parked: usize,
    /// Memoized "runnable paths are pairwise edge- and
    /// source-router-disjoint" verdict; invalidated whenever the
    /// runnable membership changes.
    indep_cached: Option<bool>,
    /// Epoch-stamped per-edge scratch for the disjointness check.
    edge_mark: Vec<u64>,
    /// Epoch-stamped per-router scratch for the disjointness check
    /// (edge-disjoint worms can still share a source router's pool
    /// counters).
    node_mark: Vec<u64>,
    mark_epoch: u64,
}

impl EventState {
    /// Released-and-unretired message count (the legacy `active` size).
    #[inline]
    fn n_active(&self) -> usize {
        self.runnable.len() + self.n_parked
    }

    /// Grows the per-message arrays to cover `n` ids — admission lands
    /// mid-run under a pull source, so the arrays track the sim's.
    fn grow(&mut self, n: usize) {
        if self.next_waiter.len() < n {
            self.next_waiter.resize(n, NONE);
            self.parked_at.resize(n, 0);
            self.parked.resize(n, false);
        }
    }
}

/// Runs the event-driven loop to completion. Returns `(outcome, final
/// step, deadlock report)` exactly as the legacy driver would.
pub(crate) fn drive(sim: &mut Sim) -> (Outcome, u64, Option<DeadlockReport>) {
    let n_wait_keys = if sim.pooled {
        sim.num_nodes()
    } else {
        sim.num_edges
    };
    let mut st = EventState {
        waiter_head: vec![NONE; n_wait_keys],
        next_waiter: Vec::new(),
        parked_at: Vec::new(),
        parked: Vec::new(),
        runnable: Vec::new(),
        n_parked: 0,
        indep_cached: Some(true), // empty set is trivially disjoint
        edge_mark: vec![0; sim.num_edges],
        node_mark: vec![0; sim.num_nodes()],
        mark_epoch: 0,
    };
    let mut t: u64 = 0;
    loop {
        // Idle network: the run is over iff the source (with every
        // completion flushed) is dry; otherwise jump to the next release
        // — never past the cap. With worms in flight, only the cap ends
        // the run early (settling parked stalls through the last
        // simulated step, as the legacy per-step counting would).
        if st.runnable.is_empty() && st.n_parked == 0 {
            match sim.peek_next_release(t) {
                None => return (Outcome::Completed, t, None),
                Some(r) => {
                    if t >= sim.config.max_steps {
                        return (Outcome::MaxSteps, t, None);
                    }
                    if r >= sim.config.max_steps {
                        return (Outcome::MaxSteps, sim.config.max_steps, None);
                    }
                    t = t.max(r);
                }
            }
        } else if t >= sim.config.max_steps {
            top_up_stalls(sim, &mut st, sim.config.max_steps.saturating_sub(1));
            return (Outcome::MaxSteps, t, None);
        }
        // Kills scheduled at `t` take effect at the start of the step,
        // before admissions — exactly as in the legacy driver. A severed
        // parked worm is discarded in place: unflag it (its waiter-list
        // entry goes stale; the wake loops skip unflagged entries) and
        // settle the stalls the legacy stepper counted through `t − 1`.
        // The discards' VC releases then wake the affected wait keys so
        // unblocked worms contend at `t` itself — a kill discard lands at
        // step start, so its releases follow the release-at-`t−1` rule.
        if sim.faulted() && sim.next_kill_time() <= t {
            sim.released.clear();
            sim.apply_kills(t);
            if st.n_parked > 0 {
                for mi in 0..st.parked.len() {
                    if st.parked[mi] && sim.outcomes[mi].discarded.is_some() {
                        st.parked[mi] = false;
                        st.n_parked -= 1;
                        sim.outcomes[mi].stalls += (t - 1) - st.parked_at[mi];
                    }
                }
                for i in 0..sim.released.len() {
                    let key = sim.wait_key(sim.released[i] as usize);
                    wake_at_step_start(sim, &mut st, key, t);
                }
                if st.n_parked == 0 {
                    sim.track_releases = false;
                }
            }
            let before = st.runnable.len();
            let outcomes = &sim.outcomes;
            st.runnable
                .retain(|&m| outcomes[m as usize].discarded.is_none());
            if st.runnable.len() != before {
                st.indep_cached = None;
            }
        }
        let new = sim.admit_ready(t);
        if !new.is_empty() {
            for i in new {
                let m = sim.admitted_id(i);
                // Skip messages discarded at admission (dead-on-arrival).
                if sim.outcomes[m as usize].discarded.is_none() {
                    st.runnable.push(m);
                }
            }
            st.grow(sim.specs.len());
            st.indep_cached = None;
        }
        if st.runnable.is_empty() {
            if st.n_parked == 0 {
                // Kills (or dead-on-arrival admissions) emptied the
                // network; the next iteration's idle handling jumps to
                // the next release or ends the run — the legacy stepper
                // burns a movement-free step here, which no reported
                // field observes.
                continue;
            }
            // Every released worm is parked on a full edge; releases only
            // come from moves, so nothing will ever move again. This is
            // the same step at which the legacy stepper's no-movement test
            // fires (parking is impossible under Discard, so the policy is
            // necessarily Stall here).
            debug_assert_eq!(sim.config.blocked, BlockedPolicy::Stall);
            return deadlock(sim, &mut st, t);
        }
        // Contention-free fast-forward. Only sound while nothing is
        // parked: parked worms observe releases, and a free-running worm
        // could otherwise collide with a parked worm's held edges.
        // Adaptive runs keep the all-draining jump (arrived worms make
        // no further route decisions, and drains only decrement holder
        // counts) but drop the disjoint-paths one: a pending worm's next
        // hop reads *other* worms' occupancies, so path disjointness no
        // longer implies non-interaction. Pooled runs drop it for the
        // analogous reason — edge-disjoint worms still compete for a
        // shared router pool — while the all-draining jump stays exact
        // (drains only return capacity, which commutes). Reactive
        // sources drop batching entirely: a delivery inside the batch
        // could spawn a release before the precomputed stop point.
        if st.n_parked == 0
            && !sim.reactive
            && (all_draining(sim, &st)
                || (sim.adaptive.is_none() && !sim.pooled && independent(sim, &mut st)))
            && ff_batch(sim, &mut st, &mut t)
        {
            continue;
        }
        let moved = step(sim, &mut st, t);
        if !moved && st.n_active() > 0 && sim.config.blocked == BlockedPolicy::Stall {
            return deadlock(sim, &mut st, t);
        }
        if sim.config.check_invariants {
            validate(sim, &st);
        }
        t += 1;
    }
}

/// One full-bandwidth step over the runnable set. Mirrors the legacy
/// stepper's classify → arbitrate → apply phases, then parks losers and
/// wakes the waiters of every wait key that released capacity.
fn step(sim: &mut Sim, st: &mut EventState, t: u64) -> bool {
    sim.movers.clear();
    sim.blocked.clear();
    sim.buckets.clear();
    sim.doomed.clear();
    sim.released.clear();
    // Classify. Parked worms are exactly the contenders of non-acquirable
    // edges, so leaving them out changes no arbitration outcome (such an
    // edge blocks every contender regardless). Pending adaptive worms
    // select their wanted hop inside classify — they are never parked, so
    // they re-select here every step exactly like the legacy stepper.
    for i in 0..st.runnable.len() {
        let m = st.runnable[i];
        sim.classify(m);
    }
    // Arbitrate on start-of-step holder counts (the canonical shared
    // phase-2 — including the pooled ascending-edge-id credit grants).
    sim.arbitrate(t);
    // Apply. Doomed worms (pending, with a severed escape continuation)
    // are discarded here — after arbitration, exactly as in the legacy
    // stepper — so their releases land mid-step and wake waiters below.
    let moved = !sim.movers.is_empty();
    for i in 0..sim.movers.len() {
        let m = sim.movers[i];
        sim.apply_advance(m, t);
    }
    for i in 0..sim.doomed.len() {
        let m = sim.doomed[i];
        sim.discard(m, t, crate::stats::DiscardReason::LinkDown);
    }
    // Losers stall, then discard or park. Parking checks the *end-of-step*
    // acquirability: if this step's releases already freed capacity on
    // the wanted edge, the worm stays runnable and re-contends at `t+1`,
    // exactly as the legacy stepper would. *Pending* adaptive worms
    // never park: their wanted edge is a fresh occupancy-dependent
    // selection each step, so no single edge's release is the unique
    // wake condition — they stay runnable and re-classify like the
    // legacy stepper. A frozen-route adaptive worm (arrived or committed
    // to its escape tail) wants the same fixed edge every step, exactly
    // like an oblivious worm, so it parks normally — keyed by the edge
    // (static) or its source router (pooled; see `Sim::wait_key`).
    for i in 0..sim.blocked.len() {
        let m = sim.blocked[i];
        sim.outcomes[m as usize].stalls += 1;
        if sim.config.blocked == BlockedPolicy::Discard {
            sim.discard(m, t, crate::stats::DiscardReason::Delay);
        } else if !sim.worms[m as usize].pending_route {
            let e = sim.path_edge(m, sim.worms[m as usize].advance + 1);
            if !sim.edge_acquirable(e) {
                let key = sim.wait_key(e);
                park(sim, st, m, key, t);
            }
        }
    }
    // Wake the waiters of every wait key that released capacity this
    // step — the edge itself, or under pooling its source router (a
    // sibling edge's release can return shared credit to every edge of
    // the router). Woken worms contend from `t+1` (release at `t` is
    // visible at `t+1`); a waiter whose edge is still blocked just loses
    // again and re-parks, exactly as the legacy stepper would count it.
    for i in 0..sim.released.len() {
        let key = sim.wait_key(sim.released[i] as usize);
        wake_all(sim, st, key, t);
    }
    // Retire finished, discarded, and freshly parked worms.
    let before = st.runnable.len();
    let worms = &sim.worms;
    let outcomes = &sim.outcomes;
    let parked = &st.parked;
    st.runnable.retain(|&m| {
        !worms[m as usize].done() && outcomes[m as usize].discarded.is_none() && !parked[m as usize]
    });
    if st.runnable.len() != before {
        st.indep_cached = None;
    }
    sim.settle_max_vcs();
    // A fault discard is progress for the deadlock test: it released VCs
    // mid-step, so blocked worms may advance at `t+1`.
    moved || !sim.doomed.is_empty()
}

fn park(sim: &mut Sim, st: &mut EventState, m: u32, key: usize, t: u64) {
    let mi = m as usize;
    st.next_waiter[mi] = st.waiter_head[key];
    st.waiter_head[key] = m;
    st.parked[mi] = true;
    st.parked_at[mi] = t;
    st.n_parked += 1;
    st.indep_cached = None;
    sim.track_releases = true;
}

/// Unparks every waiter of wait key `key` (an edge, or a router under
/// pooling), settling their arithmetic stalls. A worm parked earlier
/// this same step is still in `runnable` and is only unflagged. Repeated
/// calls for one key in one step are cheap no-ops (the list is taken).
fn wake_all(sim: &mut Sim, st: &mut EventState, key: usize, t: u64) {
    let mut m = st.waiter_head[key];
    st.waiter_head[key] = NONE;
    while m != NONE {
        let mi = m as usize;
        let next = std::mem::replace(&mut st.next_waiter[mi], NONE);
        // An unflagged entry is stale: the worm was discarded by a fault
        // kill while parked (unlinked lazily — see the kill hook in
        // `drive`). Skip it; its stalls were settled at discard time.
        if st.parked[mi] {
            st.parked[mi] = false;
            st.n_parked -= 1;
            sim.outcomes[mi].stalls += t - st.parked_at[mi];
            if st.parked_at[mi] < t {
                st.runnable.push(m);
            }
            st.indep_cached = None;
        }
        m = next;
    }
    if st.n_parked == 0 {
        sim.track_releases = false;
    }
}

/// Kill-hook variant of [`wake_all`]: runs at the **start** of step `t`
/// (before classification), so woken worms contend at `t` itself — a
/// kill discard's releases behave like releases during `t − 1`. Stalls
/// settle through `t − 1`: the legacy stepper counts no stall at `t` for
/// a worm that re-contends at `t`. Every parked worm here parked at an
/// earlier step, so it is never still in `runnable`.
fn wake_at_step_start(sim: &mut Sim, st: &mut EventState, key: usize, t: u64) {
    let mut m = st.waiter_head[key];
    st.waiter_head[key] = NONE;
    while m != NONE {
        let mi = m as usize;
        let next = std::mem::replace(&mut st.next_waiter[mi], NONE);
        if st.parked[mi] {
            st.parked[mi] = false;
            st.n_parked -= 1;
            sim.outcomes[mi].stalls += (t - 1) - st.parked_at[mi];
            st.runnable.push(m);
            st.indep_cached = None;
        }
        m = next;
    }
    if st.n_parked == 0 {
        sim.track_releases = false;
    }
}

/// Settles the per-step stalls the legacy stepper would have counted for
/// every still-parked worm through step `through`.
fn top_up_stalls(sim: &mut Sim, st: &mut EventState, through: u64) {
    if st.n_parked == 0 {
        return;
    }
    for m in 0..st.parked.len() {
        if st.parked[m] {
            sim.outcomes[m].stalls += through - st.parked_at[m];
        }
    }
}

fn deadlock(sim: &mut Sim, st: &mut EventState, t: u64) -> (Outcome, u64, Option<DeadlockReport>) {
    // Legacy counted a stall for every blocked worm during step `t`.
    top_up_stalls(sim, st, t);
    sim.rebuild_active();
    let report = sim.build_deadlock_report();
    (Outcome::Deadlock(sim.active.clone()), t, Some(report))
}

/// Exclusive upper bound on fast-forwarded time: the next release (new
/// contender), the next scheduled fault kill (dead set about to change),
/// or the step cap, whichever is first. Only meaningful for non-reactive
/// sources (the caller never batches otherwise), whose next release
/// cannot move before it is reached.
fn ff_stop(sim: &mut Sim, t: u64) -> u64 {
    let next_rel = sim.peek_next_release(t).unwrap_or(u64::MAX);
    sim.config.max_steps.min(next_rel).min(sim.next_kill_time())
}

fn all_draining(sim: &Sim, st: &EventState) -> bool {
    st.runnable.iter().all(|&m| {
        let w = &sim.worms[m as usize];
        // A pending adaptive worm at `advance == hops` is awaiting its
        // next hop, not draining.
        !w.pending_route && w.advance >= w.hops
    })
}

/// Whether the runnable worms' paths are pairwise edge-disjoint **and**
/// source-router-disjoint (repeats within one path count as a collision
/// — conservative), memoized until the runnable membership changes.
/// Disjoint worms can never contend, block, or observe each other's
/// holder counts, so each one free-runs exactly as it would alone.
///
/// The router half matters even under the static policy: edge-disjoint
/// worms whose edges leave a common router touch the same `pool_used`
/// counter, and `max_pool_in_use` samples it at end of step — serially
/// free-running such worms would visit per-router occupancies the
/// legacy lock-step never produces. (Under pooling they additionally
/// compete for shared credits, which is why the caller disables this
/// fast-forward outright there.)
fn independent(sim: &Sim, st: &mut EventState) -> bool {
    if let Some(v) = st.indep_cached {
        return v;
    }
    st.mark_epoch += 1;
    let mut ok = true;
    'scan: for &m in &st.runnable {
        for e in sim.specs[m as usize].path.edges() {
            let mark = &mut st.edge_mark[e.idx()];
            if *mark == st.mark_epoch {
                ok = false;
                break 'scan;
            }
            *mark = st.mark_epoch;
            let nmark = &mut st.node_mark[sim.edge_src[e.idx()] as usize];
            if *nmark == st.mark_epoch {
                ok = false;
                break 'scan;
            }
            *nmark = st.mark_epoch;
        }
    }
    st.indep_cached = Some(ok);
    ok
}

/// Fast-forwards a non-interacting runnable set (all draining, or
/// pairwise disjoint — the caller guarantees one of the two and that
/// nothing is parked): each worm independently free-runs to
/// `min(next release, cap, finish)` — header advances in an `O(1)`
/// per-step loop, drain phases collapsed by [`Sim::fast_drain`] — then
/// simulated time jumps to the stop point. Returns whether time moved.
fn ff_batch(sim: &mut Sim, st: &mut EventState, t: &mut u64) -> bool {
    let stop = ff_stop(sim, *t);
    if *t >= stop {
        return false;
    }
    for i in 0..st.runnable.len() {
        let m = st.runnable[i];
        let mi = m as usize;
        let mut ti = *t;
        loop {
            let w = &sim.worms[mi];
            if w.done() || ti >= stop {
                break;
            }
            if w.advance >= w.hops {
                sim.fast_drain(m, &mut ti, stop);
            } else {
                sim.apply_advance(m, ti);
                sim.settle_max_vcs();
                ti += 1;
            }
        }
    }
    let before = st.runnable.len();
    let worms = &sim.worms;
    st.runnable.retain(|&m| !worms[m as usize].done());
    if st.runnable.len() != before {
        st.indep_cached = None;
    }
    if sim.config.check_invariants {
        validate(sim, st);
    }
    *t = stop;
    true
}

/// Full state validation (shared invariants plus the engine's own): the
/// wait queues must partition the active set with `runnable`, and every
/// parked worm's wanted edge must be non-acquirable (full, or starved of
/// shared pool credit) — the property that makes arithmetic stall
/// accounting exact.
fn validate(sim: &mut Sim, st: &EventState) {
    sim.rebuild_active();
    sim.validate();
    let mut n = 0;
    for m in 0..st.parked.len() {
        if st.parked[m] {
            n += 1;
            let w = &sim.worms[m];
            let e = sim.path_edge(m as u32, w.advance + 1);
            assert!(
                !sim.edge_acquirable(e),
                "parked worm {m} waits on an acquirable edge"
            );
        }
    }
    assert_eq!(n, st.n_parked, "parked count out of sync");
    assert_eq!(
        st.n_active(),
        sim.active.len(),
        "runnable/parked must partition the active set"
    );
}
