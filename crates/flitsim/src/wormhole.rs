//! The flit-level wormhole simulator with virtual channels.
//!
//! Implements the model of §1.1 exactly (see DESIGN.md §3):
//!
//! * each directed edge carries `B` virtual channels, each owning a one-flit
//!   buffer at the head of the edge — or, under
//!   [`crate::config::VcPolicy::RouterPooled`], draws VCs on demand from a
//!   pool shared across its source router's outgoing edges (see *VC
//!   capacity policies* below);
//! * a worm holds one VC on every edge its flits currently occupy; the VC is
//!   acquired when the header crosses the edge and released when the tail
//!   flit leaves its buffer;
//! * with one-flit buffers the worm is **rigid**: either the header advances
//!   and every trailing flit moves into the slot just vacated, or the whole
//!   worm stalls ("the flits following the header must stall");
//! * flits reaching the destination are removed into an unbounded delivery
//!   buffer, so a worm whose header has arrived drains one flit per step.
//!
//! Because the worm is rigid, its entire configuration is captured by a
//! single *advance count* `A`: flit `k` (header = 0) has crossed
//! `max(0, A − k)` edges. The worm holds VCs on (1-based) edges
//! `[max(1, A−L+1), min(A, d)]` and finishes at `A = d + L − 1`. An
//! unblocked worm therefore completes in `d + L − 1` flit steps — the
//! `D + L − 1` of the paper.
//!
//! A VC released during step `t` becomes available to other worms at step
//! `t+1` (arbitration reads start-of-step state), which removes any
//! dependence on message iteration order. Scheduled executions with at most
//! `B` same-class messages per edge never block under this convention
//! (proof: a worm acquiring an edge is itself one of the ≤ B users, so at
//! most `B−1` others ever hold it simultaneously).
//!
//! # Engines
//!
//! Two steppers drive the full-bandwidth model
//! ([`crate::config::Engine`]) and are required to produce **bit-identical
//! [`SimResult`]s** — the proptest differential suite and the unit fixtures
//! compare them field for field, deadlock reports included:
//!
//! * the **legacy** stepper rescans every active worm each flit step (the
//!   original implementation, kept as the differential oracle);
//! * the **event-driven** engine (the default, `engine` module) parks a
//!   worm that loses arbitration on a wait queue of the edge it wants and
//!   reconsiders it only when that edge releases a VC; contention-free
//!   stretches — nothing parked and the in-flight worms provably unable
//!   to interact (all draining, or pairwise edge- and
//!   source-router-disjoint paths) —
//!   fast-forward to the next release with drain phases collapsed to
//!   closed form, and a fully idle network jumps straight to the next
//!   message release.
//!
//! The equivalence rests on three invariants:
//!
//! 1. **Parked ⇒ full.** A worm parks only if its wanted edge still has
//!    all `B` VCs held *after* the step's releases land. Since holder
//!    counts only ever drop on a release, the edge stays full for the
//!    whole parked interval, so the legacy stepper would have re-run and
//!    lost the same arbitration every step — which is why stalls can be
//!    settled arithmetically (`stalls += parked duration`) on wakeup,
//!    deadlock, or step-cap exit instead of counted one step at a time.
//! 2. **Release at `t` is visible at `t+1`.** Wakeups fire at the end of
//!    the step whose releases produced them, so a woken worm contends at
//!    `t+1` using start-of-step holder counts — the same convention the
//!    legacy stepper gets by reading start-of-step state. Fast-forwards
//!    only batch steps in which no worm contends for anything and no
//!    parked worm exists to observe a release (they stop at the next
//!    message release and the step cap), so no arbitration, and no
//!    release visibility boundary, is ever skipped.
//! 3. **Order-free outcomes.** Everything a step writes is either
//!    per-worm (finish times, `first_move`, stalls) or a commutative
//!    update (`flit_hops`, holder increments/decrements), except the two
//!    places the old code was sensitive to iteration order — both now
//!    canonical so the engines cannot diverge: arbitration under
//!    [`Arbitration::Random`] sorts contenders by id and shuffles with a
//!    stateless RNG keyed by `(seed, step, edge)` (not a sequential
//!    global stream, which skipped steps would desynchronize), and
//!    `max_vcs_in_use` samples holder counts at end of step rather than
//!    at each acquisition instant (which would depend on the interleaving
//!    of same-step acquires and releases).
//!
//! [`run_traced`] always uses the legacy stepper: its per-step `Blocked`
//! events are inherently step-enumerated, which is exactly what the event
//! engine avoids materializing.
//!
//! # VC capacity policies
//!
//! Every capacity decision is a query against
//! [`crate::config::SimConfig::vc_policy`] rather than a comparison with
//! a scalar `B`:
//!
//! * **acquirability** (`Sim::free_vcs`) — static: `holders < B`;
//!   pooled: below the per-edge floor, or below the per-edge cap with
//!   shared credit left at the source router;
//! * **arbitration** (`Sim::arbitrate`, shared by both engines) —
//!   under pooling, sibling edges of one router competing for the same
//!   shared credits within a step are granted in **ascending edge-id
//!   order**, a canonical rule that reads only start-of-step state and
//!   the (engine-independent) contender sets, so the engines cannot
//!   diverge;
//! * **park/wake keying** (`Sim::wait_key`) — a blocked worm's edge
//!   can become acquirable when a VC releases on the edge itself
//!   (static) or on *any* outgoing edge of its source router (pooled:
//!   the release may return shared credit). Acquirability is monotone
//!   non-increasing between releases on that key under both policies,
//!   which is what keeps the event engine's parked-interval stall
//!   arithmetic exact.
//!
//! `Static(B)` is the degenerate pooling `pool = B · fanout,
//! per_edge_min = per_edge_max = B` — asserted bit-identical by the
//! policy-equivalence proptests — and pooled floors are never below 1,
//! so the dateline/escape deadlock-freedom arguments survive pooling
//! (every escape-class edge keeps a dedicated VC).
//!
//! # Adaptive route selection
//!
//! Under [`crate::config::RouteSelection::MinimalAdaptive`] /
//! [`crate::config::RouteSelection::FullyAdaptive`] (entry point
//! [`run_adaptive`], which takes an
//! [`wormhole_topology::adaptive::AdaptiveRouter`] substrate) the "route
//! is fixed at injection" assumption is dropped: a worm's path is built
//! **one hop at a time** as its header advances. Per step, a worm whose
//! known path is exhausted (`pending_route`) *selects* a wanted edge —
//! a pure function of start-of-step state:
//!
//! 1. among the profitable adaptive-lane candidates with a free VC,
//!    take the one with the lowest start-of-step holder count (ties by
//!    edge id);
//! 2. otherwise, under `FullyAdaptive` with misroute budget left, the
//!    same rule over the non-minimal candidates (u-turns excluded);
//! 3. otherwise fall back to the **escape network**: the worm contends
//!    for the first hop of the Dally–Seitz dateline route from its
//!    current node, and on winning it commits to that whole route and
//!    never returns to the adaptive lane (deadlock freedom by
//!    construction — see `wormhole_topology::adaptive`).
//!
//! The selected edge then enters the ordinary per-edge arbitration;
//! winners extend their route and advance, losers stall and re-select
//! next step (occupancies have changed). Because selection reads only
//! start-of-step holder counts — the same convention arbitration already
//! uses — the two engines stay bit-identical; the event engine merely
//! runs *pending* worms park-free (a blocked pending worm's candidate
//! set must be re-evaluated every step, so there is no single edge whose
//! release is the unique wake condition; a frozen-route worm wants one
//! fixed edge and parks like any oblivious worm) and restricts
//! fast-forwarding to the still-exact all-draining and idle-network
//! jumps (route choice observes other worms' occupancies, so the
//! edge-disjointness argument no longer applies).

use rand::prelude::*;
use rand::rngs::StdRng;

use wormhole_topology::adaptive::AdaptiveRouter;
use wormhole_topology::graph::{EdgeId, Graph, NodeId};
use wormhole_topology::path::Path;

use crate::config::{
    Arbitration, BandwidthModel, BlockedPolicy, Engine, FinalEdgePolicy, RouteSelection, SimConfig,
};
use crate::events::{DeadlockReport, TraceEvent, WaitFor};
use crate::message::MessageSpec;
use crate::source::{ReplaySource, TrafficSource};
use crate::stats::{DiscardReason, EngineFallback, MessageOutcome, Outcome, SimResult};

/// Restricted-model flit position: not yet injected.
const FLIT_UNINJECTED: u32 = 0;
/// Restricted-model flit position: delivered.
const FLIT_DELIVERED: u32 = u32::MAX;

pub(crate) struct Worm {
    /// Edges crossed by the (virtual) header pipeline; see module docs.
    pub(crate) advance: u32,
    /// Known path length. Fixed for oblivious worms; for adaptive worms
    /// it grows with each route extension (and equals `advance` while
    /// `pending_route`), freezing when the header reaches the
    /// destination or the escape tail is appended.
    pub(crate) hops: u32,
    pub(crate) length: u32,
    /// `true` while the route may still grow (adaptive worm whose header
    /// has not committed to a complete path). Always `false` under
    /// [`RouteSelection::Oblivious`].
    pub(crate) pending_route: bool,
}

impl Worm {
    #[inline]
    pub(crate) fn done(&self) -> bool {
        // A pending worm is never done: `advance == hops` merely means
        // its header sits at the end of the known path awaiting the next
        // hop (for L = 1 that coincides with `hops + length − 1`).
        !self.pending_route && self.advance == self.hops + self.length - 1
    }

    /// 1-based range of path edges on which this worm currently holds a VC.
    #[inline]
    pub(crate) fn held_range(&self) -> (u32, u32) {
        if self.advance == 0 {
            return (1, 0); // empty
        }
        let lo = (self.advance + 1).saturating_sub(self.length).max(1);
        let hi = self.advance.min(self.hops);
        (lo, hi)
    }

    /// Number of flits that cross an edge when the worm advances once.
    #[inline]
    pub(crate) fn crossing_width(&self) -> u32 {
        let next = self.advance + 1;
        let lo = (next + 1).saturating_sub(self.length).max(1);
        let hi = next.min(self.hops);
        hi - lo + 1
    }
}

/// Eagerly validates a spec slice against `graph` — the historical
/// entry-point behavior (a bad spec panics before any simulation work),
/// preserved by the slice runners on top of the per-admission checks.
fn validate_specs(graph: &Graph, specs: &[MessageSpec]) {
    for (i, s) in specs.iter().enumerate() {
        assert!(!s.path.is_empty(), "message {i} has an empty path");
        for &e in s.path.edges() {
            assert!(e.idx() < graph.num_edges(), "message {i}: bad edge id");
        }
    }
}

/// Runs the wormhole simulation of `specs` over `graph` under `config`,
/// following each spec's precomputed path verbatim.
///
/// Internally routes through a [`ReplaySource`] — bit-identical to the
/// historical slice path (see [`crate::source`]).
///
/// Panics if any spec has an empty path or an invalid edge id, or if
/// `config` asks for adaptive route selection (which needs a router to
/// enumerate per-hop candidates — use [`run_adaptive`]).
pub fn run(graph: &Graph, specs: &[MessageSpec], config: &SimConfig) -> SimResult {
    validate_specs(graph, specs);
    let mut source = ReplaySource::from_slice(specs);
    run_source(graph, &mut source, config)
}

/// Runs the wormhole simulation pulling messages from `source` (see
/// [`TrafficSource`] for the polling/notification contract).
///
/// Panics if the source emits an invalid spec (empty path, bad edge id,
/// duplicate id, zero length) or if `config` asks for adaptive route
/// selection (use [`run_source_adaptive`]).
pub fn run_source(graph: &Graph, source: &mut dyn TrafficSource, config: &SimConfig) -> SimResult {
    assert_eq!(
        config.route_selection,
        RouteSelection::Oblivious,
        "adaptive route selection needs run_adaptive (per-hop candidates come from a router)"
    );
    Sim::new(graph, None, source, config, false).run_inner().0
}

/// Runs and asserts the routing completed (no deadlock / step-cap abort).
pub fn run_to_completion(graph: &Graph, specs: &[MessageSpec], config: &SimConfig) -> SimResult {
    let r = run(graph, specs, config);
    assert_eq!(r.outcome, Outcome::Completed, "simulation did not complete");
    r
}

/// Runs the wormhole simulation with per-hop route selection over
/// `router`'s substrate (see [`RouteSelection`] and the module docs).
///
/// Each spec's [`MessageSpec::path`] supplies only the endpoints (and
/// the oblivious baseline the workload generators produce anyway);
/// under an adaptive policy the actual route is built hop by hop at the
/// header. With [`RouteSelection::Oblivious`] this is exactly [`run`].
///
/// Panics on empty paths, on a path not belonging to `router`'s graph,
/// or under the restricted bandwidth model (the per-flit stepper does
/// not support route extension).
pub fn run_adaptive(
    router: &dyn AdaptiveRouter,
    specs: &[MessageSpec],
    config: &SimConfig,
) -> SimResult {
    validate_specs(router.graph(), specs);
    let mut source = ReplaySource::from_slice(specs);
    run_source_adaptive(router, &mut source, config)
}

/// [`run_adaptive`] pulling messages from `source` instead of a slice
/// (see [`TrafficSource`]).
pub fn run_source_adaptive(
    router: &dyn AdaptiveRouter,
    source: &mut dyn TrafficSource,
    config: &SimConfig,
) -> SimResult {
    if config.route_selection == RouteSelection::Oblivious {
        return run_source(router.graph(), source, config);
    }
    assert_eq!(
        config.bandwidth,
        BandwidthModel::BFlitsPerStep,
        "adaptive route selection requires the full-bandwidth model"
    );
    Sim::new(router.graph(), Some(router), source, config, false)
        .run_inner()
        .0
}

/// [`run_adaptive`], asserting the routing completed.
pub fn run_adaptive_to_completion(
    router: &dyn AdaptiveRouter,
    specs: &[MessageSpec],
    config: &SimConfig,
) -> SimResult {
    let r = run_adaptive(router, specs, config);
    assert_eq!(r.outcome, Outcome::Completed, "simulation did not complete");
    r
}

/// Runs with event tracing: every VC acquisition, blocked attempt (full
/// bandwidth model), delivery, and discard is recorded. Traces grow with
/// `O(steps · messages)` in the worst case — use on instances you intend
/// to inspect. Always driven by the legacy stepper (per-step `Blocked`
/// events are what the event engine exists to not enumerate); results are
/// bit-identical either way.
pub fn run_traced(
    graph: &Graph,
    specs: &[MessageSpec],
    config: &SimConfig,
) -> (SimResult, Vec<TraceEvent>) {
    assert_eq!(
        config.route_selection,
        RouteSelection::Oblivious,
        "adaptive route selection needs run_adaptive (tracing is oblivious-only)"
    );
    validate_specs(graph, specs);
    let mut source = ReplaySource::from_slice(specs);
    Sim::new(graph, None, &mut source, config, true).run_inner()
}

/// Seeds the stateless per-arbitration RNG for `(seed, t, e)`.
///
/// [`Arbitration::Random`] draws from a counter-based stream keyed by the
/// configured seed, the flit step, and the edge id — never from a
/// sequential global stream. Runs stay deterministic per seed, but the
/// draw no longer depends on how many arbitration events preceded it,
/// which is what lets the event-driven engine skip blocked steps and
/// still reproduce the legacy stepper bit for bit.
pub(crate) fn arb_rng(seed: u64, t: u64, e: usize) -> StdRng {
    let mut x = seed
        ^ t.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (e as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    StdRng::seed_from_u64(x)
}

/// Orders `contenders` so the first `free` entries win the edge. Shared by
/// both engines; every policy is canonical in the contender *set* (the
/// engines discover contenders in different orders).
pub(crate) fn order_contenders(
    config: &SimConfig,
    specs: &[MessageSpec],
    t: u64,
    e: usize,
    contenders: &mut [u32],
) {
    match config.arbitration {
        Arbitration::FifoById => contenders.sort_unstable(),
        Arbitration::OldestFirst => {
            contenders.sort_unstable_by_key(|&m| (specs[m as usize].release, m));
        }
        Arbitration::PriorityRank => {
            contenders.sort_unstable_by_key(|&m| (specs[m as usize].priority, m));
        }
        Arbitration::Random => {
            contenders.sort_unstable();
            contenders.shuffle(&mut arb_rng(config.seed, t, e));
        }
    }
}

/// Flat per-step contender buckets: a CSR-style `(edge, msg)` arena that
/// replaces the old one-`Vec`-per-edge scratch (which paid a heap
/// allocation per contended edge and an `O(num_edges)` clear — doubled
/// again on dateline-class graphs, where every physical channel is two
/// parallel edges).
///
/// Usage per step: [`clear`](Self::clear), [`push`](Self::push) each
/// contender, [`group`](Self::group) once, then iterate groups by index.
/// Steady-state it never allocates.
pub(crate) struct FlatBuckets {
    /// `(edge, msg)` pairs in discovery order.
    pairs: Vec<(u32, u32)>,
    /// Distinct edges touched this step, in first-touch order.
    touched: Vec<u32>,
    /// Per-edge contender count, then scatter cursor (dense, reset via
    /// `touched`).
    count: Vec<u32>,
    /// Contenders grouped contiguously per touched edge.
    slots: Vec<u32>,
    /// Group boundaries into `slots`, aligned with `touched` (+1 tail).
    starts: Vec<u32>,
}

impl FlatBuckets {
    pub(crate) fn with_edges(num_edges: usize) -> Self {
        Self {
            pairs: Vec::new(),
            touched: Vec::new(),
            count: vec![0; num_edges],
            slots: Vec::new(),
            starts: Vec::new(),
        }
    }

    #[inline]
    pub(crate) fn clear(&mut self) {
        for &e in &self.touched {
            self.count[e as usize] = 0;
        }
        self.pairs.clear();
        self.touched.clear();
    }

    /// Records `m` contending for edge `e`. Only valid before `group`.
    #[inline]
    pub(crate) fn push(&mut self, e: usize, m: u32) {
        if self.count[e] == 0 {
            self.touched.push(e as u32);
        }
        self.count[e] += 1;
        self.pairs.push((e as u32, m));
    }

    /// Groups the pushed pairs into contiguous per-edge slices (first-touch
    /// edge order; discovery order within an edge) and returns the group
    /// count. Leaves `count` holding end offsets; `clear` resets it.
    pub(crate) fn group(&mut self) -> usize {
        self.starts.clear();
        self.slots.clear();
        self.slots.resize(self.pairs.len(), 0);
        let mut off = 0u32;
        self.starts.push(0);
        for &e in &self.touched {
            let c = self.count[e as usize];
            self.count[e as usize] = off; // becomes the scatter cursor
            off += c;
            self.starts.push(off);
        }
        for &(e, m) in &self.pairs {
            let cur = &mut self.count[e as usize];
            self.slots[*cur as usize] = m;
            *cur += 1;
        }
        self.touched.len()
    }

    /// The edge of group `i` (valid after `group`).
    #[inline]
    pub(crate) fn edge(&self, i: usize) -> usize {
        self.touched[i] as usize
    }

    /// The contenders of group `i` (valid after `group`).
    #[inline]
    pub(crate) fn group_mut(&mut self, i: usize) -> &mut [u32] {
        let (s, e) = (self.starts[i] as usize, self.starts[i + 1] as usize);
        &mut self.slots[s..e]
    }
}

/// The wanted-hop decision of a pending adaptive worm, refreshed every
/// step it classifies (occupancies change, so yesterday's choice is
/// stale). Read back by the apply phase (route extension) and by the
/// deadlock report / blocked tracing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum SelectedHop {
    /// Not yet classified this run (fresh worm before its first step).
    None,
    /// Extend by one adaptive-lane hop. `misroute` spends one unit of
    /// the worm's [`SimConfig::misroute_quota`] when crossed.
    Adaptive { edge: u32, misroute: bool },
    /// Fall back to the escape network: contend for `edge` (the first
    /// escape hop from the current node) and, on winning, append the
    /// whole escape route and freeze the path.
    Escape { edge: u32 },
}

impl SelectedHop {
    /// The wanted edge id, if a selection was made.
    #[inline]
    pub(crate) fn edge(self) -> Option<u32> {
        match self {
            SelectedHop::None => None,
            SelectedHop::Adaptive { edge, .. } | SelectedHop::Escape { edge } => Some(edge),
        }
    }
}

/// Per-run adaptive routing state (present iff the config asks for a
/// non-oblivious [`RouteSelection`]).
pub(crate) struct AdaptiveState<'a> {
    /// Candidate enumeration and escape continuations.
    pub(crate) router: &'a dyn AdaptiveRouter,
    /// Incrementally built route per message: the adaptive prefix plus,
    /// after a fallback, the escape tail. Replaces `spec.path` as the
    /// source of truth for [`Sim::path_edge`].
    pub(crate) routes: Vec<Vec<EdgeId>>,
    /// Injection node per message (head position at `advance == 0`).
    pub(crate) src: Vec<NodeId>,
    /// Destination node per message.
    pub(crate) dst: Vec<NodeId>,
    /// Remaining misroute budget per message (`FullyAdaptive`).
    pub(crate) budget: Vec<u32>,
    /// Wanted-hop selection per message (see [`SelectedHop`]).
    pub(crate) selected: Vec<SelectedHop>,
    /// Candidate scratch for [`AdaptiveRouter::candidates`].
    cand: Vec<(EdgeId, bool)>,
    /// Worms that fell back onto the escape network.
    pub(crate) escape_fallbacks: u64,
    /// Non-minimal hops crossed.
    pub(crate) misroute_hops: u64,
}

pub(crate) struct Sim<'a> {
    /// Per-id specs, grown as the source emits messages (placeholder
    /// slots for ids not yet seen — never activated, so never stepped).
    pub(crate) specs: Vec<MessageSpec>,
    pub(crate) config: &'a SimConfig,
    /// The simulated graph (admission-time validation, adaptive
    /// endpoint lookup, and the parallel engine's region layout).
    pub(crate) graph: &'a Graph,
    /// The message stream driving the run (see [`TrafficSource`]).
    source: &'a mut dyn TrafficSource,
    pub(crate) worms: Vec<Worm>,
    pub(crate) outcomes: Vec<MessageOutcome>,
    /// VCs currently held per edge.
    pub(crate) holders: Vec<u16>,
    /// Edge → source-router index (`graph.edge_sources()` copy): the
    /// `O(1)` hop from an acquisition/release to the router whose pool
    /// it debits.
    pub(crate) edge_src: Vec<u32>,
    /// VCs currently held across the outgoing edges of each router
    /// (Σ `holders` per source node) — maintained under both policies so
    /// `max_pool_in_use` is policy- and engine-identical.
    pub(crate) pool_used: Vec<u32>,
    /// [`VcPolicy::RouterPooled`] only: VCs drawn from each router's
    /// *shared* portion, Σ over out-edges of `max(0, holders − floor)`.
    /// Empty under the static policy.
    pub(crate) shared_used: Vec<u32>,
    /// Pooled only: each router's shared-portion capacity,
    /// `pool − per_edge_min · fanout`. Empty under the static policy.
    shared_cap: Vec<u32>,
    /// Pooled arbitration scratch: shared credits already granted to
    /// earlier (lower-id) edges of the same router within this step.
    planned_shared: Vec<u32>,
    /// Routers with nonzero `planned_shared` this step (reset list).
    touched_routers: Vec<u32>,
    /// Pooled arbitration scratch: bucket-group indices in ascending
    /// edge-id order (the canonical shared-credit grant order).
    group_order: Vec<u32>,
    /// Cached [`VcPolicy`] decomposition: `true` iff router-pooled.
    pub(crate) pooled: bool,
    /// Guaranteed VCs per edge (`B` under the static policy).
    per_edge_min: u32,
    /// Hard per-edge cap (`B` under the static policy).
    per_edge_max: u32,
    /// Pool size per router (0 under the static policy — unused).
    pool: u32,
    /// Per-step contender scratch (see [`FlatBuckets`]).
    pub(crate) buckets: FlatBuckets,
    /// Released-and-unretired message ids in admission order. The
    /// legacy stepper maintains it each step; the event engine rebuilds it
    /// on demand ([`Sim::rebuild_active`]) for cold paths only.
    pub(crate) active: Vec<u32>,
    /// Every admitted id, in admission order — the source's `(release,
    /// id)` emission order, which is exactly the order the old
    /// release-sorted scan produced. [`Sim::rebuild_active`] iterates it.
    admitted: Vec<u32>,
    /// Per-id: `true` once the slot holds a real (admitted) spec.
    admitted_flag: Vec<bool>,
    /// Scratch for [`TrafficSource::take_ready`].
    ready_buf: Vec<(u32, MessageSpec)>,
    /// Completions awaiting flush to the source: `(time, id, delivered)`,
    /// sorted before dispatch so callback order is canonical.
    delivery_buf: Vec<(u64, u32, bool)>,
    /// Cached [`TrafficSource::reactive`] — `true` disables the event
    /// engine's batched fast-forwards.
    pub(crate) reactive: bool,
    pub(crate) movers: Vec<u32>,
    pub(crate) blocked: Vec<u32>,
    pub(crate) max_vcs: u16,
    pub(crate) max_pool: u32,
    pub(crate) flit_hops: u64,
    pub(crate) last_finish: u64,
    pub(crate) unfinished: usize,
    /// Edges acquired this step; drained by [`Sim::settle_max_vcs`].
    acquired: Vec<u32>,
    /// Edges whose holder count dropped this step. Only populated while
    /// `track_releases` (the event engine sets it exactly while any worm
    /// is parked); the legacy stepper never reads it.
    pub(crate) released: Vec<u32>,
    pub(crate) track_releases: bool,
    /// Bandwidth tokens per edge (restricted model scratch).
    tokens_used: Vec<bool>,
    token_touched: Vec<u32>,
    /// Restricted model: per-worm flit positions (`FLIT_UNINJECTED`,
    /// buffer index `1..d`, or `FLIT_DELIVERED`). Empty under the full
    /// bandwidth model.
    flit_pos: Vec<Vec<u32>>,
    /// Restricted model: delivered flit counts.
    rdelivered: Vec<u32>,
    /// Restricted model: first undelivered flit index per worm — the
    /// inner loop skips the delivered prefix instead of rescanning all
    /// `L` positions every step.
    rfirst: Vec<u32>,
    pub(crate) num_edges: usize,
    /// Per-edge dead flags from applied fault kills. Empty when the run
    /// has no fault plan, so the hot-path guard is a single `is_empty`.
    dead: Vec<bool>,
    /// Expanded per-edge kill schedule from [`SimConfig::faults`]:
    /// ascending `(at, edge)`, router kills expanded to their incident
    /// edges, earliest kill time kept per edge
    /// ([`wormhole_topology::fault::FaultPlan::edge_schedule`]).
    kill_schedule: Vec<(u64, u32)>,
    /// Cursor into `kill_schedule`: entries before it are applied.
    next_kill: usize,
    /// Worms discarded because a kill severed them
    /// ([`DiscardReason::LinkDown`]).
    fault_discards: u64,
    /// Misroute hops taken after the first applied kill.
    fault_detour_hops: u64,
    /// Pending adaptive worms whose only remaining option this step — the
    /// escape continuation — crosses a dead edge. Classification parks
    /// them here and the apply phase discards them, so mid-step holder
    /// counts (which selection reads) stay identical across engines.
    pub(crate) doomed: Vec<u32>,
    /// Adaptive routing state; `Some` iff `config.route_selection` is
    /// non-oblivious.
    pub(crate) adaptive: Option<AdaptiveState<'a>>,
    tracing: bool,
    trace: Vec<TraceEvent>,
}

impl<'a> Sim<'a> {
    fn new(
        graph: &'a Graph,
        router: Option<&'a dyn AdaptiveRouter>,
        source: &'a mut dyn TrafficSource,
        config: &'a SimConfig,
        tracing: bool,
    ) -> Self {
        config.vc_policy.validate();
        let (pooled, per_edge_min, per_edge_max, pool) = match config.vc_policy {
            crate::config::VcPolicy::Static(b) => (false, b, b, 0),
            crate::config::VcPolicy::RouterPooled {
                pool,
                per_edge_min,
                per_edge_max,
            } => (true, per_edge_min, per_edge_max, pool),
        };
        let shared_cap = if pooled {
            assert_eq!(
                config.bandwidth,
                BandwidthModel::BFlitsPerStep,
                "RouterPooled VC allocation requires the full-bandwidth model"
            );
            // Graph-dependent validation: every router must be able to
            // honor its floors out of the pool.
            graph
                .nodes()
                .map(|v| {
                    let fanout = graph.out_degree(v) as u32;
                    pool.checked_sub(per_edge_min * fanout).unwrap_or_else(|| {
                        panic!(
                            "router {v:?}: per_edge_min {per_edge_min} x fanout {fanout} \
                             exceeds pool {pool}"
                        )
                    })
                })
                .collect()
        } else {
            Vec::new()
        };
        let adaptive_mode = config.route_selection != RouteSelection::Oblivious;
        let adaptive = if adaptive_mode {
            let router = router.expect("adaptive route selection needs a router");
            Some(AdaptiveState {
                router,
                routes: Vec::new(),
                src: Vec::new(),
                dst: Vec::new(),
                budget: Vec::new(),
                selected: Vec::new(),
                cand: Vec::new(),
                escape_fallbacks: 0,
                misroute_hops: 0,
            })
        } else {
            None
        };
        let kill_schedule = match &config.faults {
            Some(plan) if !plan.is_empty() => {
                assert_eq!(
                    config.bandwidth,
                    BandwidthModel::BFlitsPerStep,
                    "fault injection requires the full-bandwidth model"
                );
                if let Err(e) = plan.validate(graph) {
                    panic!("invalid fault plan: {e}");
                }
                plan.edge_schedule(graph)
            }
            _ => Vec::new(),
        };
        let dead = if kill_schedule.is_empty() {
            Vec::new()
        } else {
            vec![false; graph.num_edges()]
        };
        let reactive = source.reactive();
        Self {
            specs: Vec::new(),
            config,
            graph,
            source,
            worms: Vec::new(),
            outcomes: Vec::new(),
            holders: vec![0; graph.num_edges()],
            edge_src: graph.edge_sources().to_vec(),
            pool_used: vec![0; graph.num_nodes()],
            shared_used: vec![0; if pooled { graph.num_nodes() } else { 0 }],
            shared_cap,
            planned_shared: vec![0; if pooled { graph.num_nodes() } else { 0 }],
            touched_routers: Vec::new(),
            group_order: Vec::new(),
            pooled,
            per_edge_min,
            per_edge_max,
            pool,
            buckets: FlatBuckets::with_edges(graph.num_edges()),
            active: Vec::new(),
            admitted: Vec::new(),
            admitted_flag: Vec::new(),
            ready_buf: Vec::new(),
            delivery_buf: Vec::new(),
            reactive,
            movers: Vec::new(),
            blocked: Vec::new(),
            max_vcs: 0,
            max_pool: 0,
            flit_hops: 0,
            last_finish: 0,
            unfinished: 0,
            acquired: Vec::new(),
            released: Vec::new(),
            track_releases: false,
            tokens_used: vec![false; graph.num_edges()],
            token_touched: Vec::new(),
            flit_pos: Vec::new(),
            rdelivered: Vec::new(),
            rfirst: Vec::new(),
            num_edges: graph.num_edges(),
            dead,
            kill_schedule,
            next_kill: 0,
            fault_discards: 0,
            fault_detour_hops: 0,
            doomed: Vec::new(),
            adaptive,
            tracing,
            trace: Vec::new(),
        }
    }

    /// Whether fault injection is active for this run.
    #[inline]
    pub(crate) fn faulted(&self) -> bool {
        !self.dead.is_empty()
    }

    /// Whether edge `e` has been killed by an applied fault.
    #[inline]
    fn is_dead(&self, e: usize) -> bool {
        !self.dead.is_empty() && self.dead[e]
    }

    /// Earliest unapplied kill time (`u64::MAX` when exhausted) — the
    /// event engine's fast-forwards must never cross it, exactly as they
    /// never cross a message release.
    #[inline]
    pub(crate) fn next_kill_time(&self) -> u64 {
        self.kill_schedule
            .get(self.next_kill)
            .map_or(u64::MAX, |&(at, _)| at)
    }

    /// Applies every scheduled kill with `at ≤ t`: marks the edges dead,
    /// then discards each severed in-flight worm with
    /// [`DiscardReason::LinkDown`]. Runs at the **start** of step `t` in
    /// both engines, before admissions, so the discards' released VCs
    /// are visible to this step's arbitration — the same convention as a
    /// release during step `t − 1`. Returns whether any kill applied
    /// (the caller then drops the discarded worms from its active set).
    pub(crate) fn apply_kills(&mut self, t: u64) -> bool {
        if self.next_kill_time() > t {
            return false;
        }
        while let Some(&(at, e)) = self.kill_schedule.get(self.next_kill) {
            if at > t {
                break;
            }
            self.dead[e as usize] = true;
            self.next_kill += 1;
        }
        // Severed scan in admission order — the canonical order shared
        // by both engines (discard order only matters through the
        // already-sorted completion flush, but keeping it canonical
        // costs nothing).
        for i in 0..self.admitted.len() {
            let m = self.admitted[i];
            let mi = m as usize;
            if self.worms[mi].done() || self.outcomes[mi].discarded.is_some() {
                continue;
            }
            if self.worm_severed(m) {
                self.discard(m, t, DiscardReason::LinkDown);
            }
        }
        true
    }

    /// Whether a kill cut worm `m`: its flits currently occupy a dead
    /// edge, or its frozen route still has a dead edge ahead of the
    /// header. A pending (adaptive) worm has no committed continuation,
    /// so only its held span can sever it — its future hops re-route
    /// around the dead edges instead.
    fn worm_severed(&self, m: u32) -> bool {
        let w = &self.worms[m as usize];
        let (lo, hi) = w.held_range();
        for j in lo..=hi {
            if self.is_dead(self.path_edge(m, j)) {
                return true;
            }
        }
        if !w.pending_route {
            for j in (w.advance + 1)..=w.hops {
                if self.is_dead(self.path_edge(m, j)) {
                    return true;
                }
            }
        }
        false
    }

    /// Number of routers (nodes) in the simulated graph.
    #[inline]
    pub(crate) fn num_nodes(&self) -> usize {
        self.pool_used.len()
    }

    /// Installs `spec` as message `id`, growing every per-message array
    /// to cover it (ids below `id` not yet seen get inert placeholder
    /// slots — never activated, so never stepped; a later emission fills
    /// them in). Validates the spec the way the old eager loop did.
    fn admit(&mut self, id: u32, spec: MessageSpec, now: u64) {
        let mi = id as usize;
        let restricted = self.config.bandwidth == BandwidthModel::OneFlitPerStep;
        while self.specs.len() <= mi {
            self.specs.push(MessageSpec {
                path: Path::new(Vec::new()),
                length: 1,
                release: 0,
                priority: 0,
            });
            self.worms.push(Worm {
                advance: 0,
                hops: 0,
                length: 1,
                pending_route: false,
            });
            self.outcomes.push(MessageOutcome::default());
            self.rdelivered.push(0);
            self.admitted_flag.push(false);
            if restricted {
                self.flit_pos.push(Vec::new());
                self.rfirst.push(0);
            }
            if let Some(ad) = &mut self.adaptive {
                ad.routes.push(Vec::new());
                ad.src.push(NodeId(0));
                ad.dst.push(NodeId(0));
                ad.budget.push(0);
                ad.selected.push(SelectedHop::None);
            }
        }
        assert!(!self.admitted_flag[mi], "source re-emitted message id {id}");
        assert!(!spec.path.is_empty(), "message {id} has an empty path");
        for &e in spec.path.edges() {
            assert!(e.idx() < self.num_edges, "message {id}: bad edge id");
        }
        assert!(spec.length >= 1, "message {id} has zero length");
        assert!(
            spec.release <= now,
            "message {id} emitted before its release ({} > {now})",
            spec.release
        );
        let adaptive_mode = self.adaptive.is_some();
        self.worms[mi] = Worm {
            advance: 0,
            hops: if adaptive_mode { 0 } else { spec.hops() },
            length: spec.length,
            pending_route: adaptive_mode,
        };
        if restricted {
            self.flit_pos[mi] = vec![FLIT_UNINJECTED; spec.length as usize];
            self.rfirst[mi] = 0;
        }
        if let Some(ad) = &mut self.adaptive {
            ad.routes[mi] = Vec::with_capacity(spec.hops() as usize);
            ad.src[mi] = spec.path.src(self.graph);
            ad.dst[mi] = spec.path.dst(self.graph);
            ad.budget[mi] = self.config.misroute_quota;
            ad.selected[mi] = SelectedHop::None;
        }
        self.admitted_flag[mi] = true;
        self.specs[mi] = spec;
        self.unfinished += 1;
        self.admitted.push(id);
        // A frozen-route message released onto an already-dead edge is
        // undeliverable: discard it on the spot (it holds nothing yet) so
        // the source's `on_discarded` fires and closed-loop sources can
        // reissue. Adaptive messages stay: they route around dead edges.
        if self.faulted()
            && !adaptive_mode
            && self.specs[mi]
                .path
                .edges()
                .iter()
                .any(|&e| self.dead[e.idx()])
        {
            self.discard(id, now, DiscardReason::LinkDown);
        }
    }

    /// Buffers a completion for the next source flush. `delivered` is
    /// `false` for discards.
    #[inline]
    pub(crate) fn record_done(&mut self, m: u32, t: u64, delivered: bool) {
        self.delivery_buf.push((t, m, delivered));
    }

    /// Dispatches buffered completions to the source in ascending
    /// `(time, id)` order — the canonical, engine-independent callback
    /// sequence of the [`crate::source`] contract.
    fn flush_deliveries(&mut self) {
        if self.delivery_buf.is_empty() {
            return;
        }
        let mut buf = std::mem::take(&mut self.delivery_buf);
        buf.sort_unstable();
        for (t, id, delivered) in buf.drain(..) {
            if delivered {
                self.source.on_delivered(id, t);
            } else {
                self.source.on_discarded(id, t);
            }
        }
        self.delivery_buf = buf;
    }

    /// Flushes completions, then peeks the source's next release time.
    pub(crate) fn peek_next_release(&mut self, now: u64) -> Option<u64> {
        self.flush_deliveries();
        self.source.next_release(now)
    }

    /// Flushes completions, then pulls and admits every message released
    /// by `now`. Returns the `self.admitted` index range of the new ids.
    pub(crate) fn admit_ready(&mut self, now: u64) -> std::ops::Range<usize> {
        self.flush_deliveries();
        let start = self.admitted.len();
        let mut buf = std::mem::take(&mut self.ready_buf);
        buf.clear();
        self.source.take_ready(now, &mut buf);
        for (id, spec) in buf.drain(..) {
            self.admit(id, spec, now);
        }
        self.ready_buf = buf;
        start..self.admitted.len()
    }

    /// Id of the `i`-th admitted message (admission order).
    #[inline]
    pub(crate) fn admitted_id(&self, i: usize) -> u32 {
        self.admitted[i]
    }

    /// Whether crossing 1-based path edge `edge_1based` requires holding
    /// a VC. An edge strictly before the end of the path always does; so
    /// does the newest edge of a still-growing route (`pending_route` —
    /// nothing marks it final yet, and `hops` only grows, so the answer
    /// is stable from acquisition to release); the true final edge
    /// follows [`FinalEdgePolicy`].
    #[inline]
    pub(crate) fn needs_vc(&self, worm: &Worm, edge_1based: u32) -> bool {
        edge_1based < worm.hops
            || worm.pending_route
            || self.config.final_edge == FinalEdgePolicy::RequiresVc
    }

    #[inline]
    pub(crate) fn path_edge(&self, msg: u32, edge_1based: u32) -> usize {
        match &self.adaptive {
            Some(ad) => ad.routes[msg as usize][edge_1based as usize - 1].idx(),
            None => self.specs[msg as usize].path.edges()[edge_1based as usize - 1].idx(),
        }
    }

    /// How many additional VCs edge `e` can grant right now — the
    /// policy query every capacity decision routes through. Static:
    /// `B − holders`. Pooled: below the floor is free; past it, each VC
    /// draws one credit from the source router's shared portion; the
    /// per-edge cap always binds.
    #[inline]
    pub(crate) fn free_vcs(&self, e: usize) -> u32 {
        if self.is_dead(e) {
            return 0; // a killed edge never grants another VC
        }
        let h = self.holders[e] as u32;
        let cap_free = self.per_edge_max.saturating_sub(h);
        if !self.pooled {
            return cap_free;
        }
        let r = self.edge_src[e] as usize;
        let floor_free = self.per_edge_min.saturating_sub(h);
        cap_free.min(floor_free + (self.shared_cap[r] - self.shared_used[r]))
    }

    /// Whether edge `e` could grant at least one VC right now. Under
    /// either policy this is **monotone**: acquisitions by other worms
    /// only reduce it, and it recovers only when a release lands on `e`
    /// itself (static) or on any outgoing edge of `e`'s source router
    /// (pooled) — the property the event engine's park/wake keying
    /// relies on.
    #[inline]
    pub(crate) fn edge_acquirable(&self, e: usize) -> bool {
        self.free_vcs(e) > 0
    }

    /// The event engine's park/wake key for a worm blocked on edge `e`:
    /// the edge itself under the static policy (only a release there can
    /// unblock it), the source router under pooling (a release on *any*
    /// sibling edge can return shared credit — the pool-release wakeup
    /// rule).
    #[inline]
    pub(crate) fn wait_key(&self, e: usize) -> usize {
        if self.pooled {
            self.edge_src[e] as usize
        } else {
            e
        }
    }

    /// Hard capacity-invariant check for edge `e`: the per-edge cap, and
    /// under pooling the source router's shared-portion and total-pool
    /// bounds. One checked helper instead of per-call-site assertions.
    pub(crate) fn check_capacity(&self, e: usize) {
        let h = self.holders[e] as u32;
        assert!(
            h <= self.per_edge_max,
            "edge {e} holds {h} > {} VCs",
            self.per_edge_max
        );
        if self.pooled {
            let r = self.edge_src[e] as usize;
            assert!(
                self.shared_used[r] <= self.shared_cap[r],
                "router {r} draws {} > {} shared VCs",
                self.shared_used[r],
                self.shared_cap[r]
            );
            assert!(
                self.pool_used[r] <= self.pool,
                "router {r} holds {} > pool {} VCs",
                self.pool_used[r],
                self.pool
            );
        }
    }

    /// [`Sim::check_capacity`] in debug builds only (the hot-path guard
    /// at every acquisition).
    #[inline]
    fn debug_check_capacity(&self, e: usize) {
        if cfg!(debug_assertions) {
            self.check_capacity(e);
        }
    }

    /// Acquires one VC on `e`, updating the per-router pool accounting.
    /// The caller handles `acquired`/`max_vcs` bookkeeping (it differs
    /// between the full-bandwidth and restricted steppers).
    #[inline]
    fn acquire_vc(&mut self, e: usize) {
        let h = self.holders[e];
        self.holders[e] = h + 1;
        let r = self.edge_src[e] as usize;
        self.pool_used[r] += 1;
        if self.pooled && h as u32 >= self.per_edge_min {
            self.shared_used[r] += 1;
        }
        self.debug_check_capacity(e);
    }

    /// Selects the wanted hop for pending worm `m` from start-of-step
    /// state and records it in the adaptive scratch. Pure in the sense
    /// that two engines evaluating it at the same step with the same
    /// holder counts make the same choice:
    ///
    /// 1. profitable adaptive candidate with a free VC, minimizing
    ///    `(holder count, edge id)`;
    /// 2. else (fully adaptive, budget left) the same rule over the
    ///    misroute candidates, u-turns excluded;
    /// 3. else the first hop of the escape route from the current node.
    fn select_pending(&mut self, m: u32) -> SelectedHop {
        let mi = m as usize;
        let a = self.worms[mi].advance as usize;
        let fully = self.config.route_selection == RouteSelection::FullyAdaptive;
        // Take the candidate scratch out of the adaptive state so the
        // filter below can call the shared [`Sim::edge_acquirable`]
        // policy query (one implementation for arbitration, parking,
        // and candidate filtering) without a conflicting borrow.
        let mut cand = std::mem::take(
            &mut self
                .adaptive
                .as_mut()
                .expect("pending worm without a router")
                .cand,
        );
        let ad = self.adaptive.as_ref().unwrap();
        let router = ad.router;
        let g = router.graph();
        let (head, prev) = if a == 0 {
            (ad.src[mi], None)
        } else {
            let e = ad.routes[mi][a - 1];
            (g.dst(e), Some(g.src(e)))
        };
        let dst = ad.dst[mi];
        debug_assert_ne!(head, dst, "pending worm already at its destination");
        let misroutes_ok = fully && ad.budget[mi] > 0;
        cand.clear();
        router.candidates(head, dst, misroutes_ok, &mut cand);
        // Candidate filter: the same acquirability query the arbitration
        // phase runs, on start-of-step state — so both engines see
        // identical candidate sets. Tie-break key: (start-of-step holder
        // count, edge id), both engine-independent, which is what keeps
        // adaptive runs inside the differential-oracle relation.
        let best = |want_profitable: bool, skip: Option<NodeId>| {
            cand.iter()
                .filter(|&&(e, p)| p == want_profitable && self.edge_acquirable(e.idx()))
                .filter(|&&(e, _)| skip != Some(g.dst(e)))
                .map(|&(e, _)| (self.holders[e.idx()], e.0))
                .min()
        };
        let sel = if let Some((_, edge)) = best(true, None) {
            SelectedHop::Adaptive {
                edge,
                misroute: false,
            }
        } else if let Some((_, edge)) = misroutes_ok.then(|| best(false, prev)).flatten() {
            SelectedHop::Adaptive {
                edge,
                misroute: true,
            }
        } else {
            SelectedHop::Escape {
                edge: router.escape_hop(head, dst).0,
            }
        };
        let ad = self.adaptive.as_mut().unwrap();
        ad.cand = cand;
        ad.selected[mi] = sel;
        sel
    }

    /// Classifies one active worm for this step: draining worms and
    /// VC-free final hops go to `movers`, everything else contends in
    /// `buckets` for its wanted edge. Shared by both engines (they only
    /// differ in which list they iterate).
    pub(crate) fn classify(&mut self, m: u32) {
        let w = &self.worms[m as usize];
        if w.pending_route {
            // Header at the end of the known path: select the next hop.
            let sel = self.select_pending(m);
            let edge = sel.edge().expect("selection always yields a hop");
            // Under faults, falling back to a severed escape continuation
            // means the worm has nowhere left to go: the adaptive
            // candidates are already filtered to live edges, and the
            // escape route is the only guaranteed-progress fallback. Doom
            // it — the apply phase discards it with `LinkDown`, after
            // arbitration, so selection by other pending worms this step
            // still reads unchanged start-of-step holder counts. (A
            // fault-aware router's escape routes avoid dead edges, so
            // this only fires for fault-oblivious escape routing.)
            if self.faulted() {
                if let SelectedHop::Escape { edge } = sel {
                    let ad = self.adaptive.as_ref().unwrap();
                    let head = ad.router.graph().src(EdgeId(edge));
                    let tail = ad.router.escape_route(head, ad.dst[m as usize]);
                    if tail.edges().iter().any(|&e| self.dead[e.idx()]) {
                        self.doomed.push(m);
                        return;
                    }
                }
            }
            let ad = self.adaptive.as_ref().unwrap();
            let lands_final = ad.router.graph().dst(EdgeId(edge)) == ad.dst[m as usize];
            if lands_final && self.config.final_edge == FinalEdgePolicy::Unlimited {
                self.movers.push(m); // delivery absorbs without a VC
            } else {
                self.buckets.push(edge as usize, m);
            }
            return;
        }
        if w.advance >= w.hops {
            self.movers.push(m); // draining into the delivery buffer
        } else {
            let next = w.advance + 1;
            if self.needs_vc(w, next) {
                let e = self.path_edge(m, next);
                self.buckets.push(e, m);
            } else {
                self.movers.push(m);
            }
        }
    }

    /// The edge a blocked worm wanted this step (for traces and the
    /// deadlock report): the freshly selected hop for pending worms, the
    /// next path edge otherwise.
    pub(crate) fn blocked_edge(&self, m: u32) -> u32 {
        let w = &self.worms[m as usize];
        if w.pending_route {
            self.adaptive.as_ref().unwrap().selected[m as usize]
                .edge()
                .expect("blocked pending worm was classified")
        } else {
            self.path_edge(m, w.advance + 1) as u32
        }
    }

    /// Phase-2 arbitration, shared by both engines: groups this step's
    /// contenders ([`FlatBuckets::group`]), splits each edge's group
    /// into winners (`movers`) and losers (`blocked`) from start-of-step
    /// holder counts.
    ///
    /// Under [`VcPolicy::RouterPooled`] sibling edges of one router can
    /// compete for the same shared credits within a single step, so the
    /// per-edge `free` counts are **allocated in ascending edge-id
    /// order** (tracked in `planned_shared`): a canonical rule that
    /// depends only on start-of-step state and the contender *sets* —
    /// both engine-independent — never on the order the engines
    /// discovered the groups in. The static policy needs no such
    /// cross-edge accounting and keeps the plain per-edge split.
    ///
    /// [`VcPolicy::RouterPooled`]: crate::config::VcPolicy::RouterPooled
    pub(crate) fn arbitrate(&mut self, t: u64) {
        let groups = self.buckets.group();
        if !self.pooled {
            for gi in 0..groups {
                let e = self.buckets.edge(gi);
                let free = self.free_vcs(e) as usize;
                let group = self.buckets.group_mut(gi);
                if group.len() > free {
                    if free == 0 {
                        self.blocked.extend_from_slice(group);
                        continue;
                    }
                    order_contenders(self.config, &self.specs, t, e, group);
                    self.blocked.extend_from_slice(&group[free..]);
                    self.movers.extend_from_slice(&group[..free]);
                } else {
                    self.movers.extend_from_slice(group);
                }
            }
            return;
        }
        {
            let Sim {
                group_order,
                buckets,
                ..
            } = self;
            group_order.clear();
            group_order.extend(0..groups as u32);
            group_order.sort_unstable_by_key(|&gi| buckets.edge(gi as usize));
        }
        for i in 0..self.group_order.len() {
            let gi = self.group_order[i] as usize;
            let e = self.buckets.edge(gi);
            let r = self.edge_src[e] as usize;
            let h = self.holders[e] as u32;
            let floor_free = self.per_edge_min.saturating_sub(h);
            let shared_free =
                (self.shared_cap[r] - self.shared_used[r]).saturating_sub(self.planned_shared[r]);
            let free = if self.is_dead(e) {
                0 // defensive: severed worms are discarded before classify
            } else {
                (self.per_edge_max.saturating_sub(h)).min(floor_free + shared_free) as usize
            };
            let group = self.buckets.group_mut(gi);
            if free == 0 {
                self.blocked.extend_from_slice(group);
                continue;
            }
            let granted = if group.len() > free {
                order_contenders(self.config, &self.specs, t, e, group);
                self.blocked.extend_from_slice(&group[free..]);
                self.movers.extend_from_slice(&group[..free]);
                free as u32
            } else {
                self.movers.extend_from_slice(group);
                group.len() as u32
            };
            let shared_taken = granted.saturating_sub(floor_free);
            if shared_taken > 0 {
                if self.planned_shared[r] == 0 {
                    self.touched_routers.push(r as u32);
                }
                self.planned_shared[r] += shared_taken;
            }
        }
        for i in 0..self.touched_routers.len() {
            self.planned_shared[self.touched_routers[i] as usize] = 0;
        }
        self.touched_routers.clear();
    }

    /// Commits pending worm `m`'s selected hop just before it advances:
    /// one adaptive edge (spending misroute budget where flagged), or
    /// the whole escape tail — after which the route is frozen and the
    /// worm is an ordinary oblivious worm for the rest of its journey.
    fn extend_route(&mut self, m: u32) {
        let mi = m as usize;
        let post_fault = self.next_kill > 0;
        let ad = self.adaptive.as_mut().expect("pending worm without state");
        debug_assert_eq!(ad.routes[mi].len() as u32, self.worms[mi].advance);
        match ad.selected[mi] {
            SelectedHop::Adaptive { edge, misroute } => {
                let e = EdgeId(edge);
                ad.routes[mi].push(e);
                if misroute {
                    ad.misroute_hops += 1;
                    ad.budget[mi] -= 1;
                    if post_fault {
                        self.fault_detour_hops += 1;
                    }
                }
                let arrived = ad.router.graph().dst(e) == ad.dst[mi];
                self.worms[mi].hops += 1;
                if arrived {
                    self.worms[mi].pending_route = false;
                }
            }
            SelectedHop::Escape { edge } => {
                let router = ad.router;
                let head = router.graph().src(EdgeId(edge));
                let tail = router.escape_route(head, ad.dst[mi]);
                debug_assert_eq!(tail.edges()[0], EdgeId(edge));
                ad.routes[mi].extend_from_slice(tail.edges());
                ad.escape_fallbacks += 1;
                self.worms[mi].hops += tail.len() as u32;
                self.worms[mi].pending_route = false;
            }
            SelectedHop::None => unreachable!("pending worm advanced without a selection"),
        }
    }

    fn run_inner(mut self) -> (SimResult, Vec<TraceEvent>) {
        // The parallel engine only accepts configurations whose step
        // semantics it can reproduce bit-for-bit; everything else falls
        // back to a sequential engine with an explicit note in the
        // result (`SimResult::engine_fallback`) — never silently.
        let engine_fallback = if let Engine::Parallel { .. } = self.config.engine {
            if self.faulted() {
                // Adaptive routing runs natively in the parallel engine;
                // fault plans are the one remaining routing fallback
                // (kills apply globally at start-of-step, which the
                // windowed scheme cannot yet reproduce).
                Some(EngineFallback::FaultInjection)
            } else if self.config.bandwidth == BandwidthModel::OneFlitPerStep {
                Some(EngineFallback::RestrictedBandwidth)
            } else if self.tracing {
                Some(EngineFallback::Tracing)
            } else {
                None
            }
        } else {
            None
        };
        let use_event = match self.config.engine {
            Engine::EventDriven => {
                self.config.bandwidth == BandwidthModel::BFlitsPerStep && !self.tracing
            }
            // A fallback run picks the fastest sequential engine that
            // accepts the configuration.
            Engine::Parallel { .. } => {
                engine_fallback.is_some()
                    && self.config.bandwidth == BandwidthModel::BFlitsPerStep
                    && !self.tracing
            }
            Engine::Legacy => false,
        };
        let use_parallel =
            matches!(self.config.engine, Engine::Parallel { .. }) && engine_fallback.is_none();
        let (outcome, t, deadlock_report) = if use_parallel {
            let threads = match self.config.engine {
                Engine::Parallel { threads } => threads,
                _ => unreachable!(),
            };
            crate::parallel::drive(&mut self, threads)
        } else if use_event {
            crate::engine::drive(&mut self)
        } else {
            self.drive_legacy()
        };

        let total_steps = match outcome {
            Outcome::Completed => self.last_finish,
            _ => t,
        };
        let total_stalls = self.outcomes.iter().map(|o| o.stalls).sum();
        let (escape_fallbacks, misroute_hops) = self
            .adaptive
            .as_ref()
            .map_or((0, 0), |a| (a.escape_fallbacks, a.misroute_hops));
        // Fault stats. The applied-kill cursor is engine-identical: the
        // event engine's fast-forwards stop at kill times exactly as they
        // stop at message releases, so both engines apply every schedule
        // entry at the same simulated step. Recovery time is the gap from
        // the last applied kill to the first delivery at or after it.
        let kills_applied = self.next_kill as u64;
        let fault_recovery_steps = if self.next_kill > 0 {
            let last_kill_at = self.kill_schedule[self.next_kill - 1].0;
            self.outcomes
                .iter()
                .filter_map(|o| o.finished)
                .filter(|&f| f >= last_kill_at)
                .min()
                .map_or(0, |f| f - last_kill_at)
        } else {
            0
        };
        // A capped run may end before the source emitted every message it
        // knows about; pad to the declared id bound so e.g. a replayed
        // slice still reports one (default) outcome per input spec.
        if let Some(bound) = self.source.id_bound() {
            if self.outcomes.len() < bound as usize {
                self.outcomes
                    .resize(bound as usize, MessageOutcome::default());
            }
        }
        (
            SimResult {
                outcome,
                total_steps,
                messages: self.outcomes,
                max_vcs_in_use: self.max_vcs as u32,
                max_pool_in_use: self.max_pool,
                total_stalls,
                flit_hops: self.flit_hops,
                escape_fallbacks,
                misroute_hops,
                kills_applied,
                fault_discards: self.fault_discards,
                fault_detour_hops: self.fault_detour_hops,
                fault_recovery_steps,
                deadlock: deadlock_report,
                open_loop: None,
                closed_loop: None,
                engine_fallback,
            },
            self.trace,
        )
    }

    /// The original per-step driver: rescans every active worm each step.
    pub(crate) fn drive_legacy(&mut self) -> (Outcome, u64, Option<DeadlockReport>) {
        let mut t: u64 = 0;
        let mut deadlock_report = None;
        let outcome = loop {
            // With nothing in flight the run is over iff the source is
            // dry (a reactive source with an idle network has flushed
            // every completion, so its answer is final). Otherwise
            // fast-forward over the idle gap — but never past the step
            // cap: a release at or beyond `max_steps` cannot run inside
            // the cap, so the run ends at exactly the cap instead of
            // silently simulating (and reporting) beyond it.
            if self.active.is_empty() {
                match self.peek_next_release(t) {
                    None => break Outcome::Completed,
                    Some(r) => {
                        if t >= self.config.max_steps {
                            break Outcome::MaxSteps;
                        }
                        if r >= self.config.max_steps {
                            t = self.config.max_steps;
                            break Outcome::MaxSteps;
                        }
                        t = t.max(r);
                    }
                }
            } else if t >= self.config.max_steps {
                break Outcome::MaxSteps;
            }
            // Kills scheduled at `t` take effect at the start of the step:
            // severed worms are discarded (their VCs released, visible to
            // this step's arbitration) before admissions, so messages
            // released at `t` already see the updated dead set.
            if self.faulted() && self.apply_kills(t) {
                let outcomes = &self.outcomes;
                self.active
                    .retain(|&m| outcomes[m as usize].discarded.is_none());
            }
            let new = self.admit_ready(t);
            for i in new {
                let m = self.admitted_id(i);
                // Skip messages discarded at admission (dead-on-arrival).
                if self.outcomes[m as usize].discarded.is_none() {
                    self.active.push(m);
                }
            }

            let moved = match self.config.bandwidth {
                BandwidthModel::BFlitsPerStep => self.step_full_bandwidth(t),
                BandwidthModel::OneFlitPerStep => self.step_restricted(t),
            };

            if !moved && !self.active.is_empty() && self.config.blocked == BlockedPolicy::Stall {
                // Static state: every active worm is blocked on a held VC
                // and releases only come from moves. Future arrivals cannot
                // free anything. Deadlock.
                deadlock_report = Some(self.build_deadlock_report());
                break Outcome::Deadlock(self.active.clone());
            }
            if self.config.check_invariants {
                self.validate();
            }
            t += 1;
        };
        (outcome, t, deadlock_report)
    }

    /// Rebuilds `active` (admitted, unretired, in admission order) —
    /// the event engine calls this on cold paths (deadlock, invariant
    /// checks) instead of paying an `O(active)` retire scan every step.
    pub(crate) fn rebuild_active(&mut self) {
        self.active.clear();
        for i in 0..self.admitted.len() {
            let m = self.admitted[i];
            let mi = m as usize;
            if !self.worms[mi].done() && self.outcomes[mi].discarded.is_none() {
                self.active.push(m);
            }
        }
    }

    /// Held 1-based path-edge span of `m`, under either bandwidth model.
    fn held_span(&self, m: u32) -> (u32, u32) {
        let mi = m as usize;
        let w = &self.worms[mi];
        if self.config.bandwidth == BandwidthModel::BFlitsPerStep {
            w.held_range()
        } else {
            let pos = &self.flit_pos[mi];
            let head = match pos[0] {
                FLIT_UNINJECTED => 0,
                FLIT_DELIVERED => w.hops,
                p => p,
            };
            let tail = match pos[pos.len() - 1] {
                FLIT_UNINJECTED => 0,
                FLIT_DELIVERED => w.hops,
                p => p - 1,
            };
            (tail + 1, head)
        }
    }

    /// Reconstructs the wait-for relation at the moment of deadlock: per
    /// blocked worm, the edge it wants and that edge's current holders.
    /// Holder lists are CSR over a dense per-edge index (a deadlocked
    /// near-saturation run holds a large fraction of all edges; the old
    /// `HashMap` paid a hash per held edge).
    pub(crate) fn build_deadlock_report(&self) -> DeadlockReport {
        let mut start = vec![0u32; self.num_edges + 1];
        for &m in &self.active {
            let w = &self.worms[m as usize];
            let (lo, hi) = self.held_span(m);
            for j in lo..=hi {
                if self.needs_vc(w, j) {
                    start[self.path_edge(m, j) + 1] += 1;
                }
            }
        }
        for e in 0..self.num_edges {
            start[e + 1] += start[e];
        }
        let mut cursor = start.clone();
        let mut hold = vec![0u32; start[self.num_edges] as usize];
        for &m in &self.active {
            let w = &self.worms[m as usize];
            let (lo, hi) = self.held_span(m);
            for j in lo..=hi {
                if self.needs_vc(w, j) {
                    let e = self.path_edge(m, j);
                    hold[cursor[e] as usize] = m;
                    cursor[e] += 1;
                }
            }
        }
        let mut waits = Vec::new();
        for &m in &self.active {
            let mi = m as usize;
            let w = &self.worms[mi];
            if w.pending_route {
                // A pending worm waits on the hop it selected during the
                // (movement-free) step that detected the deadlock.
                let e = self.blocked_edge(m) as usize;
                waits.push(WaitFor {
                    message: m,
                    edge: e as u32,
                    holders: hold[start[e] as usize..start[e + 1] as usize].to_vec(),
                });
                continue;
            }
            let wanted = if self.config.bandwidth == BandwidthModel::BFlitsPerStep {
                w.advance + 1
            } else {
                match self.flit_pos[mi][0] {
                    FLIT_UNINJECTED => 1,
                    FLIT_DELIVERED => continue, // draining; not head-blocked
                    p => p + 1,
                }
            };
            if wanted > w.hops {
                continue;
            }
            let e = self.path_edge(m, wanted);
            waits.push(WaitFor {
                message: m,
                edge: e as u32,
                holders: hold[start[e] as usize..start[e + 1] as usize].to_vec(),
            });
        }
        waits.sort_by_key(|w| w.message);
        DeadlockReport::from_waits(waits)
    }

    /// One step under the paper's primary model: every VC moves one flit.
    /// Returns whether any worm advanced.
    fn step_full_bandwidth(&mut self, t: u64) -> bool {
        self.movers.clear();
        self.blocked.clear();
        self.buckets.clear();
        self.doomed.clear();
        // Phase 1: classify worms into drains, contenders, free movers
        // (pending adaptive worms select their wanted hop here).
        for i in 0..self.active.len() {
            let m = self.active[i];
            self.classify(m);
        }
        // Phase 2: per-edge arbitration using start-of-step holder counts.
        self.arbitrate(t);
        // Phase 3: apply. Doomed worms (severed escape continuation) are
        // discarded here rather than during classification so their VC
        // releases land mid-step — visible at `t+1`, like any release.
        let moved = !self.movers.is_empty();
        for i in 0..self.movers.len() {
            let m = self.movers[i];
            self.apply_advance(m, t);
        }
        for i in 0..self.doomed.len() {
            let m = self.doomed[i];
            self.discard(m, t, DiscardReason::LinkDown);
        }
        for i in 0..self.blocked.len() {
            let m = self.blocked[i];
            self.outcomes[m as usize].stalls += 1;
            if self.tracing {
                let edge = self.blocked_edge(m);
                self.trace.push(TraceEvent::Blocked { t, msg: m, edge });
            }
            if self.config.blocked == BlockedPolicy::Discard {
                self.discard(m, t, DiscardReason::Delay);
            }
        }
        self.settle_max_vcs();
        self.retire_finished();
        // A fault discard is progress for the deadlock test: it released
        // VCs mid-step, so blocked worms may advance at `t+1`.
        moved || !self.doomed.is_empty()
    }

    /// One step under the restricted model: each physical edge transmits at
    /// most **one flit** per step, and flits advance *individually* (the
    /// buffering is still `B` one-flit VC buffers per edge, but the shared
    /// wire forces time-multiplexing). This per-flit semantics is what makes
    /// the paper's factor-`B` emulation hold: worms sharing one edge only
    /// contend on that edge's token, not on their entire pipelines.
    ///
    /// Flits of a worm are processed head-to-tail with current-state gap
    /// checks, so an unobstructed worm still advances every flit each step
    /// (completing in `d + L − 1`); cross-worm contention is resolved by the
    /// per-edge token in rotating worm order. Flits deliver strictly
    /// head-to-tail, so the loop starts at the first undelivered flit
    /// (`rfirst`) instead of rescanning the delivered prefix.
    fn step_restricted(&mut self, t: u64) -> bool {
        assert_eq!(
            self.config.blocked,
            BlockedPolicy::Stall,
            "Discard is not supported under the restricted bandwidth model"
        );
        for &e in &self.token_touched {
            self.tokens_used[e as usize] = false;
        }
        self.token_touched.clear();
        let n_active = self.active.len();
        let start = if n_active == 0 {
            0
        } else {
            (t as usize) % n_active
        };
        let mut any_moved = false;
        for off in 0..n_active {
            let m = self.active[(start + off) % n_active];
            let mi = m as usize;
            let d = self.worms[mi].hops;
            let length = self.worms[mi].length as usize;
            let mut worm_moved = false;
            for k in self.rfirst[mi] as usize..length {
                let p = self.flit_pos[mi][k];
                debug_assert_ne!(p, FLIT_DELIVERED, "delivered flit past rfirst");
                let target = if p == FLIT_UNINJECTED { 1 } else { p + 1 };
                if target > d {
                    continue; // defensive; crossing edge d delivers
                }
                if k > 0 {
                    // The slot ahead (buffer of `target`) must be free of the
                    // predecessor flit; processed head-first, a predecessor
                    // that moved this step already vacated it.
                    let pred = self.flit_pos[mi][k - 1];
                    if pred != FLIT_DELIVERED && pred <= target {
                        continue;
                    }
                } else {
                    // Head flit: acquires a VC on the edge it crosses.
                    if self.needs_vc(&self.worms[mi], target)
                        && !self.edge_acquirable(self.path_edge(m, target))
                    {
                        continue;
                    }
                }
                let e = self.path_edge(m, target);
                if self.tokens_used[e] {
                    continue;
                }
                // Apply the crossing.
                self.tokens_used[e] = true;
                self.token_touched.push(e as u32);
                self.flit_hops += 1;
                let delivered = target == d;
                self.flit_pos[mi][k] = if delivered { FLIT_DELIVERED } else { target };
                if delivered && k as u32 == self.rfirst[mi] {
                    self.rfirst[mi] += 1;
                }
                if k == 0 {
                    if self.needs_vc(&self.worms[mi], target) {
                        self.acquire_vc(e);
                        self.max_vcs = self.max_vcs.max(self.holders[e]);
                        self.max_pool =
                            self.max_pool.max(self.pool_used[self.edge_src[e] as usize]);
                        if self.tracing {
                            self.trace.push(TraceEvent::Acquire {
                                t,
                                msg: m,
                                edge: e as u32,
                            });
                        }
                    }
                    if self.outcomes[mi].first_move.is_none() {
                        self.outcomes[mi].first_move = Some(t);
                    }
                }
                if k == length - 1 {
                    // Tail: releases the buffer it left and, on delivery,
                    // the final edge's VC.
                    if p != FLIT_UNINJECTED && self.needs_vc(&self.worms[mi], p) {
                        let e_old = self.path_edge(m, p);
                        self.release_vc(e_old);
                    }
                    if delivered && self.needs_vc(&self.worms[mi], d) {
                        self.release_vc(e);
                    }
                }
                if delivered {
                    self.rdelivered[mi] += 1;
                    if self.rdelivered[mi] as usize == length {
                        self.outcomes[mi].finished = Some(t + 1);
                        self.last_finish = self.last_finish.max(t + 1);
                        self.unfinished -= 1;
                        self.record_done(m, t + 1, true);
                        if self.tracing {
                            self.trace.push(TraceEvent::Finish { t: t + 1, msg: m });
                        }
                    }
                }
                worm_moved = true;
            }
            if worm_moved {
                any_moved = true;
            } else {
                self.outcomes[mi].stalls += 1;
            }
        }
        let outcomes = &self.outcomes;
        self.active
            .retain(|&m| outcomes[m as usize].finished.is_none());
        any_moved
    }

    /// Releases one VC on `e`, returning per-router pool accounting and
    /// notifying the event engine's wait queues when any worm is parked.
    #[inline]
    fn release_vc(&mut self, e: usize) {
        let h = self.holders[e];
        self.holders[e] = h - 1;
        let r = self.edge_src[e] as usize;
        self.pool_used[r] -= 1;
        if self.pooled && h as u32 > self.per_edge_min {
            self.shared_used[r] -= 1;
        }
        if self.track_releases {
            self.released.push(e as u32);
        }
    }

    pub(crate) fn apply_advance(&mut self, m: u32, t: u64) {
        // A pending worm that won its wanted edge extends its route
        // first, so the acquisition below sees the updated path/hops
        // (and the possibly-final edge under its final-edge policy).
        if self.worms[m as usize].pending_route {
            self.extend_route(m);
        }
        let (hops, length, width) = {
            let w = &self.worms[m as usize];
            (w.hops, w.length, w.crossing_width())
        };
        self.flit_hops += width as u64;
        let out = &mut self.outcomes[m as usize];
        if out.first_move.is_none() {
            out.first_move = Some(t);
        }
        self.worms[m as usize].advance += 1;
        let a = self.worms[m as usize].advance;
        // Acquire the newly crossed edge.
        if a <= hops && self.needs_vc(&self.worms[m as usize], a) {
            let e = self.path_edge(m, a);
            self.acquire_vc(e);
            self.acquired.push(e as u32);
            if self.tracing {
                self.trace.push(TraceEvent::Acquire {
                    t,
                    msg: m,
                    edge: e as u32,
                });
            }
        }
        // Release the edge the tail just left.
        if a > length {
            let rel = a - length; // 1-based; always ≤ hops − 1 here
            if self.needs_vc(&self.worms[m as usize], rel) {
                let e = self.path_edge(m, rel);
                self.release_vc(e);
            }
        }
        if self.worms[m as usize].done() {
            // The final edge's VC is released on completion.
            if self.needs_vc(&self.worms[m as usize], hops) {
                let e = self.path_edge(m, hops);
                self.release_vc(e);
            }
            let out = &mut self.outcomes[m as usize];
            out.finished = Some(t + 1);
            self.last_finish = self.last_finish.max(t + 1);
            self.unfinished -= 1;
            self.record_done(m, t + 1, true);
            if self.tracing {
                self.trace.push(TraceEvent::Finish { t: t + 1, msg: m });
            }
        }
    }

    /// Batch-advances a draining worm (`advance ≥ hops`) from virtual time
    /// `*t` to `min(stop, finish)`, in O(released edges) instead of one
    /// call per step: drains acquire nothing and finish deterministically
    /// at `advance = hops + L − 1`, so the per-step effects collapse to a
    /// closed-form `flit_hops` sum, the tail's release sequence, and the
    /// finish bookkeeping. Only called by the event engine in contexts
    /// where no third party can observe the intermediate states (nothing
    /// parked; co-advancing worms are drains too, and drains only ever
    /// decrement holder counts, which commutes).
    pub(crate) fn fast_drain(&mut self, m: u32, t: &mut u64, stop: u64) {
        let mi = m as usize;
        let (hops, length, a0) = {
            let w = &self.worms[mi];
            (w.hops, w.length, w.advance)
        };
        debug_assert!(a0 >= hops && *t < stop);
        let fin_a = hops + length - 1;
        let k = ((fin_a - a0) as u64).min(stop - *t);
        if k == 0 {
            return; // already done
        }
        let a1 = a0 + k as u32;
        // flit_hops: Σ width(a) for a ∈ (a0, a1]; width(a) = hops while
        // a ≤ L (the tail is still injecting) and hops + L − a after.
        {
            let (d, l) = (hops as u64, length as u64);
            let (a0, a1) = (a0 as u64, a1 as u64);
            let flat_hi = a1.min(l);
            if flat_hi > a0 {
                self.flit_hops += d * (flat_hi - a0);
            }
            let s = a0.max(l) + 1;
            if a1 >= s {
                let (w_hi, w_lo) = (d + l - s, d + l - a1);
                self.flit_hops += (w_hi + w_lo) * (a1 - s + 1) / 2;
            }
        }
        // The tail leaves edges (a0+1−L ..= a1−L) ∩ [1, hops−1].
        if a1 > length {
            let lo = (a0 + 1).saturating_sub(length).max(1);
            for rel in lo..=a1 - length {
                if self.needs_vc(&self.worms[mi], rel) {
                    let e = self.path_edge(m, rel);
                    self.release_vc(e);
                }
            }
        }
        self.worms[mi].advance = a1;
        if a1 == fin_a {
            if self.needs_vc(&self.worms[mi], hops) {
                let e = self.path_edge(m, hops);
                self.release_vc(e);
            }
            let fin_t = *t + k; // the finishing advance ran at step t+k−1
            self.outcomes[mi].finished = Some(fin_t);
            self.last_finish = self.last_finish.max(fin_t);
            self.unfinished -= 1;
            self.record_done(m, fin_t, true);
        }
        *t += k;
    }

    /// Folds this step's acquisitions into `max_vcs_in_use`.
    ///
    /// Holder counts are sampled at **end of step**: within a step, the
    /// apply order of same-step acquires and releases on one edge is an
    /// implementation detail (and differs between engines), whereas the
    /// end-of-step count — and therefore the reported maximum — is
    /// order-free and engine-identical.
    pub(crate) fn settle_max_vcs(&mut self) {
        for i in 0..self.acquired.len() {
            let e = self.acquired[i] as usize;
            self.max_vcs = self.max_vcs.max(self.holders[e]);
            let r = self.edge_src[e] as usize;
            self.max_pool = self.max_pool.max(self.pool_used[r]);
        }
        self.acquired.clear();
    }

    pub(crate) fn discard(&mut self, m: u32, t: u64, reason: DiscardReason) {
        let (lo, hi) = self.worms[m as usize].held_range();
        for j in lo..=hi {
            if self.needs_vc(&self.worms[m as usize], j) {
                let e = self.path_edge(m, j);
                self.release_vc(e);
            }
        }
        self.outcomes[m as usize].discarded = Some(reason);
        if reason == DiscardReason::LinkDown {
            self.fault_discards += 1;
        }
        self.unfinished -= 1;
        self.record_done(m, t, false);
        if self.tracing {
            self.trace.push(TraceEvent::Discard { t, msg: m });
        }
        // Removal from the active list happens in retire_finished via the
        // discarded flag.
    }

    fn retire_finished(&mut self) {
        let outcomes = &self.outcomes;
        let worms = &self.worms;
        self.active
            .retain(|&m| !worms[m as usize].done() && outcomes[m as usize].discarded.is_none());
    }

    /// Recomputes VC holder counts from scratch and checks all invariants.
    /// The event engine rebuilds `active` before calling this.
    pub(crate) fn validate(&self) {
        if self.config.bandwidth == BandwidthModel::OneFlitPerStep {
            self.validate_restricted();
            return;
        }
        let mut expect = vec![0u16; self.num_edges];
        for &m in &self.active {
            let w = &self.worms[m as usize];
            let (lo, hi) = w.held_range();
            for j in lo..=hi {
                if self.needs_vc(w, j) {
                    expect[self.path_edge(m, j)] += 1;
                }
            }
        }
        assert_eq!(expect, self.holders, "VC accounting mismatch");
        self.validate_capacity();
        // Flit conservation per worm: injected − delivered == in-network.
        for &m in &self.active {
            let w = &self.worms[m as usize];
            let injected = w.advance.min(w.length);
            // A pending worm's header sits in the buffer of its newest
            // edge (advance == hops) and has delivered nothing — the
            // oblivious formula would misread that as an arrival.
            let (delivered, slack) = if w.pending_route {
                (0, 0)
            } else {
                // The held-edge count equals the in-network flit count,
                // except that once the header has arrived (advance ≥
                // hops) the destination edge's buffer clears instantly
                // while its VC is still held — one extra held edge.
                (
                    (w.advance + 1).saturating_sub(w.hops).min(w.length),
                    u32::from(w.advance >= w.hops),
                )
            };
            let in_net = (w.held_range().1 + 1).saturating_sub(w.held_range().0);
            let expected = injected - delivered;
            assert!(
                in_net == expected + slack,
                "flit conservation violated for message {m}: in_net={in_net} injected={injected} delivered={delivered}"
            );
        }
        // Adaptive bookkeeping: routes and worm state agree.
        if let Some(ad) = &self.adaptive {
            for &m in &self.active {
                let mi = m as usize;
                let w = &self.worms[mi];
                assert_eq!(
                    ad.routes[mi].len() as u32,
                    w.hops,
                    "route length out of sync for message {m}"
                );
                if w.pending_route {
                    assert_eq!(w.advance, w.hops, "pending worm ahead of its route");
                } else {
                    let g = ad.router.graph();
                    let last = *ad.routes[mi].last().expect("fixed route is nonempty");
                    assert_eq!(g.dst(last), ad.dst[mi], "frozen route misses dst");
                }
            }
        }
    }

    /// Recomputes the per-router pool counters from the holder counts
    /// and runs [`Sim::check_capacity`] on every edge — the shared
    /// capacity/pool validation both bandwidth models end with.
    fn validate_capacity(&self) {
        let mut pool_expect = vec![0u32; self.pool_used.len()];
        let mut shared_expect = vec![0u32; self.shared_used.len()];
        for (e, &h) in self.holders.iter().enumerate() {
            let r = self.edge_src[e] as usize;
            pool_expect[r] += h as u32;
            if self.pooled {
                shared_expect[r] += (h as u32).saturating_sub(self.per_edge_min);
            }
        }
        assert_eq!(
            pool_expect, self.pool_used,
            "router pool accounting mismatch"
        );
        assert_eq!(
            shared_expect, self.shared_used,
            "shared-portion accounting mismatch"
        );
        for e in 0..self.num_edges {
            self.check_capacity(e);
        }
    }

    /// Invariant checks for the restricted (per-flit) model.
    fn validate_restricted(&self) {
        let mut expect = vec![0u16; self.num_edges];
        for &m in &self.active {
            let mi = m as usize;
            let w = &self.worms[mi];
            let d = w.hops;
            let pos = &self.flit_pos[mi];
            // Flit positions are strictly ordered head-to-tail.
            for k in 1..pos.len() {
                let (a, b) = (pos[k - 1], pos[k]);
                if b != FLIT_UNINJECTED && a != FLIT_DELIVERED {
                    assert!(a > b, "flit order violated for message {m}: {a} !> {b}");
                }
            }
            // The delivered prefix and the skip index agree.
            let prefix = pos.iter().take_while(|&&p| p == FLIT_DELIVERED).count() as u32;
            assert_eq!(
                prefix, self.rfirst[mi],
                "rfirst out of sync for message {m}"
            );
            // Held VC range: (tail_released, head_acquired].
            let head_acq = match pos[0] {
                FLIT_UNINJECTED => 0,
                FLIT_DELIVERED => d,
                p => p,
            };
            let tail_rel = match pos[pos.len() - 1] {
                FLIT_UNINJECTED => 0,
                FLIT_DELIVERED => d,
                p => p - 1,
            };
            for j in tail_rel + 1..=head_acq {
                if self.needs_vc(w, j) {
                    expect[self.path_edge(m, j)] += 1;
                }
            }
            // Conservation: injected − delivered flits sit in buffers.
            let in_buffers = pos
                .iter()
                .filter(|&&p| p != FLIT_UNINJECTED && p != FLIT_DELIVERED)
                .count() as u32;
            let delivered = self.rdelivered[mi];
            let uninjected = pos.iter().filter(|&&p| p == FLIT_UNINJECTED).count() as u32;
            assert_eq!(
                in_buffers + delivered + uninjected,
                w.length,
                "flit conservation violated for message {m}"
            );
        }
        assert_eq!(expect, self.holders, "restricted VC accounting mismatch");
        self.validate_capacity();
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::specs_from_paths;
    use wormhole_topology::graph::{GraphBuilder, NodeId};
    use wormhole_topology::path::{Path, PathSet};
    use wormhole_topology::random_nets::shared_chain_instance;

    fn chain(n: u32) -> (Graph, Vec<wormhole_topology::graph::EdgeId>) {
        let mut b = GraphBuilder::new(n as usize);
        let edges = (0..n - 1)
            .map(|i| b.add_edge(NodeId(i), NodeId(i + 1)))
            .collect();
        (b.build(), edges)
    }

    fn cfg(b: u32) -> SimConfig {
        SimConfig::new(b).check_invariants(true)
    }

    #[test]
    fn single_worm_takes_d_plus_l_minus_1() {
        for (d, l) in [(1u32, 1u32), (1, 5), (5, 1), (7, 3), (3, 7), (10, 10)] {
            let (g, edges) = chain(d + 1);
            let spec = MessageSpec::new(Path::new(edges), l);
            let r = run_to_completion(&g, &[spec], &cfg(2));
            assert_eq!(
                r.total_steps,
                (d + l - 1) as u64,
                "d={d} l={l}: unblocked worm must take d+L−1 steps"
            );
            assert_eq!(r.messages[0].finished, Some((d + l - 1) as u64));
            assert_eq!(r.messages[0].stalls, 0);
            assert_eq!(r.flit_hops, (d as u64) * (l as u64));
        }
    }

    #[test]
    fn release_time_shifts_completion() {
        let (g, edges) = chain(4);
        let spec = MessageSpec::new(Path::new(edges), 2).release_at(10);
        let r = run_to_completion(&g, &[spec], &cfg(1));
        assert_eq!(r.total_steps, 10 + 3 + 2 - 1);
    }

    #[test]
    fn b_worms_share_an_edge_without_blocking() {
        // B identical messages over one chain: all fit on separate VCs and
        // finish together in d+L−1.
        for b in 1..=4u32 {
            let (g, ps) = shared_chain_instance(b, 6);
            let specs = specs_from_paths(&ps, 4);
            let r = run_to_completion(&g, &specs, &cfg(b));
            assert_eq!(r.total_steps, 6 + 4 - 1);
            assert_eq!(r.max_vcs_in_use, b);
            assert_eq!(r.total_stalls, 0);
        }
    }

    #[test]
    fn b_plus_one_worms_serialize_behind_b_vcs() {
        // C = B+1 identical worms: one must wait for a VC to free. The
        // freed VC appears when a finishing worm's tail leaves the first
        // edge, i.e. after L steps; so the last worm finishes later.
        let b = 2u32;
        let (g, ps) = shared_chain_instance(b + 1, 5);
        let specs = specs_from_paths(&ps, 4);
        let r = run_to_completion(&g, &specs, &cfg(b));
        assert!(r.total_steps > 5 + 4 - 1, "third worm must have waited");
        assert!(r.total_stalls > 0);
        assert_eq!(r.max_vcs_in_use, b);
    }

    #[test]
    fn full_serialization_when_b_is_1() {
        // C worms over a chain with B=1 serialize: worm i+1 grabs the first
        // edge's VC one step after worm i's tail leaves it (the release
        // lands at the end of step t, so acquisition happens at t+1).
        // Makespan = (C−1)·(L+1) + D + L − 1.
        let (c, d, l) = (4u32, 6u32, 3u32);
        let (g, ps) = shared_chain_instance(c, d);
        let specs = specs_from_paths(&ps, l);
        let r = run_to_completion(&g, &specs, &cfg(1));
        assert_eq!(r.total_steps, ((c - 1) * (l + 1) + d + l - 1) as u64);
    }

    #[test]
    fn deadlock_detected_on_two_cycle() {
        // Two worms chasing each other around a 4-cycle with B=1 and L
        // long enough that each holds its first edge while wanting the
        // other's: a → b → a. Classic wormhole deadlock.
        let mut bld = GraphBuilder::new(4);
        let e01 = bld.add_edge(NodeId(0), NodeId(1));
        let e12 = bld.add_edge(NodeId(1), NodeId(2));
        let e23 = bld.add_edge(NodeId(2), NodeId(3));
        let e30 = bld.add_edge(NodeId(3), NodeId(0));
        let g = bld.build();
        // Worm A: 0→1→2, worm B: 2→3→0→1. With L=3 and B=1, A holds e01
        // and wants e12... build mutual waits:
        let a = MessageSpec::new(Path::new(vec![e01, e12, e23]), 8);
        let bmsg = MessageSpec::new(Path::new(vec![e23, e30, e01]), 8);
        let r = run(&g, &[a, bmsg], &cfg(1));
        match r.outcome {
            Outcome::Deadlock(ids) => {
                assert_eq!(ids.len(), 2);
            }
            o => panic!("expected deadlock, got {o:?}"),
        }
    }

    #[test]
    fn discard_policy_drops_blocked_worms() {
        let (g, ps) = shared_chain_instance(3, 5);
        let specs = specs_from_paths(&ps, 4);
        let config = cfg(1).blocked(BlockedPolicy::Discard);
        let r = run(&g, &specs, &config);
        assert_eq!(r.outcome, Outcome::Completed);
        assert_eq!(r.delivered(), 1, "only one worm fits; others discarded");
        assert_eq!(r.discarded(), 2);
        assert_eq!(r.total_steps, 5 + 4 - 1);
    }

    #[test]
    fn max_steps_aborts() {
        let (g, ps) = shared_chain_instance(4, 5);
        let specs = specs_from_paths(&ps, 4);
        let config = cfg(1).max_steps(3);
        let r = run(&g, &specs, &config);
        assert_eq!(r.outcome, Outcome::MaxSteps);
    }

    #[test]
    fn sparse_schedule_never_overshoots_the_step_cap() {
        // A long idle gap before the second release: the fast-forward must
        // clamp at the cap instead of jumping to the release and reporting
        // total_steps > max_steps.
        let (g, edges) = chain(3);
        let specs = vec![
            MessageSpec::new(Path::new(edges.clone()), 2),
            MessageSpec::new(Path::new(edges), 2).release_at(1_000),
        ];
        let r = run(&g, &specs, &cfg(1).max_steps(10));
        assert_eq!(r.outcome, Outcome::MaxSteps);
        assert_eq!(r.total_steps, 10, "run must end exactly at the cap");
        assert_eq!(r.delivered(), 1, "the early worm still completes");
        assert!(r.messages[1].first_move.is_none(), "late worm never ran");
    }

    #[test]
    fn sparse_schedule_fast_forward_still_works_within_the_cap() {
        // Control arm: the same gap with a generous cap completes, and the
        // fast-forward lands the second worm at its release time.
        let (g, edges) = chain(3);
        let specs = vec![
            MessageSpec::new(Path::new(edges.clone()), 2),
            MessageSpec::new(Path::new(edges), 2).release_at(1_000),
        ];
        let r = run_to_completion(&g, &specs, &cfg(1));
        assert_eq!(r.total_steps, 1_000 + 2 + 2 - 1);
        assert_eq!(r.messages[1].first_move, Some(1_000));
    }

    #[test]
    fn arbitration_priority_rank_orders_winners() {
        // Two worms contend for one VC; the one with lower priority value
        // must win regardless of id.
        let (g, edges) = chain(5);
        let p = Path::new(edges);
        let m0 = MessageSpec::new(p.clone(), 3).with_priority(5);
        let m1 = MessageSpec::new(p, 3).with_priority(1);
        let config = cfg(1).arbitration(Arbitration::PriorityRank);
        let r = run_to_completion(&g, &[m0, m1], &config);
        assert!(
            r.messages[1].finished.unwrap() < r.messages[0].finished.unwrap(),
            "higher-priority (lower value) worm must finish first"
        );
    }

    #[test]
    fn random_arbitration_is_deterministic_per_seed() {
        let (g, ps) = shared_chain_instance(6, 8);
        let specs = specs_from_paths(&ps, 5);
        let c1 = cfg(2).arbitration(Arbitration::Random).seed(42);
        let r1 = run_to_completion(&g, &specs, &c1);
        let r2 = run_to_completion(&g, &specs, &c1);
        for (a, b) in r1.messages.iter().zip(&r2.messages) {
            assert_eq!(a.finished, b.finished);
        }
    }

    #[test]
    fn restricted_model_single_worm_is_unslowed() {
        // One worm alone: it crosses ≤ min(L, d) edges per step but that
        // needs only its own tokens, so it still advances every step.
        let (g, edges) = chain(6);
        let spec = MessageSpec::new(Path::new(edges), 4);
        let config = cfg(2).bandwidth(BandwidthModel::OneFlitPerStep);
        let r = run_to_completion(&g, &[spec], &config);
        assert_eq!(r.total_steps, 5 + 4 - 1);
    }

    #[test]
    fn restricted_model_b_worms_timeshare() {
        // B worms on one chain under the restricted model: the shared edges
        // have 1 flit/step of bandwidth, so B worms take ≈ B times longer
        // than under the full-bandwidth model.
        let b = 3u32;
        let (g, ps) = shared_chain_instance(b, 8);
        let specs = specs_from_paths(&ps, 6);
        let full = run_to_completion(&g, &specs, &cfg(b));
        let restricted = run_to_completion(
            &g,
            &specs,
            &cfg(b).bandwidth(BandwidthModel::OneFlitPerStep),
        );
        assert!(
            restricted.total_steps >= (b as u64 - 1) * full.total_steps / 2,
            "restricted {} vs full {}",
            restricted.total_steps,
            full.total_steps
        );
        assert!(restricted.total_steps >= full.total_steps);
    }

    #[test]
    fn unlimited_final_edge_allows_oversubscription_at_sink() {
        // Many single-edge messages into one sink: with Unlimited they all
        // finish in L steps (no VC constraint on the final edge).
        let (g, edges) = chain(2);
        let specs: Vec<_> = (0..5)
            .map(|_| MessageSpec::new(Path::new(edges.clone()), 3))
            .collect();
        let config = cfg(1).final_edge(FinalEdgePolicy::Unlimited);
        let r = run_to_completion(&g, &specs, &config);
        assert_eq!(r.total_steps, 1 + 3 - 1);
        // Whereas under RequiresVc they serialize.
        let r2 = run_to_completion(&g, &specs, &cfg(1));
        assert!(r2.total_steps > r.total_steps);
    }

    #[test]
    fn staggered_releases_pipeline_cleanly() {
        // Two worms on the same chain, second released one step after the
        // first's tail frees the first edge (release during step L−1+... the
        // first edge frees during step L, usable at L+1): no stalls.
        let (g, edges) = chain(6);
        let l = 4u32;
        let m0 = MessageSpec::new(Path::new(edges.clone()), l);
        let m1 = MessageSpec::new(Path::new(edges), l).release_at(l as u64 + 1);
        let r = run_to_completion(&g, &[m0, m1], &cfg(1));
        assert_eq!(r.total_stalls, 0);
        assert_eq!(
            r.messages[1].finished,
            Some((l + 1) as u64 + 5 + l as u64 - 1)
        );
    }

    #[test]
    fn empty_spec_list_completes_instantly() {
        let (g, _) = chain(3);
        let r = run(&g, &[], &cfg(1));
        assert_eq!(r.outcome, Outcome::Completed);
        assert_eq!(r.total_steps, 0);
    }

    #[test]
    fn flit_hops_counts_total_work() {
        let (g, ps) = shared_chain_instance(2, 4);
        let specs = specs_from_paths(&ps, 3);
        let r = run_to_completion(&g, &specs, &cfg(2));
        assert_eq!(r.flit_hops, 2 * 4 * 3);
    }

    #[test]
    fn worms_with_different_lengths_and_paths() {
        let (g, edges) = chain(8);
        let specs = vec![
            MessageSpec::new(Path::new(edges[0..3].to_vec()), 2),
            MessageSpec::new(Path::new(edges[2..7].to_vec()), 9),
            MessageSpec::new(Path::new(edges[5..6].to_vec()), 1),
        ];
        let r = run_to_completion(&g, &specs, &cfg(2));
        assert_eq!(r.delivered(), 3);
        for (i, m) in r.messages.iter().enumerate() {
            let lb = specs[i].unblocked_time();
            assert!(m.finished.unwrap() >= lb);
        }
    }

    #[test]
    fn trace_records_acquisitions_and_finish() {
        let (g, edges) = chain(5);
        let spec = MessageSpec::new(Path::new(edges), 3);
        let (r, trace) = run_traced(&g, &[spec], &cfg(1));
        assert_eq!(r.outcome, Outcome::Completed);
        let acquires = trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::Acquire { .. }))
            .count();
        assert_eq!(acquires, 4, "one acquisition per path edge");
        assert!(matches!(
            trace.last(),
            Some(TraceEvent::Finish { t: 6, msg: 0 })
        ));
    }

    #[test]
    fn trace_records_blocks_and_discards() {
        let (g, ps) = shared_chain_instance(2, 4);
        let specs = specs_from_paths(&ps, 3);
        let config = cfg(1).blocked(BlockedPolicy::Discard);
        let (r, trace) = run_traced(&g, &specs, &config);
        assert_eq!(r.discarded(), 1);
        assert!(trace
            .iter()
            .any(|e| matches!(e, TraceEvent::Blocked { t: 0, msg: 1, .. })));
        assert!(trace
            .iter()
            .any(|e| matches!(e, TraceEvent::Discard { t: 0, msg: 1 })));
    }

    #[test]
    fn deadlock_report_names_the_cycle() {
        let mut bld = GraphBuilder::new(4);
        let e01 = bld.add_edge(NodeId(0), NodeId(1));
        let e12 = bld.add_edge(NodeId(1), NodeId(2));
        let e23 = bld.add_edge(NodeId(2), NodeId(3));
        let e30 = bld.add_edge(NodeId(3), NodeId(0));
        let g = bld.build();
        let a = MessageSpec::new(Path::new(vec![e01, e12, e23]), 8);
        let bmsg = MessageSpec::new(Path::new(vec![e23, e30, e01]), 8);
        let r = run(&g, &[a, bmsg], &cfg(1));
        let rep = r.deadlock.expect("deadlock report present");
        assert_eq!(rep.cycle.len(), 2, "mutual wait: {rep:?}");
        // Worm 0 waits on e23 (held by 1), worm 1 waits on e01 (held by 0).
        let w0 = rep.waits.iter().find(|w| w.message == 0).unwrap();
        assert_eq!(w0.edge, e23.0);
        assert_eq!(w0.holders, vec![1]);
        let w1 = rep.waits.iter().find(|w| w.message == 1).unwrap();
        assert_eq!(w1.edge, e01.0);
        assert_eq!(w1.holders, vec![0]);
    }

    #[test]
    fn completed_runs_have_no_deadlock_report() {
        let (g, edges) = chain(3);
        let r = run_to_completion(&g, &[MessageSpec::new(Path::new(edges), 2)], &cfg(1));
        assert!(r.deadlock.is_none());
    }

    #[test]
    fn pathset_helper_roundtrip() {
        let (g, edges) = chain(4);
        let ps = PathSet::new(vec![Path::new(edges.clone()), Path::new(edges)]);
        let specs = specs_from_paths(&ps, 7);
        assert_eq!(specs.len(), 2);
        let r = run_to_completion(&g, &specs, &cfg(2));
        assert_eq!(r.delivered(), 2);
    }

    // ---- engine differential fixtures -------------------------------

    /// Runs `specs` under both engines and asserts bit-identical results
    /// (the differential-oracle relation; the proptest suite widens it to
    /// random workloads).
    fn assert_engines_agree(g: &Graph, specs: &[MessageSpec], config: &SimConfig) -> SimResult {
        let event = run(g, specs, &config.clone().engine(Engine::EventDriven));
        let legacy = run(g, specs, &config.clone().engine(Engine::Legacy));
        assert!(
            event.same_execution(&legacy),
            "engines diverged:\n event: {event:?}\nlegacy: {legacy:?}"
        );
        event
    }

    #[test]
    fn engines_agree_on_contended_chains() {
        for (c, d, l, b) in [
            (4u32, 6u32, 3u32, 1u32),
            (6, 8, 5, 2),
            (3, 5, 4, 3),
            (5, 4, 9, 2),
        ] {
            let (g, ps) = shared_chain_instance(c, d);
            let specs = specs_from_paths(&ps, l);
            let r = assert_engines_agree(&g, &specs, &cfg(b));
            assert_eq!(r.delivered(), c as usize);
        }
    }

    #[test]
    fn engines_agree_under_every_arbitration_policy() {
        let (g, ps) = shared_chain_instance(6, 7);
        for pol in [
            Arbitration::FifoById,
            Arbitration::OldestFirst,
            Arbitration::PriorityRank,
            Arbitration::Random,
        ] {
            let specs: Vec<MessageSpec> = specs_from_paths(&ps, 5)
                .into_iter()
                .enumerate()
                .map(|(i, s)| {
                    let r = (i as u64 % 3) * 2;
                    s.release_at(r).with_priority((7 - i) as u32)
                })
                .collect();
            assert_engines_agree(&g, &specs, &cfg(2).arbitration(pol).seed(99));
        }
    }

    #[test]
    fn engines_agree_on_deadlock_and_report() {
        let mut bld = GraphBuilder::new(4);
        let e01 = bld.add_edge(NodeId(0), NodeId(1));
        let e12 = bld.add_edge(NodeId(1), NodeId(2));
        let e23 = bld.add_edge(NodeId(2), NodeId(3));
        let e30 = bld.add_edge(NodeId(3), NodeId(0));
        let g = bld.build();
        let a = MessageSpec::new(Path::new(vec![e01, e12, e23]), 8);
        let bmsg = MessageSpec::new(Path::new(vec![e23, e30, e01]), 8);
        let r = assert_engines_agree(&g, &[a, bmsg], &cfg(1));
        assert!(matches!(r.outcome, Outcome::Deadlock(_)));
        assert!(r.deadlock.is_some());
    }

    #[test]
    fn engines_agree_at_the_step_cap() {
        // Partial state at a MaxSteps abort — including the arithmetic
        // stall top-up for still-parked worms — must match the legacy
        // per-step counts exactly.
        let (g, ps) = shared_chain_instance(5, 6);
        let specs = specs_from_paths(&ps, 4);
        for cap in [1u64, 3, 7, 12, 20] {
            let r = assert_engines_agree(&g, &specs, &cfg(1).max_steps(cap));
            if cap <= 12 {
                assert_eq!(r.outcome, Outcome::MaxSteps, "cap {cap}");
            }
        }
    }

    #[test]
    fn engines_agree_under_discard() {
        let (g, ps) = shared_chain_instance(4, 5);
        let specs = specs_from_paths(&ps, 4);
        let r = assert_engines_agree(&g, &specs, &cfg(1).blocked(BlockedPolicy::Discard));
        assert_eq!(r.outcome, Outcome::Completed);
        assert_eq!(r.discarded(), 3);
    }

    #[test]
    fn engines_agree_on_sparse_schedules() {
        // Idle-gap jumps and lone-worm fast-forward against the legacy
        // stepper's step-by-step walk.
        let (g, edges) = chain(6);
        let specs = vec![
            MessageSpec::new(Path::new(edges.clone()), 3),
            MessageSpec::new(Path::new(edges.clone()), 5).release_at(40),
            MessageSpec::new(Path::new(edges), 2).release_at(41),
        ];
        let r = assert_engines_agree(&g, &specs, &cfg(1));
        assert_eq!(r.outcome, Outcome::Completed);
    }

    #[test]
    fn deadlock_report_regression_on_two_cycle() {
        // The dense per-edge holder index must reproduce the exact report
        // the HashMap-based builder produced on the two-cycle fixture.
        let mut bld = GraphBuilder::new(4);
        let e01 = bld.add_edge(NodeId(0), NodeId(1));
        let e12 = bld.add_edge(NodeId(1), NodeId(2));
        let e23 = bld.add_edge(NodeId(2), NodeId(3));
        let e30 = bld.add_edge(NodeId(3), NodeId(0));
        let g = bld.build();
        let a = MessageSpec::new(Path::new(vec![e01, e12, e23]), 8);
        let bmsg = MessageSpec::new(Path::new(vec![e23, e30, e01]), 8);
        for engine in [Engine::EventDriven, Engine::Legacy] {
            let r = run(&g, &[a.clone(), bmsg.clone()], &cfg(1).engine(engine));
            let rep = r.deadlock.expect("deadlock report present");
            assert_eq!(
                rep.waits,
                vec![
                    WaitFor {
                        message: 0,
                        edge: e23.0,
                        holders: vec![1],
                    },
                    WaitFor {
                        message: 1,
                        edge: e01.0,
                        holders: vec![0],
                    },
                ],
                "{engine:?}"
            );
            assert_eq!(rep.cycle, vec![0, 1], "{engine:?}");
        }
    }

    #[test]
    fn flat_buckets_group_reset_roundtrip() {
        let mut b = FlatBuckets::with_edges(8);
        for round in 0..3 {
            b.clear();
            b.push(5, 10 + round);
            b.push(2, 20);
            b.push(5, 30);
            b.push(7, 40);
            b.push(2, 50);
            let groups = b.group();
            assert_eq!(groups, 3);
            // First-touch edge order, discovery order within an edge.
            assert_eq!(b.edge(0), 5);
            assert_eq!(b.group_mut(0), &[10 + round, 30]);
            assert_eq!(b.edge(1), 2);
            assert_eq!(b.group_mut(1), &[20, 50]);
            assert_eq!(b.edge(2), 7);
            assert_eq!(b.group_mut(2), &[40]);
        }
    }

    // ---- adaptive route selection ------------------------------------

    use wormhole_topology::mesh::{Mesh, RoutingDiscipline};

    fn adaptive_torus(radix: u32, dims: u32) -> Mesh {
        Mesh::new_disciplined(radix, dims, true, RoutingDiscipline::AdaptiveEscape)
    }

    /// Specs whose paths are the oblivious dateline routes (adaptive runs
    /// only read the endpoints from them).
    fn adaptive_specs(m: &Mesh, pairs: &[(u32, u32)], l: u32) -> Vec<MessageSpec> {
        pairs
            .iter()
            .map(|&(s, d)| MessageSpec::new(m.route(NodeId(s), NodeId(d)), l))
            .collect()
    }

    #[test]
    fn lone_adaptive_worm_is_minimal_and_unslowed() {
        // An uncontended minimal-adaptive worm still takes d + L − 1
        // steps: per-hop selection never lengthens a minimal route.
        let t = adaptive_torus(8, 1);
        let specs = adaptive_specs(&t, &[(0, 3)], 4);
        for sel in [
            RouteSelection::MinimalAdaptive,
            RouteSelection::FullyAdaptive,
        ] {
            let cfg = cfg(2).route_selection(sel);
            let r = run_adaptive_to_completion(&t, &specs, &cfg);
            assert_eq!(r.total_steps, (3 + 4 - 1) as u64, "{sel:?}");
            assert_eq!(r.total_stalls, 0);
            assert_eq!(r.escape_fallbacks, 0);
            assert_eq!(r.misroute_hops, 0);
            assert_eq!(r.flit_hops, 3 * 4);
        }
    }

    #[test]
    fn adaptive_oblivious_config_falls_back_to_fixed_paths() {
        // RouteSelection::Oblivious through run_adaptive is exactly run().
        let t = adaptive_torus(4, 2);
        let specs = adaptive_specs(&t, &[(0, 5), (3, 9), (12, 2)], 3);
        let a = run_adaptive(&t, &specs, &cfg(2));
        let b = run(t.graph(), &specs, &cfg(2));
        assert!(a.same_execution(&b));
    }

    #[test]
    fn minimal_adaptive_spreads_over_dimensions_under_contention() {
        // Two worms from the same source to the same far corner of a 2D
        // torus with B = 1 on the adaptive lane: oblivious dimension-order
        // serializes them on the first hop, minimal-adaptive routes the
        // second worm around the other dimension — both finish without
        // either falling back or serializing fully.
        let t = adaptive_torus(4, 2);
        let pairs = [(0u32, 10u32), (0, 10)]; // (0,0) -> (2,2)
        let specs = adaptive_specs(&t, &pairs, 6);
        let adaptive = run_adaptive_to_completion(
            &t,
            &specs,
            &cfg(1).route_selection(RouteSelection::MinimalAdaptive),
        );
        let oblivious = run_to_completion(t.graph(), &specs, &cfg(1));
        assert!(
            adaptive.total_steps < oblivious.total_steps,
            "path diversity must beat dimension-order serialization: \
             adaptive {} vs oblivious {}",
            adaptive.total_steps,
            oblivious.total_steps
        );
        // Both worms pick the same least-occupied edge in step 0 (their
        // views are identical), so the loser stalls once and then routes
        // around the other dimension — contention ends there.
        assert!(
            adaptive.total_stalls < oblivious.total_stalls,
            "adaptive {} vs oblivious {} stalls",
            adaptive.total_stalls,
            oblivious.total_stalls
        );
    }

    #[test]
    fn saturated_adaptive_lane_drains_via_escape_channels() {
        // All four worms circle the same 1D ring direction (distance 2,
        // ties break toward +) with B = 1: each grabs its first adaptive
        // hop, then finds its second held by the next worm — the classic
        // wrap cycle. Every second hop must fall back to the escape pair,
        // and every worm still completes (the escape network is
        // deadlock-free by construction).
        let t = adaptive_torus(4, 1);
        let pairs: Vec<(u32, u32)> = (0..4).map(|i| (i, (i + 2) % 4)).collect();
        let specs = adaptive_specs(&t, &pairs, 8);
        let cfg = cfg(1).route_selection(RouteSelection::MinimalAdaptive);
        let r = run_adaptive_to_completion(&t, &specs, &cfg);
        assert!(r.escape_fallbacks > 0, "adaptive lane must saturate: {r:?}");
        assert_eq!(r.delivered(), 4);
    }

    #[test]
    fn misroute_budget_bounds_fully_adaptive_wandering() {
        let t = adaptive_torus(4, 2);
        let pairs: Vec<(u32, u32)> = (0..16).map(|i| (i, (i + 5) % 16)).collect();
        for quota in [0u32, 2, 4] {
            let specs = adaptive_specs(&t, &pairs, 6);
            let cfg = cfg(1)
                .route_selection(RouteSelection::FullyAdaptive)
                .misroute_quota(quota);
            let r = run_adaptive_to_completion(&t, &specs, &cfg);
            assert_eq!(r.delivered(), 16);
            assert!(
                r.misroute_hops <= (quota as u64) * 16,
                "quota {quota}: {} misroutes",
                r.misroute_hops
            );
            if quota == 0 {
                assert_eq!(r.misroute_hops, 0);
            }
        }
    }

    #[test]
    fn adaptive_engines_agree_on_contended_tori() {
        for sel in [
            RouteSelection::MinimalAdaptive,
            RouteSelection::FullyAdaptive,
        ] {
            for (radix, dims, b, l) in [(4u32, 2u32, 1u32, 6u32), (8, 1, 2, 4), (4, 2, 2, 3)] {
                let t = adaptive_torus(radix, dims);
                let n = t.num_nodes();
                let pairs: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + n / 2) % n)).collect();
                let specs = adaptive_specs(&t, &pairs, l);
                let config = cfg(b).route_selection(sel).arbitration(Arbitration::Random);
                let ev = run_adaptive(&t, &specs, &config.clone().engine(Engine::EventDriven));
                let lg = run_adaptive(&t, &specs, &config.clone().engine(Engine::Legacy));
                assert!(
                    ev.same_execution(&lg),
                    "{sel:?} {radix}^{dims} B={b} diverged:\n event: {ev:?}\nlegacy: {lg:?}"
                );
            }
        }
    }

    #[test]
    fn adaptive_routes_respect_the_unlimited_final_edge() {
        // Many single-hop messages into one sink under Unlimited: the
        // selected hop lands on the destination, so no VC is needed and
        // they all finish together — mirroring the oblivious semantics.
        let t = adaptive_torus(4, 1);
        let pairs = [(0u32, 1u32), (0, 1), (0, 1), (0, 1), (0, 1)];
        let specs = adaptive_specs(&t, &pairs, 3);
        let config = cfg(1)
            .route_selection(RouteSelection::MinimalAdaptive)
            .final_edge(FinalEdgePolicy::Unlimited);
        let r = run_adaptive_to_completion(&t, &specs, &config);
        assert_eq!(r.total_steps, 1 + 3 - 1);
        assert_eq!(r.total_stalls, 0);
    }

    #[test]
    #[should_panic(expected = "needs run_adaptive")]
    fn oblivious_entry_point_rejects_adaptive_configs() {
        let t = adaptive_torus(4, 1);
        let specs = adaptive_specs(&t, &[(0, 2)], 2);
        let config = cfg(1).route_selection(RouteSelection::MinimalAdaptive);
        let _ = run(t.graph(), &specs, &config);
    }

    // ---- dynamic (router-pooled) VC allocation ------------------------

    use crate::config::VcPolicy;

    /// A 1→2 star: router 0 owns edges `e01` and `e02` (fanout 2), each
    /// continuing one more hop so worms can be held in-network.
    fn star() -> (Graph, EdgeId, EdgeId) {
        let mut b = GraphBuilder::new(5);
        let e01 = b.add_edge(NodeId(0), NodeId(1));
        let e02 = b.add_edge(NodeId(0), NodeId(2));
        b.add_edge(NodeId(1), NodeId(3));
        b.add_edge(NodeId(2), NodeId(4));
        (b.build(), e01, e02)
    }

    fn pooled_cfg(pool: u32, min: u32, max: u32) -> SimConfig {
        SimConfig::new(1)
            .vc_policy(VcPolicy::pooled(pool, min, max))
            .check_invariants(true)
    }

    #[test]
    fn degenerate_pooled_is_bit_identical_to_static() {
        // pool = B·fanout with min = max = B leaves the shared portion
        // empty: every field of the result must match Static(B).
        let (g, ps) = shared_chain_instance(5, 6);
        let specs = specs_from_paths(&ps, 4);
        for b in [1u32, 2, 3] {
            let stat = run(&g, &specs, &cfg(b));
            let fanout = g.max_out_degree() as u32;
            let pooled = run(&g, &specs, &pooled_cfg(b * fanout, b, b));
            assert!(
                stat.same_execution(&pooled),
                "B={b} diverged:\nstatic: {stat:?}\npooled: {pooled:?}"
            );
        }
    }

    #[test]
    fn pooled_edges_share_the_router_pool_on_demand() {
        // Equal aggregate storage at router 0 (4 VCs over fanout 2):
        // static B=2 admits only 2 of the 3 worms wanting e01 in step 0;
        // pooled (floor 1, cap 4) lends the idle sibling's spare VC to
        // the hot edge, admits all 3, and finishes sooner.
        let (g, e01, e02) = star();
        let mk = |e: EdgeId| MessageSpec::new(Path::new(vec![e]), 3);
        let specs = vec![mk(e01), mk(e01), mk(e01), mk(e02)];
        let stat = run_to_completion(&g, &specs, &cfg(2).check_invariants(true));
        let pooled = run_to_completion(&g, &specs, &pooled_cfg(4, 1, 4));
        assert_eq!(stat.max_vcs_in_use, 2);
        assert_eq!(
            pooled.max_vcs_in_use, 3,
            "hot edge must borrow from the pool"
        );
        assert!(pooled.max_pool_in_use <= 4);
        assert!(
            pooled.total_steps < stat.total_steps,
            "pooled {} !< static {}",
            pooled.total_steps,
            stat.total_steps
        );
        assert_eq!(pooled.total_stalls, 0);
    }

    #[test]
    fn pooled_floor_reserves_capacity_for_the_idle_edge() {
        // Pool 3 over fanout 2 (shared portion 1): two worms saturate
        // e01 (floor + the only shared credit), yet a later worm on e02
        // must still advance immediately — its floor VC is reserved, not
        // poolable.
        let (g, e01, e02) = star();
        let specs = vec![
            MessageSpec::new(Path::new(vec![e01]), 8),
            MessageSpec::new(Path::new(vec![e01]), 8),
            MessageSpec::new(Path::new(vec![e02]), 2).release_at(1),
        ];
        let r = run_to_completion(&g, &specs, &pooled_cfg(3, 1, 3));
        assert_eq!(r.messages[2].first_move, Some(1), "floor VC must be free");
        assert_eq!(r.messages[2].stalls, 0);
        assert_eq!(r.max_pool_in_use, 3);
    }

    #[test]
    fn pooled_per_edge_max_caps_a_single_edge() {
        // Plenty of pool, but per_edge_max = 2: the third worm on e01
        // stalls even though shared credit remains.
        let (g, e01, _) = star();
        let mk = || MessageSpec::new(Path::new(vec![e01]), 3);
        let r = run_to_completion(&g, &[mk(), mk(), mk()], &pooled_cfg(6, 1, 2));
        assert_eq!(r.max_vcs_in_use, 2);
        assert!(r.total_stalls > 0, "third worm must wait for the cap");
    }

    #[test]
    fn pooled_engines_agree_on_sibling_release_wakeups() {
        // The pool-release wakeup rule end to end: w3 parks on e01
        // needing *shared* credit (its floor is taken by the long-held
        // w2), and the credit only returns when the sibling edge e02
        // releases — an event the edge-keyed static wakeup would never
        // see. Both engines must agree on the stall accounting.
        let (g, e01, e02) = star();
        let specs = vec![
            MessageSpec::new(Path::new(vec![e02]), 6),
            MessageSpec::new(Path::new(vec![e02]), 6),
            MessageSpec::new(Path::new(vec![e01]), 20),
            MessageSpec::new(Path::new(vec![e01]), 2).release_at(1),
        ];
        let config = pooled_cfg(3, 1, 2);
        let r = assert_engines_agree(&g, &specs, &config);
        assert_eq!(r.outcome, Outcome::Completed);
        assert!(
            r.messages[3].stalls > 0,
            "w3 must wait for the sibling release: {r:?}"
        );
    }

    #[test]
    fn engines_agree_on_edge_disjoint_router_sharing_paths() {
        // Regression: two worms with edge-disjoint paths that both leave
        // router 0. The disjoint-paths fast-forward must NOT serialize
        // them — they share router 0's `pool_used` counter, and the
        // legacy lock-step sees both VCs at the router simultaneously
        // (`max_pool_in_use = 2`), a state a serial free-run would never
        // visit. The independence check therefore requires source-router
        // disjointness too, under both policies.
        let (g, e01, e02) = star();
        let e13 = Graph::find_edge(&g, NodeId(1), NodeId(3)).unwrap();
        let e24 = Graph::find_edge(&g, NodeId(2), NodeId(4)).unwrap();
        let specs = vec![
            MessageSpec::new(Path::new(vec![e01, e13]), 4),
            MessageSpec::new(Path::new(vec![e02, e24]), 4),
        ];
        let r = assert_engines_agree(&g, &specs, &cfg(1));
        assert_eq!(r.max_pool_in_use, 2, "both worms hold router 0 at once");
        let rp = assert_engines_agree(&g, &specs, &pooled_cfg(2, 1, 1));
        assert_eq!(rp.max_pool_in_use, 2);
    }

    #[test]
    fn truly_disjoint_worms_still_fast_forward_exactly() {
        // Control: worms on fully node- and edge-disjoint chains keep
        // the fast-forward path and stay engine-identical.
        let mut b = GraphBuilder::new(6);
        let a0 = b.add_edge(NodeId(0), NodeId(1));
        let a1 = b.add_edge(NodeId(1), NodeId(2));
        let b0 = b.add_edge(NodeId(3), NodeId(4));
        let b1 = b.add_edge(NodeId(4), NodeId(5));
        let g = b.build();
        let specs = vec![
            MessageSpec::new(Path::new(vec![a0, a1]), 5),
            MessageSpec::new(Path::new(vec![b0, b1]), 3).release_at(1),
        ];
        let r = assert_engines_agree(&g, &specs, &cfg(1));
        assert_eq!(r.total_stalls, 0);
        assert_eq!(r.max_pool_in_use, 1);
    }

    #[test]
    fn pooled_engines_agree_on_contended_chains() {
        for (c, d, l, pool, min, max) in [
            (4u32, 6u32, 3u32, 2u32, 1u32, 2u32),
            (6, 8, 5, 3, 1, 3),
            (5, 5, 4, 4, 2, 3),
            (3, 4, 9, 2, 1, 1),
        ] {
            let (g, ps) = shared_chain_instance(c, d);
            let specs = specs_from_paths(&ps, l);
            let r = assert_engines_agree(&g, &specs, &pooled_cfg(pool, min, max));
            assert_eq!(r.delivered(), c as usize);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds pool")]
    fn pooled_rejects_floors_the_pool_cannot_honor() {
        let (g, e01, _) = star();
        let specs = vec![MessageSpec::new(Path::new(vec![e01]), 2)];
        // fanout 2 at router 0, floor 2 each, pool 3: 2·2 > 3.
        let _ = run(&g, &specs, &pooled_cfg(3, 2, 2));
    }

    #[test]
    #[should_panic(expected = "full-bandwidth model")]
    fn pooled_rejects_the_restricted_model() {
        let (g, e01, _) = star();
        let specs = vec![MessageSpec::new(Path::new(vec![e01]), 2)];
        let config = pooled_cfg(4, 1, 2).bandwidth(BandwidthModel::OneFlitPerStep);
        let _ = run(&g, &specs, &config);
    }

    // ---- fault injection --------------------------------------------

    use wormhole_topology::fault::{FaultPlan, FaultedMesh};

    #[test]
    fn kill_severs_inflight_worm_and_later_traffic_recovers() {
        // Worm A spans the whole chain; edge 4 dies at step 3 while A is
        // mid-flight, so A's frozen remaining path is severed and it is
        // discarded with LinkDown — releasing its VCs. Worm B, released
        // after the kill on the surviving prefix, completes untouched;
        // the recovery stat measures kill → B's delivery.
        let (g, edges) = chain(6);
        let plan = FaultPlan::new().kill_link(3, edges[4]);
        let specs = vec![
            MessageSpec::new(Path::new(edges.clone()), 4),
            MessageSpec::new(Path::new(edges[0..2].to_vec()), 3).release_at(4),
        ];
        let r = assert_engines_agree(&g, &specs, &cfg(2).faults(plan));
        assert_eq!(r.outcome, Outcome::Completed);
        assert_eq!(r.kills_applied, 1);
        assert_eq!(r.fault_discards, 1);
        assert_eq!(r.messages[0].discarded, Some(DiscardReason::LinkDown));
        assert_eq!(r.messages[0].finished, None);
        // B: released 4, 2 hops + 3 flits ⇒ finished at 4 + 2 + 3 − 1.
        assert_eq!(r.messages[1].finished, Some(8));
        assert_eq!(r.messages[1].stalls, 0, "A's VCs were freed by the kill");
        assert_eq!(r.fault_recovery_steps, 8 - 3);
        assert_eq!(r.delivered(), 1);
    }

    #[test]
    fn oblivious_admission_onto_a_dead_edge_is_discarded() {
        // Edge 1 dies before worm A is even released: its fixed route has
        // nowhere else to go, so admission discards it on the spot
        // (LinkDown, never holds a VC). Worm B's route avoids the dead
        // edge and is unaffected.
        let (g, edges) = chain(6);
        let plan = FaultPlan::new().kill_link(1, edges[1]);
        let specs = vec![
            MessageSpec::new(Path::new(edges[0..3].to_vec()), 4).release_at(5),
            MessageSpec::new(Path::new(edges[2..5].to_vec()), 4).release_at(5),
        ];
        let r = assert_engines_agree(&g, &specs, &cfg(1).faults(plan));
        assert_eq!(r.outcome, Outcome::Completed);
        assert_eq!(r.messages[0].discarded, Some(DiscardReason::LinkDown));
        assert_eq!(r.messages[0].first_move, None);
        assert_eq!(r.messages[1].finished, Some(5 + 3 + 4 - 1));
        assert_eq!(r.fault_discards, 1);
    }

    #[test]
    fn adaptive_worm_routes_around_a_killed_channel() {
        // Node 2 = (+2, 0) on a radix-4 ring: both directions are
        // minimal. The + channel out of node 0 dies before the worm
        // starts, so minimal-adaptive (through FaultedMesh's filtered
        // candidates) takes the − direction instead — same hop count, no
        // misroute, no discard.
        let t = adaptive_torus(4, 2);
        let plan = FaultPlan::new().kill_channel(1, &t, &[0, 0], 0, false);
        let fm = FaultedMesh::new(&t, &plan).expect("plan keeps rings connected");
        let specs = adaptive_specs(&t, &[(0, 2)], 4);
        let config = cfg(2)
            .route_selection(RouteSelection::MinimalAdaptive)
            .faults(plan);
        let event = run_adaptive(&fm, &specs, &config.clone().engine(Engine::EventDriven));
        let legacy = run_adaptive(&fm, &specs, &config.clone().engine(Engine::Legacy));
        assert!(
            event.same_execution(&legacy),
            "engines diverged:\n event: {event:?}\nlegacy: {legacy:?}"
        );
        assert_eq!(event.outcome, Outcome::Completed);
        assert_eq!(event.fault_discards, 0);
        assert_eq!(event.messages[0].finished, Some(2 + 4 - 1));
        assert_eq!(event.misroute_hops, 0, "− direction is still minimal");
        assert!(event.kills_applied >= 1);
    }

    #[test]
    fn capped_faulted_run_separates_survivors_from_fault_discards() {
        // A step-capped faulted run must report the three populations
        // distinctly: delivered, fault-discarded, and still in flight at
        // the cap. Worm A dies under the kill, worm B is too long to
        // finish within the cap, worm C completes.
        let (g, edges) = chain(6);
        let plan = FaultPlan::new().kill_link(2, edges[4]);
        let specs = vec![
            MessageSpec::new(Path::new(edges.clone()), 4),
            MessageSpec::new(Path::new(edges[0..4].to_vec()), 30).release_at(3),
            MessageSpec::new(Path::new(edges[0..2].to_vec()), 2).release_at(3),
        ];
        let r = assert_engines_agree(&g, &specs, &cfg(2).faults(plan).max_steps(10));
        assert_eq!(r.outcome, Outcome::MaxSteps);
        assert_eq!(r.fault_discards, 1);
        assert_eq!(r.discarded(), 1);
        assert_eq!(r.in_flight(), 1, "the capped worm is not a fault casualty");
        assert_eq!(r.delivered(), 1);
        assert_eq!(r.messages[0].discarded, Some(DiscardReason::LinkDown));
        assert_eq!(r.messages[1].discarded, None);
        assert_eq!(r.messages[1].finished, None);
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn sim_rejects_invalid_fault_plans() {
        let (g, edges) = chain(3);
        let plan = FaultPlan::new()
            .kill_link(1, edges[0])
            .kill_link(2, edges[0]);
        let specs = vec![MessageSpec::new(Path::new(edges.clone()), 2)];
        let _ = run(&g, &specs, &cfg(1).faults(plan));
    }

    #[test]
    fn random_arbitration_is_stream_position_independent() {
        // The counter-based arbitration RNG depends only on (seed, step,
        // edge): adding an unrelated earlier contention (on a disjoint
        // chain) must not change who wins a later one.
        let (g, edges) = chain(10);
        let shared = Path::new(edges[4..9].to_vec());
        let contended_pair = |extra: bool| {
            let mut specs = vec![
                MessageSpec::new(shared.clone(), 4).release_at(6),
                MessageSpec::new(shared.clone(), 4).release_at(6),
            ];
            if extra {
                // Disjoint early contention that burns arbitration events.
                specs.push(MessageSpec::new(Path::new(edges[0..2].to_vec()), 3));
                specs.push(MessageSpec::new(Path::new(edges[0..2].to_vec()), 3));
            }
            let r = run(&g, &specs, &cfg(1).arbitration(Arbitration::Random).seed(5));
            r.messages[0].finished.unwrap() < r.messages[1].finished.unwrap()
        };
        assert_eq!(contended_pair(false), contended_pair(true));
    }
}
