//! The partitioned parallel engine behind [`Engine::Parallel`].
//!
//! The network is decomposed into the regions of a
//! [`RegionPlan`] (from [`SimConfig::regions`], or a default contiguous
//! cut): every node — and with it every outgoing edge, i.e. the VC
//! holder state that lives at the sending router — is owned by exactly
//! one region, and each region is advanced on its own worker thread.
//! Workers synchronize on conservative time windows in the
//! Chandy–Misra style: a region may run ahead only as far as the
//! earliest instant a neighboring region could influence it. A header
//! crosses one edge per flit step in this model, so any plan with a
//! cross-region edge has a lookahead of exactly one step
//! ([`RegionPlan::lookahead`]) and the windows collapse to lockstep
//! supersteps — which is what turns "approximately the same result"
//! into a provable bit-identity with the sequential engines.
//!
//! # Why the superstep is exactly the sequential step
//!
//! Within one window each region runs the same classify → arbitrate →
//! apply phases as [`Sim::step_full_bandwidth`], over the worms
//! *resident* in it (a worm resides in the region owning its next
//! wanted edge; draining worms stay where they finished acquiring).
//! The phases only read and write state the region owns:
//!
//! * **Arbitration** reads start-of-step holder counts of owned edges.
//!   All out-edges of a router share its region, so even the pooled
//!   policy's shared-credit accounting (ascending-edge-id grant order)
//!   is region-local. Contenders are ordered by the same canonical
//!   keys as [`order_contenders`] — message id, `(release, id)`,
//!   `(priority, id)`, or the stateless per-`(seed, step, edge)`
//!   shuffle — so each edge's winner set is engine-independent.
//! * **Acquisitions** are always local: a winner's wanted edge is in
//!   its resident region by definition.
//! * **Releases** (tail leaving an edge, final-edge release, discard)
//!   may target an edge owned by another region; those are buffered in
//!   a per-region outbox and applied by the coordinator *between*
//!   supersteps — visible at `t + 1`, exactly the visibility a
//!   sequential mid-step release has on the next step's arbitration.
//!
//! Between windows the coordinator merges outboxes in region-index
//! order, applies remote releases, samples `max_vcs_in_use` /
//! `max_pool_in_use` from the post-release (end-of-step) counts like
//! [`Sim::settle_max_vcs`], retires finished/discarded worms into the
//! per-id outcome table, and migrates worms whose next wanted edge
//! moved across the cut. Every cross-region effect is either
//! commutative (holder increments/decrements, flit-hop sums) or
//! canonically ordered (completion callbacks are flushed sorted by
//! `(time, id)` as always), so the result is byte-identical for every
//! worker count and every valid plan.
//!
//! # Accepted configurations and the explicit fallback
//!
//! The engine accepts static and pooled VC policies, every arbitration
//! and blocked policy, and oblivious routing under the full-bandwidth
//! model. Configurations whose step semantics are inherently global —
//! adaptive routing (hop selection reads remote occupancy mid-step),
//! fault injection, the restricted one-flit-per-step model, and event
//! tracing — run on a sequential engine instead, reported in
//! [`SimResult::engine_fallback`](crate::stats::SimResult); see
//! [`EngineFallback`](crate::stats::EngineFallback). The dispatch
//! never falls back silently.
//!
//! [`Engine::Parallel`]: crate::config::Engine::Parallel
//! [`SimConfig::regions`]: crate::config::SimConfig::regions
//! [`order_contenders`]: crate::wormhole::order_contenders

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

use rand::prelude::*;

use wormhole_topology::region::RegionPlan;

use crate::config::{Arbitration, BlockedPolicy, FinalEdgePolicy, SimConfig, VcPolicy};
use crate::events::DeadlockReport;
use crate::stats::{DiscardReason, MessageOutcome, Outcome};
use crate::wormhole::{arb_rng, FlatBuckets, Sim, Worm};

/// Default region count when [`SimConfig::regions`] is `None`
/// (clamped to the node count by [`RegionPlan::contiguous`]).
///
/// [`SimConfig::regions`]: crate::config::SimConfig::regions
const DEFAULT_REGIONS: u32 = 8;

/// Immutable per-run lookup state shared by the coordinator and every
/// worker: the configuration, the region layout, and the VC-policy
/// decomposition. Borrowing this never conflicts with the
/// coordinator's `&mut Sim` — everything is copied out of the [`Sim`]
/// (or borrows only the config, whose lifetime outlives the run).
struct Ctx<'a> {
    config: &'a SimConfig,
    /// Edge → source-router index (`graph.edge_sources()` copy).
    edge_src: Vec<u32>,
    /// Edge → owning region (= region of the source router).
    edge_region: Vec<u32>,
    /// Node → owning region ([`RegionPlan::node_regions`] copy).
    node_region: Vec<u32>,
    /// Pooled only: each router's shared-portion capacity.
    shared_cap: Vec<u32>,
    pooled: bool,
    per_edge_min: u32,
    per_edge_max: u32,
    num_edges: usize,
    num_nodes: usize,
}

impl<'a> Ctx<'a> {
    fn new(sim: &Sim<'a>, plan: &RegionPlan) -> Ctx<'a> {
        let graph = sim.graph;
        let config = sim.config;
        let (pooled, per_edge_min, per_edge_max, pool) = match config.vc_policy {
            VcPolicy::Static(b) => (false, b, b, 0),
            VcPolicy::RouterPooled {
                pool,
                per_edge_min,
                per_edge_max,
            } => (true, per_edge_min, per_edge_max, pool),
        };
        // `Sim::new` already validated the pool covers every floor.
        let shared_cap = if pooled {
            graph
                .nodes()
                .map(|v| pool - per_edge_min * graph.out_degree(v) as u32)
                .collect()
        } else {
            Vec::new()
        };
        let node_region = plan.node_regions().to_vec();
        let edge_region = graph
            .edge_sources()
            .iter()
            .map(|&s| node_region[s as usize])
            .collect();
        Ctx {
            config,
            edge_src: graph.edge_sources().to_vec(),
            edge_region,
            node_region,
            shared_cap,
            pooled,
            per_edge_min,
            per_edge_max,
            num_edges: graph.num_edges(),
            num_nodes: graph.num_nodes(),
        }
    }
}

/// Whether crossing 1-based path edge `edge_1based` requires a VC —
/// [`Sim::needs_vc`] for the oblivious worms this engine accepts.
#[inline]
fn needs_vc(ctx: &Ctx, w: &Worm, edge_1based: u32) -> bool {
    edge_1based < w.hops || w.pending_route || ctx.config.final_edge == FinalEdgePolicy::RequiresVc
}

/// A worm resident in a region: the rigid-worm kinematics plus
/// everything the region needs to arbitrate and retire it without
/// touching shared per-id tables (those are written once, at
/// retirement or write-back, by the coordinator).
struct RWorm {
    /// Message id.
    id: u32,
    worm: Worm,
    /// Spec release time (the `OldestFirst` arbitration key).
    release: u64,
    /// Spec priority (the `PriorityRank` arbitration key).
    priority: u32,
    /// The full path as global edge ids (copied at admission — worms
    /// migrate between regions, specs don't).
    path: Box<[u32]>,
    /// The per-message outcome, carried with the worm and written back
    /// to `Sim::outcomes` at retirement / run end.
    out: MessageOutcome,
    /// Retired (finished or discarded) this step; dropped by the sweep.
    gone: bool,
}

/// A completed or discarded worm, handed to the coordinator.
struct Retired {
    id: u32,
    /// Final `advance` (makes `Worm::done` true for delivered worms
    /// once written back).
    advance: u32,
    /// Completion time: `t + 1` for deliveries, `t` for discards —
    /// the same stamps the sequential engines record.
    time: u64,
    delivered: bool,
    out: MessageOutcome,
}

/// One region's owned state: holder/pool counters for its edges and
/// routers (full-size arrays indexed by *global* ids — foreign entries
/// stay zero, so ascending local edge order is ascending global order
/// for free), its resident worms, per-step scratch, and the outboxes
/// the coordinator drains between supersteps.
struct Region {
    idx: u32,
    holders: Vec<u16>,
    pool_used: Vec<u32>,
    shared_used: Vec<u32>,
    planned_shared: Vec<u32>,
    touched_routers: Vec<u32>,
    group_order: Vec<u32>,
    buckets: FlatBuckets,
    worms: Vec<RWorm>,
    /// Swap buffer for the retire/handoff sweep (keeps capacity).
    scratch: Vec<RWorm>,
    /// Winner indices into `worms` this step.
    movers: Vec<u32>,
    /// Loser indices into `worms` this step.
    blocked: Vec<u32>,
    /// Global edge ids acquired this step (drained by `settle_max`).
    acquired: Vec<u32>,
    /// Outbox: releases targeting edges owned by other regions.
    remote_releases: Vec<u32>,
    /// Outbox: worms whose next wanted edge crossed the cut.
    handoffs: Vec<(u32, RWorm)>,
    /// Outbox: worms that finished or were discarded this step.
    retired: Vec<Retired>,
    /// Whether any resident worm advanced this step.
    moved: bool,
    max_vcs: u16,
    max_pool: u32,
    flit_hops: u64,
}

/// Orders contender *indices* into `worms` by the canonical
/// [`order_contenders`](crate::wormhole::order_contenders) keys. Every
/// key starts with (or is) the message id, and ids are unique, so the
/// sorted index sequence corresponds position-for-position to the
/// sorted id sequence the sequential engines produce — including under
/// `Random`, whose Fisher–Yates shuffle permutes positions identically
/// (it is keyed by the global `(seed, step, edge)` tuple, never by the
/// worker).
fn order_contenders_local(ctx: &Ctx, worms: &[RWorm], t: u64, e: usize, contenders: &mut [u32]) {
    match ctx.config.arbitration {
        Arbitration::FifoById => contenders.sort_unstable_by_key(|&i| worms[i as usize].id),
        Arbitration::OldestFirst => {
            contenders.sort_unstable_by_key(|&i| {
                let w = &worms[i as usize];
                (w.release, w.id)
            });
        }
        Arbitration::PriorityRank => {
            contenders.sort_unstable_by_key(|&i| {
                let w = &worms[i as usize];
                (w.priority, w.id)
            });
        }
        Arbitration::Random => {
            contenders.sort_unstable_by_key(|&i| worms[i as usize].id);
            contenders.shuffle(&mut arb_rng(ctx.config.seed, t, e));
        }
    }
}

impl Region {
    fn new(idx: u32, ctx: &Ctx) -> Region {
        Region {
            idx,
            holders: vec![0; ctx.num_edges],
            pool_used: vec![0; ctx.num_nodes],
            shared_used: vec![0; if ctx.pooled { ctx.num_nodes } else { 0 }],
            planned_shared: vec![0; if ctx.pooled { ctx.num_nodes } else { 0 }],
            touched_routers: Vec::new(),
            group_order: Vec::new(),
            buckets: FlatBuckets::with_edges(ctx.num_edges),
            worms: Vec::new(),
            scratch: Vec::new(),
            movers: Vec::new(),
            blocked: Vec::new(),
            acquired: Vec::new(),
            remote_releases: Vec::new(),
            handoffs: Vec::new(),
            retired: Vec::new(),
            moved: false,
            max_vcs: 0,
            max_pool: 0,
            flit_hops: 0,
        }
    }

    /// [`Sim::free_vcs`] over this region's counters (no dead edges —
    /// faulted configurations never reach the parallel engine).
    #[inline]
    fn free_vcs(&self, ctx: &Ctx, e: usize) -> u32 {
        let h = self.holders[e] as u32;
        let cap_free = ctx.per_edge_max.saturating_sub(h);
        if !ctx.pooled {
            return cap_free;
        }
        let r = ctx.edge_src[e] as usize;
        let floor_free = ctx.per_edge_min.saturating_sub(h);
        cap_free.min(floor_free + (ctx.shared_cap[r] - self.shared_used[r]))
    }

    /// [`Sim::acquire_vc`] on an owned edge (winners always acquire
    /// locally: their wanted edge defines their residency).
    #[inline]
    fn acquire(&mut self, ctx: &Ctx, e: usize) {
        debug_assert_eq!(ctx.edge_region[e], self.idx, "acquire on a foreign edge");
        let h = self.holders[e];
        self.holders[e] = h + 1;
        let r = ctx.edge_src[e] as usize;
        self.pool_used[r] += 1;
        if ctx.pooled && h as u32 >= ctx.per_edge_min {
            self.shared_used[r] += 1;
        }
        debug_assert!(self.holders[e] as u32 <= ctx.per_edge_max);
    }

    /// Releases one VC on `e`: locally if this region owns the edge,
    /// otherwise via the outbox (applied between supersteps — the
    /// `t + 1` visibility every sequential mid-step release has).
    #[inline]
    fn release(&mut self, ctx: &Ctx, e: usize) {
        if ctx.edge_region[e] == self.idx {
            self.release_local(ctx, e);
        } else {
            self.remote_releases.push(e as u32);
        }
    }

    /// [`Sim::release_vc`] on an owned edge (also the coordinator's
    /// entry point for applying another region's outbox entry).
    #[inline]
    fn release_local(&mut self, ctx: &Ctx, e: usize) {
        let h = self.holders[e];
        self.holders[e] = h - 1;
        let r = ctx.edge_src[e] as usize;
        self.pool_used[r] -= 1;
        if ctx.pooled && h as u32 > ctx.per_edge_min {
            self.shared_used[r] -= 1;
        }
    }

    /// One superstep over the resident worms: the classify → arbitrate
    /// → apply phases of [`Sim::step_full_bandwidth`], ending with the
    /// retire/handoff sweep. Reads and writes only region-owned
    /// state; cross-region effects go to the outboxes.
    fn step(&mut self, ctx: &Ctx, t: u64) {
        self.movers.clear();
        self.blocked.clear();
        self.buckets.clear();
        // Phase 1: classify (drains and VC-free final hops move freely;
        // everything else contends for its next edge).
        for i in 0..self.worms.len() {
            let w = &self.worms[i].worm;
            if w.advance >= w.hops {
                self.movers.push(i as u32);
            } else {
                let next = w.advance + 1;
                if needs_vc(ctx, w, next) {
                    let e = self.worms[i].path[next as usize - 1] as usize;
                    self.buckets.push(e, i as u32);
                } else {
                    self.movers.push(i as u32);
                }
            }
        }
        // Phase 2: arbitration from start-of-step holder counts.
        self.arbitrate(ctx, t);
        self.moved = !self.movers.is_empty();
        // Phase 3: apply.
        for i in 0..self.movers.len() {
            let m = self.movers[i];
            self.advance_worm(ctx, m, t);
        }
        for i in 0..self.blocked.len() {
            let m = self.blocked[i];
            self.worms[m as usize].out.stalls += 1;
            if ctx.config.blocked == BlockedPolicy::Discard {
                self.discard_worm(ctx, m, t);
            }
        }
        self.sweep(ctx);
    }

    /// [`Sim::arbitrate`] over this region's contender buckets. The
    /// pooled branch allocates shared credits in ascending edge-id
    /// order; bucket edges are global ids, so the local order *is* the
    /// canonical global order.
    fn arbitrate(&mut self, ctx: &Ctx, t: u64) {
        let groups = self.buckets.group();
        if !ctx.pooled {
            for gi in 0..groups {
                let e = self.buckets.edge(gi);
                let free = self.free_vcs(ctx, e) as usize;
                let group = self.buckets.group_mut(gi);
                if group.len() > free {
                    if free == 0 {
                        self.blocked.extend_from_slice(group);
                        continue;
                    }
                    order_contenders_local(ctx, &self.worms, t, e, group);
                    self.blocked.extend_from_slice(&group[free..]);
                    self.movers.extend_from_slice(&group[..free]);
                } else {
                    self.movers.extend_from_slice(group);
                }
            }
            return;
        }
        {
            let Region {
                group_order,
                buckets,
                ..
            } = self;
            group_order.clear();
            group_order.extend(0..groups as u32);
            group_order.sort_unstable_by_key(|&gi| buckets.edge(gi as usize));
        }
        for i in 0..self.group_order.len() {
            let gi = self.group_order[i] as usize;
            let e = self.buckets.edge(gi);
            let r = ctx.edge_src[e] as usize;
            let h = self.holders[e] as u32;
            let floor_free = ctx.per_edge_min.saturating_sub(h);
            let shared_free =
                (ctx.shared_cap[r] - self.shared_used[r]).saturating_sub(self.planned_shared[r]);
            let free = (ctx.per_edge_max.saturating_sub(h)).min(floor_free + shared_free) as usize;
            let group = self.buckets.group_mut(gi);
            if free == 0 {
                self.blocked.extend_from_slice(group);
                continue;
            }
            let granted = if group.len() > free {
                order_contenders_local(ctx, &self.worms, t, e, group);
                self.blocked.extend_from_slice(&group[free..]);
                self.movers.extend_from_slice(&group[..free]);
                free as u32
            } else {
                self.movers.extend_from_slice(group);
                group.len() as u32
            };
            let shared_taken = granted.saturating_sub(floor_free);
            if shared_taken > 0 {
                if self.planned_shared[r] == 0 {
                    self.touched_routers.push(r as u32);
                }
                self.planned_shared[r] += shared_taken;
            }
        }
        for i in 0..self.touched_routers.len() {
            self.planned_shared[self.touched_routers[i] as usize] = 0;
        }
        self.touched_routers.clear();
    }

    /// [`Sim::apply_advance`] for resident worm index `i`.
    fn advance_worm(&mut self, ctx: &Ctx, i: u32, t: u64) {
        let wi = i as usize;
        let (hops, length, width) = {
            let w = &self.worms[wi].worm;
            (w.hops, w.length, w.crossing_width())
        };
        self.flit_hops += width as u64;
        if self.worms[wi].out.first_move.is_none() {
            self.worms[wi].out.first_move = Some(t);
        }
        self.worms[wi].worm.advance += 1;
        let a = self.worms[wi].worm.advance;
        // Acquire the newly crossed edge (always owned).
        if a <= hops && needs_vc(ctx, &self.worms[wi].worm, a) {
            let e = self.worms[wi].path[a as usize - 1];
            self.acquire(ctx, e as usize);
            self.acquired.push(e);
        }
        // Release the edge the tail just left (possibly foreign).
        if a > length {
            let rel = a - length;
            if needs_vc(ctx, &self.worms[wi].worm, rel) {
                let e = self.worms[wi].path[rel as usize - 1];
                self.release(ctx, e as usize);
            }
        }
        if self.worms[wi].worm.done() {
            if needs_vc(ctx, &self.worms[wi].worm, hops) {
                let e = self.worms[wi].path[hops as usize - 1];
                self.release(ctx, e as usize);
            }
            let w = &mut self.worms[wi];
            w.out.finished = Some(t + 1);
            w.gone = true;
            self.retired.push(Retired {
                id: w.id,
                advance: w.worm.advance,
                time: t + 1,
                delivered: true,
                out: w.out,
            });
        }
    }

    /// [`Sim::discard`] for resident worm index `i`
    /// ([`BlockedPolicy::Discard`] only — no faults here).
    fn discard_worm(&mut self, ctx: &Ctx, i: u32, t: u64) {
        let wi = i as usize;
        let (lo, hi) = self.worms[wi].worm.held_range();
        for j in lo..=hi {
            if needs_vc(ctx, &self.worms[wi].worm, j) {
                let e = self.worms[wi].path[j as usize - 1];
                self.release(ctx, e as usize);
            }
        }
        let w = &mut self.worms[wi];
        w.out.discarded = Some(DiscardReason::Delay);
        w.gone = true;
        self.retired.push(Retired {
            id: w.id,
            advance: w.worm.advance,
            time: t,
            delivered: false,
            out: w.out,
        });
    }

    /// End-of-step sweep: drop retired worms, keep residents, and
    /// emigrate worms whose next wanted edge is owned elsewhere
    /// (draining worms have no wanted edge and stay put).
    fn sweep(&mut self, ctx: &Ctx) {
        std::mem::swap(&mut self.worms, &mut self.scratch);
        let mut scratch = std::mem::take(&mut self.scratch);
        for w in scratch.drain(..) {
            if w.gone {
                continue;
            }
            let target = if w.worm.advance >= w.worm.hops {
                self.idx
            } else {
                ctx.edge_region[w.path[w.worm.advance as usize] as usize]
            };
            if target == self.idx {
                self.worms.push(w);
            } else {
                self.handoffs.push((target, w));
            }
        }
        self.scratch = scratch;
    }

    /// [`Sim::settle_max_vcs`] over this step's acquisitions. Called by
    /// the coordinator *after* remote releases are applied, so the
    /// sample is the end-of-step holder count — order-free and
    /// engine-identical.
    fn settle_max(&mut self, ctx: &Ctx) {
        for i in 0..self.acquired.len() {
            let e = self.acquired[i] as usize;
            self.max_vcs = self.max_vcs.max(self.holders[e]);
            let r = ctx.edge_src[e] as usize;
            self.max_pool = self.max_pool.max(self.pool_used[r]);
        }
        self.acquired.clear();
    }
}

/// Everything the worker threads can see: the regions (each behind its
/// own mutex — workers step disjoint index sets, so locks are always
/// uncontended), the superstep barriers, and the broadcast clock.
struct Shared<'a> {
    regions: Vec<Mutex<Region>>,
    /// Opens a superstep (workers wait here between windows).
    start: Barrier,
    /// Closes a superstep (the coordinator merges after this).
    end: Barrier,
    /// The window's flit step, broadcast before `start` opens.
    /// Relaxed ordering suffices — the barriers synchronize.
    t_now: AtomicU64,
    /// Set by the coordinator before the final `start` wave.
    stop: AtomicBool,
    ctx: Ctx<'a>,
}

/// Worker `w` of `nthreads`: step regions `w, w + nthreads, …` each
/// window until the coordinator raises `stop`.
fn worker_loop(shared: &Shared<'_>, w: usize, nthreads: usize) {
    loop {
        shared.start.wait();
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        let t = shared.t_now.load(Ordering::Relaxed);
        let mut r = w;
        while r < shared.regions.len() {
            shared.regions[r].lock().unwrap().step(&shared.ctx, t);
            r += nthreads;
        }
        shared.end.wait();
    }
}

/// Advances every region through the window at step `t` — on the
/// worker pool when there is one, inline otherwise.
fn step_window(shared: &Shared<'_>, nthreads: usize, t: u64) {
    if nthreads == 1 {
        for reg in &shared.regions {
            reg.lock().unwrap().step(&shared.ctx, t);
        }
        return;
    }
    shared.t_now.store(t, Ordering::Relaxed);
    shared.start.wait();
    // The coordinator doubles as worker 0.
    let mut r = 0;
    while r < shared.regions.len() {
        shared.regions[r].lock().unwrap().step(&shared.ctx, t);
        r += nthreads;
    }
    shared.end.wait();
}

/// Builds the region-resident copy of freshly admitted message `m`.
fn make_rworm(sim: &Sim<'_>, m: u32) -> RWorm {
    let mi = m as usize;
    let spec = &sim.specs[mi];
    let src = &sim.worms[mi];
    RWorm {
        id: m,
        worm: Worm {
            advance: src.advance,
            hops: src.hops,
            length: src.length,
            pending_route: false,
        },
        release: spec.release,
        priority: spec.priority,
        path: spec.path.edges().iter().map(|e| e.0).collect(),
        out: sim.outcomes[mi],
        gone: false,
    }
}

/// Copies every in-flight resident worm's kinematics and outcome back
/// into the per-id tables (retired worms were written at retirement).
fn write_back(sim: &mut Sim<'_>, shared: &Shared<'_>) {
    for cell in &shared.regions {
        let reg = cell.lock().unwrap();
        for w in &reg.worms {
            let mi = w.id as usize;
            sim.worms[mi].advance = w.worm.advance;
            sim.outcomes[mi] = w.out;
        }
    }
}

/// Scatters the region-owned holder/pool counters back into the
/// [`Sim`] arrays (each global index is owned by exactly one region).
fn sync_counters(sim: &mut Sim<'_>, shared: &Shared<'_>) {
    let ctx = &shared.ctx;
    for (r, cell) in shared.regions.iter().enumerate() {
        let reg = cell.lock().unwrap();
        for (e, &owner) in ctx.edge_region.iter().enumerate() {
            if owner as usize == r {
                sim.holders[e] = reg.holders[e];
            }
        }
        for (v, &owner) in ctx.node_region.iter().enumerate() {
            if owner as usize == r {
                sim.pool_used[v] = reg.pool_used[v];
                if ctx.pooled {
                    sim.shared_used[v] = reg.shared_used[v];
                }
            }
        }
    }
}

/// Folds the per-region accumulators into the run totals (exactly
/// once, at run end).
fn fold_stats(sim: &mut Sim<'_>, shared: &Shared<'_>) {
    for cell in &shared.regions {
        let reg = cell.lock().unwrap();
        sim.flit_hops += reg.flit_hops;
        sim.max_vcs = sim.max_vcs.max(reg.max_vcs);
        sim.max_pool = sim.max_pool.max(reg.max_pool);
    }
}

/// The coordinator: mirrors [`Sim::drive_legacy`]'s loop head (idle
/// fast-forward, step-cap accounting, admissions) around the parallel
/// superstep, then merges outboxes in region-index order.
fn run_loop(
    sim: &mut Sim<'_>,
    shared: &Shared<'_>,
    nthreads: usize,
) -> (Outcome, u64, Option<DeadlockReport>) {
    let mut t: u64 = 0;
    let mut n_active: usize = 0;
    let mut deadlock_report = None;
    let mut rel_buf: Vec<u32> = Vec::new();
    let mut handoff_buf: Vec<(u32, RWorm)> = Vec::new();
    let mut retired_buf: Vec<Retired> = Vec::new();
    let outcome = loop {
        // Idle fast-forward and termination — byte-for-byte the legacy
        // loop head's decisions (see `drive_legacy` for the cap rules).
        if n_active == 0 {
            match sim.peek_next_release(t) {
                None => break Outcome::Completed,
                Some(r) => {
                    if t >= sim.config.max_steps {
                        break Outcome::MaxSteps;
                    }
                    if r >= sim.config.max_steps {
                        t = sim.config.max_steps;
                        break Outcome::MaxSteps;
                    }
                    t = t.max(r);
                }
            }
        } else if t >= sim.config.max_steps {
            break Outcome::MaxSteps;
        }
        let new = sim.admit_ready(t);
        for i in new {
            let m = sim.admitted_id(i);
            if sim.outcomes[m as usize].discarded.is_none() {
                let w = make_rworm(sim, m);
                let target = shared.ctx.edge_region[w.path[0] as usize] as usize;
                shared.regions[target].lock().unwrap().worms.push(w);
                n_active += 1;
            }
        }

        // One conservative window: every region steps `t`.
        step_window(shared, nthreads, t);

        // Merge, in region-index order (the effects are commutative or
        // canonically re-sorted downstream; fixing the order makes the
        // run reproducible by inspection, not just by argument).
        let mut moved = false;
        for cell in &shared.regions {
            let mut reg = cell.lock().unwrap();
            moved |= reg.moved;
            rel_buf.append(&mut reg.remote_releases);
            handoff_buf.append(&mut reg.handoffs);
            retired_buf.append(&mut reg.retired);
        }
        // Cross-region releases land now — visible to step `t + 1`,
        // like any sequential mid-step release...
        for &e in &rel_buf {
            let e = e as usize;
            let owner = shared.ctx.edge_region[e] as usize;
            shared.regions[owner]
                .lock()
                .unwrap()
                .release_local(&shared.ctx, e);
        }
        rel_buf.clear();
        // ...and *before* the occupancy maxima are sampled, so the
        // sample is the end-of-step state, as in the sequential engines.
        for cell in &shared.regions {
            cell.lock().unwrap().settle_max(&shared.ctx);
        }
        for rt in retired_buf.drain(..) {
            let mi = rt.id as usize;
            sim.worms[mi].advance = rt.advance;
            sim.outcomes[mi] = rt.out;
            sim.record_done(rt.id, rt.time, rt.delivered);
            if rt.delivered {
                sim.last_finish = sim.last_finish.max(rt.time);
            }
            sim.unfinished -= 1;
            n_active -= 1;
        }
        for (target, w) in handoff_buf.drain(..) {
            shared.regions[target as usize]
                .lock()
                .unwrap()
                .worms
                .push(w);
        }

        if !moved && n_active > 0 && sim.config.blocked == BlockedPolicy::Stall {
            // Static state, nothing can ever move again: deadlock, with
            // the same report the sequential engines build.
            write_back(sim, shared);
            sim.rebuild_active();
            deadlock_report = Some(sim.build_deadlock_report());
            break Outcome::Deadlock(sim.active.clone());
        }
        if sim.config.check_invariants {
            write_back(sim, shared);
            sync_counters(sim, shared);
            sim.rebuild_active();
            sim.validate();
        }
        t += 1;
    };
    write_back(sim, shared);
    sync_counters(sim, shared);
    fold_stats(sim, shared);
    sim.rebuild_active();
    (outcome, t, deadlock_report)
}

/// Entry point from the engine dispatch: runs `sim` to its outcome on
/// the partitioned engine with `threads` workers (0 = all available;
/// always clamped to the region count). The caller has already
/// verified the configuration is supported — unsupported ones take the
/// explicit-fallback path and never reach this function.
pub(crate) fn drive(sim: &mut Sim<'_>, threads: u32) -> (Outcome, u64, Option<DeadlockReport>) {
    let graph = sim.graph;
    if graph.num_nodes() == 0 {
        // Nothing to partition (and no message can have a valid path);
        // the legacy driver resolves the source bookkeeping.
        return sim.drive_legacy();
    }
    let plan = match &sim.config.regions {
        Some(p) => {
            assert!(
                p.matches(graph),
                "region plan does not match the simulated graph"
            );
            p.clone()
        }
        None => RegionPlan::contiguous(graph, DEFAULT_REGIONS),
    };
    let k = plan.num_regions() as usize;
    let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
    let req = if threads == 0 {
        avail
    } else {
        threads as usize
    };
    let nthreads = req.min(k).max(1);
    let ctx = Ctx::new(sim, &plan);
    let regions = (0..k)
        .map(|r| Mutex::new(Region::new(r as u32, &ctx)))
        .collect();
    let shared = Shared {
        regions,
        start: Barrier::new(nthreads),
        end: Barrier::new(nthreads),
        t_now: AtomicU64::new(0),
        stop: AtomicBool::new(false),
        ctx,
    };
    if nthreads == 1 {
        run_loop(sim, &shared, 1)
    } else {
        std::thread::scope(|s| {
            let sh = &shared;
            for w in 1..nthreads {
                s.spawn(move || worker_loop(sh, w, nthreads));
            }
            let out = run_loop(sim, sh, nthreads);
            sh.stop.store(true, Ordering::Relaxed);
            sh.start.wait();
            out
        })
    }
}
