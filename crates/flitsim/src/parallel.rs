//! The partitioned parallel engine behind [`Engine::Parallel`].
//!
//! The network is decomposed into the regions of a
//! [`RegionPlan`] (from [`SimConfig::regions`], or a default contiguous
//! cut): every node — and with it every outgoing edge, i.e. the VC
//! holder state that lives at the sending router — is owned by exactly
//! one region, and each region is advanced on its own worker thread.
//! Workers synchronize on conservative time windows in the
//! Chandy–Misra style: a region may run ahead only as far as the
//! earliest instant it could influence (or be influenced by) a
//! neighbor. Unlike the global lookahead-1 bound — which collapses the
//! windows to lockstep supersteps — the window grant here is
//! *plan-aware and per-worm*: [`RegionPlan::distance_to_cut`] gives the
//! minimum number of flit steps before a header at node `v` can
//! traverse a cross-region edge, and [`worm_bound`] refines that to the
//! exact worm population (a drain whose held edges are all local can
//! never influence another region again; an in-flight worm whose
//! remaining path stays inside its region is bounded only by the next
//! admission). The coordinator takes the minimum over the populated
//! regions, caps it at the next message release and the step cap, and
//! broadcasts one *window* `[t, t + w)`; each worker then runs its
//! regions through the whole window without any synchronization — a
//! null-message-style window grant.
//!
//! # Why a window is exactly the sequential steps it replaces
//!
//! Within a window each region runs the same classify → arbitrate →
//! apply phases as [`Sim::step_full_bandwidth`], one step at a time,
//! over the worms *resident* in it (a worm resides in the region owning
//! its next wanted edge; draining worms stay where they finished
//! acquiring; a pending adaptive worm resides in its head node's
//! region). The grant construction guarantees that for every step of
//! the window strictly before the last, every acquire, release, and
//! candidate/arbitration read touches only region-owned state:
//!
//! * **Held edges**: a worm holding a foreign edge caps its bound at 1,
//!   so multi-step windows only ever contain worms whose held — and
//!   therefore releasable — edges are all local.
//! * **Oblivious worms** advance at most one hop per step, so a worm
//!   whose first foreign path edge sits `j` hops past its head cannot
//!   contend for it before relative step `j − 1` — the last step of a
//!   `j − 1`-step window, where crossing it is exactly the handoff the
//!   coordinator applies at the boundary.
//! * **Pending adaptive worms** contend only for out-edges of their
//!   head node, all owned by the head's region; by
//!   [`RegionPlan::distance_to_cut`] the head cannot reach a foreign
//!   node in fewer steps than the granted window, and any escape tail
//!   committed mid-window is itself a walk from the head, so its
//!   in-window prefix stays local too.
//!
//! Because regions are mutually invisible inside a window, the
//! sequential engines' accelerations apply verbatim *per region*.
//! Each region keeps a **per-region event queue**: a worm that loses
//! arbitration under [`BlockedPolicy::Stall`] and whose wanted edge is
//! still full at the end of the step *parks* on that edge's wait key
//! (the edge itself, or the source router under pooling — the event
//! engine's parking discipline, applied region-locally). A parked worm
//! is skipped by the step loop — its edge provably stays full until a
//! release on its key, so skipping is behavior-free — and its stall
//! counts settle arithmetically at wake (`t − parked_at`), making the
//! per-step cost proportional to movers and wakeups, not residents.
//! When every runnable resident is draining and the queue is empty,
//! the region batch-advances them with [`Sim::fast_drain`]'s
//! closed-form release/flit-hop formulas; and when a step moves
//! nothing the region is *frozen* — provably identical until the
//! window ends (releases only come from moves, and nothing external
//! arrives mid-window) — so it stops stepping and the coordinator tops
//! up the skipped stall counts afterwards. A region whose worms all
//! retire simply stops. An all-regions-frozen window reproduces the
//! sequential deadlock verdict at the exact step the last region
//! froze.
//!
//! Between windows the coordinator merges outboxes in region-index
//! order: remote releases (possible only in one-step windows, where a
//! worm may hold a foreign edge) land before the occupancy maxima are
//! sampled, finished/discarded worms retire into the per-id outcome
//! table (their completion callbacks flushed in canonical `(time, id)`
//! order, as always), and worms whose next wanted edge crossed the cut
//! migrate. Admissions happen at window starts only — the grant never
//! extends past the source's next release, and a reactive source pins
//! the window to one step. Every cross-region effect is therefore
//! either commutative or canonically ordered, and the result is
//! byte-identical for every worker count and every valid plan.
//!
//! # Accepted configurations and the explicit fallback
//!
//! The engine accepts static and pooled VC policies, every arbitration
//! and blocked policy, oblivious *and* adaptive (`MinimalAdaptive` /
//! `FullyAdaptive`) routing under the full-bandwidth model. Adaptive
//! hop selection is region-local by construction: candidates are
//! out-edges of the pending head, whose occupancies the resident region
//! owns. The remaining fallbacks are fault plans (kills apply globally
//! at start-of-step), the restricted one-flit-per-step model, and event
//! tracing — those run on a sequential engine instead, reported in
//! [`SimResult::engine_fallback`](crate::stats::SimResult); see
//! [`EngineFallback`](crate::stats::EngineFallback). The dispatch
//! never falls back silently.
//!
//! [`Engine::Parallel`]: crate::config::Engine::Parallel
//! [`SimConfig::regions`]: crate::config::SimConfig::regions
//! [`order_contenders`]: crate::wormhole::order_contenders

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

use rand::prelude::*;

use wormhole_topology::adaptive::AdaptiveRouter;
use wormhole_topology::graph::{EdgeId, Graph, NodeId};
use wormhole_topology::region::RegionPlan;

use crate::config::{
    Arbitration, BlockedPolicy, FinalEdgePolicy, RouteSelection, SimConfig, VcPolicy,
};
use crate::events::DeadlockReport;
use crate::stats::{DiscardReason, MessageOutcome, Outcome};
use crate::wormhole::{arb_rng, FlatBuckets, SelectedHop, Sim, Worm};

/// Default region count when [`SimConfig::regions`] is `None`
/// (clamped to the node count by [`RegionPlan::contiguous`]).
///
/// [`SimConfig::regions`]: crate::config::SimConfig::regions
const DEFAULT_REGIONS: u32 = 8;

/// Immutable per-run lookup state shared by the coordinator and every
/// worker: the configuration, the region layout, the lookahead matrix,
/// and the VC-policy decomposition. Borrowing this never conflicts with
/// the coordinator's `&mut Sim` — everything is copied out of the
/// [`Sim`] or borrows run-outliving state (config, graph, router).
struct Ctx<'a> {
    config: &'a SimConfig,
    graph: &'a Graph,
    /// Edge → source-router index (`graph.edge_sources()` copy).
    edge_src: Vec<u32>,
    /// Edge → destination-node index.
    edge_dst: Vec<u32>,
    /// Edge → owning region (= region of the source router).
    edge_region: Vec<u32>,
    /// Node → owning region ([`RegionPlan::node_regions`] copy).
    node_region: Vec<u32>,
    /// Node → minimum flit steps before a header there can traverse a
    /// cross-region edge ([`RegionPlan::distance_to_cut`]).
    dist_to_cut: Vec<u64>,
    /// Adaptive routing only: the shared hop-selection router.
    router: Option<&'a dyn AdaptiveRouter>,
    /// Adaptive routing only: `FullyAdaptive` (misroutes allowed).
    fully: bool,
    /// Pooled only: each router's shared-portion capacity.
    shared_cap: Vec<u32>,
    pooled: bool,
    per_edge_min: u32,
    per_edge_max: u32,
    num_edges: usize,
    num_nodes: usize,
}

impl<'a> Ctx<'a> {
    fn new(sim: &Sim<'a>, plan: &RegionPlan) -> Ctx<'a> {
        let graph = sim.graph;
        let config = sim.config;
        let (pooled, per_edge_min, per_edge_max, pool) = match config.vc_policy {
            VcPolicy::Static(b) => (false, b, b, 0),
            VcPolicy::RouterPooled {
                pool,
                per_edge_min,
                per_edge_max,
            } => (true, per_edge_min, per_edge_max, pool),
        };
        // `Sim::new` already validated the pool covers every floor.
        let shared_cap = if pooled {
            graph
                .nodes()
                .map(|v| pool - per_edge_min * graph.out_degree(v) as u32)
                .collect()
        } else {
            Vec::new()
        };
        let node_region = plan.node_regions().to_vec();
        let edge_region = graph
            .edge_sources()
            .iter()
            .map(|&s| node_region[s as usize])
            .collect();
        Ctx {
            config,
            graph,
            edge_src: graph.edge_sources().to_vec(),
            edge_dst: graph.edges().map(|e| graph.dst(e).0).collect(),
            edge_region,
            node_region,
            dist_to_cut: plan.distance_to_cut(graph),
            router: sim.adaptive.as_ref().map(|ad| ad.router),
            fully: config.route_selection == RouteSelection::FullyAdaptive,
            shared_cap,
            pooled,
            per_edge_min,
            per_edge_max,
            num_edges: graph.num_edges(),
            num_nodes: graph.num_nodes(),
        }
    }
}

/// Whether crossing 1-based path edge `edge_1based` requires a VC —
/// [`Sim::needs_vc`] over the region-resident worm copy.
#[inline]
fn needs_vc(ctx: &Ctx, w: &Worm, edge_1based: u32) -> bool {
    edge_1based < w.hops || w.pending_route || ctx.config.final_edge == FinalEdgePolicy::RequiresVc
}

/// A worm resident in a region: the rigid-worm kinematics plus
/// everything the region needs to arbitrate, route, and retire it
/// without touching shared per-id tables (those are written once, at
/// retirement or write-back, by the coordinator).
struct RWorm {
    /// Message id.
    id: u32,
    worm: Worm,
    /// Spec release time (the `OldestFirst` arbitration key).
    release: u64,
    /// Spec priority (the `PriorityRank` arbitration key).
    priority: u32,
    /// The route as global edge ids (copied at admission — worms
    /// migrate between regions, specs don't). Grows hop by hop while
    /// `pending_route` is set.
    path: Vec<u32>,
    /// Injection node (adaptive head position at `advance == 0`).
    src: u32,
    /// Destination node (adaptive arrival test).
    dst: u32,
    /// Remaining misroute budget (`FullyAdaptive`).
    budget: u32,
    /// This step's wanted-hop selection (pending worms only).
    selected: SelectedHop,
    /// The per-message outcome, carried with the worm and written back
    /// to `Sim::outcomes` at retirement / run end.
    out: MessageOutcome,
    /// Retired (finished or discarded) this step; dropped by the sweep.
    gone: bool,
    /// Blocked on a provably full edge this step; the sweep moves it to
    /// the region's wait queue instead of the runnable list.
    park: bool,
    /// Cached "[`worm_bound`] is `u64::MAX`": set by the coordinator at
    /// admission/handoff for a non-pending worm whose held and future
    /// path edges are all region-local. Absorbing while resident — held
    /// edges only march forward along the (fixed, all-local) path — so
    /// the hot park/window-end paths skip the O(path) rescan.
    local_path: bool,
}

impl RWorm {
    /// The head's current node (pending worms: where selection runs).
    #[inline]
    fn head_node(&self, ctx: &Ctx) -> usize {
        if self.worm.advance == 0 {
            self.src as usize
        } else {
            ctx.edge_dst[self.path[self.worm.advance as usize - 1] as usize] as usize
        }
    }
}

/// How many steps worm `rw`, resident in region `home`, can run before
/// it could first touch (acquire, release, or contend for) an edge
/// owned by another region — the per-worm refinement of the plan's
/// lookahead, and the quantity the window grant minimizes over.
///
/// * Any *held* foreign edge caps the bound at 1: its release may need
///   to cross the cut on the very next step.
/// * A pending adaptive head only contends for out-edges of its current
///   node, so it is bounded by [`RegionPlan::distance_to_cut`] — it
///   cannot stand on a foreign node (or commit a route prefix leaving
///   the region) any sooner.
/// * A draining worm only releases held (hence local) edges: unbounded.
/// * An in-flight oblivious worm advances one hop per step, so its
///   first foreign path edge at 1-based index `j` cannot be contended
///   before relative step `j − 1 − advance`.
fn worm_bound(ctx: &Ctx, rw: &RWorm, home: u32) -> u64 {
    let w = &rw.worm;
    let (lo, hi) = w.held_range();
    for j in lo..=hi {
        if needs_vc(ctx, w, j) && ctx.edge_region[rw.path[j as usize - 1] as usize] != home {
            return 1;
        }
    }
    if w.pending_route {
        return ctx.dist_to_cut[rw.head_node(ctx)].max(1);
    }
    if w.advance >= w.hops {
        return u64::MAX;
    }
    debug_assert_eq!(
        ctx.edge_region[rw.path[w.advance as usize] as usize], home,
        "resident worm's next wanted edge is foreign"
    );
    for j in (w.advance + 2)..=w.hops {
        if ctx.edge_region[rw.path[j as usize - 1] as usize] != home {
            return (j - 1 - w.advance) as u64;
        }
    }
    u64::MAX
}

/// No waiter — the wait-queue chain terminator.
const NONE: u32 = u32::MAX;

/// The park/wake key for a worm blocked on edge `e` —
/// [`Sim::wait_key`]'s rule over the region copy: the edge itself
/// under the static policy (only a release there can unblock it), the
/// source router under pooling (a release on any sibling edge can
/// return shared credit). Both live in the blocked worm's own region:
/// the wanted edge defines residency, and an edge's region is its
/// source router's.
#[inline]
fn wait_key(ctx: &Ctx, e: usize) -> usize {
    if ctx.pooled {
        ctx.edge_src[e] as usize
    } else {
        e
    }
}

/// A slab entry in a region's wait queue: a parked worm plus the
/// intrusive chain link. `rw == None` marks a free slot.
struct ParkSlot {
    rw: Option<RWorm>,
    /// The step the worm parked at (its stall for that step is already
    /// counted); a wake at `t` settles the skipped steps arithmetically
    /// as `t - parked_at`.
    parked_at: u64,
    /// Next slot waiting on the same key, or [`NONE`].
    next: u32,
}

/// A completed or discarded worm, handed to the coordinator.
struct Retired {
    id: u32,
    /// Final kinematics (makes `Worm::done` true for delivered worms
    /// once written back; adaptive worms also carry their final `hops`
    /// and cleared `pending_route`).
    worm: Worm,
    /// Completion time: `t + 1` for deliveries, `t` for discards —
    /// the same stamps the sequential engines record.
    time: u64,
    delivered: bool,
    out: MessageOutcome,
}

/// One region's owned state: holder/pool counters for its edges and
/// routers (full-size arrays indexed by *global* ids — foreign entries
/// stay zero, so ascending local edge order is ascending global order
/// for free), its resident worms, per-step scratch, and the outboxes
/// the coordinator drains between windows.
struct Region {
    idx: u32,
    holders: Vec<u16>,
    pool_used: Vec<u32>,
    shared_used: Vec<u32>,
    planned_shared: Vec<u32>,
    touched_routers: Vec<u32>,
    group_order: Vec<u32>,
    buckets: FlatBuckets,
    worms: Vec<RWorm>,
    /// Swap buffer for the retire/handoff sweep (keeps capacity).
    scratch: Vec<RWorm>,
    /// Winner indices into `worms` this step.
    movers: Vec<u32>,
    /// Loser indices into `worms` this step.
    blocked: Vec<u32>,
    /// Global edge ids acquired this step (drained by `settle_max`).
    acquired: Vec<u32>,
    /// Candidate scratch for adaptive hop selection.
    cand: Vec<(EdgeId, bool)>,
    /// Outbox: releases targeting edges owned by other regions (only
    /// possible in one-step windows).
    remote_releases: Vec<u32>,
    /// Outbox: worms whose next wanted edge crossed the cut.
    handoffs: Vec<(u32, RWorm)>,
    /// Outbox: worms that finished or were discarded this window.
    retired: Vec<Retired>,
    /// The per-region event queue: worms blocked on a full edge under
    /// [`BlockedPolicy::Stall`] park here (slab + per-key intrusive
    /// chains) instead of re-contending every step, exactly as in the
    /// sequential event engine — a parked worm's edge stays full until
    /// a release on its wait key, so skipping it is behavior-free and
    /// the per-step cost drops from all residents to movers + wakeups.
    park_slab: Vec<ParkSlot>,
    /// Free slots in `park_slab`.
    free_slots: Vec<u32>,
    /// Head slot of each wait key's chain ([`NONE`] = no waiters).
    /// Keyed by global edge id (static) or router id (pooled); blocked
    /// worms only ever wait on region-owned keys.
    waiter_head: Vec<u32>,
    /// Live entries in `park_slab`.
    n_parked: usize,
    /// Wait keys released since the last wake pass.
    released_keys: Vec<u32>,
    /// Running minimum [`worm_bound`] over the parked population
    /// (monotone while any worm stays parked; reset when the queue
    /// empties). Folding this into `safe` keeps the window grant sound
    /// without rescanning parked worms — conservative after wakes.
    parked_safe: u64,
    /// Whether any resident worm advanced this step.
    moved: bool,
    /// `1 + `the last in-window step that moved a resident (0 = none).
    last_move_plus1: u64,
    /// First in-window step at which the region froze (nothing moved
    /// under [`BlockedPolicy::Stall`] with residents left); `u64::MAX`
    /// when it did not freeze. Frozen steps skip their stall counting —
    /// the coordinator tops it up from this mark.
    static_from: u64,
    /// Window grant: how far the residents can run before touching a
    /// cross edge (minimum [`worm_bound`]; refreshed at window end and
    /// tightened by the coordinator on every handoff/admission).
    safe: u64,
    max_vcs: u16,
    max_pool: u32,
    flit_hops: u64,
    escape_fallbacks: u64,
    misroute_hops: u64,
}

/// Orders contender *indices* into `worms` by the canonical
/// [`order_contenders`](crate::wormhole::order_contenders) keys. Every
/// key starts with (or is) the message id, and ids are unique, so the
/// sorted index sequence corresponds position-for-position to the
/// sorted id sequence the sequential engines produce — including under
/// `Random`, whose Fisher–Yates shuffle permutes positions identically
/// (it is keyed by the global `(seed, step, edge)` tuple, never by the
/// worker).
fn order_contenders_local(ctx: &Ctx, worms: &[RWorm], t: u64, e: usize, contenders: &mut [u32]) {
    match ctx.config.arbitration {
        Arbitration::FifoById => contenders.sort_unstable_by_key(|&i| worms[i as usize].id),
        Arbitration::OldestFirst => {
            contenders.sort_unstable_by_key(|&i| {
                let w = &worms[i as usize];
                (w.release, w.id)
            });
        }
        Arbitration::PriorityRank => {
            contenders.sort_unstable_by_key(|&i| {
                let w = &worms[i as usize];
                (w.priority, w.id)
            });
        }
        Arbitration::Random => {
            contenders.sort_unstable_by_key(|&i| worms[i as usize].id);
            contenders.shuffle(&mut arb_rng(ctx.config.seed, t, e));
        }
    }
}

impl Region {
    fn new(idx: u32, ctx: &Ctx) -> Region {
        Region {
            idx,
            holders: vec![0; ctx.num_edges],
            pool_used: vec![0; ctx.num_nodes],
            shared_used: vec![0; if ctx.pooled { ctx.num_nodes } else { 0 }],
            planned_shared: vec![0; if ctx.pooled { ctx.num_nodes } else { 0 }],
            touched_routers: Vec::new(),
            group_order: Vec::new(),
            buckets: FlatBuckets::with_edges(ctx.num_edges),
            worms: Vec::new(),
            scratch: Vec::new(),
            movers: Vec::new(),
            blocked: Vec::new(),
            acquired: Vec::new(),
            cand: Vec::new(),
            remote_releases: Vec::new(),
            handoffs: Vec::new(),
            retired: Vec::new(),
            park_slab: Vec::new(),
            free_slots: Vec::new(),
            waiter_head: vec![
                NONE;
                if ctx.pooled {
                    ctx.num_nodes
                } else {
                    ctx.num_edges
                }
            ],
            n_parked: 0,
            released_keys: Vec::new(),
            parked_safe: u64::MAX,
            moved: false,
            last_move_plus1: 0,
            static_from: u64::MAX,
            safe: u64::MAX,
            max_vcs: 0,
            max_pool: 0,
            flit_hops: 0,
            escape_fallbacks: 0,
            misroute_hops: 0,
        }
    }

    /// [`Sim::free_vcs`] over this region's counters (no dead edges —
    /// faulted configurations never reach the parallel engine).
    #[inline]
    fn free_vcs(&self, ctx: &Ctx, e: usize) -> u32 {
        let h = self.holders[e] as u32;
        let cap_free = ctx.per_edge_max.saturating_sub(h);
        if !ctx.pooled {
            return cap_free;
        }
        let r = ctx.edge_src[e] as usize;
        let floor_free = ctx.per_edge_min.saturating_sub(h);
        cap_free.min(floor_free + (ctx.shared_cap[r] - self.shared_used[r]))
    }

    /// [`Sim::acquire_vc`] on an owned edge (winners always acquire
    /// locally: their wanted edge defines their residency).
    #[inline]
    fn acquire(&mut self, ctx: &Ctx, e: usize) {
        debug_assert_eq!(ctx.edge_region[e], self.idx, "acquire on a foreign edge");
        let h = self.holders[e];
        self.holders[e] = h + 1;
        let r = ctx.edge_src[e] as usize;
        self.pool_used[r] += 1;
        if ctx.pooled && h as u32 >= ctx.per_edge_min {
            self.shared_used[r] += 1;
        }
        debug_assert!(self.holders[e] as u32 <= ctx.per_edge_max);
    }

    /// Releases one VC on `e`: locally if this region owns the edge,
    /// otherwise via the outbox (applied between windows — the `t + 1`
    /// visibility every sequential mid-step release has). Foreign
    /// releases imply a held foreign edge, whose 1-step [`worm_bound`]
    /// guarantees the window was a single step.
    #[inline]
    fn release(&mut self, ctx: &Ctx, e: usize) {
        if ctx.edge_region[e] == self.idx {
            self.release_local(ctx, e);
        } else {
            self.remote_releases.push(e as u32);
        }
    }

    /// [`Sim::release_vc`] on an owned edge (also the coordinator's
    /// entry point for applying another region's outbox entry). Records
    /// the wait key so the next [`Self::wake_parked`] pass can unpark
    /// the waiters the release may have unblocked.
    #[inline]
    fn release_local(&mut self, ctx: &Ctx, e: usize) {
        let h = self.holders[e];
        self.holders[e] = h - 1;
        let r = ctx.edge_src[e] as usize;
        self.pool_used[r] -= 1;
        if ctx.pooled && h as u32 > ctx.per_edge_min {
            self.shared_used[r] -= 1;
        }
        self.released_keys.push(wait_key(ctx, e) as u32);
    }

    /// Whether any worm still lives in this region — runnable or
    /// parked. Parked worms are invisible to the step loop but fully
    /// resident: they hold VCs, pin the window grant, and count as
    /// active for termination.
    #[inline]
    fn has_residents(&self) -> bool {
        !self.worms.is_empty() || self.n_parked > 0
    }

    /// Moves `rw`, blocked at step `t` on its (provably full) wanted
    /// edge, onto the wait queue. Its stall for step `t` is already
    /// counted; the skipped steps settle arithmetically at wake.
    fn park_worm(&mut self, ctx: &Ctx, mut rw: RWorm, t: u64) {
        rw.park = false;
        if !rw.local_path {
            self.parked_safe = self.parked_safe.min(worm_bound(ctx, &rw, self.idx));
        }
        let e = rw.path[rw.worm.advance as usize] as usize;
        let key = wait_key(ctx, e);
        let next = self.waiter_head[key];
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.park_slab[s as usize] = ParkSlot {
                    rw: Some(rw),
                    parked_at: t,
                    next,
                };
                s
            }
            None => {
                self.park_slab.push(ParkSlot {
                    rw: Some(rw),
                    parked_at: t,
                    next,
                });
                (self.park_slab.len() - 1) as u32
            }
        };
        self.waiter_head[key] = slot;
        self.n_parked += 1;
    }

    /// Wakes every waiter of every key released during step `t` (or,
    /// on the coordinator's call in one-step windows, released by a
    /// remote worm during that window's step). A woken worm's skipped
    /// stalls settle as `t - parked_at` — it was provably blocked at
    /// every one of those steps, its edge being full throughout — and
    /// it re-contends at `t + 1`, exactly when the release becomes
    /// visible sequentially. Waking is conservative: a still-blocked
    /// worm re-parks after its next (stall-counted) step.
    fn wake_parked(&mut self, _ctx: &Ctx, t: u64) {
        if self.n_parked == 0 {
            self.released_keys.clear();
            return;
        }
        while let Some(k) = self.released_keys.pop() {
            let mut slot = self.waiter_head[k as usize];
            self.waiter_head[k as usize] = NONE;
            while slot != NONE {
                let s = &mut self.park_slab[slot as usize];
                let next = s.next;
                let mut rw = s.rw.take().expect("free slot on a waiter chain");
                rw.out.stalls += t - s.parked_at;
                self.free_slots.push(slot);
                self.n_parked -= 1;
                self.worms.push(rw);
                slot = next;
            }
        }
        if self.n_parked == 0 {
            self.parked_safe = u64::MAX;
        }
    }

    /// Returns every parked worm to the runnable list with its stalls
    /// settled through step `through` — the run is ending (deadlock or
    /// step cap) and the sequential engines count a stall for each of
    /// those steps.
    fn settle_parked(&mut self, through: u64) {
        if self.n_parked == 0 {
            return;
        }
        for slot in &mut self.park_slab {
            if let Some(mut rw) = slot.rw.take() {
                rw.out.stalls += through.saturating_sub(slot.parked_at);
                self.worms.push(rw);
            }
        }
        for h in &mut self.waiter_head {
            *h = NONE;
        }
        self.park_slab.clear();
        self.free_slots.clear();
        self.n_parked = 0;
        self.parked_safe = u64::MAX;
    }

    /// Whether every resident is draining (`advance ≥ hops`, route
    /// frozen) — the trigger for the closed-form fast-forward.
    fn all_draining(&self) -> bool {
        self.worms
            .iter()
            .all(|w| !w.worm.pending_route && w.worm.advance >= w.worm.hops)
    }

    /// Runs this region through the window `[t0, end)` without touching
    /// any other region's state: per-step classify → arbitrate → apply
    /// while interaction is possible, the all-draining closed form when
    /// it is not, and an early stop once the region is provably static
    /// (frozen) or empty. Refreshes the `safe` grant for the next
    /// window on the way out.
    fn run_window(&mut self, ctx: &Ctx, t0: u64, end: u64) {
        self.static_from = u64::MAX;
        self.last_move_plus1 = 0;
        // Multi-step windows are interaction-free, so the end-of-step
        // occupancy sample is exact locally; one-step windows keep the
        // coordinator's settle (remote releases may still land).
        let local_settle = end - t0 > 1;
        let mut t = t0;
        while t < end {
            if self.worms.is_empty() {
                // Runnable empty with worms still parked: every parked
                // worm waits on a full edge, and local releases only
                // come from local moves — none can happen. Static from
                // here (only a cross-region release could wake anyone,
                // and that is a between-windows event).
                if self.n_parked > 0 {
                    self.static_from = t;
                }
                break;
            }
            if local_settle && self.n_parked == 0 && self.all_draining() {
                self.fast_drain_all(ctx, t, end);
                break;
            }
            self.step(ctx, t);
            if self.moved {
                self.last_move_plus1 = t + 1;
            }
            if local_settle {
                self.settle_max(ctx);
            }
            if !self.moved
                && ctx.config.blocked == BlockedPolicy::Stall
                && (self.n_parked > 0 || !self.worms.is_empty())
            {
                // Frozen: releases only come from moves and nothing
                // external arrives mid-window, so every remaining step
                // of the window repeats this one exactly. Stop stepping;
                // the coordinator tops up the skipped stall counts (the
                // runnable residents'; parked worms settle at wake).
                self.static_from = t;
                break;
            }
            t += 1;
        }
        let mut safe = self.parked_safe;
        for w in &self.worms {
            if !w.local_path {
                safe = safe.min(worm_bound(ctx, w, self.idx));
            }
        }
        self.safe = safe;
    }

    /// Batch-advances an all-draining population from `t` to `end` (or
    /// each worm's finish, whichever is first) — [`Sim::fast_drain`]'s
    /// closed-form flit-hop sum and tail-release sequence, applied
    /// region-locally. Safe because drains acquire nothing and only
    /// release held edges, which the window grant proved local (except
    /// in one-step windows, where `release` falls back to the outbox).
    fn fast_drain_all(&mut self, ctx: &Ctx, t: u64, end: u64) {
        debug_assert!(t < end);
        debug_assert_eq!(self.n_parked, 0, "fast drain with a populated wait queue");
        for wi in 0..self.worms.len() {
            let (hops, length, a0) = {
                let w = &self.worms[wi].worm;
                (w.hops, w.length, w.advance)
            };
            let fin_a = hops + length - 1;
            let k = ((fin_a - a0) as u64).min(end - t);
            debug_assert!(k > 0, "a finished worm survived the sweep");
            let a1 = a0 + k as u32;
            // flit_hops: Σ width(a) for a ∈ (a0, a1]; width(a) = hops
            // while a ≤ L (the tail is still injecting), hops + L − a
            // after.
            {
                let (d, l) = (hops as u64, length as u64);
                let (a0, a1) = (a0 as u64, a1 as u64);
                let flat_hi = a1.min(l);
                if flat_hi > a0 {
                    self.flit_hops += d * (flat_hi - a0);
                }
                let s = a0.max(l) + 1;
                if a1 >= s {
                    let (w_hi, w_lo) = (d + l - s, d + l - a1);
                    self.flit_hops += (w_hi + w_lo) * (a1 - s + 1) / 2;
                }
            }
            // The tail leaves edges (a0+1−L ..= a1−L) ∩ [1, hops−1].
            if a1 > length {
                let lo = (a0 + 1).saturating_sub(length).max(1);
                for rel in lo..=a1 - length {
                    if needs_vc(ctx, &self.worms[wi].worm, rel) {
                        let e = self.worms[wi].path[rel as usize - 1];
                        self.release(ctx, e as usize);
                    }
                }
            }
            self.worms[wi].worm.advance = a1;
            self.last_move_plus1 = self.last_move_plus1.max(t + k);
            if a1 == fin_a {
                if needs_vc(ctx, &self.worms[wi].worm, hops) {
                    let e = self.worms[wi].path[hops as usize - 1];
                    self.release(ctx, e as usize);
                }
                let fin_t = t + k; // the finishing advance ran at t+k−1
                let w = &mut self.worms[wi];
                w.out.finished = Some(fin_t);
                w.gone = true;
                self.retired.push(Retired {
                    id: w.id,
                    worm: Worm {
                        advance: w.worm.advance,
                        hops: w.worm.hops,
                        length: w.worm.length,
                        pending_route: w.worm.pending_route,
                    },
                    time: fin_t,
                    delivered: true,
                    out: w.out,
                });
            }
        }
        self.sweep(ctx, t);
        // Nobody is waiting (asserted above) — drop the release keys
        // the drain recorded so they cannot wake a later parkee.
        self.released_keys.clear();
    }

    /// [`Sim::select_pending`] over region-local state: the wanted hop
    /// of pending worm index `i`, from start-of-step holder counts. All
    /// candidates are out-edges of the head node, which this region
    /// owns — so the local counters are the global truth and both
    /// engines make the same choice.
    fn select_pending(&mut self, ctx: &Ctx, i: usize) -> SelectedHop {
        let mut cand = std::mem::take(&mut self.cand);
        let router = ctx.router.expect("pending worm without a router");
        let g = ctx.graph;
        let rw = &self.worms[i];
        let a = rw.worm.advance as usize;
        let (head, prev) = if a == 0 {
            (NodeId(rw.src), None)
        } else {
            let e = EdgeId(rw.path[a - 1]);
            (g.dst(e), Some(g.src(e)))
        };
        let dst = NodeId(rw.dst);
        debug_assert_ne!(head, dst, "pending worm already at its destination");
        debug_assert_eq!(
            ctx.node_region[head.idx()],
            self.idx,
            "pending worm resident outside its head's region"
        );
        let misroutes_ok = ctx.fully && rw.budget > 0;
        cand.clear();
        router.candidates(head, dst, misroutes_ok, &mut cand);
        let best = |want_profitable: bool, skip: Option<NodeId>| {
            cand.iter()
                .filter(|&&(e, p)| p == want_profitable && self.free_vcs(ctx, e.idx()) > 0)
                .filter(|&&(e, _)| skip != Some(g.dst(e)))
                .map(|&(e, _)| (self.holders[e.idx()], e.0))
                .min()
        };
        let sel = if let Some((_, edge)) = best(true, None) {
            SelectedHop::Adaptive {
                edge,
                misroute: false,
            }
        } else if let Some((_, edge)) = misroutes_ok.then(|| best(false, prev)).flatten() {
            SelectedHop::Adaptive {
                edge,
                misroute: true,
            }
        } else {
            SelectedHop::Escape {
                edge: router.escape_hop(head, dst).0,
            }
        };
        self.cand = cand;
        self.worms[i].selected = sel;
        sel
    }

    /// [`Sim::extend_route`] for resident worm index `i` (no fault
    /// branch — fault plans never reach this engine).
    fn extend_route(&mut self, ctx: &Ctx, wi: usize) {
        debug_assert_eq!(
            self.worms[wi].path.len() as u32,
            self.worms[wi].worm.advance
        );
        match self.worms[wi].selected {
            SelectedHop::Adaptive { edge, misroute } => {
                self.worms[wi].path.push(edge);
                if misroute {
                    self.misroute_hops += 1;
                    self.worms[wi].budget -= 1;
                }
                let arrived = ctx.edge_dst[edge as usize] == self.worms[wi].dst;
                self.worms[wi].worm.hops += 1;
                if arrived {
                    self.worms[wi].worm.pending_route = false;
                }
            }
            SelectedHop::Escape { edge } => {
                let router = ctx.router.expect("escape without a router");
                let head = ctx.graph.src(EdgeId(edge));
                let tail = router.escape_route(head, NodeId(self.worms[wi].dst));
                debug_assert_eq!(tail.edges()[0], EdgeId(edge));
                self.worms[wi].path.extend(tail.edges().iter().map(|e| e.0));
                self.escape_fallbacks += 1;
                self.worms[wi].worm.hops += tail.len() as u32;
                self.worms[wi].worm.pending_route = false;
            }
            SelectedHop::None => unreachable!("pending worm advanced without a selection"),
        }
    }

    /// One step over the resident worms: the classify → arbitrate →
    /// apply phases of [`Sim::step_full_bandwidth`], ending with the
    /// retire/handoff sweep. Reads and writes only region-owned
    /// state; cross-region effects go to the outboxes.
    fn step(&mut self, ctx: &Ctx, t: u64) {
        self.movers.clear();
        self.blocked.clear();
        self.buckets.clear();
        // Phase 1: classify (drains and VC-free final hops move freely;
        // pending worms select their wanted hop; everything else
        // contends for its next edge).
        for i in 0..self.worms.len() {
            if self.worms[i].worm.pending_route {
                let sel = self.select_pending(ctx, i);
                let edge = sel.edge().expect("selection always yields a hop") as usize;
                let lands_final = ctx.edge_dst[edge] == self.worms[i].dst;
                if lands_final && ctx.config.final_edge == FinalEdgePolicy::Unlimited {
                    self.movers.push(i as u32); // delivery absorbs VC-free
                } else {
                    self.buckets.push(edge, i as u32);
                }
                continue;
            }
            let w = &self.worms[i].worm;
            if w.advance >= w.hops {
                self.movers.push(i as u32);
            } else {
                let next = w.advance + 1;
                if needs_vc(ctx, w, next) {
                    let e = self.worms[i].path[next as usize - 1] as usize;
                    self.buckets.push(e, i as u32);
                } else {
                    self.movers.push(i as u32);
                }
            }
        }
        // Phase 2: arbitration from start-of-step holder counts.
        self.arbitrate(ctx, t);
        self.moved = !self.movers.is_empty();
        // Phase 3: apply.
        for i in 0..self.movers.len() {
            let m = self.movers[i];
            self.advance_worm(ctx, m, t);
        }
        for i in 0..self.blocked.len() {
            let m = self.blocked[i];
            self.worms[m as usize].out.stalls += 1;
            if ctx.config.blocked == BlockedPolicy::Discard {
                self.discard_worm(ctx, m, t);
            } else if !self.worms[m as usize].worm.pending_route {
                // Park a loser whose wanted edge is still full after
                // every move and release of this step landed: it stays
                // blocked — and stalls — until a release on its wait
                // key, so the step loop can skip it entirely. Pending
                // adaptive worms never park; they re-select each step.
                let e = self.worms[m as usize].path[self.worms[m as usize].worm.advance as usize]
                    as usize;
                if self.free_vcs(ctx, e) == 0 {
                    self.worms[m as usize].park = true;
                }
            }
        }
        self.sweep(ctx, t);
        self.wake_parked(ctx, t);
    }

    /// [`Sim::arbitrate`] over this region's contender buckets. The
    /// pooled branch allocates shared credits in ascending edge-id
    /// order; bucket edges are global ids, so the local order *is* the
    /// canonical global order.
    fn arbitrate(&mut self, ctx: &Ctx, t: u64) {
        let groups = self.buckets.group();
        if !ctx.pooled {
            for gi in 0..groups {
                let e = self.buckets.edge(gi);
                let free = self.free_vcs(ctx, e) as usize;
                let group = self.buckets.group_mut(gi);
                if group.len() > free {
                    if free == 0 {
                        self.blocked.extend_from_slice(group);
                        continue;
                    }
                    order_contenders_local(ctx, &self.worms, t, e, group);
                    self.blocked.extend_from_slice(&group[free..]);
                    self.movers.extend_from_slice(&group[..free]);
                } else {
                    self.movers.extend_from_slice(group);
                }
            }
            return;
        }
        {
            let Region {
                group_order,
                buckets,
                ..
            } = self;
            group_order.clear();
            group_order.extend(0..groups as u32);
            group_order.sort_unstable_by_key(|&gi| buckets.edge(gi as usize));
        }
        for i in 0..self.group_order.len() {
            let gi = self.group_order[i] as usize;
            let e = self.buckets.edge(gi);
            let r = ctx.edge_src[e] as usize;
            let h = self.holders[e] as u32;
            let floor_free = ctx.per_edge_min.saturating_sub(h);
            let shared_free =
                (ctx.shared_cap[r] - self.shared_used[r]).saturating_sub(self.planned_shared[r]);
            let free = (ctx.per_edge_max.saturating_sub(h)).min(floor_free + shared_free) as usize;
            let group = self.buckets.group_mut(gi);
            if free == 0 {
                self.blocked.extend_from_slice(group);
                continue;
            }
            let granted = if group.len() > free {
                order_contenders_local(ctx, &self.worms, t, e, group);
                self.blocked.extend_from_slice(&group[free..]);
                self.movers.extend_from_slice(&group[..free]);
                free as u32
            } else {
                self.movers.extend_from_slice(group);
                group.len() as u32
            };
            let shared_taken = granted.saturating_sub(floor_free);
            if shared_taken > 0 {
                if self.planned_shared[r] == 0 {
                    self.touched_routers.push(r as u32);
                }
                self.planned_shared[r] += shared_taken;
            }
        }
        for i in 0..self.touched_routers.len() {
            self.planned_shared[self.touched_routers[i] as usize] = 0;
        }
        self.touched_routers.clear();
    }

    /// [`Sim::apply_advance`] for resident worm index `i` (pending
    /// worms commit their selected hop first, exactly like the
    /// sequential apply phase).
    fn advance_worm(&mut self, ctx: &Ctx, i: u32, t: u64) {
        let wi = i as usize;
        if self.worms[wi].worm.pending_route {
            self.extend_route(ctx, wi);
        }
        let (hops, length, width) = {
            let w = &self.worms[wi].worm;
            (w.hops, w.length, w.crossing_width())
        };
        self.flit_hops += width as u64;
        if self.worms[wi].out.first_move.is_none() {
            self.worms[wi].out.first_move = Some(t);
        }
        self.worms[wi].worm.advance += 1;
        let a = self.worms[wi].worm.advance;
        // Acquire the newly crossed edge (always owned).
        if a <= hops && needs_vc(ctx, &self.worms[wi].worm, a) {
            let e = self.worms[wi].path[a as usize - 1];
            self.acquire(ctx, e as usize);
            self.acquired.push(e);
        }
        // Release the edge the tail just left (possibly foreign).
        if a > length {
            let rel = a - length;
            if needs_vc(ctx, &self.worms[wi].worm, rel) {
                let e = self.worms[wi].path[rel as usize - 1];
                self.release(ctx, e as usize);
            }
        }
        if self.worms[wi].worm.done() {
            if needs_vc(ctx, &self.worms[wi].worm, hops) {
                let e = self.worms[wi].path[hops as usize - 1];
                self.release(ctx, e as usize);
            }
            let w = &mut self.worms[wi];
            w.out.finished = Some(t + 1);
            w.gone = true;
            self.retired.push(Retired {
                id: w.id,
                worm: Worm {
                    advance: w.worm.advance,
                    hops: w.worm.hops,
                    length: w.worm.length,
                    pending_route: w.worm.pending_route,
                },
                time: t + 1,
                delivered: true,
                out: w.out,
            });
        }
    }

    /// [`Sim::discard`] for resident worm index `i`
    /// ([`BlockedPolicy::Discard`] only — no faults here).
    fn discard_worm(&mut self, ctx: &Ctx, i: u32, t: u64) {
        let wi = i as usize;
        let (lo, hi) = self.worms[wi].worm.held_range();
        for j in lo..=hi {
            if needs_vc(ctx, &self.worms[wi].worm, j) {
                let e = self.worms[wi].path[j as usize - 1];
                self.release(ctx, e as usize);
            }
        }
        let w = &mut self.worms[wi];
        w.out.discarded = Some(DiscardReason::Delay);
        w.gone = true;
        self.retired.push(Retired {
            id: w.id,
            worm: Worm {
                advance: w.worm.advance,
                hops: w.worm.hops,
                length: w.worm.length,
                pending_route: w.worm.pending_route,
            },
            time: t,
            delivered: false,
            out: w.out,
        });
    }

    /// End-of-step sweep: drop retired worms, park this step's marked
    /// losers, keep residents, and emigrate worms whose next wanted
    /// edge is owned elsewhere. Draining worms have no wanted edge and
    /// stay put; a pending worm's residency follows its head node.
    /// A parked worm never migrates — it did not move, so its wanted
    /// edge (and with it its residency) is unchanged.
    fn sweep(&mut self, ctx: &Ctx, t: u64) {
        std::mem::swap(&mut self.worms, &mut self.scratch);
        let mut scratch = std::mem::take(&mut self.scratch);
        for w in scratch.drain(..) {
            if w.gone {
                continue;
            }
            if w.park {
                self.park_worm(ctx, w, t);
                continue;
            }
            let target = if w.worm.pending_route {
                ctx.node_region[w.head_node(ctx)]
            } else if w.worm.advance >= w.worm.hops {
                self.idx
            } else {
                ctx.edge_region[w.path[w.worm.advance as usize] as usize]
            };
            if target == self.idx {
                self.worms.push(w);
            } else {
                self.handoffs.push((target, w));
            }
        }
        self.scratch = scratch;
    }

    /// [`Sim::settle_max_vcs`] over this step's acquisitions, sampling
    /// the end-of-step holder count — order-free and engine-identical.
    /// Called in-region inside multi-step windows (interaction-free, so
    /// the local count is the global one) and by the coordinator after
    /// remote releases in one-step windows.
    fn settle_max(&mut self, ctx: &Ctx) {
        for i in 0..self.acquired.len() {
            let e = self.acquired[i] as usize;
            self.max_vcs = self.max_vcs.max(self.holders[e]);
            let r = ctx.edge_src[e] as usize;
            self.max_pool = self.max_pool.max(self.pool_used[r]);
        }
        self.acquired.clear();
    }
}

/// Everything the worker threads can see: the regions (each behind its
/// own mutex — workers step disjoint index sets, so locks are always
/// uncontended), the window barriers, and the broadcast clock/grant.
struct Shared<'a> {
    regions: Vec<Mutex<Region>>,
    /// Opens a window (workers wait here between windows).
    start: Barrier,
    /// Closes a window (the coordinator merges after this).
    end: Barrier,
    /// The window's start step, broadcast before `start` opens.
    /// Relaxed ordering suffices — the barriers synchronize.
    t_now: AtomicU64,
    /// The window's width in steps, broadcast alongside `t_now`.
    w_now: AtomicU64,
    /// Set by the coordinator before the final `start` wave.
    stop: AtomicBool,
    ctx: Ctx<'a>,
}

/// Worker `w` of `nthreads`: run regions `w, w + nthreads, …` through
/// each window until the coordinator raises `stop`.
fn worker_loop(shared: &Shared<'_>, w: usize, nthreads: usize) {
    loop {
        shared.start.wait();
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        let t = shared.t_now.load(Ordering::Relaxed);
        let win = shared.w_now.load(Ordering::Relaxed);
        let mut r = w;
        while r < shared.regions.len() {
            shared.regions[r]
                .lock()
                .unwrap()
                .run_window(&shared.ctx, t, t + win);
            r += nthreads;
        }
        shared.end.wait();
    }
}

/// Advances every region through the window `[t, t + w)` — on the
/// worker pool when there is one, inline otherwise.
fn step_window(shared: &Shared<'_>, nthreads: usize, t: u64, w: u64) {
    if nthreads == 1 {
        for reg in &shared.regions {
            reg.lock().unwrap().run_window(&shared.ctx, t, t + w);
        }
        return;
    }
    shared.t_now.store(t, Ordering::Relaxed);
    shared.w_now.store(w, Ordering::Relaxed);
    shared.start.wait();
    // The coordinator doubles as worker 0.
    let mut r = 0;
    while r < shared.regions.len() {
        shared.regions[r]
            .lock()
            .unwrap()
            .run_window(&shared.ctx, t, t + w);
        r += nthreads;
    }
    shared.end.wait();
}

/// Builds the region-resident copy of freshly admitted message `m`.
fn make_rworm(sim: &Sim<'_>, m: u32) -> RWorm {
    let mi = m as usize;
    let spec = &sim.specs[mi];
    let src = &sim.worms[mi];
    let (path, wsrc, wdst, budget): (Vec<u32>, u32, u32, u32) = match sim.adaptive.as_ref() {
        Some(ad) => (
            ad.routes[mi].iter().map(|e| e.0).collect(),
            ad.src[mi].0,
            ad.dst[mi].0,
            ad.budget[mi],
        ),
        None => (spec.path.edges().iter().map(|e| e.0).collect(), 0, 0, 0),
    };
    RWorm {
        id: m,
        worm: Worm {
            advance: src.advance,
            hops: src.hops,
            length: src.length,
            pending_route: src.pending_route,
        },
        release: spec.release,
        priority: spec.priority,
        path,
        src: wsrc,
        dst: wdst,
        budget,
        selected: SelectedHop::None,
        out: sim.outcomes[mi],
        gone: false,
        park: false,
        local_path: false,
    }
}

/// The region a fresh or migrating worm belongs to: its head node's
/// region while the route is pending, the owner of its next wanted
/// edge otherwise.
fn rworm_home(ctx: &Ctx, w: &RWorm) -> usize {
    if w.worm.pending_route {
        ctx.node_region[w.head_node(ctx)] as usize
    } else {
        ctx.edge_region[w.path[w.worm.advance as usize] as usize] as usize
    }
}

/// Copies every in-flight resident worm's kinematics, outcome, and
/// route state back into the per-id tables (retired worms were written
/// at retirement). Parked worms are residents too; the run-end paths
/// settle their stalls first, the mid-run invariant check reads them
/// as-is (kinematics are exact while parked, only stalls are deferred).
fn write_back(sim: &mut Sim<'_>, shared: &Shared<'_>) {
    for cell in &shared.regions {
        let reg = cell.lock().unwrap();
        let parked = reg.park_slab.iter().filter_map(|s| s.rw.as_ref());
        for w in reg.worms.iter().chain(parked) {
            let mi = w.id as usize;
            sim.worms[mi].advance = w.worm.advance;
            sim.worms[mi].hops = w.worm.hops;
            sim.worms[mi].pending_route = w.worm.pending_route;
            sim.outcomes[mi] = w.out;
            if let Some(ad) = sim.adaptive.as_mut() {
                ad.routes[mi].clear();
                ad.routes[mi].extend(w.path.iter().map(|&e| EdgeId(e)));
                ad.budget[mi] = w.budget;
                ad.selected[mi] = w.selected;
            }
        }
    }
}

/// Scatters the region-owned holder/pool counters back into the
/// [`Sim`] arrays (each global index is owned by exactly one region).
fn sync_counters(sim: &mut Sim<'_>, shared: &Shared<'_>) {
    let ctx = &shared.ctx;
    for (r, cell) in shared.regions.iter().enumerate() {
        let reg = cell.lock().unwrap();
        for (e, &owner) in ctx.edge_region.iter().enumerate() {
            if owner as usize == r {
                sim.holders[e] = reg.holders[e];
            }
        }
        for (v, &owner) in ctx.node_region.iter().enumerate() {
            if owner as usize == r {
                sim.pool_used[v] = reg.pool_used[v];
                if ctx.pooled {
                    sim.shared_used[v] = reg.shared_used[v];
                }
            }
        }
    }
}

/// Folds the per-region accumulators into the run totals (exactly
/// once, at run end).
fn fold_stats(sim: &mut Sim<'_>, shared: &Shared<'_>) {
    for cell in &shared.regions {
        let reg = cell.lock().unwrap();
        sim.flit_hops += reg.flit_hops;
        sim.max_vcs = sim.max_vcs.max(reg.max_vcs);
        sim.max_pool = sim.max_pool.max(reg.max_pool);
        if let Some(ad) = sim.adaptive.as_mut() {
            ad.escape_fallbacks += reg.escape_fallbacks;
            ad.misroute_hops += reg.misroute_hops;
        }
    }
}

/// The coordinator: mirrors [`Sim::drive_legacy`]'s loop head (idle
/// fast-forward, step-cap accounting, admissions) around the window
/// grant, then merges outboxes in region-index order.
fn run_loop(
    sim: &mut Sim<'_>,
    shared: &Shared<'_>,
    nthreads: usize,
) -> (Outcome, u64, Option<DeadlockReport>) {
    let mut t: u64 = 0;
    let mut n_active: usize = 0;
    let mut deadlock_report = None;
    let mut rel_buf: Vec<u32> = Vec::new();
    let mut handoff_buf: Vec<(u32, RWorm)> = Vec::new();
    let mut retired_buf: Vec<Retired> = Vec::new();
    let outcome = loop {
        // Idle fast-forward and termination — byte-for-byte the legacy
        // loop head's decisions (see `drive_legacy` for the cap rules).
        if n_active == 0 {
            match sim.peek_next_release(t) {
                None => break Outcome::Completed,
                Some(r) => {
                    if t >= sim.config.max_steps {
                        break Outcome::MaxSteps;
                    }
                    if r >= sim.config.max_steps {
                        t = sim.config.max_steps;
                        break Outcome::MaxSteps;
                    }
                    t = t.max(r);
                }
            }
        } else if t >= sim.config.max_steps {
            break Outcome::MaxSteps;
        }
        let new = sim.admit_ready(t);
        for i in new {
            let m = sim.admitted_id(i);
            if sim.outcomes[m as usize].discarded.is_none() {
                let mut w = make_rworm(sim, m);
                let target = rworm_home(&shared.ctx, &w);
                let bound = worm_bound(&shared.ctx, &w, target as u32);
                w.local_path = bound == u64::MAX && !w.worm.pending_route;
                let mut reg = shared.regions[target].lock().unwrap();
                reg.safe = reg.safe.min(bound);
                reg.worms.push(w);
                drop(reg);
                n_active += 1;
            }
        }

        // The window grant: the minimum per-region `safe` bound over
        // populated regions, capped at the next admission and the step
        // cap. Reactive sources pin the window to one step (a delivery
        // may spawn a release mid-window otherwise); so does any worm
        // near a cut. `peek_next_release` is an idempotent peek for
        // non-reactive sources, so consulting it every window leaves
        // the admission sequence untouched.
        let mut grant = u64::MAX;
        for cell in &shared.regions {
            let reg = cell.lock().unwrap();
            if reg.has_residents() {
                grant = grant.min(reg.safe);
            }
        }
        let w = if sim.reactive || grant <= 1 {
            1
        } else {
            let mut horizon = sim.config.max_steps.saturating_sub(t).max(1);
            if let Some(r) = sim.peek_next_release(t) {
                horizon = horizon.min(r.saturating_sub(t).max(1));
            }
            grant.min(horizon)
        };

        step_window(shared, nthreads, t, w);

        // Merge, in region-index order (the effects are commutative or
        // canonically re-sorted downstream; fixing the order makes the
        // run reproducible by inspection, not just by argument).
        let mut t_dead: u64 = 0;
        let mut all_static = true;
        let mut any_worms = false;
        let mut any_frozen = false;
        for cell in &shared.regions {
            let mut reg = cell.lock().unwrap();
            t_dead = t_dead.max(reg.last_move_plus1);
            if reg.has_residents() {
                any_worms = true;
                if reg.static_from == u64::MAX {
                    all_static = false;
                } else {
                    t_dead = t_dead.max(reg.static_from);
                }
            }
            any_frozen |= reg.static_from != u64::MAX;
            rel_buf.append(&mut reg.remote_releases);
            handoff_buf.append(&mut reg.handoffs);
            retired_buf.append(&mut reg.retired);
        }
        debug_assert!(
            w == 1 || rel_buf.is_empty(),
            "remote release inside a multi-step window"
        );
        // Cross-region releases land now — visible to step `t + 1`,
        // like any sequential mid-step release...
        for &e in &rel_buf {
            let e = e as usize;
            let owner = shared.ctx.edge_region[e] as usize;
            shared.regions[owner]
                .lock()
                .unwrap()
                .release_local(&shared.ctx, e);
        }
        rel_buf.clear();
        // ...and *before* the occupancy maxima are sampled, so the
        // sample is the end-of-step state, as in the sequential
        // engines. (Multi-step windows already settled in-region.)
        // The wake pass runs here too: a remote release during step
        // `t` unblocks its local waiters exactly like a local one —
        // skipped stalls settle through `t`, re-contention at `t + 1`.
        if w == 1 {
            for cell in &shared.regions {
                let mut reg = cell.lock().unwrap();
                reg.wake_parked(&shared.ctx, t);
                reg.settle_max(&shared.ctx);
            }
        }
        // A frozen region repeats its freeze step verbatim until the
        // window ends (or until the deadlock instant, below): top up
        // the stall counts its skipped steps would have recorded. At
        // the freeze step every resident was blocked — a mover would
        // have unfrozen it — so the top-up is uniform.
        let deadlocked =
            sim.config.blocked == BlockedPolicy::Stall && any_worms && all_static && t_dead < t + w;
        if any_frozen {
            let end_count = if deadlocked { t_dead } else { t + w - 1 };
            for cell in &shared.regions {
                let mut reg = cell.lock().unwrap();
                if reg.static_from != u64::MAX {
                    let extra = end_count - reg.static_from;
                    if extra > 0 {
                        for wm in &mut reg.worms {
                            wm.out.stalls += extra;
                        }
                    }
                }
            }
        }
        for rt in retired_buf.drain(..) {
            let mi = rt.id as usize;
            sim.worms[mi].advance = rt.worm.advance;
            sim.worms[mi].hops = rt.worm.hops;
            sim.worms[mi].pending_route = rt.worm.pending_route;
            sim.outcomes[mi] = rt.out;
            sim.record_done(rt.id, rt.time, rt.delivered);
            if rt.delivered {
                sim.last_finish = sim.last_finish.max(rt.time);
            }
            sim.unfinished -= 1;
            n_active -= 1;
        }
        for (target, mut w) in handoff_buf.drain(..) {
            let bound = worm_bound(&shared.ctx, &w, target);
            w.local_path = bound == u64::MAX && !w.worm.pending_route;
            let mut reg = shared.regions[target as usize].lock().unwrap();
            reg.safe = reg.safe.min(bound);
            reg.worms.push(w);
        }

        if deadlocked {
            // Static state, nothing can ever move again: deadlock at
            // the first globally move-free step, with the same report
            // the sequential engines build. Parked worms were blocked
            // at every step up to the verdict — settle them first.
            t = t_dead;
            for cell in &shared.regions {
                cell.lock().unwrap().settle_parked(t_dead);
            }
            write_back(sim, shared);
            sim.rebuild_active();
            deadlock_report = Some(sim.build_deadlock_report());
            break Outcome::Deadlock(sim.active.clone());
        }
        if sim.config.check_invariants {
            write_back(sim, shared);
            sync_counters(sim, shared);
            sim.rebuild_active();
            sim.validate();
        }
        t += w;
    };
    if matches!(outcome, Outcome::MaxSteps) {
        // The cap ended the run with worms possibly still parked; the
        // sequential engines count their stalls through the last step
        // that ran (`max_steps - 1`).
        let last = sim.config.max_steps.saturating_sub(1);
        for cell in &shared.regions {
            cell.lock().unwrap().settle_parked(last);
        }
    }
    write_back(sim, shared);
    sync_counters(sim, shared);
    fold_stats(sim, shared);
    sim.rebuild_active();
    (outcome, t, deadlock_report)
}

/// Entry point from the engine dispatch: runs `sim` to its outcome on
/// the partitioned engine with `threads` workers (0 = all available;
/// always clamped to the region count). The caller has already
/// verified the configuration is supported — unsupported ones take the
/// explicit-fallback path and never reach this function.
pub(crate) fn drive(sim: &mut Sim<'_>, threads: u32) -> (Outcome, u64, Option<DeadlockReport>) {
    let graph = sim.graph;
    if graph.num_nodes() == 0 {
        // Nothing to partition (and no message can have a valid path);
        // the legacy driver resolves the source bookkeeping.
        return sim.drive_legacy();
    }
    let plan = match &sim.config.regions {
        Some(p) => {
            assert!(
                p.matches(graph),
                "region plan does not match the simulated graph"
            );
            p.clone()
        }
        None => RegionPlan::contiguous(graph, DEFAULT_REGIONS),
    };
    let k = plan.num_regions() as usize;
    let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
    let req = if threads == 0 {
        avail
    } else {
        threads as usize
    };
    let nthreads = req.min(k).max(1);
    let ctx = Ctx::new(sim, &plan);
    let regions = (0..k)
        .map(|r| Mutex::new(Region::new(r as u32, &ctx)))
        .collect();
    let shared = Shared {
        regions,
        start: Barrier::new(nthreads),
        end: Barrier::new(nthreads),
        t_now: AtomicU64::new(0),
        w_now: AtomicU64::new(1),
        stop: AtomicBool::new(false),
        ctx,
    };
    if nthreads == 1 {
        run_loop(sim, &shared, 1)
    } else {
        std::thread::scope(|s| {
            let sh = &shared;
            for w in 1..nthreads {
                s.spawn(move || worker_loop(sh, w, nthreads));
            }
            let out = run_loop(sim, sh, nthreads);
            sh.stop.store(true, Ordering::Relaxed);
            sh.start.wait();
            out
        })
    }
}
