//! Optional event tracing and deadlock post-mortems for the wormhole
//! simulator — the observability a user debugging a routing algorithm
//! needs.

/// One simulator event. Times are flit-step indices (start of step).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// Message acquired a VC on an edge (its header crossed it).
    Acquire {
        /// Flit step.
        t: u64,
        /// Message id.
        msg: u32,
        /// Edge id.
        edge: u32,
    },
    /// Message wanted an edge but found no free VC this step.
    Blocked {
        /// Flit step.
        t: u64,
        /// Message id.
        msg: u32,
        /// Edge id.
        edge: u32,
    },
    /// Message delivered its last flit (end-of-step time).
    Finish {
        /// Flit step (end of step).
        t: u64,
        /// Message id.
        msg: u32,
    },
    /// Message was discarded after a delay
    /// ([`crate::config::BlockedPolicy::Discard`]).
    Discard {
        /// Flit step.
        t: u64,
        /// Message id.
        msg: u32,
    },
}

/// A message waiting on an edge whose VCs are all held.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WaitFor {
    /// The blocked message.
    pub message: u32,
    /// The edge it needs a VC on.
    pub edge: u32,
    /// Messages currently holding that edge's VCs.
    pub holders: Vec<u32>,
}

/// Post-mortem of a deadlocked configuration: the full wait-for relation
/// and one concrete cycle through it (a deadlock always contains one:
/// every blocked message waits on messages that are themselves blocked).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeadlockReport {
    /// Every blocked message with the edge it wants and that edge's
    /// holders.
    pub waits: Vec<WaitFor>,
    /// A cycle `m₀ → m₁ → … → m₀` where each message waits on a VC held by
    /// the next.
    pub cycle: Vec<u32>,
}

impl DeadlockReport {
    /// Builds the report from the wait-for relation; finds a cycle by
    /// following first-holder pointers (guaranteed to close, since every
    /// holder in a deadlock is itself blocked).
    pub fn from_waits(waits: Vec<WaitFor>) -> Self {
        let next: std::collections::HashMap<u32, u32> = waits
            .iter()
            .filter_map(|w| w.holders.first().map(|&h| (w.message, h)))
            .collect();
        let mut cycle = Vec::new();
        if let Some((&start, _)) = next.iter().min() {
            let mut seen = std::collections::HashMap::new();
            let mut cur = start;
            loop {
                if let Some(&pos) = seen.get(&cur) {
                    cycle = cycle.split_off(pos);
                    break;
                }
                seen.insert(cur, cycle.len());
                cycle.push(cur);
                match next.get(&cur) {
                    Some(&n) => cur = n,
                    None => {
                        cycle.clear(); // holder outside the blocked set:
                        break; // not a true cycle from this start
                    }
                }
            }
        }
        Self { waits, cycle }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_extraction_two_way() {
        let waits = vec![
            WaitFor {
                message: 0,
                edge: 10,
                holders: vec![1],
            },
            WaitFor {
                message: 1,
                edge: 11,
                holders: vec![0],
            },
        ];
        let rep = DeadlockReport::from_waits(waits);
        assert_eq!(rep.cycle.len(), 2);
        assert!(rep.cycle.contains(&0) && rep.cycle.contains(&1));
    }

    #[test]
    fn cycle_extraction_with_tail() {
        // 5 waits on 0, 0 <-> 1 cycle: the tail is trimmed.
        let waits = vec![
            WaitFor {
                message: 5,
                edge: 9,
                holders: vec![0],
            },
            WaitFor {
                message: 0,
                edge: 10,
                holders: vec![1],
            },
            WaitFor {
                message: 1,
                edge: 11,
                holders: vec![0],
            },
        ];
        let rep = DeadlockReport::from_waits(waits);
        assert_eq!(rep.cycle, vec![0, 1]);
    }

    #[test]
    fn empty_waits() {
        let rep = DeadlockReport::from_waits(vec![]);
        assert!(rep.cycle.is_empty());
        assert!(rep.waits.is_empty());
    }
}
