//! Simulator configuration: the model knobs of §1.1 and §1.4.

use wormhole_topology::fault::FaultPlan;
use wormhole_topology::region::RegionPlan;

/// How much traffic a physical channel moves per flit step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BandwidthModel {
    /// The paper's primary model (footnote 4): with `B` virtual channels, a
    /// flit step transmits one flit on *each* VC — `B` flits per physical
    /// channel per step.
    BFlitsPerStep,
    /// The restricted model of the §1.4 Remarks: buffering is still `B`
    /// flits per edge, but each physical channel transmits at most **one**
    /// flit per step. The paper's algorithms emulate here with a factor-`B`
    /// slowdown.
    OneFlitPerStep,
}

/// How each router's virtual-channel capacity is provisioned across its
/// outgoing routing edges — the knob the dynamic-VC-allocation studies
/// (Onsori–Safaei; Stergiou's multi-lane storage comparison) turn while
/// holding total buffer storage fixed.
///
/// The free-VC test every acquisition runs is a *policy query*:
///
/// * [`VcPolicy::Static`]`(B)` — the paper's model: every routing edge
///   owns `B` dedicated VCs. An edge is acquirable iff it holds fewer
///   than `B`.
/// * [`VcPolicy::RouterPooled`] — each router shares one pool of `pool`
///   VCs across its outgoing edges. Every edge keeps a guaranteed floor
///   of `per_edge_min` VCs (reserved whether used or not) and may grow
///   to `per_edge_max` by drawing the excess from the router's *shared*
///   portion, `pool − per_edge_min · fanout`. An edge is acquirable iff
///   it is below `per_edge_max` **and** either below its floor or the
///   shared portion has credit left.
///
/// `Static(B)` is exactly `RouterPooled { pool: B · fanout,
/// per_edge_min: B, per_edge_max: B }` (the floors exhaust the pool and
/// the shared portion is empty) — a policy-equivalence proptest holds
/// the two bit-identical across both engines.
///
/// # Why `per_edge_min ≥ 1` is mandatory
///
/// Every deadlock-freedom argument in this codebase (Dally–Seitz
/// dateline classes, the Duato escape pair under adaptive routing) is an
/// acyclicity proof over the channel-dependency graph, and it assumes
/// each routing edge eventually serves its holders — which needs at
/// least one VC that pooling can never take away. The floor guarantees
/// exactly that: escape-class edges always retain a dedicated VC, so the
/// proofs survive pooling unchanged. Validation therefore rejects
/// `per_edge_min == 0`.
///
/// Pooling requires the full-bandwidth model
/// ([`BandwidthModel::BFlitsPerStep`]); the restricted per-flit stepper
/// only supports `Static`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VcPolicy {
    /// `B` dedicated virtual channels on every routing edge (`B ≥ 1`) —
    /// the paper's capacity model and the default.
    Static(u32),
    /// Demand-driven per-router pooling: outgoing edges share `pool` VCs
    /// with a reserved floor of `per_edge_min` each and a hard per-edge
    /// cap of `per_edge_max`.
    RouterPooled {
        /// Total VCs available at each router, shared across its
        /// outgoing routing edges.
        pool: u32,
        /// Guaranteed (reserved) VCs per outgoing edge. Must be ≥ 1 so
        /// the escape-channel deadlock-freedom arguments survive; the
        /// simulator additionally checks `per_edge_min · fanout ≤ pool`
        /// for every router of the actual graph at run start.
        per_edge_min: u32,
        /// Hard cap on VCs any single edge may hold simultaneously.
        per_edge_max: u32,
    },
}

impl VcPolicy {
    /// A validated [`VcPolicy::RouterPooled`]. Panics on `pool == 0`,
    /// `per_edge_min == 0`, or `per_edge_min > per_edge_max` (the
    /// graph-dependent `per_edge_min · fanout ≤ pool` check runs at
    /// simulation start, when the fanout is known).
    pub fn pooled(pool: u32, per_edge_min: u32, per_edge_max: u32) -> Self {
        let p = VcPolicy::RouterPooled {
            pool,
            per_edge_min,
            per_edge_max,
        };
        p.validate();
        p
    }

    /// Panics unless the policy's graph-independent invariants hold (the
    /// same contract [`SimConfig::new`] enforces for the static scalar).
    pub fn validate(&self) {
        match *self {
            VcPolicy::Static(b) => assert!(b >= 1, "need at least one virtual channel"),
            VcPolicy::RouterPooled {
                pool,
                per_edge_min,
                per_edge_max,
            } => {
                assert!(pool >= 1, "pooled VC policy needs a nonempty pool");
                assert!(
                    per_edge_min >= 1,
                    "per_edge_min must be >= 1: a zero floor lets pooling starve an \
                     escape channel and voids the deadlock-freedom arguments"
                );
                assert!(
                    per_edge_min <= per_edge_max,
                    "per_edge_min {per_edge_min} exceeds per_edge_max {per_edge_max}"
                );
                assert!(
                    per_edge_max <= u16::MAX as u32,
                    "per_edge_max exceeds the simulator's u16 holder counters"
                );
            }
        }
    }

    /// The hard per-edge VC cap (`B`, or `per_edge_max`).
    #[inline]
    pub fn max_per_edge(&self) -> u32 {
        match *self {
            VcPolicy::Static(b) => b,
            VcPolicy::RouterPooled { per_edge_max, .. } => per_edge_max,
        }
    }

    /// Whether this policy shares capacity across a router's edges.
    #[inline]
    pub fn is_pooled(&self) -> bool {
        matches!(self, VcPolicy::RouterPooled { .. })
    }

    /// Short lowercase name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            VcPolicy::Static(_) => "static",
            VcPolicy::RouterPooled { .. } => "pooled",
        }
    }
}

/// Which message wins when several headers contend for the free virtual
/// channels of an edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Arbitration {
    /// Uniformly random among contenders (seeded; deterministic per seed).
    Random,
    /// Lowest message id first.
    FifoById,
    /// Earliest release time first (ties by id).
    OldestFirst,
    /// Lowest [`crate::message::MessageSpec::priority`] first (ties by id) —
    /// used to favor earlier color classes when schedules overlap.
    PriorityRank,
}

/// Whether crossing a message's final edge requires a virtual channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FinalEdgePolicy {
    /// Physical (Dally-style) behaviour: the last edge is an edge like any
    /// other; its flits are removed into the delivery buffer immediately
    /// after crossing, but a VC must still be held while the worm streams.
    RequiresVc,
    /// Idealized reading of §1.1 ("as soon as a flit reaches its destination
    /// node, the flit is removed"): delivery absorbs flits without consuming
    /// a VC on the final edge.
    Unlimited,
}

/// Which stepper drives a full-bandwidth run. All engines are required
/// to produce bit-identical [`crate::stats::SimResult`]s on every
/// configuration they accept (the proptest differential suite enforces
/// it); they differ only in cost. When [`Engine::Parallel`] is asked
/// for a configuration it does not support it falls back to a
/// sequential engine and says so in
/// [`crate::stats::SimResult::engine_fallback`] — never silently.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// Event-driven core: worms that lose arbitration park on a per-edge
    /// wait queue and are only reconsidered when that edge releases a VC;
    /// contention-free stretches fast-forward. The default.
    EventDriven,
    /// The original per-step rescanning stepper, kept as the differential
    /// oracle (and used automatically by [`crate::wormhole::run_traced`],
    /// whose per-step `Blocked` events are inherently step-enumerated).
    Legacy,
    /// Partitioned parallel engine: the network is decomposed into
    /// regions ([`SimConfig::regions`], or a default contiguous cut),
    /// each advanced on its own worker; workers synchronize on
    /// conservative windows bounded by the plan's cross-region header
    /// latency (`RegionPlan::lookahead`). Supports static + pooled VC
    /// policies under oblivious routing at full bandwidth;
    /// adaptive/faulted/traced/restricted-bandwidth configs fall back
    /// to a sequential engine with an explicit
    /// [`crate::stats::EngineFallback`] note.
    Parallel {
        /// Worker thread count; `0` means use all available parallelism.
        /// Clamped to the region count. The result is byte-identical
        /// for every thread count, including 1.
        threads: u32,
    },
}

/// How a message's route is chosen.
///
/// Oblivious runs fix every path at injection ([`crate::wormhole::run`]
/// takes fully routed [`crate::message::MessageSpec`]s). The adaptive
/// policies instead extend each worm's path **one hop at a time** at the
/// header ([`crate::wormhole::run_adaptive`], which needs an
/// [`wormhole_topology::adaptive::AdaptiveRouter`] substrate): each step
/// the header picks, among its candidate adaptive-lane output channels,
/// the one with a free VC and the lowest start-of-step occupancy (ties
/// by edge id). When **every** adaptive candidate is full, the worm
/// falls back to the Dally–Seitz escape pair — it contends for the first
/// hop of the escape route from its current node, and on winning it
/// commits to that entire route and never returns to the adaptive lane.
/// That fallback is what keeps adaptive routing deadlock-free by
/// construction (the escape subnetwork's channel-dependency graph is
/// acyclic; see `wormhole_topology::adaptive`).
///
/// Selection is a pure function of start-of-step state, so the two
/// [`Engine`]s remain bit-identical under every policy; the differential
/// proptest suite covers all three.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteSelection {
    /// Follow the precomputed [`crate::message::MessageSpec::path`]
    /// verbatim. The only policy [`crate::wormhole::run`] accepts.
    Oblivious,
    /// Per-hop adaptive over **minimal** (distance-reducing) candidates
    /// only; escape fallback when all are full. Route length equals the
    /// minimal distance.
    MinimalAdaptive,
    /// Like [`RouteSelection::MinimalAdaptive`], but when no profitable
    /// candidate has a free VC the worm may also *misroute* (take a
    /// non-minimal adaptive hop, never an immediate u-turn) while its
    /// per-message budget [`SimConfig::misroute_quota`] lasts. With the
    /// budget spent it degrades to minimal-adaptive, so delivery stays
    /// guaranteed (no livelock).
    FullyAdaptive,
}

impl RouteSelection {
    /// Short lowercase name for tables.
    pub fn name(self) -> &'static str {
        match self {
            RouteSelection::Oblivious => "oblivious",
            RouteSelection::MinimalAdaptive => "minimal",
            RouteSelection::FullyAdaptive => "fully",
        }
    }
}

/// What happens to a worm whose header cannot advance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockedPolicy {
    /// Stall in place holding all acquired VCs (ordinary wormhole routing).
    Stall,
    /// Discard the message immediately, releasing its VCs — the semantics of
    /// step 4 of the §3.1 butterfly algorithm ("if a message is delayed at a
    /// switch, then the message is discarded").
    Discard,
}

/// Full simulator configuration.
///
/// # Which knob combinations are differential-tested
///
/// The two [`Engine`]s are required to be bit-identical on every
/// full-bandwidth configuration. `tests/proptest_engine_diff.rs`
/// sweeps, on random chain / butterfly / torus workloads:
///
/// * all four [`Arbitration`] policies (including the stateless
///   `(seed, step, edge)`-keyed [`Arbitration::Random`] stream),
/// * `B ∈ {1, 2, 4}`, staggered releases, priorities, tight
///   [`SimConfig::max_steps`] caps (partial state at an abort must
///   match), [`BlockedPolicy::Discard`], deadlocking naive-torus arms
///   (reports compared field for field), and
/// * all three [`RouteSelection`] policies on `AdaptiveEscape` tori —
///   adaptive runs are where the equality is subtlest, because route
///   choice reads VC occupancy; see [`crate::wormhole`] for why the
///   shared start-of-step convention keeps it exact, and
/// * both [`VcPolicy`] arms — static and router-pooled — on chains,
///   dateline tori, and adaptive tori, plus a policy-equivalence suite
///   asserting `Static(B)` ≡ the degenerate
///   `RouterPooled { pool: B·fanout, per_edge_min: B, per_edge_max: B }`
///   field for field on both engines.
///
/// [`BandwidthModel::OneFlitPerStep`] has a single stepper (the
/// `engine` knob is ignored) and rejects adaptive selection and pooled
/// VC policies.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// How VC capacity is provisioned (see [`VcPolicy`]). The default
    /// [`VcPolicy::Static`]`(B)` gives every **routing edge** `B ≥ 1`
    /// dedicated VCs; on a multi-class graph (dateline or
    /// adaptive-escape disciplines, where each physical channel is
    /// several parallel edges) that is the VC count *per class*: a
    /// 2-class channel with `b` VCs per class models a `2b`-VC
    /// Dally–Seitz router. [`VcPolicy::RouterPooled`] instead lets each
    /// router's outgoing edges share a VC pool on demand (equal total
    /// storage, floors preserved — both engines remain bit-identical
    /// under either policy).
    pub vc_policy: VcPolicy,
    /// Bandwidth model (see [`BandwidthModel`]).
    pub bandwidth: BandwidthModel,
    /// Header arbitration policy: which contender wins the free VCs of
    /// an edge when too many headers want it in the same step.
    /// [`Arbitration::Random`] draws from a **stateless RNG keyed by
    /// `(seed, step, edge)`** — not a sequential global stream — so the
    /// draw is independent of how many arbitration events preceded it;
    /// this is what lets the event-driven engine skip blocked steps and
    /// still reproduce the legacy stepper bit for bit.
    pub arbitration: Arbitration,
    /// Final-edge VC policy.
    pub final_edge: FinalEdgePolicy,
    /// Blocked-worm policy.
    pub blocked: BlockedPolicy,
    /// Full-bandwidth stepper (see [`Engine`]): the event-driven core
    /// (default) or the legacy per-step rescanner kept as its
    /// differential oracle. Both produce bit-identical
    /// [`crate::stats::SimResult`]s; only their cost differs. Ignored by
    /// the restricted bandwidth model, which has a single per-flit
    /// stepper.
    pub engine: Engine,
    /// Route selection policy (see [`RouteSelection`]). Adaptive values
    /// require [`crate::wormhole::run_adaptive`]; [`crate::wormhole::run`]
    /// rejects them because it has no router to enumerate candidates.
    pub route_selection: RouteSelection,
    /// Per-message misroute budget for [`RouteSelection::FullyAdaptive`]
    /// (non-minimal adaptive hops a worm may take before degrading to
    /// minimal-adaptive). Ignored by the other policies.
    pub misroute_quota: u32,
    /// Hard step cap: the run aborts with [`crate::stats::Outcome::MaxSteps`]
    /// if any message is still unfinished after this many flit steps.
    pub max_steps: u64,
    /// RNG seed (used only by [`Arbitration::Random`]).
    pub seed: u64,
    /// Region partition used by [`Engine::Parallel`] (ignored by the
    /// sequential engines). `None` lets the engine build a default
    /// contiguous cut over the graph's node-id order
    /// (`RegionPlan::contiguous`); substrate-aware plans come from
    /// `wormhole_workloads::Substrate::region_plan`. The plan only
    /// affects which worker owns which router — the `SimResult` is
    /// bit-identical for every valid plan and thread count.
    pub regions: Option<RegionPlan>,
    /// Timed link/router kills applied during the run (validated against
    /// the graph at simulation start; see
    /// `wormhole_topology::fault::FaultPlan`). A kill scheduled at step
    /// `t` takes effect at the start of step `t`, in **both** engines
    /// identically: the dead edges stop granting VCs, and every worm
    /// holding one — or obliviously committed to crossing one — is
    /// discarded with [`crate::stats::DiscardReason::LinkDown`] (the
    /// source's `on_discarded` hook fires, so closed-loop sources can
    /// reissue). Requires [`BandwidthModel::BFlitsPerStep`].
    pub faults: Option<FaultPlan>,
    /// When set, the simulator re-verifies VC accounting and flit
    /// conservation every step (slow; used by tests).
    pub check_invariants: bool,
}

impl SimConfig {
    /// A config with `b` static virtual channels per edge and defaults
    /// matching the paper's primary model.
    pub fn new(b: u32) -> Self {
        let vc_policy = VcPolicy::Static(b);
        vc_policy.validate();
        Self {
            vc_policy,
            bandwidth: BandwidthModel::BFlitsPerStep,
            arbitration: Arbitration::FifoById,
            final_edge: FinalEdgePolicy::RequiresVc,
            blocked: BlockedPolicy::Stall,
            engine: Engine::EventDriven,
            route_selection: RouteSelection::Oblivious,
            misroute_quota: 4,
            max_steps: 100_000_000,
            seed: 0,
            regions: None,
            faults: None,
            check_invariants: false,
        }
    }

    /// Sets the VC capacity policy (validated; see [`VcPolicy`]).
    pub fn vc_policy(mut self, p: VcPolicy) -> Self {
        p.validate();
        self.vc_policy = p;
        self
    }

    /// Sets the bandwidth model.
    pub fn bandwidth(mut self, m: BandwidthModel) -> Self {
        self.bandwidth = m;
        self
    }

    /// Sets the arbitration policy.
    pub fn arbitration(mut self, a: Arbitration) -> Self {
        self.arbitration = a;
        self
    }

    /// Sets the final-edge policy.
    pub fn final_edge(mut self, p: FinalEdgePolicy) -> Self {
        self.final_edge = p;
        self
    }

    /// Sets the blocked-worm policy.
    pub fn blocked(mut self, p: BlockedPolicy) -> Self {
        self.blocked = p;
        self
    }

    /// Selects the full-bandwidth stepper.
    pub fn engine(mut self, e: Engine) -> Self {
        self.engine = e;
        self
    }

    /// Sets the route-selection policy.
    pub fn route_selection(mut self, r: RouteSelection) -> Self {
        self.route_selection = r;
        self
    }

    /// Sets the fully-adaptive misroute budget.
    pub fn misroute_quota(mut self, q: u32) -> Self {
        self.misroute_quota = q;
        self
    }

    /// Sets the step cap.
    pub fn max_steps(mut self, s: u64) -> Self {
        self.max_steps = s;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Installs a region partition for [`Engine::Parallel`] (see
    /// [`SimConfig::regions`]).
    pub fn regions(mut self, plan: RegionPlan) -> Self {
        self.regions = Some(plan);
        self
    }

    /// Installs a fault plan (timed link/router kills; see
    /// [`SimConfig::faults`]).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Enables per-step invariant checking (slow).
    pub fn check_invariants(mut self, on: bool) -> Self {
        self.check_invariants = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let c = SimConfig::new(3)
            .bandwidth(BandwidthModel::OneFlitPerStep)
            .arbitration(Arbitration::Random)
            .final_edge(FinalEdgePolicy::Unlimited)
            .blocked(BlockedPolicy::Discard)
            .engine(Engine::Legacy)
            .route_selection(RouteSelection::FullyAdaptive)
            .misroute_quota(9)
            .max_steps(10)
            .seed(7)
            .check_invariants(true);
        assert_eq!(c.vc_policy, VcPolicy::Static(3));
        assert_eq!(c.bandwidth, BandwidthModel::OneFlitPerStep);
        assert_eq!(c.arbitration, Arbitration::Random);
        assert_eq!(c.final_edge, FinalEdgePolicy::Unlimited);
        assert_eq!(c.blocked, BlockedPolicy::Discard);
        assert_eq!(c.engine, Engine::Legacy);
        assert_eq!(c.route_selection, RouteSelection::FullyAdaptive);
        assert_eq!(c.misroute_quota, 9);
        assert_eq!(c.max_steps, 10);
        assert_eq!(c.seed, 7);
        assert!(c.check_invariants);
    }

    #[test]
    #[should_panic(expected = "at least one virtual channel")]
    fn rejects_zero_vcs() {
        SimConfig::new(0);
    }

    #[test]
    fn parallel_engine_builder() {
        use wormhole_topology::graph::{GraphBuilder, NodeId};
        let mut b = GraphBuilder::new(4);
        for v in 0..3 {
            b.add_edge(NodeId(v), NodeId(v + 1));
        }
        let g = b.build();
        let plan = RegionPlan::contiguous(&g, 2);
        let c = SimConfig::new(1)
            .engine(Engine::Parallel { threads: 4 })
            .regions(plan.clone());
        assert_eq!(c.engine, Engine::Parallel { threads: 4 });
        assert_eq!(c.regions, Some(plan));
        assert_eq!(SimConfig::new(1).regions, None);
    }

    #[test]
    fn pooled_builder_roundtrip() {
        let p = VcPolicy::pooled(16, 1, 6);
        let c = SimConfig::new(2).vc_policy(p);
        assert_eq!(c.vc_policy, p);
        assert!(p.is_pooled());
        assert_eq!(p.max_per_edge(), 6);
        assert_eq!(p.name(), "pooled");
        assert!(!VcPolicy::Static(2).is_pooled());
        assert_eq!(VcPolicy::Static(2).max_per_edge(), 2);
        assert_eq!(VcPolicy::Static(2).name(), "static");
    }

    #[test]
    #[should_panic(expected = "nonempty pool")]
    fn rejects_zero_pool() {
        VcPolicy::pooled(0, 1, 1);
    }

    #[test]
    #[should_panic(expected = "per_edge_min must be >= 1")]
    fn rejects_zero_floor() {
        VcPolicy::pooled(8, 0, 4);
    }

    #[test]
    #[should_panic(expected = "exceeds per_edge_max")]
    fn rejects_floor_above_cap() {
        VcPolicy::pooled(8, 3, 2);
    }

    #[test]
    #[should_panic(expected = "nonempty pool")]
    fn builder_validates_the_policy() {
        let _ = SimConfig::new(1).vc_policy(VcPolicy::RouterPooled {
            pool: 0,
            per_edge_min: 1,
            per_edge_max: 1,
        });
    }
}
