//! Simulation results and statistics.

use crate::events::DeadlockReport;

/// How a simulation run ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Every message finished (or was discarded, under
    /// [`crate::config::BlockedPolicy::Discard`]).
    Completed,
    /// No worm could move and none will ever move again: deadlock. Contains
    /// the ids of the blocked messages (a wait-for cycle exists among them).
    Deadlock(Vec<u32>),
    /// The step cap was reached with unfinished messages.
    MaxSteps,
}

/// Why a run requested under [`crate::config::Engine::Parallel`] was
/// executed by a sequential engine instead. The parallel engine's
/// contract is *bit-identical or explicit fallback*: for every
/// configuration it accepts it must reproduce the sequential engines'
/// [`SimResult`] exactly, and for every configuration it does not
/// accept it must say so here — never silently degrade.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineFallback {
    /// A fault plan is installed: kills apply network-wide at the start
    /// of a step and discard worms in several regions at once.
    FaultInjection,
    /// The restricted [`crate::config::BandwidthModel::OneFlitPerStep`]
    /// model, which has its own single per-flit stepper.
    RestrictedBandwidth,
    /// An event-trace hook is attached (`run_traced`), whose per-step
    /// `Blocked` events are inherently step-enumerated.
    Tracing,
}

impl EngineFallback {
    /// Short lowercase name for tables.
    pub fn name(self) -> &'static str {
        match self {
            EngineFallback::FaultInjection => "faults",
            EngineFallback::RestrictedBandwidth => "restricted-bw",
            EngineFallback::Tracing => "tracing",
        }
    }
}

/// Why a message was discarded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiscardReason {
    /// Blocked past its deadline under
    /// [`crate::config::BlockedPolicy::Discard`].
    Delay,
    /// A link on the worm's path was killed by a fault
    /// (`SimConfig::faults`): it held a dead edge, its frozen remaining
    /// path crossed one, or its escape hop died with no alternative.
    LinkDown,
}

/// Per-message result.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MessageOutcome {
    /// Flit step (end-of-step time) at which the last flit was delivered.
    pub finished: Option<u64>,
    /// Flit step at which the header first advanced.
    pub first_move: Option<u64>,
    /// Number of steps the worm was blocked wanting to move.
    pub stalls: u64,
    /// `Some(reason)` if the message was discarded — after a delay under
    /// [`crate::config::BlockedPolicy::Discard`], or because a fault
    /// killed its path ([`DiscardReason::LinkDown`]).
    pub discarded: Option<DiscardReason>,
}

impl MessageOutcome {
    /// Latency from `release` to delivery, if delivered.
    pub fn latency(&self, release: u64) -> Option<u64> {
        self.finished.map(|f| f - release)
    }
}

/// Latency distribution summary over a set of delivered messages.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyStats {
    /// Number of latency samples.
    pub n: usize,
    /// Mean latency in flit steps.
    pub mean: f64,
    /// Median (50th percentile).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Maximum observed latency.
    pub max: u64,
}

impl LatencyStats {
    /// Summarizes a sample of latencies (need not be sorted). Returns the
    /// zero summary on an empty slice.
    pub fn from_samples(samples: &[u64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut xs = samples.to_vec();
        xs.sort_unstable();
        let pct = |p: usize| xs[(xs.len() * p / 100).min(xs.len() - 1)];
        Self {
            n: xs.len(),
            mean: xs.iter().sum::<u64>() as f64 / xs.len() as f64,
            p50: pct(50),
            p95: pct(95),
            p99: pct(99),
            max: *xs.last().unwrap(),
        }
    }
}

/// Open-loop (continuous-injection) measurement attached to a
/// [`SimResult`] by [`crate::open_loop::run_open_loop`]. All windowed
/// quantities refer to the configured measurement window.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OpenLoopStats {
    /// First step of the measurement window (= warmup length).
    pub window_start: u64,
    /// Length of the measurement window in flit steps.
    pub window_len: u64,
    /// Messages released inside the measurement window.
    pub offered_msgs: usize,
    /// Of those, messages delivered before the simulation ended.
    pub delivered_msgs: usize,
    /// Latency summary over the delivered measurement-window messages
    /// (release → last flit delivered).
    pub latency: LatencyStats,
    /// Messages *finished* inside the measurement window (any release),
    /// the basis of the accepted-throughput figure.
    pub accepted_msgs: usize,
    /// Accepted throughput: flits of messages finished inside the window,
    /// per flit step (divide by the endpoint count for the usual
    /// per-endpoint normalization).
    pub accepted_flits_per_step: f64,
    /// Offered load inside the window, messages per flit step.
    pub offered_msgs_per_step: f64,
    /// In-flight backlog (released, not yet finished) at the start and
    /// end of the measurement window: a growing backlog is saturation.
    pub backlog: (usize, usize),
    /// Saturation verdict: the network failed to accept the offered load
    /// over the window (see [`crate::open_loop::OpenLoopConfig`]).
    pub saturated: bool,
}

/// Closed-loop measurement attached to a [`SimResult`] by a run driven
/// through a windowed closed-loop source (see
/// `wormhole_workloads::closed_loop`). A *chain* is one request→reply
/// round trip owned by a client slot; a slot is *backlogged* (busy)
/// while its chain is in flight and *thinking* between chains.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ClosedLoopStats {
    /// Number of client endpoints driving the run.
    pub clients: usize,
    /// Outstanding-request window per client (slots).
    pub window: u32,
    /// Requests issued over the run (including in-flight at the end).
    pub requests_issued: u64,
    /// Request→reply chains completed (the reply was delivered).
    pub chains_completed: u64,
    /// Latency summary over completed chains, request release → reply
    /// delivery.
    pub chain_latency: LatencyStats,
    /// Per-client think time: slot-steps spent idle between chains.
    /// Indexed like the source's client list.
    pub per_client_think: Vec<u64>,
    /// Per-client backlog time: slot-steps with a chain outstanding
    /// (in-flight chains are charged up to the measurement horizon).
    pub per_client_backlog: Vec<u64>,
}

impl ClosedLoopStats {
    /// Total think steps across clients.
    pub fn total_think(&self) -> u64 {
        self.per_client_think.iter().sum()
    }

    /// Total backlog (busy) steps across clients.
    pub fn total_backlog(&self) -> u64 {
        self.per_client_backlog.iter().sum()
    }

    /// Structural in-flight ceiling: no more than `clients × window`
    /// messages can ever be in the network at once.
    pub fn outstanding_bound(&self) -> u64 {
        self.clients as u64 * self.window as u64
    }
}

/// Aggregate result of a simulation run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Completion status.
    pub outcome: Outcome,
    /// Makespan: the end-of-step time of the last delivery (steps simulated
    /// if the run did not complete).
    pub total_steps: u64,
    /// Per-message outcomes, indexed like the input specs.
    pub messages: Vec<MessageOutcome>,
    /// Maximum number of VCs simultaneously in use on any edge (≤ B
    /// under [`crate::config::VcPolicy::Static`], ≤ `per_edge_max`
    /// under [`crate::config::VcPolicy::RouterPooled`]).
    pub max_vcs_in_use: u32,
    /// Maximum number of VCs simultaneously in use across the outgoing
    /// edges of any single router — the pool-occupancy high-water mark
    /// under [`crate::config::VcPolicy::RouterPooled`] (≤ `pool`), and
    /// the same per-router sum under the static policy (≤ `B · fanout`).
    /// Sampled at end of step, like [`SimResult::max_vcs_in_use`], so it
    /// is engine-identical. Tracked by the wormhole simulators only;
    /// the comparison disciplines without per-router VC pools (e.g. the
    /// virtual-cut-through engine) report 0.
    pub max_pool_in_use: u32,
    /// Total blocked-step count across messages.
    pub total_stalls: u64,
    /// Total flit-edge crossings performed (a work measure).
    pub flit_hops: u64,
    /// Adaptive runs: number of worms that fell back onto the
    /// Dally–Seitz escape network (all adaptive candidates full at
    /// selection time). Always 0 under
    /// [`crate::config::RouteSelection::Oblivious`].
    pub escape_fallbacks: u64,
    /// Adaptive runs: total non-minimal (misroute) hops taken, summed
    /// over messages. Nonzero only under
    /// [`crate::config::RouteSelection::FullyAdaptive`].
    pub misroute_hops: u64,
    /// Faulted runs: number of *edge* kills from `SimConfig::faults`
    /// actually applied before the run ended (a router kill counts once
    /// per edge it takes down; an edge killed by several events counts
    /// at its earliest kill time only).
    pub kills_applied: u64,
    /// Faulted runs: messages discarded with
    /// [`DiscardReason::LinkDown`] — their path died under them.
    pub fault_discards: u64,
    /// Faulted runs: non-minimal hops taken *after* the first applied
    /// kill — the detour work faults induced (a sub-count of
    /// [`SimResult::misroute_hops`]).
    pub fault_detour_hops: u64,
    /// Faulted runs: steps from the last applied kill to the first
    /// delivery at or after it — how quickly traffic flowed again once
    /// the network stopped breaking. 0 when nothing was delivered after
    /// the last kill (or no kill was applied).
    pub fault_recovery_steps: u64,
    /// On [`Outcome::Deadlock`]: the wait-for post-mortem (who waits on
    /// which edge held by whom, plus a concrete cycle).
    pub deadlock: Option<DeadlockReport>,
    /// Open-loop windowed measurement; `Some` only for runs produced by
    /// [`crate::open_loop::run_open_loop`].
    pub open_loop: Option<OpenLoopStats>,
    /// Closed-loop chain measurement; `Some` only for runs driven by a
    /// closed-loop [`crate::source::TrafficSource`] through a runner
    /// that attaches it (derived bookkeeping, like
    /// [`SimResult::open_loop`] — excluded from
    /// [`SimResult::same_execution`]).
    pub closed_loop: Option<ClosedLoopStats>,
    /// `Some(reason)` when [`crate::config::Engine::Parallel`] was
    /// requested but the run was executed by a sequential engine (see
    /// [`EngineFallback`]). `None` for sequential-engine runs and for
    /// parallel runs that were actually partitioned. Excluded from
    /// [`SimResult::same_execution`] — it describes *which machinery
    /// ran*, not what the simulation computed, and the fallback contract
    /// is precisely that the computation is unchanged.
    pub engine_fallback: Option<EngineFallback>,
}

impl SimResult {
    /// Field-for-field execution equality over everything the simulator
    /// computes (`open_loop` and `closed_loop` excluded — both are
    /// derived windowing, attached after the run — and
    /// [`SimResult::engine_fallback`] excluded, because it records which
    /// machinery executed the run, not what the run computed). This is
    /// the differential-oracle relation all full-bandwidth engines
    /// ([`crate::config::Engine`]) must satisfy on every workload.
    pub fn same_execution(&self, other: &SimResult) -> bool {
        self.outcome == other.outcome
            && self.total_steps == other.total_steps
            && self.messages == other.messages
            && self.max_vcs_in_use == other.max_vcs_in_use
            && self.max_pool_in_use == other.max_pool_in_use
            && self.total_stalls == other.total_stalls
            && self.flit_hops == other.flit_hops
            && self.escape_fallbacks == other.escape_fallbacks
            && self.misroute_hops == other.misroute_hops
            && self.kills_applied == other.kills_applied
            && self.fault_discards == other.fault_discards
            && self.fault_detour_hops == other.fault_detour_hops
            && self.fault_recovery_steps == other.fault_recovery_steps
            && self.deadlock == other.deadlock
    }

    /// Number of delivered messages.
    pub fn delivered(&self) -> usize {
        self.messages
            .iter()
            .filter(|m| m.finished.is_some())
            .count()
    }

    /// Number of discarded messages (any [`DiscardReason`]).
    pub fn discarded(&self) -> usize {
        self.messages
            .iter()
            .filter(|m| m.discarded.is_some())
            .count()
    }

    /// Messages neither delivered nor discarded — in flight (or never
    /// released) when the run ended. Nonzero only on
    /// [`Outcome::MaxSteps`] / [`Outcome::Deadlock`] runs; step-capped
    /// faulted runs use this to report survivors distinctly from
    /// fault-discarded worms.
    pub fn in_flight(&self) -> usize {
        self.messages
            .iter()
            .filter(|m| m.finished.is_none() && m.discarded.is_none())
            .count()
    }

    /// Largest delivery time, `None` if nothing was delivered.
    pub fn makespan(&self) -> Option<u64> {
        self.messages.iter().filter_map(|m| m.finished).max()
    }

    /// Mean latency over delivered messages, given the release times.
    pub fn mean_latency(&self, releases: &[u64]) -> Option<f64> {
        let mut sum = 0u64;
        let mut cnt = 0u64;
        for (m, &r) in self.messages.iter().zip(releases) {
            if let Some(l) = m.latency(r) {
                sum += l;
                cnt += 1;
            }
        }
        (cnt > 0).then(|| sum as f64 / cnt as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregations() {
        let r = SimResult {
            outcome: Outcome::Completed,
            total_steps: 30,
            messages: vec![
                MessageOutcome {
                    finished: Some(10),
                    first_move: Some(1),
                    stalls: 2,
                    discarded: None,
                },
                MessageOutcome {
                    finished: None,
                    first_move: None,
                    stalls: 0,
                    discarded: Some(DiscardReason::Delay),
                },
                MessageOutcome {
                    finished: Some(30),
                    first_move: Some(0),
                    stalls: 0,
                    discarded: None,
                },
            ],
            max_vcs_in_use: 2,
            max_pool_in_use: 2,
            total_stalls: 2,
            flit_hops: 99,
            escape_fallbacks: 0,
            misroute_hops: 0,
            kills_applied: 0,
            fault_discards: 0,
            fault_detour_hops: 0,
            fault_recovery_steps: 0,
            deadlock: None,
            open_loop: None,
            closed_loop: None,
            engine_fallback: None,
        };
        assert_eq!(r.delivered(), 2);
        assert_eq!(r.discarded(), 1);
        assert_eq!(r.in_flight(), 0);
        assert_eq!(r.makespan(), Some(30));
        let lat = r.mean_latency(&[0, 0, 10]).unwrap();
        assert!((lat - 15.0).abs() < 1e-9); // (10 + 20)/2
    }

    #[test]
    fn latency_of_unfinished_is_none() {
        let m = MessageOutcome::default();
        assert_eq!(m.latency(5), None);
    }

    #[test]
    fn latency_stats_percentiles() {
        let s = LatencyStats::from_samples(&[5, 1, 3, 2, 4]);
        assert_eq!(s.n, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert_eq!(s.p50, 3);
        assert_eq!(s.p95, 5);
        assert_eq!(s.p99, 5);
        assert_eq!(s.max, 5);
        assert_eq!(LatencyStats::from_samples(&[]), LatencyStats::default());
    }
}
