//! Simulation results and statistics.

use crate::events::DeadlockReport;

/// How a simulation run ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Every message finished (or was discarded, under
    /// [`crate::config::BlockedPolicy::Discard`]).
    Completed,
    /// No worm could move and none will ever move again: deadlock. Contains
    /// the ids of the blocked messages (a wait-for cycle exists among them).
    Deadlock(Vec<u32>),
    /// The step cap was reached with unfinished messages.
    MaxSteps,
}

/// Per-message result.
#[derive(Clone, Copy, Debug, Default)]
pub struct MessageOutcome {
    /// Flit step (end-of-step time) at which the last flit was delivered.
    pub finished: Option<u64>,
    /// Flit step at which the header first advanced.
    pub first_move: Option<u64>,
    /// Number of steps the worm was blocked wanting to move.
    pub stalls: u64,
    /// `true` if the message was discarded after a delay
    /// ([`crate::config::BlockedPolicy::Discard`]).
    pub discarded: bool,
}

impl MessageOutcome {
    /// Latency from `release` to delivery, if delivered.
    pub fn latency(&self, release: u64) -> Option<u64> {
        self.finished.map(|f| f - release)
    }
}

/// Aggregate result of a simulation run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Completion status.
    pub outcome: Outcome,
    /// Makespan: the end-of-step time of the last delivery (steps simulated
    /// if the run did not complete).
    pub total_steps: u64,
    /// Per-message outcomes, indexed like the input specs.
    pub messages: Vec<MessageOutcome>,
    /// Maximum number of VCs simultaneously in use on any edge (≤ B).
    pub max_vcs_in_use: u32,
    /// Total blocked-step count across messages.
    pub total_stalls: u64,
    /// Total flit-edge crossings performed (a work measure).
    pub flit_hops: u64,
    /// On [`Outcome::Deadlock`]: the wait-for post-mortem (who waits on
    /// which edge held by whom, plus a concrete cycle).
    pub deadlock: Option<DeadlockReport>,
}

impl SimResult {
    /// Number of delivered messages.
    pub fn delivered(&self) -> usize {
        self.messages.iter().filter(|m| m.finished.is_some()).count()
    }

    /// Number of discarded messages.
    pub fn discarded(&self) -> usize {
        self.messages.iter().filter(|m| m.discarded).count()
    }

    /// Largest delivery time, `None` if nothing was delivered.
    pub fn makespan(&self) -> Option<u64> {
        self.messages.iter().filter_map(|m| m.finished).max()
    }

    /// Mean latency over delivered messages, given the release times.
    pub fn mean_latency(&self, releases: &[u64]) -> Option<f64> {
        let mut sum = 0u64;
        let mut cnt = 0u64;
        for (m, &r) in self.messages.iter().zip(releases) {
            if let Some(l) = m.latency(r) {
                sum += l;
                cnt += 1;
            }
        }
        (cnt > 0).then(|| sum as f64 / cnt as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregations() {
        let r = SimResult {
            outcome: Outcome::Completed,
            total_steps: 30,
            messages: vec![
                MessageOutcome {
                    finished: Some(10),
                    first_move: Some(1),
                    stalls: 2,
                    discarded: false,
                },
                MessageOutcome {
                    finished: None,
                    first_move: None,
                    stalls: 0,
                    discarded: true,
                },
                MessageOutcome {
                    finished: Some(30),
                    first_move: Some(0),
                    stalls: 0,
                    discarded: false,
                },
            ],
            max_vcs_in_use: 2,
            total_stalls: 2,
            flit_hops: 99,
            deadlock: None,
        };
        assert_eq!(r.delivered(), 2);
        assert_eq!(r.discarded(), 1);
        assert_eq!(r.makespan(), Some(30));
        let lat = r.mean_latency(&[0, 0, 10]).unwrap();
        assert!((lat - 15.0).abs() < 1e-9); // (10 + 20)/2
    }

    #[test]
    fn latency_of_unfinished_is_none() {
        let m = MessageOutcome::default();
        assert_eq!(m.latency(5), None);
    }
}
