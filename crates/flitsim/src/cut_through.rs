//! Virtual cut-through routing with multi-flit single-message buffers.
//!
//! The §1.4 fixed-buffer comparison pits a wormhole router with `B` virtual
//! channels (B one-flit buffers per edge, each possibly from a *different*
//! message) against a virtual cut-through router whose per-edge buffer holds
//! up to `F = B` flits **of a single message**. The paper argues the VCT
//! router behaves like a wormhole router with no virtual channels and
//! message length `L/B` — a *linear* speedup in `B`, versus the superlinear
//! `B·D^{1−1/B}` available to virtual channels (experiment E7).
//!
//! Model: each edge buffer has capacity `F` flits and an *owner* message
//! (set when a flit enters an empty buffer, cleared when the buffer drains).
//! Each physical edge moves at most one flit per step. Worms can compress:
//! when the header blocks, trailing flits keep advancing into the partially
//! filled buffers behind it — the defining difference from wormhole routing.
//! Moves are decided from start-of-step state, so a buffer slot freed in
//! step `t` is reusable at `t+1`; with `F = 1` this costs an extra cycle per
//! flit (use `F ≥ 2` for comparisons, as the paper's setting does).

use rand::prelude::*;
use rand::rngs::StdRng;

use wormhole_topology::graph::Graph;

use crate::message::MessageSpec;
use crate::stats::{MessageOutcome, Outcome, SimResult};

/// Virtual cut-through configuration.
#[derive(Clone, Debug)]
pub struct VctConfig {
    /// Per-edge buffer capacity in flits (`F ≥ 1`), all from one message.
    pub buffer_flits: u32,
    /// Step cap.
    pub max_steps: u64,
    /// Seed for claim arbitration.
    pub seed: u64,
}

impl VctConfig {
    /// Config with an `f`-flit buffer per edge.
    pub fn new(f: u32) -> Self {
        assert!(f >= 1, "buffer must hold at least one flit");
        Self {
            buffer_flits: f,
            max_steps: 100_000_000,
            seed: 0,
        }
    }
}

const NO_OWNER: u32 = u32::MAX;

/// Runs virtual cut-through routing. The returned [`SimResult`] reuses the
/// wormhole result type: `max_vcs_in_use` reports the maximum flits resident
/// in any single buffer.
pub fn run(graph: &Graph, specs: &[MessageSpec], config: &VctConfig) -> SimResult {
    for (i, s) in specs.iter().enumerate() {
        assert!(!s.path.is_empty(), "message {i} has an empty path");
    }
    let n = specs.len();
    let f = config.buffer_flits;
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Per-worm per-position flit counts; slot j (1-based) is the buffer at
    // the head of path edge j; slot 0 is the uninjected backlog.
    let mut buf: Vec<Vec<u32>> = specs
        .iter()
        .map(|s| {
            let mut v = vec![0u32; s.path.len() + 1];
            v[0] = s.length;
            v
        })
        .collect();
    let mut delivered = vec![0u32; n];
    let mut outcomes = vec![MessageOutcome::default(); n];

    let mut owner = vec![NO_OWNER; graph.num_edges()];
    let mut count = vec![0u32; graph.num_edges()];
    let mut max_occ = 0u32;
    let mut flit_hops = 0u64;

    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&i| (specs[i as usize].release, i));
    let mut next_pending = 0usize;
    let mut active: Vec<u32> = Vec::new();

    // Claim contenders per edge (scratch).
    let mut claim_buckets: Vec<Vec<u32>> = vec![Vec::new(); graph.num_edges()];
    let mut claim_touched: Vec<u32> = Vec::new();

    let mut t: u64 = 0;
    let mut unfinished = n;
    let mut last_finish = 0u64;
    let outcome = loop {
        if unfinished == 0 {
            break Outcome::Completed;
        }
        if t >= config.max_steps {
            break Outcome::MaxSteps;
        }
        if active.is_empty() {
            match order.get(next_pending) {
                Some(&m) => t = t.max(specs[m as usize].release),
                None => break Outcome::Completed,
            }
        }
        while let Some(&m) = order.get(next_pending) {
            if specs[m as usize].release <= t {
                active.push(m);
                next_pending += 1;
            } else {
                break;
            }
        }

        // Snapshot of start-of-step counts (copy only for active worms'
        // edges is possible, but a full clone is simpler and the buffers
        // are small).
        let count_start = count.clone();
        let owner_start = owner.clone();

        // Phase 1: claims of unowned buffers (the "header acquires the next
        // channel" of VCT). A worm claims every unowned buffer it has a flit
        // ready to enter — normally just the one past its frontier, but also
        // re-claims of mid-worm buffers that drained and were released while
        // trailing flits still wait behind them.
        for &m in &active {
            let mi = m as usize;
            let d = specs[mi].path.len();
            for j in 1..=d {
                let src_has = if j == 1 {
                    buf[mi][0] > 0
                } else {
                    buf[mi][j - 1] > 0
                };
                if !src_has {
                    continue;
                }
                let e = specs[mi].path.edges()[j - 1].idx();
                if owner_start[e] == NO_OWNER && count_start[e] == 0 {
                    if claim_buckets[e].is_empty() {
                        claim_touched.push(e as u32);
                    }
                    claim_buckets[e].push(m);
                }
            }
        }
        for &e in &claim_touched {
            let contenders = &mut claim_buckets[e as usize];
            let winner = if contenders.len() == 1 {
                contenders[0]
            } else {
                contenders[rng.random_range(0..contenders.len())]
            };
            owner[e as usize] = winner;
            contenders.clear();
        }
        claim_touched.clear();

        // Phase 2: flit movement based on start-of-step state. For each
        // worm, a flit moves from slot j−1 into slot j if the source slot
        // had a flit, the target buffer is owned by this worm with space,
        // and the edge's 1-flit bandwidth is unconsumed. Delivery from the
        // final slot is always allowed. Claims made in phase 1 take effect
        // this same step (the header flit streams straight through, the
        // essence of cut-through).
        let mut moved_any = false;
        for &m in &active {
            let mi = m as usize;
            let d = specs[mi].path.len();
            let mut moved = false;
            // Delivery first (frees nothing this step, but is independent).
            if buf[mi][d] > 0 {
                buf[mi][d] -= 1;
                delivered[mi] += 1;
                let e = specs[mi].path.edges()[d - 1].idx();
                count[e] -= 1;
                moved = true;
            }
            // Crossings, processed front-to-back.
            for j in (1..=d).rev() {
                let src_has = if j == 1 {
                    buf[mi][0] > 0
                } else {
                    // Start-of-step view for the source: a flit that arrived
                    // this step cannot move again. The worm owns any buffer
                    // its flits occupy, so the edge's start count is its own.
                    count_start[specs[mi].path.edges()[j - 2].idx()] > 0 && buf[mi][j - 1] > 0
                };
                if !src_has {
                    continue;
                }
                let e = specs[mi].path.edges()[j - 1].idx();
                if owner[e] != m {
                    continue;
                }
                if count_start[e] >= f {
                    continue;
                }
                // Bandwidth: one flit per edge per step. Track via a
                // "moved into this edge" marker: since only the owner can
                // move flits in, a per-worm-per-step single crossing per
                // edge is guaranteed by construction of this loop (each j
                // is visited once).
                // Apply.
                if j == 1 {
                    buf[mi][0] -= 1;
                } else {
                    buf[mi][j - 1] -= 1;
                    let e_prev = specs[mi].path.edges()[j - 2].idx();
                    count[e_prev] -= 1;
                }
                buf[mi][j] += 1;
                count[e] += 1;
                max_occ = max_occ.max(count[e]);
                flit_hops += 1;
                moved = true;
            }
            if moved {
                moved_any = true;
                if outcomes[mi].first_move.is_none() {
                    outcomes[mi].first_move = Some(t);
                }
            } else {
                outcomes[mi].stalls += 1;
            }
            if delivered[mi] == specs[mi].length {
                outcomes[mi].finished = Some(t + 1);
                last_finish = last_finish.max(t + 1);
                unfinished -= 1;
            }
        }
        // Phase 3: ownership cleanup for drained buffers.
        for &m in &active {
            let mi = m as usize;
            for (j, &c) in buf[mi].iter().enumerate().skip(1) {
                let e = specs[mi].path.edges()[j - 1].idx();
                if c == 0 && owner[e] == m && count[e] == 0 {
                    owner[e] = NO_OWNER;
                }
            }
        }
        active.retain(|&m| outcomes[m as usize].finished.is_none());
        if !moved_any && !active.is_empty() {
            break Outcome::Deadlock(active.clone());
        }
        t += 1;
    };

    let total_steps = match outcome {
        Outcome::Completed => last_finish,
        _ => t,
    };
    let total_stalls = outcomes.iter().map(|o| o.stalls).sum();
    SimResult {
        outcome,
        total_steps,
        messages: outcomes,
        max_vcs_in_use: max_occ,
        max_pool_in_use: 0,
        total_stalls,
        flit_hops,
        escape_fallbacks: 0,
        misroute_hops: 0,
        kills_applied: 0,
        fault_discards: 0,
        fault_detour_hops: 0,
        fault_recovery_steps: 0,
        deadlock: None,
        open_loop: None,
        closed_loop: None,
        engine_fallback: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::specs_from_paths;
    use wormhole_topology::random_nets::shared_chain_instance;

    #[test]
    fn lone_worm_streams_at_full_rate_with_f2() {
        // With F ≥ 2 a lone worm advances one edge per flit step and drains
        // one flit per step once the header arrives: D + L total.
        let (g, ps) = shared_chain_instance(1, 6);
        let specs = specs_from_paths(&ps, 4);
        let r = run(&g, &specs, &VctConfig::new(2));
        assert_eq!(r.outcome, Outcome::Completed);
        assert!(
            (6 + 4 - 1..=6 + 4 + 1).contains(&r.total_steps),
            "got {}",
            r.total_steps
        );
        assert_eq!(r.flit_hops, 6 * 4);
    }

    #[test]
    fn f1_pays_the_conservative_credit_penalty() {
        // With F = 1 each flit departs two steps behind its predecessor
        // under start-of-step credit: ≈ D + 2L.
        let (g, ps) = shared_chain_instance(1, 6);
        let specs = specs_from_paths(&ps, 4);
        let r = run(&g, &specs, &VctConfig::new(1));
        assert_eq!(r.outcome, Outcome::Completed);
        assert!(r.total_steps >= 6 + 4 - 1);
        assert!(r.total_steps <= 6 + 2 * 4 + 2, "got {}", r.total_steps);
    }

    #[test]
    fn single_message_buffers_serialize_sharers() {
        // Two worms share a chain: buffers are single-message, so the
        // second can only follow once buffers drain — strictly slower than
        // one worm alone.
        let (g, ps) = shared_chain_instance(2, 6);
        let specs = specs_from_paths(&ps, 4);
        let solo = run(&g, &specs[..1], &VctConfig::new(2));
        let both = run(&g, &specs, &VctConfig::new(2));
        assert_eq!(both.outcome, Outcome::Completed);
        assert!(both.total_steps > solo.total_steps);
        assert_eq!(both.delivered(), 2);
    }

    #[test]
    fn buffer_occupancy_never_exceeds_f() {
        let (g, ps) = shared_chain_instance(3, 5);
        let specs = specs_from_paths(&ps, 6);
        for f in 1..=4 {
            let r = run(&g, &specs, &VctConfig::new(f));
            assert_eq!(r.outcome, Outcome::Completed);
            assert!(r.max_vcs_in_use <= f);
        }
    }

    #[test]
    fn compression_lets_worm_pull_off_a_contended_edge() {
        // A worm blocked at its header still pulls trailing flits forward
        // into its partially-filled buffers (compression): its stall count
        // stays below the fully-rigid equivalent. Indirect check: with a big
        // buffer the whole worm can sit in one buffer.
        let (g, ps) = shared_chain_instance(1, 2);
        let specs = specs_from_paths(&ps, 5);
        let r = run(&g, &specs, &VctConfig::new(8));
        assert_eq!(r.outcome, Outcome::Completed);
        // 2 hops, 5 flits: header arrives at step 2, drains 5 flits.
        assert!(r.total_steps <= 2 + 5 + 1);
    }

    #[test]
    fn releases_respected() {
        let (g, ps) = shared_chain_instance(1, 3);
        let mut specs = specs_from_paths(&ps, 2);
        specs[0].release = 7;
        let r = run(&g, &specs, &VctConfig::new(2));
        assert!(r.messages[0].finished.unwrap() >= 7 + 3);
    }

    #[test]
    fn empty_specs() {
        let (g, _) = shared_chain_instance(1, 2);
        let r = run(&g, &[], &VctConfig::new(2));
        assert_eq!(r.outcome, Outcome::Completed);
    }
}
