//! Message descriptions handed to the simulators.

use wormhole_topology::path::{Path, PathSet};

/// One message (worm) to route: a path, a length in flits, a release time,
/// and an arbitration priority.
#[derive(Clone, Debug)]
pub struct MessageSpec {
    /// The path the message follows (path selection is decoupled from
    /// scheduling, per §1.1).
    pub path: Path,
    /// Message length `L` in flits, header included (`L ≥ 1`).
    pub length: u32,
    /// Flit step at which the message becomes available in its injection
    /// buffer. Scheduling algorithms stagger these.
    pub release: u64,
    /// Arbitration rank for [`crate::config::Arbitration::PriorityRank`]
    /// (lower wins). Schedules set this to the color-class index.
    pub priority: u32,
}

impl MessageSpec {
    /// A message released at time 0 with priority 0.
    pub fn new(path: Path, length: u32) -> Self {
        assert!(length >= 1, "a message has at least its header flit");
        Self {
            path,
            length,
            release: 0,
            priority: 0,
        }
    }

    /// Sets the release time.
    pub fn release_at(mut self, t: u64) -> Self {
        self.release = t;
        self
    }

    /// Sets the arbitration priority.
    pub fn with_priority(mut self, p: u32) -> Self {
        self.priority = p;
        self
    }

    /// Path length (edges) of this message.
    pub fn hops(&self) -> u32 {
        self.path.len() as u32
    }

    /// Minimum completion time if never blocked: `hops + L − 1` flit steps
    /// after release.
    pub fn unblocked_time(&self) -> u64 {
        self.hops() as u64 + self.length as u64 - 1
    }
}

/// Converts a [`PathSet`] into uniform-length messages, all released at 0.
pub fn specs_from_paths(paths: &PathSet, length: u32) -> Vec<MessageSpec> {
    specs_from_path_slice(paths.paths(), length)
}

/// Converts a plain path slice into uniform-length messages, all
/// released at 0 — [`specs_from_paths`] for call sites that assemble
/// their paths outside a [`PathSet`].
pub fn specs_from_path_slice(paths: &[Path], length: u32) -> Vec<MessageSpec> {
    paths
        .iter()
        .map(|p| MessageSpec::new(p.clone(), length))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormhole_topology::graph::{GraphBuilder, NodeId};

    #[test]
    fn spec_builders() {
        let mut b = GraphBuilder::new(3);
        let e0 = b.add_edge(NodeId(0), NodeId(1));
        let e1 = b.add_edge(NodeId(1), NodeId(2));
        let _ = b.build();
        let m = MessageSpec::new(Path::new(vec![e0, e1]), 4)
            .release_at(10)
            .with_priority(2);
        assert_eq!(m.hops(), 2);
        assert_eq!(m.release, 10);
        assert_eq!(m.priority, 2);
        assert_eq!(m.unblocked_time(), 2 + 4 - 1);
    }

    #[test]
    #[should_panic(expected = "header flit")]
    fn zero_length_rejected() {
        let mut b = GraphBuilder::new(2);
        let e0 = b.add_edge(NodeId(0), NodeId(1));
        let _ = b.build();
        MessageSpec::new(Path::new(vec![e0]), 0);
    }
}
