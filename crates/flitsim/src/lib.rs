//! Flit-level network simulators for the Cole–Maggs–Sitaraman reproduction.
//!
//! Three routing disciplines, all cycle-accurate at flit granularity:
//!
//! * [`wormhole`] — the paper's model (§1.1): `B` virtual channels per
//!   physical channel, one-flit buffers, rigid worms, configurable
//!   bandwidth model (`B` flits/step vs. the restricted 1 flit/step of the
//!   §1.4 Remarks), arbitration and discard policies, deadlock detection;
//! * [`store_forward`] — the store-and-forward baseline: a switch must hold
//!   an entire message before forwarding it (time measured in message steps
//!   = `L` flit steps);
//! * [`cut_through`] — virtual cut-through with `F`-flit single-message
//!   buffers per edge (worms can compress behind a blocked header), used by
//!   the §1.4 fixed-buffer comparison.
//!
//! Two driving modes: batch ([`wormhole::run_to_completion`] — a fixed
//! message set routed to completion, the paper's setting) and open-loop
//! ([`open_loop::run_open_loop`] — continuous injection with warmup /
//! measurement windows, latency percentiles, accepted throughput, and
//! saturation detection).
//!
//! The wormhole model has three bit-identical cores behind
//! [`config::Engine`]: the default event-driven engine (wait-queue
//! wakeups, contention-free fast-forward), the legacy per-step stepper
//! kept as its differential oracle, and a partitioned parallel engine
//! ([`config::Engine::Parallel`]) that shards the network into regions
//! advanced on worker threads under conservative lookahead windows —
//! see the [`wormhole`] module docs for the equivalence invariants and
//! [`stats::EngineFallback`] for the configurations the parallel engine
//! explicitly hands back to a sequential core.
//!
//! Routes are fixed at injection under
//! [`config::RouteSelection::Oblivious`]; the adaptive policies
//! ([`wormhole::run_adaptive`]) instead extend each worm's path one hop
//! at a time by local VC occupancy, with the Dally–Seitz dateline pair
//! as deadlock-free escape channels.
//!
//! # Example
//!
//! ```
//! use wormhole_flitsim::{config::SimConfig, wormhole};
//! use wormhole_topology::random_nets::shared_chain_instance;
//! use wormhole_flitsim::message::specs_from_paths;
//!
//! // Two messages share a 5-edge chain; with B = 2 VCs both fit and the
//! // routing takes exactly D + L − 1 flit steps.
//! let (graph, paths) = shared_chain_instance(2, 5);
//! let specs = specs_from_paths(&paths, 4);
//! let result = wormhole::run_to_completion(&graph, &specs, &SimConfig::new(2));
//! assert_eq!(result.total_steps, 5 + 4 - 1);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod cut_through;
mod engine;
pub mod events;
pub mod message;
pub mod open_loop;
mod parallel;
pub mod source;
pub mod stats;
pub mod store_forward;
pub mod wormhole;

pub use config::{
    Arbitration, BandwidthModel, BlockedPolicy, Engine, FinalEdgePolicy, RouteSelection, SimConfig,
};
pub use events::{DeadlockReport, TraceEvent, WaitFor};
pub use message::{specs_from_path_slice, specs_from_paths, MessageSpec};
pub use open_loop::{run_open_loop, run_open_loop_adaptive, OpenLoopConfig};
pub use source::{ReplaySource, TrafficSource};
pub use stats::{
    ClosedLoopStats, DiscardReason, EngineFallback, LatencyStats, MessageOutcome, OpenLoopStats,
    Outcome, SimResult,
};
