//! Open-loop simulation mode: warmup / measurement windows, accepted
//! throughput, and saturation detection over a timed injection trace.
//!
//! [`super::wormhole::run_to_completion`] answers the paper's *batch*
//! question — how long does a fixed message set take? Open-loop
//! evaluation answers the *service* question — what latency does the
//! network deliver while traffic keeps arriving at a given rate? The
//! caller supplies a timed [`MessageSpec`] stream (typically from
//! `wormhole-workloads`); this module:
//!
//! 1. runs the wormhole simulator with a hard step cap of
//!    `warmup + measure + drain` (a saturated network never drains, so
//!    an open-loop run must be allowed to end with
//!    [`Outcome::MaxSteps`](crate::stats::Outcome::MaxSteps) without that
//!    being an error);
//! 2. discards the warmup transient, and summarizes latency percentiles
//!    over messages *released* inside the measurement window;
//! 3. reports accepted throughput — flits of messages *finished* inside
//!    the window per step — and flags saturation when the network either
//!    failed to accept the offered load or grew its backlog across the
//!    window.
//!
//! Injection queues are implicit: a released worm that cannot win a VC on
//! its first edge waits in an unbounded source queue (the simulator's
//! `active` set) without occupying network resources, which is exactly
//! the open-loop source model.

use wormhole_topology::graph::Graph;

use crate::config::SimConfig;
use crate::message::MessageSpec;
use crate::stats::{LatencyStats, OpenLoopStats, SimResult};
use crate::wormhole;

/// Windowing and saturation knobs for an open-loop run.
#[derive(Clone, Copy, Debug)]
pub struct OpenLoopConfig {
    /// Warmup steps excluded from measurement (transient fill).
    pub warmup: u64,
    /// Measurement window length in steps.
    pub measure: u64,
    /// Extra steps after the window for in-flight worms to finish (caps
    /// the run; saturated traffic will still be unfinished at the cap,
    /// which is expected and reported, not an error).
    pub drain: u64,
    /// Accepted/offered ratio under which the window counts as
    /// saturated (default 0.95).
    pub saturation_ratio: f64,
}

impl OpenLoopConfig {
    /// A config with the given warmup and measurement window, a drain
    /// allowance equal to `warmup + measure`, and the default saturation
    /// threshold.
    pub fn new(warmup: u64, measure: u64) -> Self {
        assert!(measure >= 1, "measurement window must be non-empty");
        Self {
            warmup,
            measure,
            drain: warmup + measure,
            saturation_ratio: 0.95,
        }
    }

    /// Sets the drain allowance.
    pub fn drain(mut self, steps: u64) -> Self {
        self.drain = steps;
        self
    }

    /// Sets the saturation threshold on accepted/offered.
    pub fn saturation_ratio(mut self, r: f64) -> Self {
        assert!((0.0..=1.0).contains(&r));
        self.saturation_ratio = r;
        self
    }

    /// End of the measurement window.
    pub fn window_end(&self) -> u64 {
        self.warmup + self.measure
    }

    /// The hard step cap of the run.
    pub fn step_cap(&self) -> u64 {
        self.warmup + self.measure + self.drain
    }
}

/// Runs `specs` open-loop under `config`, returning the simulator result
/// with [`SimResult::open_loop`] populated. The run never panics on
/// saturation: an [`Outcome::MaxSteps`](crate::stats::Outcome::MaxSteps)
/// end simply means traffic was still in flight at the cap.
pub fn run_open_loop(
    graph: &Graph,
    specs: &[MessageSpec],
    config: &SimConfig,
    ol: &OpenLoopConfig,
) -> SimResult {
    let mut capped = config.clone();
    capped.max_steps = capped.max_steps.min(ol.step_cap());
    let mut result = wormhole::run(graph, specs, &capped);
    result.open_loop = Some(windowed_stats(specs, &result, ol));
    result
}

/// [`run_open_loop`] with per-hop adaptive route selection over
/// `router`'s substrate (see
/// [`crate::config::RouteSelection`] and [`wormhole::run_adaptive`]):
/// the specs supply endpoints and timing, the routes are chosen hop by
/// hop under load. The windowing/saturation bookkeeping is identical.
pub fn run_open_loop_adaptive(
    router: &dyn wormhole_topology::adaptive::AdaptiveRouter,
    specs: &[MessageSpec],
    config: &SimConfig,
    ol: &OpenLoopConfig,
) -> SimResult {
    let mut capped = config.clone();
    capped.max_steps = capped.max_steps.min(ol.step_cap());
    let mut result = wormhole::run_adaptive(router, specs, &capped);
    result.open_loop = Some(windowed_stats(specs, &result, ol));
    result
}

/// Computes the windowed measurement from a finished run. Exposed so
/// callers with their own simulation loop can reuse the bookkeeping.
///
/// Every count uses the same half-open convention over the message's
/// in-flight interval `[release, finish)`: a message is *offered* in the
/// window containing its release (`release ∈ [start, end)`), *accepted*
/// in the window containing its finish (`finish ∈ [start, end)`), and in
/// the *backlog* at instant `T` iff `release ≤ T < finish`. Windows tile
/// the timeline without overlap or gap: a release or finish landing
/// exactly on a boundary belongs to the window that starts there.
pub fn windowed_stats(
    specs: &[MessageSpec],
    result: &SimResult,
    ol: &OpenLoopConfig,
) -> OpenLoopStats {
    windowed_stats_from(
        specs
            .iter()
            .zip(&result.messages)
            .map(|(s, o)| (s.release, s.length, o.finished)),
        ol,
    )
}

/// [`windowed_stats`] over raw per-message `(release, length, finished)`
/// triples — for drivers that track their own message metadata instead
/// of a spec slice (e.g. a closed-loop source whose specs live inside
/// the source).
pub fn windowed_stats_from(
    msgs: impl Iterator<Item = (u64, u32, Option<u64>)>,
    ol: &OpenLoopConfig,
) -> OpenLoopStats {
    let (start, end) = (ol.warmup, ol.window_end());
    let mut latencies = Vec::new();
    let mut offered = 0usize;
    let mut delivered = 0usize;
    let mut accepted_msgs = 0usize;
    let mut accepted_flits = 0u64;
    let mut backlog_start = 0usize;
    let mut backlog_end = 0usize;
    // In flight over [release, finish): released at or before T, not yet
    // finished at T.
    let in_flight_at = |r: u64, f: Option<u64>, t: u64| r <= t && f.is_none_or(|f| f > t);
    for (r, length, f) in msgs {
        if in_flight_at(r, f, start) {
            backlog_start += 1;
        }
        if in_flight_at(r, f, end) {
            backlog_end += 1;
        }
        if let Some(f) = f {
            if (start..end).contains(&f) {
                accepted_msgs += 1;
                accepted_flits += length as u64;
            }
        }
        if (start..end).contains(&r) {
            offered += 1;
            if let Some(f) = f {
                delivered += 1;
                latencies.push(f - r);
            }
        }
    }
    let offered_rate = offered as f64 / ol.measure as f64;
    let accepted_rate = accepted_msgs as f64 / ol.measure as f64;
    // Saturated when the window's deliveries lag its releases, or the
    // in-flight population grew across the window. Both checks are
    // needed: a short window can luck into accepted ≈ offered while the
    // backlog climbs, and vice versa an empty-start window can accept
    // carried-over traffic while rejecting its own. Each clause also
    // demands an absolute deficit of ≥ 2 messages: with a small offered
    // count, a single worm straddling the window boundary is edge
    // effect, not saturation.
    let deficit = offered.saturating_sub(accepted_msgs);
    let saturated =
        (offered > 0 && accepted_rate < ol.saturation_ratio * offered_rate && deficit >= 2)
            || backlog_end > backlog_start.saturating_mul(2).max(offered / 4).max(1);
    OpenLoopStats {
        window_start: start,
        window_len: ol.measure,
        offered_msgs: offered,
        delivered_msgs: delivered,
        latency: LatencyStats::from_samples(&latencies),
        accepted_msgs,
        accepted_flits_per_step: accepted_flits as f64 / ol.measure as f64,
        offered_msgs_per_step: offered_rate,
        backlog: (backlog_start, backlog_end),
        saturated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::message::MessageSpec;
    use crate::stats::Outcome;
    use wormhole_topology::graph::{GraphBuilder, NodeId};
    use wormhole_topology::path::Path;

    fn chain(n: u32) -> (Graph, Vec<wormhole_topology::graph::EdgeId>) {
        let mut b = GraphBuilder::new(n as usize);
        let edges = (0..n - 1)
            .map(|i| b.add_edge(NodeId(i), NodeId(i + 1)))
            .collect();
        (b.build(), edges)
    }

    /// One message every `gap` steps down a chain.
    fn periodic(
        edges: &[wormhole_topology::graph::EdgeId],
        l: u32,
        gap: u64,
        until: u64,
    ) -> Vec<MessageSpec> {
        (0..until / gap)
            .map(|i| MessageSpec::new(Path::new(edges.to_vec()), l).release_at(i * gap))
            .collect()
    }

    #[test]
    fn light_load_latency_hits_the_floor() {
        // Messages spaced far apart never contend: latency = d + L − 1.
        let (g, edges) = chain(5);
        let specs = periodic(&edges, 3, 50, 1000);
        let ol = OpenLoopConfig::new(100, 800);
        let r = run_open_loop(&g, &specs, &SimConfig::new(2), &ol);
        assert_eq!(r.outcome, Outcome::Completed);
        let s = r.open_loop.unwrap();
        assert!(s.offered_msgs > 0);
        assert_eq!(s.delivered_msgs, s.offered_msgs);
        assert_eq!(s.latency.p50, (4 + 3 - 1) as u64);
        assert_eq!(s.latency.max, (4 + 3 - 1) as u64);
        assert!(!s.saturated, "light load must not saturate: {s:?}");
    }

    #[test]
    fn overload_is_detected_as_saturation() {
        // A 1-wide chain offered one L=4 message per step accepts at most
        // 1/(L+1) of them: saturated, and the run hits the cap.
        let (g, edges) = chain(5);
        let specs = periodic(&edges, 4, 1, 600);
        let ol = OpenLoopConfig::new(100, 400).drain(100);
        let r = run_open_loop(&g, &specs, &SimConfig::new(1), &ol);
        assert_eq!(r.outcome, Outcome::MaxSteps);
        let s = r.open_loop.unwrap();
        assert!(s.saturated, "overload must be flagged: {s:?}");
        assert!(s.accepted_msgs < s.offered_msgs);
        assert!(s.backlog.1 > s.backlog.0);
    }

    #[test]
    fn accepted_throughput_matches_service_rate() {
        // B=1 on a shared chain serializes at one message per L+1 steps;
        // offered exactly that, the network accepts ≈ all of it.
        let (g, edges) = chain(4);
        let l = 3u32;
        let specs = periodic(&edges, l, (l + 1) as u64, 2000);
        let ol = OpenLoopConfig::new(200, 1600);
        let r = run_open_loop(&g, &specs, &SimConfig::new(1), &ol);
        let s = r.open_loop.unwrap();
        assert!(!s.saturated, "{s:?}");
        let per_step = s.accepted_flits_per_step;
        let expected = l as f64 / (l + 1) as f64;
        assert!(
            (per_step - expected).abs() < 0.05,
            "accepted {per_step} != {expected}"
        );
    }

    #[test]
    fn warmup_messages_are_excluded_from_latency() {
        let (g, edges) = chain(3);
        // A burst at t=0 (warmup) then calm periodic traffic.
        let mut specs: Vec<MessageSpec> = (0..20)
            .map(|_| MessageSpec::new(Path::new(edges.clone()), 2))
            .collect();
        specs.extend(periodic(&edges, 2, 20, 400).into_iter().map(|m| {
            let r = m.release;
            m.release_at(r + 100)
        }));
        let ol = OpenLoopConfig::new(100, 400);
        let r = run_open_loop(&g, &specs, &SimConfig::new(1), &ol);
        let s = r.open_loop.unwrap();
        // The burst's queueing latency never shows: measured worms are alone.
        assert_eq!(s.latency.max, (2 + 2 - 1) as u64);
    }

    #[test]
    fn release_exactly_at_warmup_is_offered_and_backlogged() {
        // Half-open windows: a release landing exactly on the window start
        // belongs to this window — offered, measured, and in the backlog
        // snapshot at `start`.
        let (g, edges) = chain(5); // d = 4
        let specs = vec![MessageSpec::new(Path::new(edges), 3).release_at(10)];
        let ol = OpenLoopConfig::new(10, 50);
        let r = run_open_loop(&g, &specs, &SimConfig::new(1), &ol);
        let s = r.open_loop.unwrap();
        assert_eq!(s.offered_msgs, 1);
        assert_eq!(s.delivered_msgs, 1);
        assert_eq!(s.accepted_msgs, 1);
        assert_eq!(s.latency.p50, (4 + 3 - 1) as u64);
        assert_eq!(s.backlog, (1, 0));
    }

    #[test]
    fn finish_exactly_at_window_end_belongs_to_the_next_window() {
        // d = 2, L = 2 → finish = release + 3. Window [5, 15): a release
        // at 12 finishes exactly at 15 — offered here, accepted in the
        // window starting at 15, backlogged at neither boundary.
        let (g, edges) = chain(3);
        let specs = vec![MessageSpec::new(Path::new(edges), 2).release_at(12)];
        let ol = OpenLoopConfig::new(5, 10);
        let r = run_open_loop(&g, &specs, &SimConfig::new(1), &ol);
        assert_eq!(r.messages[0].finished, Some(15));
        let s = r.open_loop.unwrap();
        assert_eq!(s.offered_msgs, 1);
        assert_eq!(s.delivered_msgs, 1, "latency is still measured");
        assert_eq!(s.accepted_msgs, 0, "finish at end is the next window's");
        assert_eq!(s.backlog, (0, 0), "finished exactly at end ⇒ not backlog");
    }

    #[test]
    fn finish_exactly_at_warmup_is_accepted_by_this_window() {
        // The mirror boundary: a warmup-released message finishing exactly
        // at `start` counts toward this window's accepted throughput (and
        // not toward the previous one) — windows partition finishes.
        let (g, edges) = chain(3);
        let specs = vec![MessageSpec::new(Path::new(edges), 2).release_at(2)]; // finish 5
        let ol = OpenLoopConfig::new(5, 10);
        let r = run_open_loop(&g, &specs, &SimConfig::new(1), &ol);
        assert_eq!(r.messages[0].finished, Some(5));
        let s = r.open_loop.unwrap();
        assert_eq!(s.offered_msgs, 0, "released in warmup");
        assert_eq!(s.accepted_msgs, 1);
        assert_eq!(s.backlog, (0, 0));
    }

    #[test]
    fn empty_trace_is_a_clean_zero() {
        let (g, _) = chain(3);
        let ol = OpenLoopConfig::new(10, 50);
        let r = run_open_loop(&g, &[], &SimConfig::new(1), &ol);
        let s = r.open_loop.unwrap();
        assert_eq!(s.offered_msgs, 0);
        assert_eq!(s.accepted_msgs, 0);
        assert!(!s.saturated);
        assert_eq!(s.latency, LatencyStats::default());
    }

    #[test]
    fn engines_agree_on_capped_open_loop_runs() {
        // Open-loop runs end at the step cap under saturation; the event
        // engine's jumps and arithmetic stall top-ups must land on the
        // same capped partial state the legacy stepper walks to. (The
        // windowed stats are pure derivation, so execution equality is
        // the whole claim.)
        use crate::config::Engine;
        let (g, edges) = chain(5);
        for (l, gap) in [(4u32, 1u64), (3, 2), (2, 25)] {
            let specs = periodic(&edges, l, gap, 600);
            let ol = OpenLoopConfig::new(100, 400).drain(100);
            let ev = run_open_loop(&g, &specs, &SimConfig::new(1), &ol);
            let lg = run_open_loop(&g, &specs, &SimConfig::new(1).engine(Engine::Legacy), &ol);
            assert!(
                ev.same_execution(&lg),
                "engines diverged at L={l} gap={gap}"
            );
        }
    }

    #[test]
    fn engines_agree_on_pooled_open_loop_runs() {
        // Saturated open-loop traffic under router-pooled VC allocation:
        // the router-keyed park/wake path runs hot here, and the capped
        // partial state must still match the legacy stepper exactly.
        use crate::config::{Engine, VcPolicy};
        let (g, edges) = chain(5);
        for (pool, min, max) in [(2u32, 1u32, 2u32), (3, 1, 3), (4, 2, 3)] {
            let specs = periodic(&edges, 4, 1, 600);
            let ol = OpenLoopConfig::new(100, 400).drain(100);
            let cfg = SimConfig::new(1).vc_policy(VcPolicy::pooled(pool, min, max));
            let ev = run_open_loop(&g, &specs, &cfg, &ol);
            let lg = run_open_loop(&g, &specs, &cfg.clone().engine(Engine::Legacy), &ol);
            assert!(
                ev.same_execution(&lg),
                "pooled engines diverged at pool={pool} min={min} max={max}"
            );
            assert!(ev.open_loop.unwrap().saturated, "overload must saturate");
        }
    }

    #[test]
    fn config_builder_and_cap() {
        let ol = OpenLoopConfig::new(10, 20).drain(5).saturation_ratio(0.5);
        assert_eq!(ol.window_end(), 30);
        assert_eq!(ol.step_cap(), 35);
        assert!((ol.saturation_ratio - 0.5).abs() < 1e-12);
    }
}
