//! Store-and-forward routing baseline.
//!
//! In a store-and-forward router a switch must buffer an **entire message**
//! before forwarding it, so a message makes discrete hops; one hop takes a
//! *message step* = `L` flit steps (paper §1). The Leighton–Maggs–Rao line
//! of work shows `O(C + D)` message-step schedules exist for any instance;
//! the paper contrasts this with wormhole routing, which the Thm 2.2.1
//! instance forces up to `Ω(LCD)` flit steps at `B = 1` (experiment E4).
//!
//! The simulator is cycle-accurate at message-step granularity: each edge
//! forwards at most one message per step, and each edge's head-of-edge
//! buffer holds at most `buffer_capacity` messages (`None` = unbounded, the
//! setting of the classic analyses). Moves are decided from start-of-step
//! state, so results are independent of iteration order; a buffer slot freed
//! in step `t` is usable at `t+1`.

use rand::prelude::*;
use rand::rngs::StdRng;

use wormhole_topology::graph::Graph;
use wormhole_topology::path::PathSet;

use crate::stats::Outcome;

/// Priority rule when several messages want the same edge in one step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SfArbitration {
    /// Lowest message id wins.
    Fifo,
    /// Uniformly random winner (seeded).
    Random,
    /// The message with the most remaining hops wins (a classic greedy
    /// heuristic that keeps long paths moving).
    FarthestFirst,
}

/// Store-and-forward configuration.
#[derive(Clone, Debug)]
pub struct SfConfig {
    /// Per-edge message buffer capacity; `None` = unbounded.
    pub buffer_capacity: Option<u32>,
    /// Contention policy.
    pub arbitration: SfArbitration,
    /// RNG seed (for [`SfArbitration::Random`]).
    pub seed: u64,
    /// Step cap (message steps).
    pub max_steps: u64,
}

impl Default for SfConfig {
    fn default() -> Self {
        Self {
            buffer_capacity: None,
            arbitration: SfArbitration::Fifo,
            seed: 0,
            max_steps: 50_000_000,
        }
    }
}

/// Result of a store-and-forward run. Times are in **message steps**;
/// multiply by `L` (e.g. via [`SfResult::flit_steps`]) to compare against
/// wormhole runs.
#[derive(Clone, Debug)]
pub struct SfResult {
    /// Completion status.
    pub outcome: Outcome,
    /// Makespan in message steps.
    pub message_steps: u64,
    /// Per-message completion times (message steps, end-of-step).
    pub finished: Vec<Option<u64>>,
    /// Total blocked-step count.
    pub total_stalls: u64,
    /// Maximum messages ever resident in one edge buffer.
    pub max_buffer_occupancy: u32,
}

impl SfResult {
    /// Makespan converted to flit steps for messages of length `l`.
    pub fn flit_steps(&self, l: u32) -> u64 {
        self.message_steps * l as u64
    }
}

/// Runs store-and-forward routing of `paths` over `graph`; `releases[i]`
/// (message steps) gates injection of message `i` (pass an empty slice for
/// all-at-zero).
pub fn run(graph: &Graph, paths: &PathSet, releases: &[u64], config: &SfConfig) -> SfResult {
    assert!(
        releases.is_empty() || releases.len() == paths.len(),
        "releases must be empty or one per message"
    );
    let n = paths.len();
    let rel = |i: usize| -> u64 {
        if releases.is_empty() {
            0
        } else {
            releases[i]
        }
    };
    // Position of each message: number of edges crossed so far; `u32::MAX`
    // marks finished. A message that has crossed `j ≥ 1` edges occupies the
    // buffer at the head of its `j`-th path edge.
    let mut pos = vec![0u32; n];
    let mut finished: Vec<Option<u64>> = vec![None; n];
    let mut buffer_count = vec![0u32; graph.num_edges()];
    let mut rng = StdRng::seed_from_u64(config.seed);

    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&i| (rel(i as usize), i));
    let mut next_pending = 0usize;
    let mut active: Vec<u32> = Vec::new();

    // Scratch: contenders per edge.
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); graph.num_edges()];
    let mut touched: Vec<u32> = Vec::new();

    let mut t: u64 = 0;
    let mut total_stalls = 0u64;
    let mut max_occ = 0u32;
    let mut unfinished = n;
    let outcome = loop {
        if unfinished == 0 {
            break Outcome::Completed;
        }
        if t >= config.max_steps {
            break Outcome::MaxSteps;
        }
        if active.is_empty() {
            match order.get(next_pending) {
                Some(&m) => t = t.max(rel(m as usize)),
                None => break Outcome::Completed,
            }
        }
        while let Some(&m) = order.get(next_pending) {
            if rel(m as usize) <= t {
                active.push(m);
                next_pending += 1;
            } else {
                break;
            }
        }

        // Phase 1: every active message wants to cross its next edge.
        for &m in &active {
            let p = paths.path(m as usize);
            let e = p.edges()[pos[m as usize] as usize].idx();
            if buckets[e].is_empty() {
                touched.push(e as u32);
            }
            buckets[e].push(m);
        }
        // Phase 2: per edge, one winner (bandwidth), subject to downstream
        // buffer space at start of step.
        let mut movers: Vec<u32> = Vec::new();
        for &e in &touched {
            let contenders = &mut buckets[e as usize];
            // Downstream space: the winner lands in the buffer of edge `e`
            // itself (head-of-edge buffer).
            let has_space = config
                .buffer_capacity
                .is_none_or(|cap| buffer_count[e as usize] < cap);
            if has_space {
                let winner = match config.arbitration {
                    SfArbitration::Fifo => *contenders.iter().min().unwrap(),
                    SfArbitration::Random => contenders[rng.random_range(0..contenders.len())],
                    SfArbitration::FarthestFirst => *contenders
                        .iter()
                        .min_by_key(|&&m| {
                            let remaining = paths.path(m as usize).len() as u32 - pos[m as usize];
                            (u32::MAX - remaining, m)
                        })
                        .unwrap(),
                };
                movers.push(winner);
                total_stalls += contenders.len() as u64 - 1;
            } else {
                total_stalls += contenders.len() as u64;
            }
            contenders.clear();
        }
        touched.clear();
        // Phase 3: apply moves.
        let moved = !movers.is_empty();
        for m in movers {
            let mi = m as usize;
            let p = paths.path(mi);
            let crossing = pos[mi] as usize; // edge index being crossed
            let e_new = p.edges()[crossing].idx();
            if pos[mi] >= 1 {
                let e_old = p.edges()[crossing - 1].idx();
                buffer_count[e_old] -= 1;
            }
            pos[mi] += 1;
            if pos[mi] as usize == p.len() {
                finished[mi] = Some(t + 1);
                unfinished -= 1;
                pos[mi] = u32::MAX;
                // Delivered: leaves the network immediately (delivery
                // buffers are external and unbounded).
            } else {
                buffer_count[e_new] += 1;
                max_occ = max_occ.max(buffer_count[e_new]);
            }
        }
        active.retain(|&m| pos[m as usize] != u32::MAX);
        if !moved && !active.is_empty() {
            break Outcome::Deadlock(active.clone());
        }
        t += 1;
    };

    let message_steps = match outcome {
        Outcome::Completed => finished.iter().filter_map(|&f| f).max().unwrap_or(0),
        _ => t,
    };
    SfResult {
        outcome,
        message_steps,
        finished,
        total_stalls,
        max_buffer_occupancy: max_occ,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormhole_topology::graph::{GraphBuilder, NodeId};
    use wormhole_topology::path::Path;
    use wormhole_topology::random_nets::shared_chain_instance;

    #[test]
    fn lone_message_takes_d_message_steps() {
        let (g, ps) = shared_chain_instance(1, 7);
        let r = run(&g, &ps, &[], &SfConfig::default());
        assert_eq!(r.outcome, Outcome::Completed);
        assert_eq!(r.message_steps, 7);
        assert_eq!(r.flit_steps(4), 28);
    }

    #[test]
    fn c_messages_on_one_chain_pipeline_to_c_plus_d() {
        // With unbounded buffers, greedy store-and-forward on a shared chain
        // is a pipeline: makespan = C + D − 1 message steps.
        let (c, d) = (5u32, 9u32);
        let (g, ps) = shared_chain_instance(c, d);
        let r = run(&g, &ps, &[], &SfConfig::default());
        assert_eq!(r.outcome, Outcome::Completed);
        assert_eq!(r.message_steps, (c + d - 1) as u64);
    }

    #[test]
    fn bounded_buffers_still_complete_on_acyclic_chain() {
        let (g, ps) = shared_chain_instance(6, 5);
        let config = SfConfig {
            buffer_capacity: Some(1),
            ..SfConfig::default()
        };
        let r = run(&g, &ps, &[], &config);
        assert_eq!(r.outcome, Outcome::Completed);
        assert!(r.max_buffer_occupancy <= 1);
        // Slower than unbounded but still pipelined.
        assert!(r.message_steps >= 10);
    }

    #[test]
    fn releases_delay_injection() {
        let (g, ps) = shared_chain_instance(1, 4);
        let r = run(&g, &ps, &[10], &SfConfig::default());
        assert_eq!(r.message_steps, 14);
    }

    #[test]
    fn farthest_first_prefers_long_paths() {
        // Two messages contend for the first edge; the longer one wins
        // under FarthestFirst.
        let mut b = GraphBuilder::new(4);
        let e0 = b.add_edge(NodeId(0), NodeId(1));
        let e1 = b.add_edge(NodeId(1), NodeId(2));
        let e2 = b.add_edge(NodeId(2), NodeId(3));
        let g = b.build();
        let ps = PathSet::new(vec![Path::new(vec![e0]), Path::new(vec![e0, e1, e2])]);
        let config = SfConfig {
            arbitration: SfArbitration::FarthestFirst,
            ..SfConfig::default()
        };
        let r = run(&g, &ps, &[], &config);
        assert_eq!(r.finished[1], Some(3), "long message goes first");
        assert_eq!(r.finished[0], Some(2), "short one follows");
    }

    #[test]
    fn random_arbitration_deterministic_per_seed() {
        let (g, ps) = shared_chain_instance(8, 6);
        let config = SfConfig {
            arbitration: SfArbitration::Random,
            seed: 3,
            ..SfConfig::default()
        };
        let a = run(&g, &ps, &[], &config);
        let b = run(&g, &ps, &[], &config);
        assert_eq!(a.finished, b.finished);
    }

    #[test]
    fn max_steps_aborts() {
        let (g, ps) = shared_chain_instance(100, 3);
        let config = SfConfig {
            max_steps: 2,
            ..SfConfig::default()
        };
        let r = run(&g, &ps, &[], &config);
        assert_eq!(r.outcome, Outcome::MaxSteps);
    }

    #[test]
    fn empty_input() {
        let (g, _) = shared_chain_instance(1, 2);
        let r = run(&g, &PathSet::new(vec![]), &[], &SfConfig::default());
        assert_eq!(r.outcome, Outcome::Completed);
        assert_eq!(r.message_steps, 0);
    }
}
