//! Virtual cut-through baselines for the §1.4 fixed-buffer comparison (E7).
//!
//! Equal buffer budget `B` flits per edge, two ways to spend it:
//!
//! * **wormhole + virtual channels**: `B` one-flit buffers, each holding a
//!   flit of a possibly different message → speedup `B·D^{1−1/B}`;
//! * **virtual cut-through**: one `B`-flit buffer for a single message —
//!   "roughly equivalent to a wormhole router \[with\] no virtual channels,
//!   but in which the messages have length `L/B`" → linear speedup `B`.
//!
//! Both the direct VCT simulation and the paper's `L/B` wormhole emulation
//! are provided so the equivalence itself is measurable.

use wormhole_flitsim::config::SimConfig;
use wormhole_flitsim::cut_through::{self, VctConfig};
use wormhole_flitsim::message::specs_from_paths;
use wormhole_flitsim::stats::SimResult;
use wormhole_flitsim::wormhole;

use wormhole_topology::graph::Graph;
use wormhole_topology::path::PathSet;

/// Direct VCT simulation: `f`-flit single-message buffers, release 0.
pub fn vct(graph: &Graph, paths: &PathSet, l: u32, f: u32, seed: u64) -> SimResult {
    let mut config = VctConfig::new(f);
    config.seed = seed;
    let specs = specs_from_paths(paths, l);
    cut_through::run(graph, &specs, &config)
}

/// The paper's emulation: VCT with `B`-flit buffers behaves like wormhole
/// with **no** VCs and message length `⌈L/B⌉`. Returns that wormhole run;
/// time is in *flit steps of the emulated system* — multiply by `b` (each
/// emulated "superflit" is `b` flits wide) via
/// [`emulation_flit_steps`] to compare against direct runs.
pub fn vct_as_short_wormhole(
    graph: &Graph,
    paths: &PathSet,
    l: u32,
    b: u32,
    seed: u64,
) -> SimResult {
    let short = l.div_ceil(b).max(1);
    let specs = specs_from_paths(paths, short);
    wormhole::run(graph, &specs, &SimConfig::new(1).seed(seed))
}

/// Converts the `vct_as_short_wormhole` makespan to flit steps of the real
/// system (each emulated step carries `b` flits over each link).
pub fn emulation_flit_steps(emulated_steps: u64, b: u32) -> u64 {
    emulated_steps * b as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormhole_flitsim::stats::Outcome;
    use wormhole_topology::random_nets::shared_chain_instance;

    #[test]
    fn direct_and_emulated_vct_agree_in_shape() {
        // A contended chain: C=4 worms, D=16, L=16, buffer B=4.
        let (g, ps) = shared_chain_instance(4, 16);
        let (l, b) = (16u32, 4u32);
        let direct = vct(&g, &ps, l, b, 1);
        assert_eq!(direct.outcome, Outcome::Completed);
        let emu = vct_as_short_wormhole(&g, &ps, l, b, 1);
        assert_eq!(emu.outcome, Outcome::Completed);
        let emu_steps = emulation_flit_steps(emu.total_steps, b);
        // "Roughly equivalent": within a small constant factor.
        let ratio = direct.total_steps as f64 / emu_steps as f64;
        assert!(
            (0.3..=3.0).contains(&ratio),
            "direct {} vs emulated {}",
            direct.total_steps,
            emu_steps
        );
    }

    #[test]
    fn vct_buffer_budget_gives_linear_ish_speedup() {
        // Longer buffers help VCT roughly linearly (compression absorbs
        // stalls): speedup from F=1 to F=4 stays well under the superlinear
        // wormhole-VC speedup measured in E7.
        let (g, ps) = shared_chain_instance(6, 24);
        let l = 24u32;
        let t1 = vct(&g, &ps, l, 1, 2).total_steps;
        let t4 = vct(&g, &ps, l, 4, 2).total_steps;
        assert!(t4 <= t1);
        let speedup = t1 as f64 / t4 as f64;
        assert!(speedup <= 8.0, "VCT speedup {speedup} suspiciously high");
    }

    #[test]
    fn emulation_of_b1_is_identity() {
        let (g, ps) = shared_chain_instance(3, 8);
        let direct = vct_as_short_wormhole(&g, &ps, 12, 1, 0);
        assert_eq!(
            emulation_flit_steps(direct.total_steps, 1),
            direct.total_steps
        );
    }
}
