//! Circuit switching on the butterfly — the historical context of §1.3.3
//! (experiment X1).
//!
//! Kruskal–Snir: if every input of an `n`-input circuit-switched butterfly
//! sends to a random output and each edge carries at most one circuit, the
//! expected number of locked-down paths is `Θ(n/log n)`. Koch: with `B`
//! circuits per edge the fraction rises to `Θ(n/log^{1/B} n)` — the first
//! superlinear buffer/bandwidth benefit, which this paper generalizes to
//! wormhole routing.
//!
//! Model: one-shot locking — process messages in random order; a message
//! locks its unique path iff every edge still has residual capacity, else
//! it is dropped (no retries, matching the expectation analyses).

use rand::prelude::*;
use rand::rngs::StdRng;

use wormhole_topology::butterfly::Butterfly;

use wormhole_core::butterfly::relation::QRelation;

/// Result of a circuit-switching round.
#[derive(Clone, Debug)]
pub struct CircuitOutcome {
    /// Messages that locked a full path.
    pub succeeded: u32,
    /// Total messages attempted.
    pub attempted: u32,
}

impl CircuitOutcome {
    /// Success fraction.
    pub fn fraction(&self) -> f64 {
        self.succeeded as f64 / self.attempted.max(1) as f64
    }
}

/// Attempts to lock circuits for `relation` on `bf` with `b` circuits per
/// edge, in a random order.
pub fn lock_circuits(bf: &Butterfly, relation: &QRelation, b: u32, seed: u64) -> CircuitOutcome {
    assert_eq!(bf.n_inputs(), relation.n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<u32> = (0..relation.len() as u32).collect();
    order.shuffle(&mut rng);
    let mut load = vec![0u32; bf.graph().num_edges()];
    let mut succeeded = 0u32;
    for &m in &order {
        let (src, dst) = relation.pairs[m as usize];
        let path = bf.greedy_path(src, dst);
        if path.edges().iter().all(|e| load[e.idx()] < b) {
            for e in path.edges() {
                load[e.idx()] += 1;
            }
            succeeded += 1;
        }
    }
    CircuitOutcome {
        succeeded,
        attempted: relation.len() as u32,
    }
}

/// Koch's prediction for the success count: `Θ(n/log^{1/B} n)` (constant 1).
pub fn koch_prediction(n: u32, b: u32) -> f64 {
    let nf = n as f64;
    nf / nf.log2().max(1.0).powf(1.0 / b as f64)
}

/// Mean success fraction over `trials` random-destination rounds.
pub fn mean_success_fraction(k: u32, b: u32, trials: u32, seed: u64) -> f64 {
    let bf = Butterfly::new(k);
    let n = 1u32 << k;
    let mut total = 0f64;
    for t in 0..trials {
        let rel = QRelation::random_destinations(n, 1, seed.wrapping_add(t as u64));
        total += lock_circuits(&bf, &rel, b, seed.wrapping_add(1000 + t as u64)).fraction();
    }
    total / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_all_succeed() {
        let bf = Butterfly::new(4);
        let rel = QRelation::identity(16);
        let out = lock_circuits(&bf, &rel, 1, 0);
        assert_eq!(out.succeeded, 16);
        assert!((out.fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn random_permutation_loses_some_at_b1() {
        let bf = Butterfly::new(7);
        let rel = QRelation::random_destinations(128, 1, 3);
        let out = lock_circuits(&bf, &rel, 1, 4);
        assert!(out.succeeded < 128, "random traffic must collide");
        assert!(out.succeeded as f64 >= koch_prediction(128, 1) / 4.0);
    }

    #[test]
    fn more_circuits_per_edge_help() {
        let f1 = mean_success_fraction(7, 1, 10, 5);
        let f2 = mean_success_fraction(7, 2, 10, 5);
        let f4 = mean_success_fraction(7, 4, 10, 5);
        assert!(f1 < f2 && f2 < f4, "{f1} {f2} {f4}");
        assert!(f4 > 0.9, "B=4 should lock nearly everything at n=128");
    }

    #[test]
    fn koch_prediction_shape() {
        // Superlinear benefit: the *loss* n − success shrinks faster than
        // linearly... at minimum the prediction is monotone in B and n.
        assert!(koch_prediction(1024, 2) > koch_prediction(1024, 1));
        assert!(koch_prediction(4096, 1) > koch_prediction(1024, 1));
    }
}
