//! Store-and-forward baselines: greedy online routing and the
//! Leighton–Maggs–Rao-style random-delay schedule.
//!
//! LMR \[27\] proved `O(C+D)` message-step schedules exist for any instance;
//! their simple online algorithm gives `O(C + D·log n)` w.h.p. by delaying
//! each message a uniformly random amount and then sending it at full speed.
//! We use these as the store-and-forward side of experiment E4 (where they
//! beat `B=1` wormhole on the Thm 2.2.1 instance) and as sanity baselines.

use rand::prelude::*;
use rand::rngs::StdRng;

use wormhole_flitsim::store_forward::{run, SfArbitration, SfConfig, SfResult};
use wormhole_topology::graph::Graph;
use wormhole_topology::path::PathSet;

/// Greedy online store-and-forward with unbounded buffers and FIFO
/// contention — the plainest baseline.
pub fn greedy_store_forward(graph: &Graph, paths: &PathSet) -> SfResult {
    run(graph, paths, &[], &SfConfig::default())
}

/// Greedy with the farthest-first heuristic.
pub fn farthest_first_store_forward(graph: &Graph, paths: &PathSet) -> SfResult {
    let config = SfConfig {
        arbitration: SfArbitration::FarthestFirst,
        ..SfConfig::default()
    };
    run(graph, paths, &[], &config)
}

/// LMR-style random initial delays: each message waits a uniform delay in
/// `[0, ⌈α·C⌉]` message steps before injection, then routes greedily.
/// With `α ≈ 1` this smooths bursts; the expected makespan tracks
/// `O(C + D·log n)`.
pub fn random_delay_store_forward(
    graph: &Graph,
    paths: &PathSet,
    alpha: f64,
    seed: u64,
) -> SfResult {
    let c = paths.congestion(graph);
    let span = ((alpha * c as f64).ceil() as u64).max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let releases: Vec<u64> = (0..paths.len())
        .map(|_| rng.random_range(0..=span))
        .collect();
    run(graph, paths, &releases, &SfConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormhole_topology::random_nets::{shared_chain_instance, LeveledNet};

    #[test]
    fn greedy_achieves_pipeline_bound_on_chain() {
        let (g, ps) = shared_chain_instance(6, 8);
        let r = greedy_store_forward(&g, &ps);
        // C+D−1 is optimal here; greedy achieves it with unbounded buffers.
        assert_eq!(r.message_steps, 6 + 8 - 1);
    }

    #[test]
    fn all_policies_complete_on_random_leveled() {
        let net = LeveledNet::random(10, 8, 2, 4);
        let ps = net.random_walk_paths(60, 5);
        let c = ps.congestion(net.graph()) as u64;
        let d = ps.dilation() as u64;
        for r in [
            greedy_store_forward(net.graph(), &ps),
            farthest_first_store_forward(net.graph(), &ps),
            random_delay_store_forward(net.graph(), &ps, 1.0, 6),
        ] {
            assert_eq!(r.outcome, wormhole_flitsim::stats::Outcome::Completed);
            assert!(r.message_steps >= d);
            // Crude sanity ceiling: far below the naive C·D serialization.
            assert!(r.message_steps <= (c + 1) * d);
        }
    }

    #[test]
    fn random_delay_costs_at_most_the_delay_span() {
        let (g, ps) = shared_chain_instance(16, 4);
        let c = ps.congestion(&g) as u64;
        let burst = greedy_store_forward(&g, &ps);
        let spread = random_delay_store_forward(&g, &ps, 1.0, 7);
        assert_eq!(spread.outcome, wormhole_flitsim::stats::Outcome::Completed);
        // Delays are ≤ ⌈α·C⌉, so the makespan can exceed the burst run by at
        // most that span.
        assert!(spread.message_steps <= burst.message_steps + c + 1);
        assert!(spread.message_steps >= burst.message_steps.min(c));
    }

    #[test]
    fn deterministic_per_seed() {
        let (g, ps) = shared_chain_instance(8, 6);
        let a = random_delay_store_forward(&g, &ps, 1.0, 9);
        let b = random_delay_store_forward(&g, &ps, 1.0, 9);
        assert_eq!(a.finished, b.finished);
    }
}
