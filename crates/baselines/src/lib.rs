//! Baseline routing algorithms the paper compares against.
//!
//! * [`naive_coloring`] — the footnote-5 `D(C−1)+1`-class conflict-free
//!   schedule (`O((L+D)·CD)` flit steps);
//! * [`store_forward`] — greedy and LMR-style random-delay store-and-forward
//!   (`O(C+D)`-flavor message-step schedules);
//! * [`greedy_wormhole`] — unscheduled online wormhole routing, including
//!   the one-pass butterfly router of the §3.2 lower-bound setting;
//! * [`cut_through`] — virtual cut-through under a fixed buffer budget and
//!   the paper's `L/B` wormhole emulation of it (§1.4);
//! * [`circuit`] — circuit switching on the butterfly (Kruskal–Snir and
//!   Koch, §1.3.3).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod circuit;
pub mod cut_through;
pub mod greedy_wormhole;
pub mod naive_coloring;
pub mod store_forward;
