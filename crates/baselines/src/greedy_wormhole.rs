//! Greedy online wormhole routing — what an unscheduled router does: every
//! message is released immediately and headers fight for virtual channels.
//! No theoretical guarantee (this is the regime the paper's lower bounds
//! bite); used as the "practice" curve in E3/E6 and the one-pass butterfly
//! router of §3.2's setting.

use wormhole_flitsim::config::{Arbitration, SimConfig};
use wormhole_flitsim::message::specs_from_paths;
use wormhole_flitsim::stats::SimResult;
use wormhole_flitsim::wormhole;

use wormhole_topology::butterfly::Butterfly;
use wormhole_topology::graph::Graph;
use wormhole_topology::path::{Path, PathSet};

use wormhole_core::butterfly::relation::QRelation;

/// Routes all `paths` greedily (release 0) with `b` VCs and random
/// arbitration.
pub fn greedy_wormhole(graph: &Graph, paths: &PathSet, l: u32, b: u32, seed: u64) -> SimResult {
    let specs = specs_from_paths(paths, l);
    let config = SimConfig::new(b)
        .arbitration(Arbitration::Random)
        .seed(seed);
    wormhole::run(graph, &specs, &config)
}

/// One-pass butterfly routing of a relation: every message takes its unique
/// greedy path, all released at once — the algorithm class of the §3.2
/// lower bound. Returns the result plus the paths used.
pub fn one_pass_butterfly(
    bf: &Butterfly,
    relation: &QRelation,
    l: u32,
    b: u32,
    seed: u64,
) -> (SimResult, PathSet) {
    assert_eq!(
        bf.passes(),
        1,
        "one-pass routing wants a one-pass butterfly"
    );
    assert_eq!(bf.n_inputs(), relation.n);
    let paths: Vec<Path> = relation
        .pairs
        .iter()
        .map(|&(s, d)| bf.greedy_path(s, d))
        .collect();
    let ps = PathSet::new(paths);
    let r = greedy_wormhole(bf.graph(), &ps, l, b, seed);
    (r, ps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormhole_flitsim::stats::Outcome;
    use wormhole_topology::random_nets::LeveledNet;

    #[test]
    fn completes_on_leveled_networks() {
        // Leveled networks are acyclic: greedy wormhole cannot deadlock.
        let net = LeveledNet::random(8, 8, 2, 1);
        let ps = net.random_walk_paths(50, 2);
        for b in [1, 2, 4] {
            let r = greedy_wormhole(net.graph(), &ps, 6, b, 3);
            assert_eq!(r.outcome, Outcome::Completed, "B={b}");
            assert_eq!(r.delivered(), 50);
        }
    }

    #[test]
    fn more_vcs_never_hurt_much_on_average() {
        let net = LeveledNet::random(10, 8, 2, 7);
        let ps = net.random_walk_paths(80, 8);
        let t1 = greedy_wormhole(net.graph(), &ps, 8, 1, 1).total_steps;
        let t4 = greedy_wormhole(net.graph(), &ps, 8, 4, 1).total_steps;
        assert!(t4 <= t1, "B=4 ({t4}) should beat B=1 ({t1}) here");
    }

    #[test]
    fn one_pass_butterfly_routes_permutation() {
        let bf = Butterfly::new(5);
        let rel = QRelation::random_relation(32, 1, 4);
        let (r, ps) = one_pass_butterfly(&bf, &rel, 5, 2, 5);
        assert_eq!(r.outcome, Outcome::Completed);
        assert_eq!(r.delivered(), 32);
        assert_eq!(ps.dilation(), 5);
    }

    #[test]
    fn one_pass_respects_min_time() {
        let bf = Butterfly::new(4);
        let rel = QRelation::identity(16);
        let (r, _) = one_pass_butterfly(&bf, &rel, 6, 1, 0);
        // Identity uses disjoint straight paths: exactly D + L − 1.
        assert_eq!(r.total_steps, 4 + 6 - 1);
    }
}
