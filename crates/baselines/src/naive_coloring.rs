//! The footnote-5 naive coloring baseline.
//!
//! "Construct a graph with a node for each worm and an edge between any two
//! worms whose paths share an edge. The degree of this graph is at most
//! `D(C−1)`, \[so\] the graph can be colored with `D(C−1)+1` colors... route
//! all worms with color 1, then color 2, and so on. For any color, no two
//! worms of that color have paths that intersect... any color can be routed
//! in `L+D−1` flit steps. This gives `O((L+D)(CD))` flit steps."
//!
//! Note the classes produced here are *conflict-free* (multiplex size 1),
//! so the schedule needs no virtual channels at all — that is exactly why
//! it needs a factor `≈ D` more classes than Theorem 2.1.6 (experiment E9).

use wormhole_topology::graph::Graph;
use wormhole_topology::path::PathSet;

use wormhole_core::coloring::Coloring;
use wormhole_core::schedule::ColorSchedule;

/// Greedy coloring of the conflict graph: each message takes the smallest
/// color absent among its already-colored conflict neighbors. Uses at most
/// `max_degree + 1 ≤ D(C−1) + 1` colors.
pub fn naive_coloring(paths: &PathSet, graph: &Graph) -> Coloring {
    let adj = paths.conflict_graph(graph);
    let n = paths.len();
    let mut colors = vec![u32::MAX; n];
    let mut used: Vec<u32> = Vec::new(); // scratch of neighbor colors
    let mut num_colors = 0u32;
    for i in 0..n {
        used.clear();
        for &j in &adj[i] {
            let c = colors[j as usize];
            if c != u32::MAX {
                used.push(c);
            }
        }
        used.sort_unstable();
        used.dedup();
        // Smallest color not in `used`.
        let mut c = 0u32;
        for &u in &used {
            if u == c {
                c += 1;
            } else if u > c {
                break;
            }
        }
        colors[i] = c;
        num_colors = num_colors.max(c + 1);
    }
    Coloring::new(colors, num_colors.max(1))
}

/// The footnote's degree bound on the class count: `D(C−1)+1`.
pub fn naive_color_bound(c: u32, d: u32) -> u32 {
    d * (c.saturating_sub(1)) + 1
}

/// Builds the full naive schedule (spacing `L+D−1`).
pub fn naive_schedule(paths: &PathSet, graph: &Graph, l: u32) -> ColorSchedule {
    let coloring = naive_coloring(paths, graph);
    ColorSchedule::new(coloring, l, paths.dilation())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormhole_topology::random_nets::{shared_chain_instance, staggered_instance, LeveledNet};

    #[test]
    fn classes_are_conflict_free() {
        let net = LeveledNet::random(8, 6, 2, 2);
        let ps = net.random_walk_paths(40, 3);
        let col = naive_coloring(&ps, net.graph());
        // Multiplex size 1: no two same-class worms share an edge.
        assert_eq!(col.multiplex_size(&ps, net.graph()), 1);
    }

    #[test]
    fn class_count_within_degree_bound() {
        let (g, ps) = staggered_instance(6, 24, 48);
        let col = naive_coloring(&ps, &g);
        let c = ps.congestion(&g);
        let d = ps.dilation();
        assert!(col.num_colors() <= naive_color_bound(c, d));
        // And at least C (everyone crossing the hottest edge conflicts).
        assert!(col.num_colors() >= c);
    }

    #[test]
    fn shared_chain_uses_exactly_c_colors() {
        let (g, ps) = shared_chain_instance(7, 5);
        let col = naive_coloring(&ps, &g);
        assert_eq!(col.num_colors(), 7);
    }

    #[test]
    fn naive_schedule_executes_with_one_vc() {
        let (g, ps) = staggered_instance(4, 12, 24);
        let l = 6;
        let sched = naive_schedule(&ps, &g, l);
        // Conflict-free classes block for no B — even B = 1.
        let r = sched.execute_checked(&g, &ps, l, 1);
        assert_eq!(r.delivered(), ps.len());
        assert_eq!(r.total_stalls, 0);
    }

    #[test]
    fn bound_formula() {
        assert_eq!(naive_color_bound(1, 10), 1);
        assert_eq!(naive_color_bound(5, 10), 41);
    }
}
