//! The three routing disciplines on one fixed workload: wormhole (with
//! VCs), virtual cut-through, store-and-forward (E4/E7 substrate).

use criterion::{criterion_group, criterion_main, Criterion};

use wormhole_baselines::cut_through::vct;
use wormhole_baselines::store_forward::greedy_store_forward;
use wormhole_bench::butterfly_permutation;
use wormhole_flitsim::config::SimConfig;
use wormhole_flitsim::message::specs_from_paths;
use wormhole_flitsim::wormhole;

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_models");
    group.sample_size(15);
    let (bf, paths) = butterfly_permutation(8, 9);
    let l = 16u32;
    let specs = specs_from_paths(&paths, l);
    group.bench_function("wormhole_b2", |bch| {
        bch.iter(|| wormhole::run_to_completion(bf.graph(), &specs, &SimConfig::new(2)))
    });
    group.bench_function("cut_through_f2", |bch| {
        bch.iter(|| vct(bf.graph(), &paths, l, 2, 1))
    });
    group.bench_function("store_forward", |bch| {
        bch.iter(|| greedy_store_forward(bf.graph(), &paths))
    });
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
