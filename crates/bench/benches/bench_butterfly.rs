//! §3 machinery: the two-pass q-relation algorithm end to end and the
//! lockstep subround kernel (E5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use wormhole_core::butterfly::algorithm::{route_q_relation, AlgoParams};
use wormhole_core::butterfly::fast_sim::run_subround;
use wormhole_core::butterfly::relation::QRelation;
use wormhole_topology::butterfly::Butterfly;
use wormhole_topology::path::Path;

fn bench_qrelation(c: &mut Criterion) {
    let mut group = c.benchmark_group("butterfly_qrelation");
    group.sample_size(10);
    for k in [6u32, 8, 10] {
        let n = 1u32 << k;
        let rel = QRelation::random_relation(n, k, 3);
        for b in [1u32, 2] {
            group.bench_with_input(BenchmarkId::new(format!("n{}_B", n), b), &b, |bch, &b| {
                bch.iter(|| route_q_relation(k, &rel, &AlgoParams::new(b, k, 5)))
            });
        }
    }
    group.finish();
}

fn bench_subround(c: &mut Criterion) {
    let mut group = c.benchmark_group("butterfly_subround");
    let bf = Butterfly::two_pass(9);
    let n = 1u32 << 9;
    let rel = QRelation::random_relation(n, 2, 4);
    let paths: Vec<Path> = rel
        .pairs
        .iter()
        .map(|&(s, d)| bf.two_pass_path(s, (s * 5 + d) % n, d))
        .collect();
    group.bench_function("1024_msgs_2pass", |bch| {
        let mut rng = StdRng::seed_from_u64(1);
        bch.iter(|| run_subround(&bf, &paths, 2, &mut rng))
    });
    group.finish();
}

criterion_group!(benches, bench_qrelation, bench_subround);
criterion_main!(benches);
