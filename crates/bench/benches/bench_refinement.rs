//! Cost of the scheduling machinery: first-fit, LLL refinement (paper and
//! adaptive split factors), and naive conflict-graph coloring (E1/E9).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use wormhole_baselines::naive_coloring::naive_coloring;
use wormhole_core::firstfit::{first_fit, FirstFitOrder};
use wormhole_core::pipeline::{adaptive_min_colors, run_pipeline, RFactor};
use wormhole_topology::random_nets::staggered_instance;

fn bench_colorings(c: &mut Criterion) {
    let mut group = c.benchmark_group("coloring");
    group.sample_size(10);
    for msgs in [64u32, 256] {
        let (g, ps) = staggered_instance(8, 64, msgs);
        group.bench_with_input(BenchmarkId::new("first_fit", msgs), &msgs, |bch, _| {
            bch.iter(|| first_fit(&ps, &g, 2, FirstFitOrder::Input))
        });
        group.bench_with_input(BenchmarkId::new("naive", msgs), &msgs, |bch, _| {
            bch.iter(|| naive_coloring(&ps, &g))
        });
        group.bench_with_input(BenchmarkId::new("lll_adaptive", msgs), &msgs, |bch, _| {
            bch.iter(|| adaptive_min_colors(&ps, &g, 2, 7, 64).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("lll_paper", msgs), &msgs, |bch, _| {
            bch.iter(|| run_pipeline(&ps, &g, 2, RFactor::Paper, 7).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_colorings);
criterion_main!(benches);
