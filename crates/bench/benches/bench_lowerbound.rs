//! Theorem 2.2.1 machinery: building the subset network and routing it
//! (E3/E4 substrate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use wormhole_baselines::greedy_wormhole::greedy_wormhole;
use wormhole_topology::lowerbound::build;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("lowerbound_build");
    for b in [1u32, 2, 3] {
        group.bench_with_input(BenchmarkId::new("B", b), &b, |bch, &b| {
            bch.iter(|| build(b, 61, 2, false))
        });
    }
    group.finish();
}

fn bench_route(c: &mut Criterion) {
    let mut group = c.benchmark_group("lowerbound_route");
    group.sample_size(10);
    for b in [1u32, 2] {
        let net = build(b, 41, 2, false);
        let l = 2 * net.dilation;
        group.bench_with_input(BenchmarkId::new("greedy_B", b), &b, |bch, &b| {
            bch.iter(|| greedy_wormhole(&net.graph, &net.paths, l, b, 3))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build, bench_route);
criterion_main!(benches);
