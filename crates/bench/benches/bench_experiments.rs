//! One fast representative point per experiment id, so every table and
//! figure in EXPERIMENTS.md has a criterion bench target.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use wormhole_harness::experiments::{all_ids, run_by_id};

fn bench_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments_fast");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    for id in all_ids() {
        group.bench_with_input(BenchmarkId::from_parameter(id), id, |bch, id| {
            bch.iter(|| run_by_id(id, true).expect("known id"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
