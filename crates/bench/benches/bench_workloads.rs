//! Open-loop hot path: workload generation (pattern sampling + arrival
//! processes) and the windowed open-loop simulation that X2 sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use wormhole_flitsim::config::{Arbitration, SimConfig};
use wormhole_flitsim::open_loop::{run_open_loop, OpenLoopConfig};
use wormhole_workloads::{ArrivalProcess, Substrate, TrafficPattern, Workload};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_generate");
    group.sample_size(20);
    for (name, pattern) in [
        ("uniform", TrafficPattern::UniformRandom),
        ("bit-reversal", TrafficPattern::BitReversal),
        (
            "hotspot",
            TrafficPattern::Hotspot {
                fraction: 0.2,
                hotspots: vec![0, 31],
            },
        ),
    ] {
        let w = Workload::new(
            Substrate::butterfly(6),
            pattern,
            ArrivalProcess::bernoulli(0.2),
            8,
            7,
        );
        group.bench_with_input(BenchmarkId::new("pattern", name), &w, |b, w| {
            b.iter(|| w.generate(2000))
        });
    }
    let bursty = Workload::new(
        Substrate::butterfly(6),
        TrafficPattern::UniformRandom,
        ArrivalProcess::bursty(0.2, 32.0),
        8,
        7,
    );
    group.bench_function("arrivals/bursty", |b| b.iter(|| bursty.generate(2000)));
    group.finish();
}

fn bench_open_loop_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("open_loop_run");
    group.sample_size(10);
    let w = Workload::new(
        Substrate::butterfly(6),
        TrafficPattern::UniformRandom,
        ArrivalProcess::bernoulli(0.15),
        8,
        7,
    );
    let specs = w.generate(1200);
    let ol = OpenLoopConfig::new(200, 1000);
    for b in [1u32, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("B", b), &b, |bch, &b| {
            let cfg = SimConfig::new(b).arbitration(Arbitration::Random).seed(3);
            bch.iter(|| run_open_loop(w.substrate.graph(), &specs, &cfg, &ol))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generation, bench_open_loop_run);
criterion_main!(benches);
