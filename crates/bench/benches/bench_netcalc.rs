//! Analytic bound engine throughput: the whole point of the netcalc
//! backend is that a delay certificate costs milliseconds where a
//! simulation costs seconds. These benches pin that claim down on a
//! 1024-input butterfly (k = 10) with one synthetic flow per input, and
//! track how the fixed-point iteration scales with the VC count and the
//! offered rate (more contention → more Picard iterations).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use wormhole_netcalc::{delay_bounds, BoundConfig, Flow};
use wormhole_workloads::Substrate;

/// One σ=1 leaky-bucket flow per input of a `2^k`-input butterfly,
/// routed to the bit-complement output (worst-case column reversal —
/// every flow crosses the bisection).
fn complement_flows(k: u32, rate: f64) -> (Substrate, Vec<Flow>) {
    let substrate = Substrate::butterfly(k);
    let n = 1u32 << k;
    let flows = (0..n)
        .map(|s| {
            let path = substrate.route(s, s ^ (n - 1));
            Flow::synthetic(path.edges().to_vec(), 4, 1.0, rate)
        })
        .collect();
    (substrate, flows)
}

fn bench_bound_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("netcalc_bounds");
    group.sample_size(20);
    for k in [6u32, 8, 10] {
        let (substrate, flows) = complement_flows(k, 0.002);
        group.bench_with_input(BenchmarkId::new("n", 1u32 << k), &k, |bch, _| {
            bch.iter(|| {
                delay_bounds(substrate.graph(), &flows, &BoundConfig::new(4))
                    .expect("butterfly is feedforward")
            })
        });
    }
    group.finish();
}

fn bench_bound_vcs(c: &mut Criterion) {
    let mut group = c.benchmark_group("netcalc_bounds_vcs");
    group.sample_size(20);
    let (substrate, flows) = complement_flows(10, 0.002);
    for b in [2u32, 4, 8] {
        group.bench_with_input(BenchmarkId::new("B", b), &b, |bch, &b| {
            bch.iter(|| {
                delay_bounds(substrate.graph(), &flows, &BoundConfig::new(b))
                    .expect("butterfly is feedforward")
            })
        });
    }
    group.finish();
}

fn bench_bound_rates(c: &mut Criterion) {
    let mut group = c.benchmark_group("netcalc_bounds_rates");
    group.sample_size(20);
    for rate in [0.001f64, 0.002, 0.005] {
        let (substrate, flows) = complement_flows(10, rate);
        group.bench_with_input(BenchmarkId::new("rate", rate), &rate, |bch, _| {
            bch.iter(|| {
                delay_bounds(substrate.graph(), &flows, &BoundConfig::new(8))
                    .expect("butterfly is feedforward")
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_bound_scaling,
    bench_bound_vcs,
    bench_bound_rates
);
criterion_main!(benches);
