//! Strong scaling of the partitioned parallel engine: tornado batches
//! on small and large dateline tori at 1 / 2 / 4 workers, with the two
//! sequential engines as baselines on the same batch.
//!
//! This measures the engine outside the experiment harness: the x13
//! sweep times whole sweeps (and asserts bit-identity per point); here
//! criterion isolates a single run per configuration so thread-count
//! and torus-size effects are separable. The tornado pattern travels
//! only in dimension 0 while the region plan slabs the last dimension,
//! so no route crosses a cut and the plan-aware lookahead lets the
//! post-injection drain run barrier-free — the best case for the
//! windowed engine, and exactly the x13 configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use wormhole_flitsim::config::{Engine, SimConfig};
use wormhole_flitsim::wormhole;
use wormhole_flitsim::MessageSpec;
use wormhole_workloads::{ArrivalProcess, RoutingDiscipline, Substrate, TrafficPattern, Workload};

const MSG_LEN: u32 = 8;
const REGIONS: u32 = 8;

/// One tornado batch on a dateline torus, x13-style.
fn tornado_batch(radix: u32, msgs: u64) -> (Substrate, Vec<MessageSpec>, SimConfig) {
    let substrate = Substrate::torus_with(radix, 2, RoutingDiscipline::DatelineClasses);
    let w = Workload::new(
        substrate.clone(),
        TrafficPattern::Tornado,
        ArrivalProcess::bernoulli(0.35),
        MSG_LEN,
        9 + radix as u64,
    );
    let specs = w.generate(msgs);
    let plan = substrate.region_plan(REGIONS);
    let cfg = SimConfig::new(2).seed(13).regions(plan);
    (substrate, specs, cfg)
}

fn bench_parallel_scaling(c: &mut Criterion) {
    for (label, radix, msgs) in [("small", 6u32, 150u64), ("large", 16, 400)] {
        let (substrate, specs, cfg) = tornado_batch(radix, msgs);
        let mut group = c.benchmark_group(format!("parallel_tornado_{label}"));
        group.sample_size(10);
        for (ename, engine) in [("event", Engine::EventDriven), ("legacy", Engine::Legacy)] {
            group.bench_function(ename, |bch| {
                let cfg = cfg.clone().engine(engine);
                bch.iter(|| wormhole::run(substrate.graph(), &specs, &cfg))
            });
        }
        for threads in [1u32, 2, 4] {
            group.bench_with_input(
                BenchmarkId::new("parallel", threads),
                &threads,
                |bch, &t| {
                    let cfg = cfg.clone().engine(Engine::Parallel { threads: t });
                    bch.iter(|| wormhole::run(substrate.graph(), &specs, &cfg))
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_parallel_scaling);
criterion_main!(benches);
