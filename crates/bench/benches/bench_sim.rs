//! Simulator throughput: flit-level wormhole routing across network sizes
//! and VC counts (the substrate cost every experiment pays).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use wormhole_bench::butterfly_permutation;
use wormhole_flitsim::config::{BandwidthModel, SimConfig};
use wormhole_flitsim::message::specs_from_paths;
use wormhole_flitsim::wormhole;

fn bench_wormhole_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("wormhole_sim");
    group.sample_size(20);
    for k in [6u32, 8, 10] {
        let (bf, paths) = butterfly_permutation(k, 7);
        let specs = specs_from_paths(&paths, 16);
        group.bench_with_input(BenchmarkId::new("n", 1u32 << k), &k, |bch, _| {
            bch.iter(|| wormhole::run_to_completion(bf.graph(), &specs, &SimConfig::new(2)))
        });
    }
    group.finish();
}

fn bench_wormhole_vcs(c: &mut Criterion) {
    let mut group = c.benchmark_group("wormhole_sim_vcs");
    group.sample_size(20);
    let (bf, paths) = butterfly_permutation(8, 3);
    let specs = specs_from_paths(&paths, 16);
    for b in [1u32, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("B", b), &b, |bch, &b| {
            bch.iter(|| wormhole::run_to_completion(bf.graph(), &specs, &SimConfig::new(b)))
        });
    }
    group.finish();
}

fn bench_restricted_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("wormhole_sim_restricted");
    group.sample_size(10);
    let (bf, paths) = butterfly_permutation(7, 5);
    let specs = specs_from_paths(&paths, 8);
    for b in [1u32, 2] {
        group.bench_with_input(BenchmarkId::new("B", b), &b, |bch, &b| {
            let cfg = SimConfig::new(b).bandwidth(BandwidthModel::OneFlitPerStep);
            bch.iter(|| wormhole::run_to_completion(bf.graph(), &specs, &cfg))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_wormhole_scaling,
    bench_wormhole_vcs,
    bench_restricted_model
);
criterion_main!(benches);
