//! Simulator throughput: flit-level wormhole routing across network sizes
//! and VC counts (the substrate cost every experiment pays).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use wormhole_bench::butterfly_permutation;
use wormhole_flitsim::config::{Arbitration, BandwidthModel, Engine, SimConfig, VcPolicy};
use wormhole_flitsim::message::specs_from_paths;
use wormhole_flitsim::open_loop::{run_open_loop, OpenLoopConfig};
use wormhole_flitsim::wormhole;
use wormhole_workloads::{ArrivalProcess, RoutingDiscipline, Substrate, TrafficPattern, Workload};

const ENGINES: [(&str, Engine); 2] = [("event", Engine::EventDriven), ("legacy", Engine::Legacy)];

fn bench_wormhole_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("wormhole_sim");
    group.sample_size(20);
    for k in [6u32, 8, 10] {
        let (bf, paths) = butterfly_permutation(k, 7);
        let specs = specs_from_paths(&paths, 16);
        group.bench_with_input(BenchmarkId::new("n", 1u32 << k), &k, |bch, _| {
            bch.iter(|| wormhole::run_to_completion(bf.graph(), &specs, &SimConfig::new(2)))
        });
    }
    group.finish();
}

fn bench_wormhole_vcs(c: &mut Criterion) {
    let mut group = c.benchmark_group("wormhole_sim_vcs");
    group.sample_size(20);
    let (bf, paths) = butterfly_permutation(8, 3);
    let specs = specs_from_paths(&paths, 16);
    for b in [1u32, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("B", b), &b, |bch, &b| {
            bch.iter(|| wormhole::run_to_completion(bf.graph(), &specs, &SimConfig::new(b)))
        });
    }
    group.finish();
}

fn bench_restricted_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("wormhole_sim_restricted");
    group.sample_size(10);
    let (bf, paths) = butterfly_permutation(7, 5);
    let specs = specs_from_paths(&paths, 8);
    for b in [1u32, 2] {
        group.bench_with_input(BenchmarkId::new("B", b), &b, |bch, &b| {
            let cfg = SimConfig::new(b).bandwidth(BandwidthModel::OneFlitPerStep);
            bch.iter(|| wormhole::run_to_completion(bf.graph(), &specs, &cfg))
        });
    }
    group.finish();
}

/// Open-loop low offered load on a butterfly with long worms (the classic
/// wormhole regime: L ≫ D): long uncontended flights and idle gaps — the
/// territory of the event engine's disjoint-path fast-forward and
/// closed-form drain jump. The legacy stepper pays `O(active)` machinery
/// on each of a flight's `D + L − 1` steps; the event engine pays one
/// `O(1)` update per header advance plus `O(D)` per drain.
fn bench_open_loop_low_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("open_loop_low_load");
    group.sample_size(10);
    let substrate = Substrate::butterfly(6);
    let w = Workload::new(
        substrate.clone(),
        TrafficPattern::UniformRandom,
        ArrivalProcess::bernoulli(0.00025),
        256,
        0xbe7c,
    );
    let specs = w.generate(5500);
    let ol = OpenLoopConfig::new(500, 5000);
    for (name, engine) in ENGINES {
        let cfg = SimConfig::new(2)
            .arbitration(Arbitration::Random)
            .seed(1)
            .engine(engine);
        group.bench_function(name, |b| {
            b.iter(|| run_open_loop(substrate.graph(), &specs, &cfg, &ol))
        });
    }
    group.finish();
}

/// Open-loop tornado traffic on a dateline-class torus near saturation:
/// a deep source backlog of parked worms re-losing the same arbitration —
/// the regime the wait-queue wakeups target (and the dateline class-pair
/// graph doubles the edge count the flat scratch has to cover).
fn bench_dateline_torus(c: &mut Criterion) {
    let mut group = c.benchmark_group("open_loop_dateline_torus");
    group.sample_size(10);
    let substrate = Substrate::torus_with(8, 2, RoutingDiscipline::DatelineClasses);
    let w = Workload::new(
        substrate.clone(),
        TrafficPattern::Tornado,
        ArrivalProcess::bernoulli(0.35),
        4,
        0x70b5,
    );
    let specs = w.generate(1200);
    let ol = OpenLoopConfig::new(200, 1000);
    for (name, engine) in ENGINES {
        let cfg = SimConfig::new(2)
            .arbitration(Arbitration::Random)
            .seed(2)
            .engine(engine);
        group.bench_function(name, |b| {
            b.iter(|| run_open_loop(substrate.graph(), &specs, &cfg, &ol))
        });
    }
    group.finish();
}

/// Static vs router-pooled VC allocation on saturated dateline-torus
/// tornado traffic, per engine: the pooled arbitration path (ascending
/// edge-id shared-credit grants) and the router-keyed park/wake lists
/// against the static baseline at equal aggregate buffer budget. This is
/// the hot loop the x9 experiment sweeps.
fn bench_pooled_vcs(c: &mut Criterion) {
    let mut group = c.benchmark_group("open_loop_pooled_torus");
    group.sample_size(10);
    let substrate = Substrate::torus_with(8, 2, RoutingDiscipline::DatelineClasses);
    let fanout = substrate.graph().max_out_degree() as u32;
    let w = Workload::new(
        substrate.clone(),
        TrafficPattern::Tornado,
        ArrivalProcess::bernoulli(0.35),
        4,
        0x9001,
    );
    let specs = w.generate(1200);
    let ol = OpenLoopConfig::new(200, 1000);
    let arms = [
        ("static", VcPolicy::Static(2)),
        ("pooled", VcPolicy::pooled(2 * fanout, 1, 2 * fanout)),
    ];
    for (aname, policy) in arms {
        for (ename, engine) in ENGINES {
            let cfg = SimConfig::new(1)
                .vc_policy(policy)
                .arbitration(Arbitration::Random)
                .seed(3)
                .engine(engine);
            group.bench_function(format!("{aname}/{ename}"), |b| {
                b.iter(|| run_open_loop(substrate.graph(), &specs, &cfg, &ol))
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_wormhole_scaling,
    bench_wormhole_vcs,
    bench_restricted_model,
    bench_open_loop_low_load,
    bench_dateline_torus,
    bench_pooled_vcs
);
criterion_main!(benches);
