//! Shared workload builders for the criterion benches.
#![forbid(unsafe_code)]

use wormhole_core::butterfly::relation::QRelation;
use wormhole_topology::butterfly::Butterfly;
use wormhole_topology::path::{Path, PathSet};

/// A random permutation workload on a `2^k`-input butterfly.
pub fn butterfly_permutation(k: u32, seed: u64) -> (Butterfly, PathSet) {
    let bf = Butterfly::new(k);
    let n = 1u32 << k;
    let rel = QRelation::random_relation(n, 1, seed);
    let paths: Vec<Path> = rel
        .pairs
        .iter()
        .map(|&(s, d)| bf.greedy_path(s, d))
        .collect();
    (bf, PathSet::new(paths))
}
