//! Shared workload builders for the criterion benches.
//!
//! The benches themselves live under `benches/` (one file per
//! subsystem: butterfly relations, lower bounds, refinement, models,
//! the wormhole simulator per engine, experiments, and workload
//! generation); this library crate only hosts the instance constructors
//! they share. CI builds every bench (`cargo bench --no-run`) so they
//! cannot rot; `experiments bench-json` records the committed
//! wall-clock baseline in `BENCH_sim.json`.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use wormhole_core::butterfly::relation::QRelation;
use wormhole_topology::butterfly::Butterfly;
use wormhole_topology::path::{Path, PathSet};

/// A random permutation workload on a `2^k`-input butterfly.
pub fn butterfly_permutation(k: u32, seed: u64) -> (Butterfly, PathSet) {
    let bf = Butterfly::new(k);
    let n = 1u32 << k;
    let rel = QRelation::random_relation(n, 1, seed);
    let paths: Vec<Path> = rel
        .pairs
        .iter()
        .map(|&(s, d)| bf.greedy_path(s, d))
        .collect();
    (bf, PathSet::new(paths))
}
