//! The Theorem 2.2.1 lower-bound construction.
//!
//! The paper builds, for any `B`, a network and messages with congestion `C`
//! and dilation `D` that *every* wormhole schedule needs
//! `Ω(L·C·D^{1/B}/B)` flit steps to route. The key combinatorial property:
//! **every set of `B+1` base messages passes through a common edge** (its
//! *primary edge*), so at most `B` messages can make progress in any flit
//! step once messages are long enough (`L = (1+Ω(1))·D`).
//!
//! Construction (paper §2.2): start with `M'` base messages where
//! `2·C(M'−1, B) − 1 ≤ D < 2·C(M', B) − 1`. Allocate one primary edge
//! `u_S → v_S` per `(B+1)`-subset `S` of the base messages; connect primary
//! endpoints with *secondary edges* `v_S → u_T` as needed. Message `m`
//! starts at the tail of its first primary edge and traverses the primary
//! edges of all subsets containing `m` in lexicographic order, alternating
//! with secondary hops. Finally each base message is replicated
//! `C/(B+1)` times to reach congestion `C`.

use std::collections::HashMap;

use crate::graph::{EdgeId, Graph, GraphBuilder, NodeId};
use crate::path::{Path, PathSet};
use crate::subsets::{binomial, enumerate_subsets, subset_rank};

/// The instantiated lower-bound network together with its messages.
#[derive(Clone, Debug)]
pub struct LowerBoundNet {
    /// The network.
    pub graph: Graph,
    /// All message paths, replication included (length `M' · replication`).
    pub paths: PathSet,
    /// Number of base messages `M'`.
    pub m_prime: u32,
    /// Virtual channels `B` the construction targets.
    pub b: u32,
    /// Copies of each base message (`C = replication · (B+1)`).
    pub replication: u32,
    /// Primary edges indexed by the lexicographic rank of their
    /// `(B+1)`-subset.
    pub primary_edges: Vec<EdgeId>,
    /// Dilation of the instance (after optional padding).
    pub dilation: u32,
}

/// Unpadded dilation produced by `m_prime` base messages at a given `b`:
/// `2·C(m'−1, b) − 1`.
pub fn dilation_for_m_prime(b: u32, m_prime: u32) -> u64 {
    2 * binomial((m_prime - 1) as u64, b as u64) - 1
}

/// Largest `M'` whose unpadded dilation does not exceed `target_d`
/// (the paper's choice: `2·C(M'−1,B) − 1 ≤ D < 2·C(M',B) − 1`).
pub fn m_prime_for_dilation(b: u32, target_d: u32) -> u32 {
    let mut m = b + 1; // need at least B+1 messages to form one subset
    while dilation_for_m_prime(b, m + 1) <= target_d as u64 {
        m += 1;
    }
    m
}

/// Builds the Theorem 2.2.1 instance.
///
/// * `b` — number of virtual channels the bound targets (`B ≥ 1`).
/// * `target_d` — desired dilation; `M'` is chosen per the paper and, when
///   `pad_to_target` is set, per-message private chains pad every path to
///   exactly `target_d` edges ("we could make it exactly D by adding extra
///   edges at the end of the path").
/// * `replication` — copies of each base message; congestion is
///   `replication · (B+1)`.
///
/// Panics if `target_d < 2·C(B, B) − 1 = 1` or the construction exceeds
/// `u32` edge counts.
pub fn build(b: u32, target_d: u32, replication: u32, pad_to_target: bool) -> LowerBoundNet {
    assert!(b >= 1, "B must be at least 1");
    assert!(replication >= 1, "need at least one copy of each message");
    assert!(target_d >= 1, "dilation must be positive");
    let m_prime = m_prime_for_dilation(b, target_d);
    assert!(
        m_prime > b,
        "target dilation {target_d} too small for B={b}"
    );

    let subsets = enumerate_subsets(m_prime, b + 1);
    let n_primary = subsets.len();
    let u = |rank: usize| NodeId(2 * rank as u32);
    let v = |rank: usize| NodeId(2 * rank as u32 + 1);

    let mut builder = GraphBuilder::new(2 * n_primary);
    let primary_edges: Vec<EdgeId> = (0..n_primary)
        .map(|r| builder.add_edge(u(r), v(r)))
        .collect();

    // For each base message, the ranks of the subsets containing it, in
    // lexicographic order (enumeration order is lexicographic already).
    let mut member: Vec<Vec<u32>> = vec![Vec::new(); m_prime as usize];
    for (rank, s) in subsets.iter().enumerate() {
        for &m in s {
            member[m as usize].push(rank as u32);
        }
    }

    // Secondary edges are shared: v_S -> u_T appears once even when several
    // base messages hop S -> T consecutively. (That sharing is what keeps
    // secondary congestion at |S ∩ T| ≤ B.)
    let mut secondary: HashMap<(u32, u32), EdgeId> = HashMap::new();
    let mut base_paths: Vec<Vec<EdgeId>> = Vec::with_capacity(m_prime as usize);
    for ranks in &member {
        let mut edges = Vec::with_capacity(2 * ranks.len() - 1);
        for (i, &r) in ranks.iter().enumerate() {
            edges.push(primary_edges[r as usize]);
            if let Some(&next) = ranks.get(i + 1) {
                let e = *secondary
                    .entry((r, next))
                    .or_insert_with(|| builder.add_edge(v(r as usize), u(next as usize)));
                edges.push(e);
            }
        }
        base_paths.push(edges);
    }

    let natural_d = base_paths[0].len() as u32; // 2·C(M'−1,B) − 1, same for all
    debug_assert!(base_paths.iter().all(|p| p.len() as u32 == natural_d));
    debug_assert_eq!(natural_d as u64, dilation_for_m_prime(b, m_prime));
    let dilation = if pad_to_target {
        assert!(natural_d <= target_d);
        // Private tail chains: fresh nodes/edges per base message, so the
        // padding adds no shared congestion beyond the message's own copies.
        for (m, path) in base_paths.iter_mut().enumerate() {
            let last_rank = *member[m].last().expect("every base message has subsets");
            let mut prev = v(last_rank as usize);
            for _ in natural_d..target_d {
                let next = builder.add_node();
                path.push(builder.add_edge(prev, next));
                prev = next;
            }
        }
        target_d
    } else {
        natural_d
    };

    let graph = builder.build();

    // Replicate.
    let mut paths = Vec::with_capacity(base_paths.len() * replication as usize);
    for bp in &base_paths {
        for _ in 0..replication {
            paths.push(Path::new(bp.clone()));
        }
    }

    LowerBoundNet {
        graph,
        paths: PathSet::new(paths),
        m_prime,
        b,
        replication,
        primary_edges,
        dilation,
    }
}

impl LowerBoundNet {
    /// Congestion of the instance: `replication · (B+1)` on every primary
    /// edge.
    pub fn congestion(&self) -> u32 {
        self.replication * (self.b + 1)
    }

    /// Total number of messages `M = M' · replication`.
    pub fn num_messages(&self) -> u32 {
        self.m_prime * self.replication
    }

    /// The paper's progress bound: any schedule needs at least
    /// `(L − D) · M / B` flit steps (Theorem 2.2.1), valid when `L > D`.
    pub fn progress_lower_bound(&self, msg_len: u32) -> u64 {
        if msg_len <= self.dilation {
            return 0;
        }
        (msg_len - self.dilation) as u64 * self.num_messages() as u64 / self.b as u64
    }

    /// The asymptotic form `Ω(L·C·D^{1/B}/B)` evaluated with constant 1, for
    /// reporting alongside the exact progress bound.
    pub fn asymptotic_lower_bound(&self, msg_len: u32) -> f64 {
        let c = self.congestion() as f64;
        let d = self.dilation as f64;
        let b = self.b as f64;
        msg_len as f64 * c * d.powf(1.0 / b) / b
    }

    /// The primary edge shared by a `(B+1)`-subset of base messages
    /// (sorted, values in `0..M'`).
    pub fn shared_primary_edge(&self, subset: &[u32]) -> EdgeId {
        assert_eq!(subset.len() as u32, self.b + 1);
        self.primary_edges[subset_rank(self.m_prime, subset) as usize]
    }

    /// Path of base message `m` (its first replica).
    pub fn base_path(&self, m: u32) -> &Path {
        self.paths.path((m * self.replication) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m_prime_matches_paper_inequality() {
        for b in 1..=3u32 {
            for d in [3u32, 10, 40, 100, 300] {
                let m = m_prime_for_dilation(b, d);
                assert!(dilation_for_m_prime(b, m) <= d as u64);
                assert!(dilation_for_m_prime(b, m + 1) > d as u64);
            }
        }
    }

    #[test]
    fn paths_validate_and_have_uniform_length() {
        let net = build(2, 40, 2, false);
        net.paths.validate(&net.graph).unwrap();
        for p in net.paths.paths() {
            assert_eq!(p.len() as u32, net.dilation);
        }
    }

    #[test]
    fn every_subset_shares_its_primary_edge() {
        let net = build(2, 20, 1, false);
        for s in enumerate_subsets(net.m_prime, net.b + 1) {
            let shared = net.shared_primary_edge(&s);
            for &m in &s {
                assert!(
                    net.base_path(m).edges().contains(&shared),
                    "base message {m} misses shared edge of {s:?}"
                );
            }
        }
    }

    #[test]
    fn primary_congestion_is_exactly_c() {
        let (b, reps) = (2u32, 3u32);
        let net = build(b, 25, reps, false);
        let loads = net.paths.edge_loads(&net.graph);
        for &pe in &net.primary_edges {
            assert_eq!(loads[pe.idx()], (b + 1) * reps);
        }
        assert_eq!(net.paths.congestion(&net.graph), net.congestion());
    }

    #[test]
    fn secondary_congestion_at_most_b() {
        let net = build(2, 25, 1, false);
        let loads = net.paths.edge_loads(&net.graph);
        let primary: std::collections::HashSet<_> = net.primary_edges.iter().copied().collect();
        for e in net.graph.edges() {
            if !primary.contains(&e) {
                assert!(
                    loads[e.idx()] <= net.b,
                    "secondary edge {e:?} has load {}",
                    loads[e.idx()]
                );
            }
        }
    }

    #[test]
    fn padding_reaches_target_dilation_without_extra_congestion() {
        let target = 61;
        let net = build(1, target, 2, true);
        assert_eq!(net.dilation, target);
        for p in net.paths.paths() {
            assert_eq!(p.len() as u32, target);
        }
        net.paths.validate(&net.graph).unwrap();
        // Pad edges carry only the replicas of one base message.
        let loads = net.paths.edge_loads(&net.graph);
        let primary: std::collections::HashSet<_> = net.primary_edges.iter().copied().collect();
        let natural = dilation_for_m_prime(net.b, net.m_prime) as usize;
        for p in net.paths.paths() {
            for &e in &p.edges()[natural..] {
                assert!(!primary.contains(&e));
                assert_eq!(loads[e.idx()], net.replication);
            }
        }
    }

    #[test]
    fn progress_bound_values() {
        let net = build(1, 21, 1, false);
        // B=1: m' satisfies 2(m'-1)-1 <= 21 => m' = 11, dilation 19... check:
        assert_eq!(net.dilation as u64, dilation_for_m_prime(1, net.m_prime));
        let l = 2 * net.dilation;
        let expect = (l - net.dilation) as u64 * net.num_messages() as u64;
        assert_eq!(net.progress_lower_bound(l), expect);
        assert_eq!(net.progress_lower_bound(net.dilation), 0);
        assert!(net.asymptotic_lower_bound(l) > 0.0);
    }

    #[test]
    fn b1_case_is_ranade_style_chain() {
        // For B=1 every pair of base messages shares an edge.
        let net = build(1, 15, 1, false);
        for a in 0..net.m_prime {
            for bb in a + 1..net.m_prime {
                let shared = net.shared_primary_edge(&[a, bb]);
                assert!(net.base_path(a).edges().contains(&shared));
                assert!(net.base_path(bb).edges().contains(&shared));
            }
        }
    }
}
