//! Directed-graph substrate used by every network in the reproduction.
//!
//! The representation is a flat CSR (compressed sparse row) adjacency
//! structure: node and edge identifiers are dense `u32` indices, all edge
//! data lives in parallel `Vec`s, and out-edges of a node occupy a
//! contiguous range. This follows the HPC guideline of index-based flat
//! storage: no per-node allocation, no pointers, cache-friendly scans.

use std::fmt;

/// Dense identifier of a node in a [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Dense identifier of a directed edge in a [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// Returns the index as a `usize` for slice indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// Returns the index as a `usize` for slice indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Mutable builder for [`Graph`]. Collects edges in insertion order and
/// freezes them into CSR form.
///
/// Edge ids are assigned in insertion order and remain stable after
/// [`GraphBuilder::build`], so callers may record `EdgeId`s while building.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    num_nodes: u32,
    srcs: Vec<u32>,
    dsts: Vec<u32>,
}

impl GraphBuilder {
    /// Creates a builder with `num_nodes` nodes and no edges.
    pub fn new(num_nodes: usize) -> Self {
        assert!(num_nodes <= u32::MAX as usize, "node count overflows u32");
        Self {
            num_nodes: num_nodes as u32,
            srcs: Vec::new(),
            dsts: Vec::new(),
        }
    }

    /// Adds a fresh node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.num_nodes);
        self.num_nodes = self
            .num_nodes
            .checked_add(1)
            .expect("node count overflows u32");
        id
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes as usize
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.srcs.len()
    }

    /// Adds a directed edge `src -> dst` and returns its id.
    ///
    /// Panics if either endpoint is out of range. Parallel edges are
    /// permitted (some constructions need them); self-loops are rejected
    /// because no routing path may use one.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId) -> EdgeId {
        assert!(src.0 < self.num_nodes, "edge source out of range");
        assert!(dst.0 < self.num_nodes, "edge destination out of range");
        assert!(src != dst, "self-loops are not allowed");
        assert!(
            self.srcs.len() < u32::MAX as usize,
            "edge count overflows u32"
        );
        let id = EdgeId(self.srcs.len() as u32);
        self.srcs.push(src.0);
        self.dsts.push(dst.0);
        id
    }

    /// Freezes the builder into an immutable CSR graph.
    pub fn build(self) -> Graph {
        let n = self.num_nodes as usize;
        let m = self.srcs.len();

        // Counting sort of edges by source node into CSR order, while
        // remembering each edge's original (stable) id.
        let mut counts = vec![0u32; n + 1];
        for &s in &self.srcs {
            counts[s as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts; // offsets[v]..offsets[v+1] = out-edges of v
        let mut cursor = offsets.clone();
        let mut csr_edges = vec![0u32; m]; // edge ids in CSR order
        for e in 0..m {
            let s = self.srcs[e] as usize;
            csr_edges[cursor[s] as usize] = e as u32;
            cursor[s] += 1;
        }

        Graph {
            offsets,
            csr_edges,
            srcs: self.srcs,
            dsts: self.dsts,
        }
    }
}

/// Immutable directed graph in CSR form.
///
/// Node and edge ids are dense; edge ids match the insertion order of the
/// originating [`GraphBuilder`].
#[derive(Clone, Debug)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes `csr_edges` for out-edges of `v`.
    offsets: Vec<u32>,
    /// Edge ids grouped by source node.
    csr_edges: Vec<u32>,
    /// Source node of each edge, indexed by `EdgeId`.
    srcs: Vec<u32>,
    /// Destination node of each edge, indexed by `EdgeId`.
    dsts: Vec<u32>,
}

impl Graph {
    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.srcs.len()
    }

    /// Source node of `e`.
    #[inline]
    pub fn src(&self, e: EdgeId) -> NodeId {
        NodeId(self.srcs[e.idx()])
    }

    /// Destination node of `e`.
    #[inline]
    pub fn dst(&self, e: EdgeId) -> NodeId {
        NodeId(self.dsts[e.idx()])
    }

    /// Out-edges of `v` (as stable edge ids).
    #[inline]
    pub fn out_edges(&self, v: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        let lo = self.offsets[v.idx()] as usize;
        let hi = self.offsets[v.idx() + 1] as usize;
        self.csr_edges[lo..hi].iter().map(|&e| EdgeId(e))
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        (self.offsets[v.idx() + 1] - self.offsets[v.idx()]) as usize
    }

    /// The flat edge → source-router index: `edge_sources()[e]` is the
    /// node whose router owns the *output* side of edge `e` (its VC
    /// buffers live there). Per-router resource accounting — e.g. a
    /// shared VC pool drawn on by every outgoing channel of one router —
    /// stays `O(1)` per acquisition/release by indexing this slice
    /// instead of re-deriving ownership from the CSR adjacency.
    #[inline]
    pub fn edge_sources(&self) -> &[u32] {
        &self.srcs
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes() as u32).map(NodeId)
    }

    /// Iterator over all edge ids.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.num_edges() as u32).map(EdgeId)
    }

    /// Finds an edge `src -> dst` if one exists (linear in out-degree).
    pub fn find_edge(&self, src: NodeId, dst: NodeId) -> Option<EdgeId> {
        self.out_edges(src).find(|&e| self.dst(e) == dst)
    }

    /// Maximum out-degree over all nodes.
    pub fn max_out_degree(&self) -> usize {
        self.nodes().map(|v| self.out_degree(v)).max().unwrap_or(0)
    }

    /// Returns `true` if the *channel graph* is acyclic, i.e. the directed
    /// graph itself contains no cycle. Wormhole routing cannot deadlock on
    /// acyclic channel graphs (e.g. leveled networks).
    pub fn is_acyclic(&self) -> bool {
        self.topological_order().is_some()
    }

    /// A topological order of the nodes, or `None` if the graph has a
    /// cycle. The order is deterministic for a given graph (Kahn's
    /// algorithm with a LIFO frontier seeded in descending node order, so
    /// ties resolve toward smaller ids first).
    pub fn topological_order(&self) -> Option<Vec<NodeId>> {
        let n = self.num_nodes();
        let mut indeg = vec![0u32; n];
        for e in 0..self.num_edges() {
            indeg[self.dsts[e] as usize] += 1;
        }
        let mut stack: Vec<u32> = (0..n as u32)
            .rev()
            .filter(|&v| indeg[v as usize] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = stack.pop() {
            order.push(NodeId(v));
            for e in self.out_edges(NodeId(v)) {
                let d = self.dsts[e.idx()] as usize;
                indeg[d] -= 1;
                if indeg[d] == 0 {
                    stack.push(d as u32);
                }
            }
        }
        if order.len() == n {
            Some(order)
        } else {
            None
        }
    }

    /// Whether the routing graph is *feedforward*: every route walks the
    /// channels in one global (topological) order, which holds exactly
    /// when the directed graph is acyclic. Feedforwardness is the
    /// precondition of the `wormhole-netcalc` analytic bound backend —
    /// leveled networks (butterflies, Beneš) qualify, while meshes and
    /// tori (even under the dateline discipline, whose *channel
    /// dependency* graph is acyclic but whose routing graph still wraps)
    /// do not.
    pub fn is_feedforward(&self) -> bool {
        self.topological_order().is_some()
    }

    /// Breadth-first distances (in edges) from `src`; `u32::MAX` marks
    /// unreachable nodes.
    pub fn bfs_distances(&self, src: NodeId) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.num_nodes()];
        dist[src.idx()] = 0;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(src);
        while let Some(v) = queue.pop_front() {
            let dv = dist[v.idx()];
            for e in self.out_edges(v) {
                let w = self.dst(e);
                if dist[w.idx()] == u32::MAX {
                    dist[w.idx()] = dv + 1;
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// Finds a shortest path of edges from `src` to `dst` via BFS, or `None`
    /// if unreachable.
    pub fn shortest_path(&self, src: NodeId, dst: NodeId) -> Option<Vec<EdgeId>> {
        if src == dst {
            return Some(Vec::new());
        }
        let mut pred: Vec<Option<EdgeId>> = vec![None; self.num_nodes()];
        let mut visited = vec![false; self.num_nodes()];
        visited[src.idx()] = true;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(src);
        while let Some(v) = queue.pop_front() {
            for e in self.out_edges(v) {
                let w = self.dst(e);
                if !visited[w.idx()] {
                    visited[w.idx()] = true;
                    pred[w.idx()] = Some(e);
                    if w == dst {
                        // Reconstruct.
                        let mut path = Vec::new();
                        let mut cur = dst;
                        while cur != src {
                            let e = pred[cur.idx()].expect("predecessor chain broken");
                            path.push(e);
                            cur = self.src(e);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(w);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Graph, [EdgeId; 5]) {
        // 0 -> 1 -> 3, 0 -> 2 -> 3, 1 -> 2
        let mut b = GraphBuilder::new(4);
        let e0 = b.add_edge(NodeId(0), NodeId(1));
        let e1 = b.add_edge(NodeId(0), NodeId(2));
        let e2 = b.add_edge(NodeId(1), NodeId(3));
        let e3 = b.add_edge(NodeId(2), NodeId(3));
        let e4 = b.add_edge(NodeId(1), NodeId(2));
        (b.build(), [e0, e1, e2, e3, e4])
    }

    #[test]
    fn counts_and_endpoints() {
        let (g, e) = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.src(e[0]), NodeId(0));
        assert_eq!(g.dst(e[0]), NodeId(1));
        assert_eq!(g.src(e[4]), NodeId(1));
        assert_eq!(g.dst(e[4]), NodeId(2));
    }

    #[test]
    fn out_edges_grouped_by_source() {
        let (g, _) = diamond();
        for v in g.nodes() {
            for e in g.out_edges(v) {
                assert_eq!(g.src(e), v);
            }
        }
        let mut total = 0;
        for v in g.nodes() {
            total += g.out_degree(v);
        }
        assert_eq!(total, g.num_edges());
    }

    #[test]
    fn edge_ids_stable_across_build() {
        let (g, e) = diamond();
        // Insertion order: e[i].0 == i.
        for (i, id) in e.iter().enumerate() {
            assert_eq!(id.0 as usize, i);
        }
        // And the CSR view contains each id exactly once.
        let mut seen = vec![false; g.num_edges()];
        for v in g.nodes() {
            for e in g.out_edges(v) {
                assert!(!seen[e.idx()], "edge listed twice");
                seen[e.idx()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn edge_sources_is_the_src_map() {
        let (g, _) = diamond();
        let srcs = g.edge_sources();
        assert_eq!(srcs.len(), g.num_edges());
        for e in g.edges() {
            assert_eq!(NodeId(srcs[e.idx()]), g.src(e));
        }
        // And it partitions edges exactly like the CSR out-degree view.
        for v in g.nodes() {
            let owned = srcs.iter().filter(|&&s| s == v.0).count();
            assert_eq!(owned, g.out_degree(v));
        }
    }

    #[test]
    fn find_edge_works() {
        let (g, e) = diamond();
        assert_eq!(g.find_edge(NodeId(0), NodeId(1)), Some(e[0]));
        assert_eq!(g.find_edge(NodeId(3), NodeId(0)), None);
    }

    #[test]
    fn acyclicity() {
        let (g, _) = diamond();
        assert!(g.is_acyclic());
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(0));
        assert!(!b.build().is_acyclic());
    }

    #[test]
    fn topological_order_respects_edges() {
        let (g, _) = diamond();
        let order = g.topological_order().expect("diamond is a DAG");
        assert_eq!(order.len(), g.num_nodes());
        let mut rank = vec![0usize; g.num_nodes()];
        for (i, v) in order.iter().enumerate() {
            rank[v.idx()] = i;
        }
        for e in g.edges() {
            assert!(
                rank[g.src(e).idx()] < rank[g.dst(e).idx()],
                "edge {e:?} violates the order"
            );
        }
        // Deterministic: two calls agree.
        assert_eq!(g.topological_order(), g.topological_order());
    }

    #[test]
    fn topological_order_rejects_cycles() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        b.add_edge(NodeId(2), NodeId(0));
        assert_eq!(b.build().topological_order(), None);
    }

    #[test]
    fn butterfly_and_benes_are_feedforward() {
        for k in 1..=5u32 {
            assert!(
                crate::butterfly::Butterfly::new(k).graph().is_feedforward(),
                "butterfly k={k}"
            );
            assert!(
                crate::benes::BenesNetwork::new(k).graph().is_feedforward(),
                "benes k={k}"
            );
        }
    }

    #[test]
    fn tori_are_not_feedforward_even_with_datelines() {
        use crate::mesh::{Mesh, RoutingDiscipline};
        let naive = Mesh::new(4, 2, true);
        assert!(!naive.graph().is_feedforward());
        let dateline = Mesh::new_disciplined(4, 2, true, RoutingDiscipline::DatelineClasses);
        assert!(
            !dateline.graph().is_feedforward(),
            "dateline classes break channel-dependency cycles, not graph cycles"
        );
        // Even a plain mesh is not: opposite-direction channel pairs
        // between neighbors form 2-cycles in the routing graph.
        assert!(!Mesh::new(4, 2, false).graph().is_feedforward());
    }

    #[test]
    fn bfs_and_shortest_path() {
        let (g, _) = diamond();
        let d = g.bfs_distances(NodeId(0));
        assert_eq!(d, vec![0, 1, 1, 2]);
        let p = g.shortest_path(NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(g.src(p[0]), NodeId(0));
        assert_eq!(g.dst(p[1]), NodeId(3));
        assert_eq!(g.dst(p[0]), g.src(p[1]));
        assert!(g.shortest_path(NodeId(3), NodeId(0)).is_none());
        assert_eq!(g.shortest_path(NodeId(2), NodeId(2)), Some(vec![]));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(1);
        b.add_edge(NodeId(0), NodeId(0));
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert!(g.is_acyclic());
    }

    #[test]
    fn add_node_extends() {
        let mut b = GraphBuilder::new(2);
        let v = b.add_node();
        assert_eq!(v, NodeId(2));
        b.add_edge(NodeId(0), v);
        let g = b.build();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.out_degree(NodeId(0)), 1);
    }

    #[test]
    fn parallel_edges_allowed() {
        let mut b = GraphBuilder::new(2);
        let e0 = b.add_edge(NodeId(0), NodeId(1));
        let e1 = b.add_edge(NodeId(0), NodeId(1));
        assert_ne!(e0, e1);
        let g = b.build();
        assert_eq!(g.out_degree(NodeId(0)), 2);
    }
}
