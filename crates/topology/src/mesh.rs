//! k-ary d-dimensional meshes and tori with dimension-order routing.
//!
//! These are the "meshes with constant dimension" of the paper's related
//! work (§1.3.4) and serve as long-dilation substrates for the fixed-buffer
//! comparison experiment (E7): a `k`-ary 1-cube (linear array) realizes
//! dilation up to `k−1` with trivially controllable congestion.

use crate::graph::{EdgeId, Graph, GraphBuilder, NodeId};
use crate::path::Path;

/// A `radix^dims`-node mesh (or torus) with bidirectional links represented
/// as directed edge pairs.
#[derive(Clone, Debug)]
pub struct Mesh {
    radix: u32,
    dims: u32,
    wrap: bool,
    graph: Graph,
    /// `edge_lookup[node * 2 * dims + dir]` = edge id leaving `node` in
    /// direction `dir` (dim*2 + {0: plus, 1: minus}), or `u32::MAX`.
    edge_lookup: Vec<u32>,
}

impl Mesh {
    /// Builds a `radix`-ary `dims`-dimensional mesh (`wrap = false`) or
    /// torus (`wrap = true`).
    pub fn new(radix: u32, dims: u32, wrap: bool) -> Self {
        assert!(radix >= 2 && dims >= 1, "mesh needs radix ≥ 2, dims ≥ 1");
        let n = (radix as u64).pow(dims);
        assert!(n <= u32::MAX as u64 / 2, "mesh too large");
        let n = n as u32;
        let mut b = GraphBuilder::new(n as usize);
        let mut lookup = vec![u32::MAX; (n as usize) * 2 * dims as usize];
        let stride = |d: u32| (radix as u64).pow(d) as u32;
        for v in 0..n {
            for d in 0..dims {
                let coord = (v / stride(d)) % radix;
                // +1 direction
                if coord + 1 < radix || wrap {
                    let w = if coord + 1 < radix {
                        v + stride(d)
                    } else {
                        v - (radix - 1) * stride(d)
                    };
                    if w != v {
                        let e = b.add_edge(NodeId(v), NodeId(w));
                        lookup[(v as usize) * 2 * dims as usize + (d as usize) * 2] = e.0;
                    }
                }
                // -1 direction
                if coord > 0 || wrap {
                    let w = if coord > 0 {
                        v - stride(d)
                    } else {
                        v + (radix - 1) * stride(d)
                    };
                    if w != v {
                        let e = b.add_edge(NodeId(v), NodeId(w));
                        lookup[(v as usize) * 2 * dims as usize + (d as usize) * 2 + 1] = e.0;
                    }
                }
            }
        }
        Self {
            radix,
            dims,
            wrap,
            graph: b.build(),
            edge_lookup: lookup,
        }
    }

    /// The underlying graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Radix (nodes per dimension).
    #[inline]
    pub fn radix(&self) -> u32 {
        self.radix
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> u32 {
        self.dims
    }

    /// Whether links wrap (torus).
    #[inline]
    pub fn wraps(&self) -> bool {
        self.wrap
    }

    /// Total node count.
    #[inline]
    pub fn num_nodes(&self) -> u32 {
        (self.radix as u64).pow(self.dims) as u32
    }

    /// Node id from coordinates (little-endian: `coords[0]` is dimension 0).
    pub fn node(&self, coords: &[u32]) -> NodeId {
        assert_eq!(coords.len() as u32, self.dims);
        let mut v = 0u32;
        for (d, &c) in coords.iter().enumerate() {
            assert!(c < self.radix);
            v += c * (self.radix as u64).pow(d as u32) as u32;
        }
        NodeId(v)
    }

    /// Coordinates of a node.
    pub fn coords(&self, v: NodeId) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.dims as usize);
        let mut rest = v.0;
        for _ in 0..self.dims {
            out.push(rest % self.radix);
            rest /= self.radix;
        }
        out
    }

    fn step_edge(&self, v: NodeId, dim: u32, minus: bool) -> EdgeId {
        let idx = (v.idx()) * 2 * self.dims as usize + (dim as usize) * 2 + minus as usize;
        let e = self.edge_lookup[idx];
        assert_ne!(e, u32::MAX, "no edge from {v:?} in dim {dim} minus={minus}");
        EdgeId(e)
    }

    /// Dimension-order (e-cube) path from `src` to `dst`: correct dimension
    /// 0 first, then 1, etc. On a torus the shorter wrap direction is taken
    /// (ties broken toward +).
    pub fn dimension_order_path(&self, src: NodeId, dst: NodeId) -> Path {
        let sc = self.coords(src);
        let dc = self.coords(dst);
        let mut edges = Vec::new();
        let mut cur = src;
        for d in 0..self.dims {
            let mut have = sc[d as usize];
            let want = dc[d as usize];
            while have != want {
                let minus = if !self.wrap {
                    have > want
                } else {
                    // Shorter way around the ring; ties to plus.
                    let fwd = (want + self.radix - have) % self.radix;
                    let bwd = (have + self.radix - want) % self.radix;
                    bwd < fwd
                };
                let e = self.step_edge(cur, d, minus);
                edges.push(e);
                cur = self.graph.dst(e);
                have = self.coords(cur)[d as usize];
            }
        }
        debug_assert_eq!(cur, dst);
        Path::new(edges)
    }
}

/// A linear array of `n` nodes (directed both ways); the simplest
/// long-dilation substrate. Forward path from node `a` to node `b > a` uses
/// `b − a` edges.
pub fn linear_array(n: u32) -> Mesh {
    Mesh::new(n, 1, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_counts() {
        let m = Mesh::new(4, 2, false);
        assert_eq!(m.graph().num_nodes(), 16);
        // 2 dims * 2 directions * (radix-1) * radix per dim pair:
        // edges = dims * 2 * radix^(dims-1) * (radix-1) = 2*2*4*3 = 48
        assert_eq!(m.graph().num_edges(), 48);
        let t = Mesh::new(4, 2, true);
        assert_eq!(t.graph().num_edges(), 2 * 2 * 16); // every node, every dir
    }

    #[test]
    fn coords_roundtrip() {
        let m = Mesh::new(5, 3, false);
        for v in 0..m.num_nodes() {
            let c = m.coords(NodeId(v));
            assert_eq!(m.node(&c), NodeId(v));
        }
    }

    #[test]
    fn dimension_order_path_is_valid_and_minimal_on_mesh() {
        let m = Mesh::new(5, 2, false);
        let src = m.node(&[0, 0]);
        let dst = m.node(&[4, 3]);
        let p = m.dimension_order_path(src, dst);
        p.validate(m.graph()).unwrap();
        assert_eq!(p.len(), 7); // |4-0| + |3-0|
        assert_eq!(p.src(m.graph()), src);
        assert_eq!(p.dst(m.graph()), dst);
    }

    #[test]
    fn torus_takes_short_way_around() {
        let t = Mesh::new(8, 1, true);
        let p = t.dimension_order_path(NodeId(0), NodeId(7));
        assert_eq!(p.len(), 1); // wrap backwards 0 -> 7
        let p2 = t.dimension_order_path(NodeId(0), NodeId(3));
        assert_eq!(p2.len(), 3);
    }

    #[test]
    fn linear_array_paths() {
        let a = linear_array(10);
        let p = a.dimension_order_path(NodeId(1), NodeId(8));
        assert_eq!(p.len(), 7);
        p.validate(a.graph()).unwrap();
        let back = a.dimension_order_path(NodeId(8), NodeId(1));
        assert_eq!(back.len(), 7);
    }

    #[test]
    fn zero_length_path() {
        let m = Mesh::new(3, 2, false);
        let p = m.dimension_order_path(NodeId(4), NodeId(4));
        assert!(p.is_empty());
    }

    #[test]
    fn mesh_is_cyclic_torus_is_cyclic() {
        // Bidirectional links always give 2-cycles in the channel graph, so
        // greedy wormhole *can* deadlock here — exercised in flitsim tests.
        assert!(!Mesh::new(3, 2, false).graph().is_acyclic());
    }
}
