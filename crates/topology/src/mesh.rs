//! k-ary d-dimensional meshes and tori with dimension-order routing, and
//! the torus-wide Dally–Seitz dateline discipline.
//!
//! These are the "meshes with constant dimension" of the paper's related
//! work (§1.3.4) and serve as long-dilation substrates for the fixed-buffer
//! comparison experiment (E7): a `k`-ary 1-cube (linear array) realizes
//! dilation up to `k−1` with trivially controllable congestion.
//!
//! # Deadlock freedom on tori
//!
//! A torus wraps every dimension into rings, so dimension-order wormhole
//! routing can deadlock: worms chase each other's tails around a ring
//! (paper §1, citation \[14\]). The Dally–Seitz fix splits each physical
//! channel into two virtual-channel *classes*; a route uses class 0 within
//! a dimension until it crosses that dimension's *dateline* (the wrap
//! hop), then class 1. The per-ring dependency graph becomes a spiral
//! instead of a cycle, and dimension order keeps cross-dimension
//! dependencies one-way, so the whole channel-dependency graph is acyclic
//! — deadlock is impossible by construction, at the price of one extra VC
//! per physical channel.
//!
//! We realize the classes structurally (see [`RoutingDiscipline`]): under
//! [`RoutingDiscipline::DatelineClasses`] every physical channel becomes
//! **two parallel edges** in the routing graph (class 0 / class 1), and
//! [`Mesh::dateline_path`] switches between them at the datelines. The
//! flit simulator needs no special support — its per-edge VC count `B`
//! applies *per class*, so a physical channel with 2 classes and `b` VCs
//! per class models a `2b`-VC Dally–Seitz router.

use crate::graph::{EdgeId, Graph, GraphBuilder, NodeId};
use crate::path::Path;

/// How routes use virtual-channel classes on a mesh or torus.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RoutingDiscipline {
    /// One VC class per physical channel; dimension-order routes wrap
    /// freely. Deadlock-prone on tori (the control arm).
    Naive,
    /// Two VC classes per physical channel; dimension-order routes start
    /// each dimension on class 0 and switch to class 1 after crossing
    /// that dimension's dateline (the wrap hop). Deadlock-free by
    /// construction on tori (Dally–Seitz).
    DatelineClasses,
    /// Three VC classes per physical channel: classes 0/1 are the
    /// Dally–Seitz **escape** pair (routed exactly like
    /// [`RoutingDiscipline::DatelineClasses`]), class 2 is an
    /// **adaptive lane** with no routing restriction. Adaptive route
    /// selection (see `wormhole_flitsim::config::RouteSelection`) wanders
    /// over the class-2 lane by local occupancy and falls back onto the
    /// escape pair when the adaptive lane is full; because the escape
    /// subnetwork's channel-dependency graph is acyclic and a worm that
    /// enters it never leaves it, the whole network stays deadlock-free
    /// (Duato's criterion with a Dally–Seitz escape network).
    AdaptiveEscape,
}

impl RoutingDiscipline {
    /// Number of VC classes (parallel routing edges per physical channel).
    #[inline]
    pub fn classes(self) -> u32 {
        match self {
            RoutingDiscipline::Naive => 1,
            RoutingDiscipline::DatelineClasses => 2,
            RoutingDiscipline::AdaptiveEscape => 3,
        }
    }

    /// Short lowercase name for tables.
    pub fn name(self) -> &'static str {
        match self {
            RoutingDiscipline::Naive => "naive",
            RoutingDiscipline::DatelineClasses => "dateline",
            RoutingDiscipline::AdaptiveEscape => "adaptive",
        }
    }
}

/// VC class of the adaptive lane under
/// [`RoutingDiscipline::AdaptiveEscape`] (classes below it are escape).
pub const ADAPTIVE_CLASS: u32 = 2;

/// A `radix^dims`-node mesh (or torus) with bidirectional links represented
/// as directed edge pairs — one parallel edge per VC class.
#[derive(Clone, Debug)]
pub struct Mesh {
    radix: u32,
    dims: u32,
    wrap: bool,
    classes: u32,
    graph: Graph,
    /// `edge_lookup[((node * dims + dim) * 2 + minus) * classes + class]`
    /// = edge id leaving `node` in direction `(dim, ±)` on `class`, or
    /// `u32::MAX` where the mesh has no such link.
    edge_lookup: Vec<u32>,
    /// VC class of each edge, indexed by `EdgeId`.
    edge_class: Vec<u8>,
}

impl Mesh {
    /// Builds a `radix`-ary `dims`-dimensional mesh (`wrap = false`) or
    /// torus (`wrap = true`) with a single VC class (naive routing graph).
    pub fn new(radix: u32, dims: u32, wrap: bool) -> Self {
        Self::new_disciplined(radix, dims, wrap, RoutingDiscipline::Naive)
    }

    /// Builds a mesh/torus whose routing graph carries the VC classes of
    /// `discipline`. [`RoutingDiscipline::DatelineClasses`] requires
    /// `wrap` (datelines are a property of wrap rings).
    pub fn new_disciplined(
        radix: u32,
        dims: u32,
        wrap: bool,
        discipline: RoutingDiscipline,
    ) -> Self {
        assert!(radix >= 2 && dims >= 1, "mesh needs radix ≥ 2, dims ≥ 1");
        let classes = discipline.classes();
        assert!(
            discipline != RoutingDiscipline::DatelineClasses || wrap,
            "dateline classes only apply to wrap-around (torus) meshes"
        );
        let n = (radix as u64).checked_pow(dims).expect("mesh too large");
        // Bound the full lookup-slot count (= maximum possible edge count):
        // edge ids stay within u32 and every lookup index within the table.
        assert!(
            n.checked_mul(2 * dims as u64 * classes as u64)
                .is_some_and(|slots| slots <= u32::MAX as u64),
            "mesh too large"
        );
        let n = n as u32;
        let mut b = GraphBuilder::new(n as usize);
        let mut lookup = vec![u32::MAX; (n as usize) * 2 * dims as usize * classes as usize];
        let mut edge_class = Vec::new();
        let stride = |d: u32| (radix as u64).pow(d) as u32;
        let link = |b: &mut GraphBuilder,
                    edge_class: &mut Vec<u8>,
                    lookup: &mut Vec<u32>,
                    v: u32,
                    w: u32,
                    d: u32,
                    minus: bool| {
            for c in 0..classes {
                let e = b.add_edge(NodeId(v), NodeId(w));
                edge_class.push(c as u8);
                let idx = ((v as usize * dims as usize + d as usize) * 2 + minus as usize)
                    * classes as usize
                    + c as usize;
                lookup[idx] = e.0;
            }
        };
        for v in 0..n {
            for d in 0..dims {
                let coord = (v / stride(d)) % radix;
                // +1 direction
                if coord + 1 < radix || wrap {
                    let w = if coord + 1 < radix {
                        v + stride(d)
                    } else {
                        v - (radix - 1) * stride(d)
                    };
                    if w != v {
                        link(&mut b, &mut edge_class, &mut lookup, v, w, d, false);
                    }
                }
                // -1 direction
                if coord > 0 || wrap {
                    let w = if coord > 0 {
                        v - stride(d)
                    } else {
                        v + (radix - 1) * stride(d)
                    };
                    if w != v {
                        link(&mut b, &mut edge_class, &mut lookup, v, w, d, true);
                    }
                }
            }
        }
        Self {
            radix,
            dims,
            wrap,
            classes,
            graph: b.build(),
            edge_lookup: lookup,
            edge_class,
        }
    }

    /// The underlying graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Radix (nodes per dimension).
    #[inline]
    pub fn radix(&self) -> u32 {
        self.radix
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> u32 {
        self.dims
    }

    /// Whether links wrap (torus).
    #[inline]
    pub fn wraps(&self) -> bool {
        self.wrap
    }

    /// Number of VC classes per physical channel (1 naive, 2 dateline,
    /// 3 adaptive-escape).
    #[inline]
    pub fn classes(&self) -> u32 {
        self.classes
    }

    /// The routing discipline this mesh was built with.
    #[inline]
    pub fn discipline(&self) -> RoutingDiscipline {
        match self.classes {
            3 => RoutingDiscipline::AdaptiveEscape,
            2 => RoutingDiscipline::DatelineClasses,
            _ => RoutingDiscipline::Naive,
        }
    }

    /// Whether `e` belongs to the deadlock-free **escape** subnetwork.
    ///
    /// On an [`RoutingDiscipline::AdaptiveEscape`] mesh the escape
    /// channels are classes 0 and 1 (the Dally–Seitz dateline pair) and
    /// the adaptive lane is class 2; on single- and two-class meshes
    /// every channel is part of the (only) oblivious routing structure,
    /// so all edges count as escape.
    #[inline]
    pub fn is_escape_edge(&self, e: EdgeId) -> bool {
        self.edge_vc_class(e) < ADAPTIVE_CLASS
    }

    /// VC class of a routing edge (0 on single-class meshes).
    #[inline]
    pub fn edge_vc_class(&self, e: EdgeId) -> u32 {
        self.edge_class[e.idx()] as u32
    }

    /// Total node count.
    #[inline]
    pub fn num_nodes(&self) -> u32 {
        (self.radix as u64).pow(self.dims) as u32
    }

    /// Node id from coordinates (little-endian: `coords\[0\]` is dimension 0).
    pub fn node(&self, coords: &[u32]) -> NodeId {
        assert_eq!(coords.len() as u32, self.dims);
        let mut v = 0u32;
        for (d, &c) in coords.iter().enumerate() {
            assert!(c < self.radix);
            v += c * (self.radix as u64).pow(d as u32) as u32;
        }
        NodeId(v)
    }

    /// Coordinate of `v` in dimension `d` (allocation-free; used by the
    /// per-hop hot paths instead of [`Mesh::coords`]).
    #[inline]
    pub(crate) fn coord(&self, v: NodeId, d: u32) -> u32 {
        (v.0 / self.radix.pow(d)) % self.radix
    }

    /// Coordinates of a node.
    pub fn coords(&self, v: NodeId) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.dims as usize);
        let mut rest = v.0;
        for _ in 0..self.dims {
            out.push(rest % self.radix);
            rest /= self.radix;
        }
        out
    }

    pub(crate) fn step_edge(&self, v: NodeId, dim: u32, minus: bool, class: u32) -> EdgeId {
        self.try_step_edge(v, dim, minus, class)
            .unwrap_or_else(|| panic!("no edge from {v:?} in dim {dim} minus={minus}"))
    }

    /// Whether minimal routing travels the `−` direction in dimension `d`
    /// from coordinate `have` to `want` (ties broken toward `+`).
    pub(crate) fn travels_minus(&self, have: u32, want: u32) -> bool {
        if !self.wrap {
            have > want
        } else {
            // Shorter way around the ring; ties to plus.
            let fwd = (want + self.radix - have) % self.radix;
            let bwd = (have + self.radix - want) % self.radix;
            bwd < fwd
        }
    }

    /// Dimension-order (e-cube) path from `src` to `dst`: correct dimension
    /// 0 first, then 1, etc. On a torus the shorter wrap direction is taken
    /// (ties broken toward +). Always routes on class 0 — on a
    /// [`RoutingDiscipline::DatelineClasses`] mesh this is the naive
    /// (deadlock-prone) control arm; use [`Mesh::dateline_path`] or
    /// [`Mesh::route`] for the disciplined route.
    pub fn dimension_order_path(&self, src: NodeId, dst: NodeId) -> Path {
        let sc = self.coords(src);
        let dc = self.coords(dst);
        let mut edges = Vec::new();
        let mut cur = src;
        for d in 0..self.dims {
            let mut have = sc[d as usize];
            let want = dc[d as usize];
            while have != want {
                let minus = self.travels_minus(have, want);
                let e = self.step_edge(cur, d, minus, 0);
                edges.push(e);
                cur = self.graph.dst(e);
                have = self.coords(cur)[d as usize];
            }
        }
        debug_assert_eq!(cur, dst);
        Path::new(edges)
    }

    /// Dimension-order path with the per-dimension Dally–Seitz dateline
    /// switch: each dimension starts on class 0 and moves to class 1 after
    /// traversing that dimension's dateline hop (the wrap edge leaving
    /// coordinate `radix−1` in the `+` direction, or coordinate `0` in the
    /// `−` direction). Minimal routes cross each dateline at most once, so
    /// two classes suffice and the channel-dependency graph of any set of
    /// such paths is acyclic (see [`crate::dateline`]).
    ///
    /// Panics unless the mesh was built with
    /// [`RoutingDiscipline::DatelineClasses`].
    pub fn dateline_path(&self, src: NodeId, dst: NodeId) -> Path {
        assert!(
            self.classes >= 2,
            "dateline_path needs a mesh with escape classes"
        );
        let sc = self.coords(src);
        let dc = self.coords(dst);
        let mut edges = Vec::new();
        let mut cur = src;
        for d in 0..self.dims {
            let mut have = sc[d as usize];
            let want = dc[d as usize];
            if have == want {
                continue;
            }
            // Minimal routing never reverses inside a dimension, so the
            // direction (and hence this dimension's dateline) is fixed.
            let minus = self.travels_minus(have, want);
            let dateline_coord = if minus { 0 } else { self.radix - 1 };
            let mut class = 0u32;
            while have != want {
                let e = self.step_edge(cur, d, minus, class);
                edges.push(e);
                if have == dateline_coord {
                    class = 1; // crossed the dateline
                }
                cur = self.graph.dst(e);
                have = self.coords(cur)[d as usize];
            }
        }
        debug_assert_eq!(cur, dst);
        Path::new(edges)
    }

    /// The canonical **oblivious** route under this mesh's discipline:
    /// dateline-switched wherever escape classes exist on a torus
    /// ([`RoutingDiscipline::DatelineClasses`] and the escape pair of
    /// [`RoutingDiscipline::AdaptiveEscape`]), plain dimension-order
    /// otherwise. Adaptive route *selection* is performed per hop by the
    /// simulator (see [`crate::adaptive::AdaptiveRouter`]); this function
    /// is its escape-network continuation and the oblivious control arm.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Path {
        if self.classes >= 2 && self.wrap {
            self.dateline_path(src, dst)
        } else {
            self.dimension_order_path(src, dst)
        }
    }

    /// The edge leaving `v` in direction `(dim, ±)` on `class`, or `None`
    /// where the mesh has no such link (non-wrap boundary).
    pub(crate) fn try_step_edge(
        &self,
        v: NodeId,
        dim: u32,
        minus: bool,
        class: u32,
    ) -> Option<EdgeId> {
        debug_assert!(class < self.classes);
        let idx = ((v.idx() * self.dims as usize + dim as usize) * 2 + minus as usize)
            * self.classes as usize
            + class as usize;
        let e = self.edge_lookup[idx];
        (e != u32::MAX).then_some(EdgeId(e))
    }

    /// Whether one hop in direction `(d, ±)` strictly reduces the
    /// (wrap-aware) distance from `have` to `want` in that dimension. On
    /// a wrap ring at exactly half-ring distance **both** directions are
    /// minimal (unlike the oblivious tie-break of
    /// [`Mesh::dimension_order_path`], which must pick one).
    pub(crate) fn reduces_distance(&self, have: u32, want: u32, minus: bool) -> bool {
        if have == want {
            return false;
        }
        if !self.wrap {
            return minus == (have > want);
        }
        let fwd = (want + self.radix - have) % self.radix;
        let bwd = (have + self.radix - want) % self.radix;
        if minus {
            bwd <= fwd
        } else {
            fwd <= bwd
        }
    }

    /// Per-hop adaptive candidate enumeration on the class-2 adaptive
    /// lane: pushes `(edge, profitable)` pairs for every direction the
    /// header at `at` could take toward `dst`.
    ///
    /// *Profitable* directions strictly reduce the (wrap-aware) distance
    /// to `dst`: the minimal way around each unresolved dimension — both
    /// ways on a wrap ring at exactly half-ring distance, where they are
    /// equally minimal. With `misroutes` set, every other existing
    /// direction is pushed too, flagged unprofitable — the
    /// fully-adaptive candidate set; the caller is responsible for
    /// bounding misroutes (livelock) and for excluding u-turns if it
    /// wants them excluded.
    ///
    /// The enumeration order is deterministic (dimension-major, `+`
    /// before `−`, profitable and unprofitable interleaved per
    /// dimension), so occupancy-based selection with a fixed tie-break is
    /// reproducible. Panics unless the mesh was built with
    /// [`RoutingDiscipline::AdaptiveEscape`].
    pub fn adaptive_candidates(
        &self,
        at: NodeId,
        dst: NodeId,
        misroutes: bool,
        out: &mut Vec<(EdgeId, bool)>,
    ) {
        assert_eq!(
            self.classes, 3,
            "adaptive candidates need an AdaptiveEscape mesh"
        );
        for d in 0..self.dims {
            let (have, want) = (self.coord(at, d), self.coord(dst, d));
            for minus in [false, true] {
                let profitable = self.reduces_distance(have, want, minus);
                if !profitable && !misroutes {
                    continue;
                }
                if let Some(e) = self.try_step_edge(at, d, minus, ADAPTIVE_CLASS) {
                    out.push((e, profitable));
                }
            }
        }
    }

    /// The deadlock-free escape continuation from `at` to `dst`: the
    /// dateline-switched dimension-order path on the class-0/class-1
    /// escape pair (plain class-0 dimension order on a non-wrap mesh,
    /// where dimension order is already acyclic). A worm that falls back
    /// onto the escape network follows this path to its destination and
    /// never returns to the adaptive lane, which is what keeps the
    /// escape-channel dependency graph acyclic regardless of how the
    /// adaptive prefix wandered.
    pub fn escape_route(&self, at: NodeId, dst: NodeId) -> Path {
        assert!(self.classes >= 2, "escape routes need escape classes");
        if self.wrap {
            self.dateline_path(at, dst)
        } else {
            self.dimension_order_path(at, dst)
        }
    }

    /// First hop of [`Mesh::escape_route`] in O(dims): lowest unresolved
    /// dimension, minimal direction, class 0 (a fresh escape entry is
    /// before its dateline by definition — the class-1 switch only
    /// happens *after* crossing the wrap hop).
    ///
    /// Panics if `at == dst` (there is no escape hop to take).
    pub fn escape_first_hop(&self, at: NodeId, dst: NodeId) -> EdgeId {
        assert!(self.classes >= 2, "escape routes need escape classes");
        for d in 0..self.dims {
            let (have, want) = (self.coord(at, d), self.coord(dst, d));
            if have != want {
                let minus = self.travels_minus(have, want);
                return self.step_edge(at, d, minus, 0);
            }
        }
        panic!("no escape hop: {at:?} == {dst:?}");
    }
}

/// A linear array of `n` nodes (directed both ways); the simplest
/// long-dilation substrate. Forward path from node `a` to node `b > a` uses
/// `b − a` edges.
pub fn linear_array(n: u32) -> Mesh {
    Mesh::new(n, 1, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dateline::channel_dependency_graph;

    #[test]
    fn mesh_counts() {
        let m = Mesh::new(4, 2, false);
        assert_eq!(m.graph().num_nodes(), 16);
        // 2 dims * 2 directions * (radix-1) * radix per dim pair:
        // edges = dims * 2 * radix^(dims-1) * (radix-1) = 2*2*4*3 = 48
        assert_eq!(m.graph().num_edges(), 48);
        let t = Mesh::new(4, 2, true);
        assert_eq!(t.graph().num_edges(), 2 * 2 * 16); // every node, every dir
    }

    #[test]
    fn dateline_torus_doubles_every_channel() {
        let t = Mesh::new_disciplined(4, 2, true, RoutingDiscipline::DatelineClasses);
        assert_eq!(t.classes(), 2);
        assert_eq!(t.discipline(), RoutingDiscipline::DatelineClasses);
        assert_eq!(t.graph().num_edges(), 2 * (2 * 2 * 16));
        // Classes alternate per physical channel in insertion order.
        let c0 = t
            .graph()
            .edges()
            .filter(|&e| t.edge_vc_class(e) == 0)
            .count();
        assert_eq!(c0 * 2, t.graph().num_edges());
    }

    #[test]
    #[should_panic(expected = "wrap-around")]
    fn dateline_rejects_plain_mesh() {
        Mesh::new_disciplined(4, 2, false, RoutingDiscipline::DatelineClasses);
    }

    #[test]
    #[should_panic(expected = "mesh too large")]
    fn oversized_mesh_is_rejected_before_indices_overflow() {
        // 1024^3 nodes fit u32, but the 2^30 · (3 dims · 2 dirs) lookup
        // slots do not — the size assert must fire instead of letting edge
        // ids or lookup indices wrap.
        Mesh::new(1024, 3, false);
    }

    #[test]
    fn coords_roundtrip() {
        let m = Mesh::new(5, 3, false);
        for v in 0..m.num_nodes() {
            let c = m.coords(NodeId(v));
            assert_eq!(m.node(&c), NodeId(v));
        }
    }

    #[test]
    fn dimension_order_path_is_valid_and_minimal_on_mesh() {
        let m = Mesh::new(5, 2, false);
        let src = m.node(&[0, 0]);
        let dst = m.node(&[4, 3]);
        let p = m.dimension_order_path(src, dst);
        p.validate(m.graph()).unwrap();
        assert_eq!(p.len(), 7); // |4-0| + |3-0|
        assert_eq!(p.src(m.graph()), src);
        assert_eq!(p.dst(m.graph()), dst);
    }

    #[test]
    fn torus_takes_short_way_around() {
        let t = Mesh::new(8, 1, true);
        let p = t.dimension_order_path(NodeId(0), NodeId(7));
        assert_eq!(p.len(), 1); // wrap backwards 0 -> 7
        let p2 = t.dimension_order_path(NodeId(0), NodeId(3));
        assert_eq!(p2.len(), 3);
    }

    #[test]
    fn dateline_path_matches_dimension_order_hops() {
        // Same physical hops, same length, same endpoints — only the class
        // assignment differs.
        for (radix, dims) in [(5u32, 1u32), (4, 2), (3, 3)] {
            let naive = Mesh::new(radix, dims, true);
            let dl = Mesh::new_disciplined(radix, dims, true, RoutingDiscipline::DatelineClasses);
            for s in 0..dl.num_nodes() {
                for d in 0..dl.num_nodes() {
                    if s == d {
                        continue;
                    }
                    let p = dl.dateline_path(NodeId(s), NodeId(d));
                    p.validate(dl.graph()).unwrap();
                    let q = naive.dimension_order_path(NodeId(s), NodeId(d));
                    assert_eq!(p.len(), q.len(), "{radix}^{dims}: {s}->{d}");
                    assert_eq!(p.src(dl.graph()), NodeId(s));
                    assert_eq!(p.dst(dl.graph()), NodeId(d));
                }
            }
        }
    }

    #[test]
    fn dateline_class_switches_exactly_at_wrap() {
        let t = Mesh::new_disciplined(8, 1, true, RoutingDiscipline::DatelineClasses);
        // 6 -> 1 crosses the + dateline (edge leaving coord 7).
        let p = t.dateline_path(NodeId(6), NodeId(1));
        let classes: Vec<u32> = p.edges().iter().map(|&e| t.edge_vc_class(e)).collect();
        assert_eq!(classes, vec![0, 0, 1]);
        // 1 -> 6 crosses the − dateline (the wrap edge leaving coord 0 is
        // itself still class 0; hops after it are class 1).
        let p = t.dateline_path(NodeId(1), NodeId(6));
        let classes: Vec<u32> = p.edges().iter().map(|&e| t.edge_vc_class(e)).collect();
        assert_eq!(classes, vec![0, 0, 1]);
        // Non-wrapping routes stay on class 0.
        let p = t.dateline_path(NodeId(2), NodeId(5));
        assert!(p.edges().iter().all(|&e| t.edge_vc_class(e) == 0));
    }

    #[test]
    fn dateline_resets_class_per_dimension() {
        let t = Mesh::new_disciplined(4, 2, true, RoutingDiscipline::DatelineClasses);
        // (3,3) -> (1,1): wraps in x (3->0->1 forward, ties to plus) and in
        // y likewise; each dimension starts again on class 0.
        let p = t.dateline_path(t.node(&[3, 3]), t.node(&[1, 1]));
        let classes: Vec<u32> = p.edges().iter().map(|&e| t.edge_vc_class(e)).collect();
        assert_eq!(classes, vec![0, 1, 0, 1]);
    }

    #[test]
    fn route_dispatches_on_discipline() {
        let naive = Mesh::new(5, 2, true);
        let dl = Mesh::new_disciplined(5, 2, true, RoutingDiscipline::DatelineClasses);
        let (s, d) = (NodeId(3), NodeId(21));
        assert_eq!(naive.route(s, d), naive.dimension_order_path(s, d));
        assert_eq!(dl.route(s, d), dl.dateline_path(s, d));
    }

    #[test]
    fn dateline_all_pairs_dependency_graph_is_acyclic() {
        for (radix, dims) in [(8u32, 1u32), (4, 2), (3, 3)] {
            let dl = Mesh::new_disciplined(radix, dims, true, RoutingDiscipline::DatelineClasses);
            let n = dl.num_nodes();
            let mut paths = Vec::new();
            for s in 0..n {
                for d in 0..n {
                    if s != d {
                        paths.push(dl.dateline_path(NodeId(s), NodeId(d)));
                    }
                }
            }
            assert!(
                channel_dependency_graph(dl.graph(), &paths).is_acyclic(),
                "dateline routes on torus {radix}^{dims} must be acyclic"
            );
        }
    }

    #[test]
    fn naive_all_pairs_dependency_graph_is_cyclic() {
        // Needs radix ≥ 4 so some minimal route chains two hops through a
        // wrap ring (radix 3 routes are single hops per ring and the naive
        // arm is accidentally acyclic).
        for (radix, dims) in [(8u32, 1u32), (4, 2)] {
            let m = Mesh::new(radix, dims, true);
            let n = m.num_nodes();
            let mut paths = Vec::new();
            for s in 0..n {
                for d in 0..n {
                    if s != d {
                        paths.push(m.dimension_order_path(NodeId(s), NodeId(d)));
                    }
                }
            }
            assert!(
                !channel_dependency_graph(m.graph(), &paths).is_acyclic(),
                "naive routes on torus {radix}^{dims} must be cyclic"
            );
        }
    }

    #[test]
    fn linear_array_paths() {
        let a = linear_array(10);
        let p = a.dimension_order_path(NodeId(1), NodeId(8));
        assert_eq!(p.len(), 7);
        p.validate(a.graph()).unwrap();
        let back = a.dimension_order_path(NodeId(8), NodeId(1));
        assert_eq!(back.len(), 7);
    }

    #[test]
    fn zero_length_path() {
        let m = Mesh::new(3, 2, false);
        let p = m.dimension_order_path(NodeId(4), NodeId(4));
        assert!(p.is_empty());
        let t = Mesh::new_disciplined(3, 2, true, RoutingDiscipline::DatelineClasses);
        assert!(t.dateline_path(NodeId(4), NodeId(4)).is_empty());
    }

    #[test]
    fn mesh_is_cyclic_torus_is_cyclic() {
        // Bidirectional links always give 2-cycles in the channel graph, so
        // greedy wormhole *can* deadlock here — exercised in flitsim tests.
        assert!(!Mesh::new(3, 2, false).graph().is_acyclic());
    }
}
