//! Dally–Seitz deadlock avoidance on rings and tori via virtual-channel
//! *classes* — the original motivation for virtual channels (paper §1,
//! citation \[14\]).
//!
//! A wrap-around ring's channel-dependency graph is a cycle, so wormhole
//! routing can deadlock: worms chase each other's tails around the ring.
//! Dally & Seitz split each physical channel into two virtual channels,
//! class 0 and class 1, and route each message on class 0 until it crosses
//! the *dateline* (the wrap edge), then on class 1. The resulting virtual
//! channel graph is acyclic, so deadlock is impossible — at the price of
//! one extra VC per physical channel.
//!
//! We realize VC classes structurally: each physical edge of the torus
//! becomes **two parallel edges** in the routing graph (class 0 / class 1).
//! The flit simulator then needs no special support — its per-edge VCs `B`
//! apply *per class*, so a physical channel with 2 classes and `b` VCs per
//! class models a `2b`-VC Dally–Seitz router. The channel-dependency
//! acyclicity becomes plain graph acyclicity... of the *dependency* graph,
//! exposed for verification by [`channel_dependency_graph`], which works
//! over any path set on any routing graph.
//!
//! The full torus generalization — per-dimension datelines on k-ary
//! d-dimensional wrap meshes — lives in [`crate::mesh`] (see
//! [`crate::mesh::RoutingDiscipline`] and
//! [`crate::mesh::Mesh::dateline_path`]); this module keeps the
//! unidirectional single-ring form (the canonical rotation-traffic
//! deadlock demo) and the shared dependency-graph analysis.

use crate::graph::{EdgeId, Graph, GraphBuilder, NodeId};
use crate::path::Path;

/// The channel-dependency graph of a path set over any routing graph: one
/// node per routing edge, an arc `e → f` whenever some path uses `f`
/// immediately after `e`. Wormhole routing on the paths is deadlock-free
/// if this graph is acyclic (Dally–Seitz Theorem 1).
pub fn channel_dependency_graph(graph: &Graph, paths: &[Path]) -> Graph {
    let mut b = GraphBuilder::new(graph.num_edges());
    let mut seen = std::collections::HashSet::new();
    for p in paths {
        for w in p.edges().windows(2) {
            if seen.insert((w[0], w[1])) {
                b.add_edge(NodeId(w[0].0), NodeId(w[1].0));
            }
        }
    }
    b.build()
}

/// A `radix`-node unidirectional ring (later generalized per dimension)
/// with two VC classes per physical hop.
#[derive(Clone, Debug)]
pub struct DatelineRing {
    radix: u32,
    graph: Graph,
    /// `edge[node][class]` = edge id of the hop leaving `node` on `class`.
    edges: Vec<[EdgeId; 2]>,
}

impl DatelineRing {
    /// Builds the two-class ring. Node `i` links to `(i+1) mod radix` via a
    /// class-0 and a class-1 edge; the *dateline* is the wrap hop
    /// `radix−1 → 0`.
    pub fn new(radix: u32) -> Self {
        assert!(radix >= 2, "ring needs at least two nodes");
        let mut b = GraphBuilder::new(radix as usize);
        let mut edges = Vec::with_capacity(radix as usize);
        for i in 0..radix {
            let src = NodeId(i);
            let dst = NodeId((i + 1) % radix);
            let c0 = b.add_edge(src, dst);
            let c1 = b.add_edge(src, dst);
            edges.push([c0, c1]);
        }
        Self {
            radix,
            graph: b.build(),
            edges,
        }
    }

    /// The routing graph (2 parallel edges per physical hop).
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Ring size.
    #[inline]
    pub fn radix(&self) -> u32 {
        self.radix
    }

    /// The class-`c` edge leaving node `i`.
    #[inline]
    pub fn hop(&self, i: u32, class: usize) -> EdgeId {
        self.edges[i as usize][class]
    }

    /// Dally–Seitz path from `src` to `dst` (always the forward direction):
    /// class 0 until the dateline hop `radix−1 → 0` is taken, class 1 after.
    pub fn dally_seitz_path(&self, src: u32, dst: u32) -> Path {
        assert!(src < self.radix && dst < self.radix && src != dst);
        let mut edges = Vec::new();
        let mut cur = src;
        let mut class = 0usize;
        while cur != dst {
            edges.push(self.hop(cur, class));
            if cur == self.radix - 1 {
                class = 1; // crossed the dateline
            }
            cur = (cur + 1) % self.radix;
        }
        Path::new(edges)
    }

    /// The naive single-class path (all hops on class 0) — deadlock-prone;
    /// used as the control arm of the experiment.
    pub fn naive_path(&self, src: u32, dst: u32) -> Path {
        assert!(src < self.radix && dst < self.radix && src != dst);
        let mut edges = Vec::new();
        let mut cur = src;
        while cur != dst {
            edges.push(self.hop(cur, 0));
            cur = (cur + 1) % self.radix;
        }
        Path::new(edges)
    }

    /// The channel-dependency graph of a path set over this ring; see
    /// [`channel_dependency_graph`].
    pub fn channel_dependency_graph(&self, paths: &[Path]) -> Graph {
        channel_dependency_graph(&self.graph, paths)
    }
}

/// All-to-next "rotation" workload on the ring: node `i` sends to
/// `(i + stride) mod radix` — with `stride = radix − 1` every worm chases
/// the next one around the full ring, the canonical deadlock scenario.
pub fn rotation_paths(ring: &DatelineRing, stride: u32, dally_seitz: bool) -> Vec<Path> {
    let n = ring.radix();
    assert!(stride >= 1 && stride < n);
    (0..n)
        .map(|i| {
            let dst = (i + stride) % n;
            if dally_seitz {
                ring.dally_seitz_path(i, dst)
            } else {
                ring.naive_path(i, dst)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure() {
        let r = DatelineRing::new(6);
        assert_eq!(r.graph().num_nodes(), 6);
        assert_eq!(r.graph().num_edges(), 12); // 2 classes per hop
    }

    #[test]
    fn paths_valid_and_correct_length() {
        let r = DatelineRing::new(8);
        for src in 0..8u32 {
            for dst in 0..8u32 {
                if src == dst {
                    continue;
                }
                let p = r.dally_seitz_path(src, dst);
                p.validate(r.graph()).unwrap();
                assert_eq!(p.len() as u32, (dst + 8 - src) % 8);
                let q = r.naive_path(src, dst);
                q.validate(r.graph()).unwrap();
                assert_eq!(q.len(), p.len());
            }
        }
    }

    #[test]
    fn class_switches_exactly_at_dateline() {
        let r = DatelineRing::new(6);
        let p = r.dally_seitz_path(4, 2); // crosses 5 -> 0
        let classes: Vec<usize> = p.edges().iter().map(|&e| (e.0 % 2) as usize).collect();
        assert_eq!(classes, vec![0, 0, 1, 1]);
        // Non-wrapping path stays on class 0.
        let q = r.dally_seitz_path(1, 4);
        assert!(q.edges().iter().all(|&e| e.0 % 2 == 0));
    }

    #[test]
    fn naive_dependency_graph_is_cyclic_dally_seitz_is_acyclic() {
        let r = DatelineRing::new(6);
        let naive = rotation_paths(&r, 5, false);
        let ds = rotation_paths(&r, 5, true);
        assert!(!r.channel_dependency_graph(&naive).is_acyclic());
        assert!(r.channel_dependency_graph(&ds).is_acyclic());
    }

    #[test]
    fn rotation_covers_all_nodes() {
        let r = DatelineRing::new(5);
        let paths = rotation_paths(&r, 2, true);
        assert_eq!(paths.len(), 5);
        for (i, p) in paths.iter().enumerate() {
            assert_eq!(p.src(r.graph()), NodeId(i as u32));
            assert_eq!(p.dst(r.graph()), NodeId(((i as u32) + 2) % 5));
        }
    }
}
