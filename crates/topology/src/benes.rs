//! Beneš networks and Waksman's permutation-routing algorithm (paper
//! §1.3.3, [6, 7, 48]).
//!
//! A Beneš network is a butterfly followed by a **mirrored** butterfly:
//! the first `k` edge-levels fix the column bits most-significant-first,
//! the last `k` fix the destination bits least-significant-first. Beizer
//! and Beneš showed it realizes **any** permutation with edge-disjoint
//! paths; Waksman's looping algorithm finds the routing in linear time.
//! Used for wormhole routing this yields a conflict-free route set: any
//! permutation of `n` `L`-flit messages finishes in `2·log n + L − 1` flit
//! steps with *no* virtual channels — the offline, global-knowledge gold
//! standard the paper contrasts with its online algorithms ("Waksman's
//! algorithm, however, uses global knowledge of the permutation in order
//! to set the switches"). Experiment X6 runs it against §3.1.
//!
//! Routing is parameterized by the *mid column* `m_i` each message
//! occupies at the central level. Path disjointness reduces to: for every
//! recursion depth `r`, messages whose sources agree on their low
//! `k−r−1` bits (input switch mates) — and likewise messages whose
//! destinations agree on their low `k−r−1` bits — must receive opposite
//! values of mid-bit `r+1`. The constraint graph is a disjoint union of
//! even cycles, 2-colored by the classic looping pass.

use std::collections::HashMap;

use crate::graph::{EdgeId, Graph, GraphBuilder, NodeId};
use crate::path::{Path, PathSet};

/// A Beneš network over `n = 2^k` terminals (`2k` edge levels).
#[derive(Clone, Debug)]
pub struct BenesNetwork {
    k: u32,
    graph: Graph,
}

impl BenesNetwork {
    /// Builds the Beneš network for `2^k` terminals (`k ≥ 1`).
    pub fn new(k: u32) -> Self {
        assert!((1..=16).contains(&k), "k out of range");
        let n = 1u32 << k;
        let levels = 2 * k;
        let mut b = GraphBuilder::new(((levels + 1) * n) as usize);
        for j in 0..levels {
            // First pass: MSB-first; mirrored second pass: LSB-first.
            let mask = if j < k {
                1u32 << (k - 1 - j)
            } else {
                1u32 << (j - k)
            };
            for w in 0..n {
                let src = NodeId(j * n + w);
                b.add_edge(src, NodeId((j + 1) * n + w));
                b.add_edge(src, NodeId((j + 1) * n + (w ^ mask)));
            }
        }
        Self {
            k,
            graph: b.build(),
        }
    }

    /// Underlying graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// `log2` of the terminal count.
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of terminals.
    #[inline]
    pub fn n(&self) -> u32 {
        1 << self.k
    }

    /// Input node of terminal `i` (level 0).
    #[inline]
    pub fn input(&self, i: u32) -> NodeId {
        NodeId(i)
    }

    /// Output node of terminal `i` (level `2k`).
    #[inline]
    pub fn output(&self, i: u32) -> NodeId {
        NodeId(2 * self.k * self.n() + i)
    }

    /// The edge leaving `(col, level)`, straight or cross.
    #[inline]
    fn edge(&self, col: u32, level: u32, cross: bool) -> EdgeId {
        EdgeId(2 * (level * self.n() + col) + cross as u32)
    }

    /// The full path for one message: `src → mid` over the first pass,
    /// `mid → dst` over the mirrored second pass.
    pub fn path(&self, src: u32, mid: u32, dst: u32) -> Path {
        let k = self.k;
        let mut edges = Vec::with_capacity(2 * k as usize);
        let mut col = src;
        for j in 0..k {
            let mask = 1u32 << (k - 1 - j);
            let cross = (col ^ mid) & mask != 0;
            edges.push(self.edge(col, j, cross));
            col ^= (col ^ mid) & mask;
        }
        debug_assert_eq!(col, mid);
        for j in k..2 * k {
            let mask = 1u32 << (j - k);
            let cross = (col ^ dst) & mask != 0;
            edges.push(self.edge(col, j, cross));
            col ^= (col ^ dst) & mask;
        }
        debug_assert_eq!(col, dst);
        Path::new(edges)
    }

    /// Routes `perm` (message `i`: input `i` → output `perm[i]`) into
    /// pairwise edge-disjoint paths via Waksman's looping algorithm.
    ///
    /// Panics if `perm` is not a permutation of `0..n`.
    pub fn route(&self, perm: &[u32]) -> PathSet {
        let n = self.n();
        assert_eq!(perm.len() as u32, n, "permutation size mismatch");
        let mut seen = vec![false; n as usize];
        for &p in perm {
            assert!(p < n && !seen[p as usize], "not a permutation");
            seen[p as usize] = true;
        }
        let mids = waksman_mids(self.k, perm);
        PathSet::new(
            (0..n)
                .map(|i| self.path(i, mids[i as usize], perm[i as usize]))
                .collect(),
        )
    }
}

/// Waksman's looping decomposition for the mirrored Beneš layout: decides
/// every message's central column. At depth `r` (deciding mid-bit `r+1`,
/// MSB numbering), messages are grouped by their decided mid prefix;
/// within a group, input mates (equal low `k−r−1` source bits) and output
/// mates (equal low destination bits) must take opposite new bits.
fn waksman_mids(k: u32, perm: &[u32]) -> Vec<u32> {
    let n = 1u32 << k;
    let mut mids = vec![0u32; n as usize];
    let mut stack: Vec<(Vec<u32>, u32)> = vec![((0..n).collect(), 0)];
    while let Some((group, depth)) = stack.pop() {
        if depth == k {
            continue;
        }
        let new_bit = 1u32 << (k - 1 - depth);
        let low_mask = new_bit - 1; // low k−depth−1 bits
                                    // Mates: two group members with equal masked source (resp. dest).
        let mut in_mate: HashMap<u32, [i32; 2]> = HashMap::new();
        let mut out_mate: HashMap<u32, [i32; 2]> = HashMap::new();
        for (gi, &m) in group.iter().enumerate() {
            let e = in_mate.entry(m & low_mask).or_insert([-1, -1]);
            e[usize::from(e[0] >= 0)] = gi as i32;
            let e = out_mate
                .entry(perm[m as usize] & low_mask)
                .or_insert([-1, -1]);
            e[usize::from(e[0] >= 0)] = gi as i32;
        }
        // 2-color the alternating input/output mate cycles.
        let mut color: Vec<i8> = vec![-1; group.len()];
        for start in 0..group.len() {
            if color[start] >= 0 {
                continue;
            }
            let mut cur = start;
            let c: i8 = 0;
            loop {
                debug_assert_eq!(color[cur], -1);
                color[cur] = c;
                // Input mate of cur takes the opposite color...
                let pair = in_mate[&(group[cur] & low_mask)];
                let mate = if pair[0] as usize == cur {
                    pair[1]
                } else {
                    pair[0]
                };
                if mate < 0 || color[mate as usize] >= 0 {
                    break;
                }
                let mate = mate as usize;
                color[mate] = 1 - c;
                // ...then follow the mate's output mate with color c again.
                let pair = out_mate[&(perm[group[mate] as usize] & low_mask)];
                let next = if pair[0] as usize == mate {
                    pair[1]
                } else {
                    pair[0]
                };
                if next < 0 || color[next as usize] >= 0 {
                    break;
                }
                cur = next as usize;
                // c stays: next is the output mate of `mate`, so it must
                // differ from `mate`'s color = 1−c, i.e. take c.
            }
        }
        let mut upper = Vec::with_capacity(group.len() / 2);
        let mut lower = Vec::with_capacity(group.len() / 2);
        for (gi, &m) in group.iter().enumerate() {
            if color[gi] == 0 {
                upper.push(m);
            } else {
                mids[m as usize] |= new_bit;
                lower.push(m);
            }
        }
        stack.push((upper, depth + 1));
        stack.push((lower, depth + 1));
    }
    mids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_disjoint(net: &BenesNetwork, perm: &[u32]) {
        let ps = net.route(perm);
        ps.validate(net.graph()).unwrap();
        assert_eq!(
            ps.congestion(net.graph()),
            1,
            "Waksman paths must be edge-disjoint for perm {perm:?}"
        );
        for (i, p) in ps.paths().iter().enumerate() {
            assert_eq!(p.src(net.graph()), net.input(i as u32));
            assert_eq!(p.dst(net.graph()), net.output(perm[i]));
            assert_eq!(p.len() as u32, 2 * net.k());
        }
    }

    #[test]
    fn structure() {
        let net = BenesNetwork::new(3);
        assert_eq!(net.graph().num_nodes(), 7 * 8);
        assert_eq!(net.graph().num_edges(), 6 * 16);
        assert!(net.graph().is_acyclic());
    }

    #[test]
    fn identity_and_reversal_disjoint() {
        let net = BenesNetwork::new(3);
        check_disjoint(&net, &(0..8).collect::<Vec<_>>());
        check_disjoint(&net, &(0..8).rev().collect::<Vec<_>>());
    }

    #[test]
    fn n2_and_n4_exhaustive() {
        let net2 = BenesNetwork::new(1);
        check_disjoint(&net2, &[0, 1]);
        check_disjoint(&net2, &[1, 0]);
        let net4 = BenesNetwork::new(2);
        let mut perm = vec![0u32, 1, 2, 3];
        permutohedron_heaps(&mut perm, &mut |p: &[u32]| check_disjoint(&net4, p));
    }

    #[test]
    fn all_permutations_of_8_are_disjoint() {
        // Exhaustive rearrangeability check for n = 8: all 40320
        // permutations route edge-disjointly.
        let net = BenesNetwork::new(3);
        let mut perm: Vec<u32> = (0..8).collect();
        permutohedron_heaps(&mut perm, &mut |p: &[u32]| {
            let ps = net.route(p);
            assert_eq!(ps.congestion(net.graph()), 1, "perm {p:?}");
        });
    }

    /// Minimal Heap's-algorithm enumeration (no external crate).
    fn permutohedron_heaps(perm: &mut Vec<u32>, f: &mut impl FnMut(&[u32])) {
        fn rec(perm: &mut Vec<u32>, k: usize, f: &mut impl FnMut(&[u32])) {
            if k <= 1 {
                f(perm);
                return;
            }
            for i in 0..k {
                rec(perm, k - 1, f);
                if k.is_multiple_of(2) {
                    perm.swap(i, k - 1);
                } else {
                    perm.swap(0, k - 1);
                }
            }
        }
        let k = perm.len();
        rec(perm, k, f);
    }

    #[test]
    fn random_permutations_larger_sizes() {
        use rand::prelude::*;
        use rand::rngs::StdRng;
        let mut rng = StdRng::seed_from_u64(5);
        for k in [4u32, 5, 6, 7, 8] {
            let net = BenesNetwork::new(k);
            let n = 1u32 << k;
            for _ in 0..8 {
                let mut perm: Vec<u32> = (0..n).collect();
                perm.shuffle(&mut rng);
                check_disjoint(&net, &perm);
            }
        }
    }

    #[test]
    fn bit_reverse_permutation_disjoint() {
        let k = 6u32;
        let net = BenesNetwork::new(k);
        let perm: Vec<u32> = (0..1u32 << k)
            .map(|i| i.reverse_bits() >> (32 - k))
            .collect();
        check_disjoint(&net, &perm);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn rejects_non_permutation() {
        let net = BenesNetwork::new(2);
        net.route(&[0, 0, 1, 2]);
    }
}
