//! Message paths and the congestion / dilation / multiplex analysis that
//! parameterizes every bound in the paper (§1.1).

use crate::graph::{EdgeId, Graph, NodeId};

/// A routing path: a contiguous sequence of directed edges.
///
/// The paper's bounds assume *edge-simple* paths (no edge repeated);
/// [`Path::validate`] checks contiguity and edge-simplicity against a graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Path {
    edges: Vec<EdgeId>,
}

/// Errors produced by [`Path::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PathError {
    /// Path must contain at least one edge.
    Empty,
    /// `edges[i].dst != edges[i+1].src` at the given position.
    NotContiguous(usize),
    /// The same edge appears twice (positions given).
    RepeatedEdge(usize, usize),
}

impl Path {
    /// Wraps an edge sequence as a path. Use [`Path::validate`] to check it
    /// against a graph.
    pub fn new(edges: Vec<EdgeId>) -> Self {
        Self { edges }
    }

    /// The edges of the path in order.
    #[inline]
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Number of edges (the path's contribution to dilation).
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// `true` if the path has no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Source node (requires a graph to resolve endpoints).
    pub fn src(&self, g: &Graph) -> NodeId {
        g.src(self.edges[0])
    }

    /// Destination node.
    pub fn dst(&self, g: &Graph) -> NodeId {
        g.dst(*self.edges.last().expect("empty path has no dst"))
    }

    /// Checks that the path is nonempty, contiguous in `g`, and edge-simple.
    pub fn validate(&self, g: &Graph) -> Result<(), PathError> {
        if self.edges.is_empty() {
            return Err(PathError::Empty);
        }
        for i in 0..self.edges.len() - 1 {
            if g.dst(self.edges[i]) != g.src(self.edges[i + 1]) {
                return Err(PathError::NotContiguous(i));
            }
        }
        // Edge-simplicity via sort of a scratch copy (paths are short; avoid
        // hashing).
        let mut seen: Vec<(EdgeId, usize)> = self
            .edges
            .iter()
            .copied()
            .enumerate()
            .map(|(i, e)| (e, i))
            .collect();
        seen.sort_unstable();
        for w in seen.windows(2) {
            if w[0].0 == w[1].0 {
                let (a, b) = (w[0].1.min(w[1].1), w[0].1.max(w[1].1));
                return Err(PathError::RepeatedEdge(a, b));
            }
        }
        Ok(())
    }
}

/// A set of message paths, with cached analysis.
///
/// This is the object the scheduling results are stated over: its
/// **congestion** `C` is the maximum number of paths crossing any edge and
/// its **dilation** `D` is the length of the longest path.
#[derive(Clone, Debug)]
pub struct PathSet {
    paths: Vec<Path>,
}

impl PathSet {
    /// Builds a path set.
    pub fn new(paths: Vec<Path>) -> Self {
        Self { paths }
    }

    /// The paths.
    #[inline]
    pub fn paths(&self) -> &[Path] {
        &self.paths
    }

    /// Number of messages.
    #[inline]
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// `true` if there are no messages.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Path of message `i`.
    #[inline]
    pub fn path(&self, i: usize) -> &Path {
        &self.paths[i]
    }

    /// Validates every path against `g`; returns the index of the first
    /// offending message on error.
    pub fn validate(&self, g: &Graph) -> Result<(), (usize, PathError)> {
        for (i, p) in self.paths.iter().enumerate() {
            p.validate(g).map_err(|e| (i, e))?;
        }
        Ok(())
    }

    /// Number of paths crossing each edge, indexed by `EdgeId`.
    pub fn edge_loads(&self, g: &Graph) -> Vec<u32> {
        let mut loads = vec![0u32; g.num_edges()];
        for p in &self.paths {
            for &e in p.edges() {
                loads[e.idx()] += 1;
            }
        }
        loads
    }

    /// Congestion `C`: the maximum number of paths using any single edge.
    pub fn congestion(&self, g: &Graph) -> u32 {
        self.edge_loads(g).into_iter().max().unwrap_or(0)
    }

    /// Dilation `D`: the maximum path length.
    pub fn dilation(&self) -> u32 {
        self.paths.iter().map(|p| p.len() as u32).max().unwrap_or(0)
    }

    /// Sum of path lengths (the `P` of constructive-LLL running times).
    pub fn total_path_length(&self) -> u64 {
        self.paths.iter().map(|p| p.len() as u64).sum()
    }

    /// For each message, the list of other messages sharing at least one
    /// edge with it — the *conflict graph* used by the footnote-5 naive
    /// coloring baseline. Returned as an adjacency list.
    pub fn conflict_graph(&self, g: &Graph) -> Vec<Vec<u32>> {
        // Invert edge -> messages, then merge per message.
        let mut per_edge: Vec<Vec<u32>> = vec![Vec::new(); g.num_edges()];
        for (i, p) in self.paths.iter().enumerate() {
            for &e in p.edges() {
                per_edge[e.idx()].push(i as u32);
            }
        }
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); self.paths.len()];
        for msgs in &per_edge {
            for (a_i, &a) in msgs.iter().enumerate() {
                for &b in &msgs[a_i + 1..] {
                    adj[a as usize].push(b);
                    adj[b as usize].push(a);
                }
            }
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn line(n: usize) -> (Graph, Vec<EdgeId>) {
        let mut b = GraphBuilder::new(n);
        let edges: Vec<EdgeId> = (0..n - 1)
            .map(|i| b.add_edge(NodeId(i as u32), NodeId(i as u32 + 1)))
            .collect();
        (b.build(), edges)
    }

    #[test]
    fn validate_ok_and_errors() {
        let (g, e) = line(4);
        assert!(Path::new(vec![e[0], e[1], e[2]]).validate(&g).is_ok());
        assert_eq!(Path::new(vec![]).validate(&g), Err(PathError::Empty));
        assert_eq!(
            Path::new(vec![e[0], e[2]]).validate(&g),
            Err(PathError::NotContiguous(0))
        );
    }

    #[test]
    fn repeated_edge_detected() {
        // cycle a->b->a not possible (needs two nodes, two edges); build one.
        let mut b = GraphBuilder::new(2);
        let e0 = b.add_edge(NodeId(0), NodeId(1));
        let e1 = b.add_edge(NodeId(1), NodeId(0));
        let g = b.build();
        let p = Path::new(vec![e0, e1, e0]);
        assert_eq!(p.validate(&g), Err(PathError::RepeatedEdge(0, 2)));
    }

    #[test]
    fn endpoints() {
        let (g, e) = line(4);
        let p = Path::new(vec![e[1], e[2]]);
        assert_eq!(p.src(&g), NodeId(1));
        assert_eq!(p.dst(&g), NodeId(3));
    }

    #[test]
    fn congestion_dilation() {
        let (g, e) = line(5);
        let ps = PathSet::new(vec![
            Path::new(vec![e[0], e[1], e[2]]),
            Path::new(vec![e[1], e[2], e[3]]),
            Path::new(vec![e[2]]),
        ]);
        assert_eq!(ps.dilation(), 3);
        assert_eq!(ps.congestion(&g), 3); // edge 2 carries all three
        let loads = ps.edge_loads(&g);
        assert_eq!(loads, vec![1, 2, 3, 1]);
        assert_eq!(ps.total_path_length(), 7);
    }

    #[test]
    fn empty_pathset() {
        let (g, _) = line(3);
        let ps = PathSet::new(vec![]);
        assert_eq!(ps.congestion(&g), 0);
        assert_eq!(ps.dilation(), 0);
        assert!(ps.is_empty());
    }

    #[test]
    fn conflict_graph_pairs() {
        let (g, e) = line(5);
        let ps = PathSet::new(vec![
            Path::new(vec![e[0], e[1]]),
            Path::new(vec![e[1], e[2]]),
            Path::new(vec![e[3]]),
        ]);
        let adj = ps.conflict_graph(&g);
        assert_eq!(adj[0], vec![1]);
        assert_eq!(adj[1], vec![0]);
        assert!(adj[2].is_empty());
    }
}
