//! Network partitions for the parallel simulation engine.
//!
//! A [`RegionPlan`] assigns every node of a [`Graph`] to one of `k`
//! *regions*. A routing edge belongs to the region of its **source**
//! node, so the VC holders of an edge — state that lives at the sending
//! router — are owned by exactly one region. The parallel engine
//! (`flitsim`'s `Engine::Parallel`) advances each region on its own
//! worker and synchronizes on conservative time windows bounded by the
//! plan's lookahead: the minimum number of flit steps before an event
//! in one region can influence another. A header crosses one edge per
//! flit step in this model, so the global bound
//! ([`RegionPlan::lookahead`]) is 1 whenever any edge crosses a cut —
//! but the *plan-aware* bound is much better: a worm whose header sits
//! `d` hops away from the nearest cross edge cannot touch the cut for
//! `d` steps. [`RegionPlan::distance_to_cut`] computes that per-node
//! distance matrix (and [`RegionPlan::region_lookahead`] its per-region
//! minimum), which is what lets the parallel engine grant multi-step
//! windows and fast-forward inside a region instead of running lockstep
//! supersteps.
//!
//! Plans are built either directly ([`RegionPlan::contiguous`],
//! [`RegionPlan::contiguous_aligned`], [`RegionPlan::from_node_regions`])
//! or substrate-aware via `wormhole_workloads::Substrate::region_plan`,
//! which aligns the cut to coordinate planes (per-dimension slabs on
//! meshes/tori, per-stage cuts on butterflies).

use crate::graph::Graph;

/// A partition of a graph's nodes into regions, the unit of parallelism
/// for the partitioned discrete-event engine. Edges follow their source
/// node; see the module docs for the ownership and lookahead story.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegionPlan {
    num_regions: u32,
    node_region: Vec<u32>,
    cross_edges: u64,
}

impl RegionPlan {
    /// Partitions the nodes into `k` contiguous, balanced index ranges.
    ///
    /// On graphs whose node numbering follows the topology's coordinates
    /// (all builders in this crate), contiguous ranges are geometric
    /// cuts: little-endian mesh ids make them slabs along the last
    /// dimension, level-major butterfly ids make them stage groups.
    ///
    /// `k` is clamped to the node count; panics on `k == 0` or an empty
    /// graph.
    pub fn contiguous(graph: &Graph, k: u32) -> Self {
        Self::contiguous_aligned(graph, k, 1)
    }

    /// Like [`RegionPlan::contiguous`], but region boundaries fall only
    /// on multiples of `align` nodes — e.g. `align = nodes/radix` turns
    /// the ranges into whole coordinate planes of a mesh. Panics on
    /// `align == 0` or when `align` does not divide the node count.
    pub fn contiguous_aligned(graph: &Graph, k: u32, align: u32) -> Self {
        let n = graph.num_nodes() as u32;
        assert!(k >= 1, "need at least one region");
        assert!(n >= 1, "cannot partition an empty graph");
        assert!(align >= 1, "alignment must be >= 1");
        assert!(
            n.is_multiple_of(align),
            "alignment {align} does not divide the node count {n}"
        );
        let blocks = n / align;
        let k = k.min(blocks);
        // Spread `blocks` blocks over `k` regions as evenly as possible
        // (first `blocks % k` regions get one extra block).
        let base = blocks / k;
        let extra = blocks % k;
        let mut node_region = Vec::with_capacity(n as usize);
        for r in 0..k {
            let b = base + u32::from(r < extra);
            for _ in 0..b * align {
                node_region.push(r);
            }
        }
        debug_assert_eq!(node_region.len(), n as usize);
        Self::from_node_regions(graph, node_region)
    }

    /// Builds a plan from an explicit node→region assignment. Panics
    /// unless the assignment covers every node, uses a dense region id
    /// range `0..k`, and leaves no region empty.
    pub fn from_node_regions(graph: &Graph, node_region: Vec<u32>) -> Self {
        assert_eq!(
            node_region.len(),
            graph.num_nodes(),
            "assignment length must equal the node count"
        );
        assert!(!node_region.is_empty(), "cannot partition an empty graph");
        let k = node_region.iter().copied().max().unwrap() + 1;
        let mut seen = vec![false; k as usize];
        for &r in &node_region {
            seen[r as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "region ids must be dense: every region in 0..{k} must own a node"
        );
        let cross_edges = graph
            .edges()
            .filter(|&e| node_region[graph.src(e).idx()] != node_region[graph.dst(e).idx()])
            .count() as u64;
        Self {
            num_regions: k,
            node_region,
            cross_edges,
        }
    }

    /// Number of regions (≥ 1).
    #[inline]
    pub fn num_regions(&self) -> u32 {
        self.num_regions
    }

    /// Region of each node, indexed by node id.
    #[inline]
    pub fn node_regions(&self) -> &[u32] {
        &self.node_region
    }

    /// Number of edges whose endpoints lie in different regions.
    #[inline]
    pub fn cross_edges(&self) -> u64 {
        self.cross_edges
    }

    /// Conservative lookahead in flit steps: the minimum time before an
    /// event in one region can be observed by another. Every edge
    /// crossing costs exactly one flit step in this model, so the bound
    /// is 1 whenever any edge crosses the cut; with no cross edges the
    /// regions are causally independent and the bound is `u64::MAX`.
    #[inline]
    pub fn lookahead(&self) -> u64 {
        if self.cross_edges == 0 {
            u64::MAX
        } else {
            1
        }
    }

    /// Whether this plan was built for a graph of the same shape.
    #[inline]
    pub fn matches(&self, graph: &Graph) -> bool {
        self.node_region.len() == graph.num_nodes()
    }

    /// Per-node distance-to-cut: `d[v]` is the minimum number of flit
    /// steps before a worm whose header sits at node `v` can traverse an
    /// edge that leaves `v`'s region (`u64::MAX` if no cross edge is
    /// reachable from `v` — the causally-independent case).
    ///
    /// This is a *lower bound on influence*, the quantity a conservative
    /// parallel engine needs: until it crosses a cut edge a header only
    /// ever contends for out-edges of nodes in its own region (edges
    /// follow their source node), so for any window shorter than `d[v]`
    /// a worm headed at `v` touches exclusively region-owned state. The
    /// bound is exact, not just safe: a header adjacent to a cut edge
    /// (`d = 1`) can cross it on the very next step.
    ///
    /// Computed as one multi-source BFS over the *reversed* intra-region
    /// edges, seeded with `d = 1` at the source of every cross edge —
    /// `O(V + E)` for all regions at once.
    pub fn distance_to_cut(&self, graph: &Graph) -> Vec<u64> {
        assert!(self.matches(graph), "plan does not match the graph");
        let n = graph.num_nodes();
        // Reverse adjacency (CSR) restricted to intra-region edges: the
        // only edges a relaxation may walk backwards without crossing a
        // cut itself.
        let mut starts = vec![0u32; n + 1];
        for e in graph.edges() {
            let (s, d) = (graph.src(e).idx(), graph.dst(e).idx());
            if self.node_region[s] == self.node_region[d] {
                starts[d + 1] += 1;
            }
        }
        for v in 0..n {
            starts[v + 1] += starts[v];
        }
        let mut preds = vec![0u32; starts[n] as usize];
        let mut fill = starts.clone();
        for e in graph.edges() {
            let (s, d) = (graph.src(e).idx(), graph.dst(e).idx());
            if self.node_region[s] == self.node_region[d] {
                preds[fill[d] as usize] = s as u32;
                fill[d] += 1;
            }
        }
        let mut dist = vec![u64::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        for e in graph.edges() {
            let (s, d) = (graph.src(e).idx(), graph.dst(e).idx());
            if self.node_region[s] != self.node_region[d] && dist[s] == u64::MAX {
                dist[s] = 1;
                queue.push_back(s as u32);
            }
        }
        while let Some(v) = queue.pop_front() {
            let dv = dist[v as usize];
            for i in starts[v as usize]..starts[v as usize + 1] {
                let u = preds[i as usize] as usize;
                if dist[u] == u64::MAX {
                    dist[u] = dv + 1;
                    queue.push_back(u as u32);
                }
            }
        }
        dist
    }

    /// Per-region lookahead: the minimum [`RegionPlan::distance_to_cut`]
    /// over each region's nodes — how many steps the region can run
    /// before *any* locally-headed worm could first touch a cross edge.
    /// `u64::MAX` marks a region from which no cut is reachable (it can
    /// run to completion without synchronizing).
    pub fn region_lookahead(&self, graph: &Graph) -> Vec<u64> {
        let dist = self.distance_to_cut(graph);
        let mut la = vec![u64::MAX; self.num_regions as usize];
        for (v, &d) in dist.iter().enumerate() {
            let r = self.node_region[v] as usize;
            la[r] = la[r].min(d);
        }
        la
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{GraphBuilder, NodeId};

    fn chain(n: u32) -> Graph {
        let mut b = GraphBuilder::new(n as usize);
        for v in 0..n - 1 {
            b.add_edge(NodeId(v), NodeId(v + 1));
        }
        b.build()
    }

    #[test]
    fn contiguous_balanced() {
        let g = chain(10);
        let p = RegionPlan::contiguous(&g, 3);
        assert_eq!(p.num_regions(), 3);
        // 10 = 4 + 3 + 3
        assert_eq!(p.node_regions(), &[0, 0, 0, 0, 1, 1, 1, 2, 2, 2]);
        // Exactly the two edges 3->4 and 6->7 cross the cut.
        assert_eq!(p.cross_edges(), 2);
        assert_eq!(p.lookahead(), 1);
        assert!(p.matches(&g));
    }

    #[test]
    fn clamps_region_count_to_nodes() {
        let g = chain(3);
        let p = RegionPlan::contiguous(&g, 16);
        assert_eq!(p.num_regions(), 3);
        assert_eq!(p.node_regions(), &[0, 1, 2]);
    }

    #[test]
    fn aligned_boundaries() {
        let g = chain(12);
        let p = RegionPlan::contiguous_aligned(&g, 3, 4);
        assert_eq!(p.num_regions(), 3);
        assert_eq!(p.node_regions()[3], 0);
        assert_eq!(p.node_regions()[4], 1);
        assert_eq!(p.node_regions()[8], 2);
    }

    #[test]
    fn independent_regions_have_infinite_lookahead() {
        // Two disjoint 2-chains: nodes 0->1 and 2->3.
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(2), NodeId(3));
        let g = b.build();
        let p = RegionPlan::from_node_regions(&g, vec![0, 0, 1, 1]);
        assert_eq!(p.cross_edges(), 0);
        assert_eq!(p.lookahead(), u64::MAX);
    }

    #[test]
    fn distance_to_cut_on_a_chain() {
        let g = chain(10);
        let p = RegionPlan::contiguous(&g, 3);
        // Regions [0..4), [4..7), [7..10); cut edges 3->4 and 6->7.
        let d = p.distance_to_cut(&g);
        assert_eq!(d[..4], [4, 3, 2, 1]);
        assert_eq!(d[4..7], [3, 2, 1]);
        // The last region has no outgoing cut edge: its nodes can never
        // influence another region.
        assert_eq!(d[7..], [u64::MAX, u64::MAX, u64::MAX]);
        assert_eq!(p.region_lookahead(&g), vec![1, 1, u64::MAX]);
    }

    #[test]
    fn distance_to_cut_on_a_ring() {
        // Bidirectional 8-ring, two halves: every node can reach a cut
        // in both directions; interior nodes are 2 steps from one.
        let n = 8u32;
        let mut b = GraphBuilder::new(n as usize);
        for v in 0..n {
            b.add_edge(NodeId(v), NodeId((v + 1) % n));
            b.add_edge(NodeId((v + 1) % n), NodeId(v));
        }
        let g = b.build();
        let p = RegionPlan::from_node_regions(&g, vec![0, 0, 0, 0, 1, 1, 1, 1]);
        let d = p.distance_to_cut(&g);
        assert_eq!(d, vec![1, 2, 2, 1, 1, 2, 2, 1]);
        assert_eq!(p.region_lookahead(&g), vec![1, 1]);
    }

    #[test]
    fn distance_to_cut_independent_regions() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(2), NodeId(3));
        let g = b.build();
        let p = RegionPlan::from_node_regions(&g, vec![0, 0, 1, 1]);
        assert_eq!(p.distance_to_cut(&g), vec![u64::MAX; 4]);
        assert_eq!(p.region_lookahead(&g), vec![u64::MAX, u64::MAX]);
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn rejects_sparse_region_ids() {
        let g = chain(4);
        RegionPlan::from_node_regions(&g, vec![0, 0, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "does not divide")]
    fn rejects_misaligned() {
        let g = chain(10);
        RegionPlan::contiguous_aligned(&g, 2, 4);
    }
}
