//! Network partitions for the parallel simulation engine.
//!
//! A [`RegionPlan`] assigns every node of a [`Graph`] to one of `k`
//! *regions*. A routing edge belongs to the region of its **source**
//! node, so the VC holders of an edge — state that lives at the sending
//! router — are owned by exactly one region. The parallel engine
//! (`flitsim`'s `Engine::Parallel`) advances each region on its own
//! worker and synchronizes on conservative time windows bounded by the
//! plan's [`RegionPlan::lookahead`]: the minimum number of flit steps
//! before an event in one region can influence another. In this model a
//! header crosses one edge per flit step, so any plan with at least one
//! cross-region edge has a lookahead of exactly 1 — the engine's
//! synchronization window collapses to lockstep supersteps, which is
//! what makes bit-identity with the sequential engines provable rather
//! than approximate.
//!
//! Plans are built either directly ([`RegionPlan::contiguous`],
//! [`RegionPlan::contiguous_aligned`], [`RegionPlan::from_node_regions`])
//! or substrate-aware via `wormhole_workloads::Substrate::region_plan`,
//! which aligns the cut to coordinate planes (per-dimension slabs on
//! meshes/tori, per-stage cuts on butterflies).

use crate::graph::Graph;

/// A partition of a graph's nodes into regions, the unit of parallelism
/// for the partitioned discrete-event engine. Edges follow their source
/// node; see the module docs for the ownership and lookahead story.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegionPlan {
    num_regions: u32,
    node_region: Vec<u32>,
    cross_edges: u64,
}

impl RegionPlan {
    /// Partitions the nodes into `k` contiguous, balanced index ranges.
    ///
    /// On graphs whose node numbering follows the topology's coordinates
    /// (all builders in this crate), contiguous ranges are geometric
    /// cuts: little-endian mesh ids make them slabs along the last
    /// dimension, level-major butterfly ids make them stage groups.
    ///
    /// `k` is clamped to the node count; panics on `k == 0` or an empty
    /// graph.
    pub fn contiguous(graph: &Graph, k: u32) -> Self {
        Self::contiguous_aligned(graph, k, 1)
    }

    /// Like [`RegionPlan::contiguous`], but region boundaries fall only
    /// on multiples of `align` nodes — e.g. `align = nodes/radix` turns
    /// the ranges into whole coordinate planes of a mesh. Panics on
    /// `align == 0` or when `align` does not divide the node count.
    pub fn contiguous_aligned(graph: &Graph, k: u32, align: u32) -> Self {
        let n = graph.num_nodes() as u32;
        assert!(k >= 1, "need at least one region");
        assert!(n >= 1, "cannot partition an empty graph");
        assert!(align >= 1, "alignment must be >= 1");
        assert!(
            n.is_multiple_of(align),
            "alignment {align} does not divide the node count {n}"
        );
        let blocks = n / align;
        let k = k.min(blocks);
        // Spread `blocks` blocks over `k` regions as evenly as possible
        // (first `blocks % k` regions get one extra block).
        let base = blocks / k;
        let extra = blocks % k;
        let mut node_region = Vec::with_capacity(n as usize);
        for r in 0..k {
            let b = base + u32::from(r < extra);
            for _ in 0..b * align {
                node_region.push(r);
            }
        }
        debug_assert_eq!(node_region.len(), n as usize);
        Self::from_node_regions(graph, node_region)
    }

    /// Builds a plan from an explicit node→region assignment. Panics
    /// unless the assignment covers every node, uses a dense region id
    /// range `0..k`, and leaves no region empty.
    pub fn from_node_regions(graph: &Graph, node_region: Vec<u32>) -> Self {
        assert_eq!(
            node_region.len(),
            graph.num_nodes(),
            "assignment length must equal the node count"
        );
        assert!(!node_region.is_empty(), "cannot partition an empty graph");
        let k = node_region.iter().copied().max().unwrap() + 1;
        let mut seen = vec![false; k as usize];
        for &r in &node_region {
            seen[r as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "region ids must be dense: every region in 0..{k} must own a node"
        );
        let cross_edges = graph
            .edges()
            .filter(|&e| node_region[graph.src(e).idx()] != node_region[graph.dst(e).idx()])
            .count() as u64;
        Self {
            num_regions: k,
            node_region,
            cross_edges,
        }
    }

    /// Number of regions (≥ 1).
    #[inline]
    pub fn num_regions(&self) -> u32 {
        self.num_regions
    }

    /// Region of each node, indexed by node id.
    #[inline]
    pub fn node_regions(&self) -> &[u32] {
        &self.node_region
    }

    /// Number of edges whose endpoints lie in different regions.
    #[inline]
    pub fn cross_edges(&self) -> u64 {
        self.cross_edges
    }

    /// Conservative lookahead in flit steps: the minimum time before an
    /// event in one region can be observed by another. Every edge
    /// crossing costs exactly one flit step in this model, so the bound
    /// is 1 whenever any edge crosses the cut; with no cross edges the
    /// regions are causally independent and the bound is `u64::MAX`.
    #[inline]
    pub fn lookahead(&self) -> u64 {
        if self.cross_edges == 0 {
            u64::MAX
        } else {
            1
        }
    }

    /// Whether this plan was built for a graph of the same shape.
    #[inline]
    pub fn matches(&self, graph: &Graph) -> bool {
        self.node_region.len() == graph.num_nodes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{GraphBuilder, NodeId};

    fn chain(n: u32) -> Graph {
        let mut b = GraphBuilder::new(n as usize);
        for v in 0..n - 1 {
            b.add_edge(NodeId(v), NodeId(v + 1));
        }
        b.build()
    }

    #[test]
    fn contiguous_balanced() {
        let g = chain(10);
        let p = RegionPlan::contiguous(&g, 3);
        assert_eq!(p.num_regions(), 3);
        // 10 = 4 + 3 + 3
        assert_eq!(p.node_regions(), &[0, 0, 0, 0, 1, 1, 1, 2, 2, 2]);
        // Exactly the two edges 3->4 and 6->7 cross the cut.
        assert_eq!(p.cross_edges(), 2);
        assert_eq!(p.lookahead(), 1);
        assert!(p.matches(&g));
    }

    #[test]
    fn clamps_region_count_to_nodes() {
        let g = chain(3);
        let p = RegionPlan::contiguous(&g, 16);
        assert_eq!(p.num_regions(), 3);
        assert_eq!(p.node_regions(), &[0, 1, 2]);
    }

    #[test]
    fn aligned_boundaries() {
        let g = chain(12);
        let p = RegionPlan::contiguous_aligned(&g, 3, 4);
        assert_eq!(p.num_regions(), 3);
        assert_eq!(p.node_regions()[3], 0);
        assert_eq!(p.node_regions()[4], 1);
        assert_eq!(p.node_regions()[8], 2);
    }

    #[test]
    fn independent_regions_have_infinite_lookahead() {
        // Two disjoint 2-chains: nodes 0->1 and 2->3.
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(2), NodeId(3));
        let g = b.build();
        let p = RegionPlan::from_node_regions(&g, vec![0, 0, 1, 1]);
        assert_eq!(p.cross_edges(), 0);
        assert_eq!(p.lookahead(), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn rejects_sparse_region_ids() {
        let g = chain(4);
        RegionPlan::from_node_regions(&g, vec![0, 0, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "does not divide")]
    fn rejects_misaligned() {
        let g = chain(10);
        RegionPlan::contiguous_aligned(&g, 2, 4);
    }
}
