//! Per-hop adaptive route selection with Dally–Seitz escape channels.
//!
//! Oblivious routing fixes a message's path at injection; adaptive
//! routing extends it **one hop at a time** at the header, choosing among
//! candidate output channels by local state (the simulator uses VC
//! occupancy). Unrestricted adaptivity deadlocks, so we follow the
//! classic escape-channel recipe (Dally–Seitz datelines inside Duato's
//! framework):
//!
//! * every physical channel carries an **adaptive lane** (VC class 2 on
//!   an [`crate::mesh::RoutingDiscipline::AdaptiveEscape`] mesh) with no
//!   routing restriction, plus the two-class **escape pair** (classes
//!   0/1) routed by the dateline discipline of [`crate::dateline`];
//! * a header that finds every adaptive candidate full falls back to the
//!   escape network: it follows [`AdaptiveRouter::escape_route`] — the
//!   dateline-switched dimension-order path from its *current* node —
//!   and **never returns** to the adaptive lane;
//! * escape routes from arbitrary intermediate nodes are ordinary
//!   dateline routes, so the escape subnetwork's channel-dependency
//!   graph is a subgraph of the all-pairs dateline dependency graph —
//!   acyclic (proved by the dateline property tests, and re-proved for
//!   the three-class graph by `proptest_invariants`). In any blocked
//!   configuration every header waits on an escape channel, the wait
//!   chains strictly ascend that acyclic order, and therefore some worm
//!   can always move: deadlock is impossible by construction.
//!
//! The trait below is what the flit simulator programs against; `Mesh`
//! is its canonical implementation. The simulator side (route-selection
//! policies, occupancy tie-breaks, misroute budgets) lives in
//! `wormhole_flitsim::wormhole`.
//!
//! # Example
//!
//! ```
//! use wormhole_topology::adaptive::AdaptiveRouter;
//! use wormhole_topology::graph::NodeId;
//! use wormhole_topology::mesh::{Mesh, RoutingDiscipline};
//!
//! let t = Mesh::new_disciplined(4, 2, true, RoutingDiscipline::AdaptiveEscape);
//! let (at, dst) = (t.node(&[0, 0]), t.node(&[2, 1]));
//! let mut cand = Vec::new();
//! t.adaptive_candidates(at, dst, false, &mut cand);
//! // Dimension 0 sits at exactly half the ring (distance 2 either way),
//! // so both its directions are minimal; dimension 1 adds one more.
//! assert_eq!(cand.len(), 3);
//! let esc = t.escape_route(at, dst);
//! assert_eq!(esc.len(), 3); // minimal dateline continuation
//! assert!(esc.edges().iter().all(|&e| t.is_escape_edge(e)));
//! ```

use crate::graph::{EdgeId, Graph, NodeId};
use crate::mesh::Mesh;
use crate::path::Path;

/// A substrate that supports per-hop adaptive route selection over an
/// adaptive lane, backed by a deadlock-free escape subnetwork.
///
/// Implementations must guarantee:
///
/// 1. **Escape acyclicity** — the channel-dependency graph of the union
///    of all [`escape_route`](Self::escape_route)s (over every
///    `(at, dst)` pair) restricted to escape channels is acyclic;
/// 2. **Separation** — escape routes use only escape channels
///    ([`is_escape`](Self::is_escape)), and
///    [`candidates`](Self::candidates) yields only non-escape (adaptive
///    lane) channels, so a worm on its escape tail can never wait on an
///    adaptive channel;
/// 3. **Progress** — every profitable candidate strictly reduces the
///    distance to `dst`, and `escape_route(at, dst)` always reaches
///    `dst` (it is nonempty whenever `at != dst`).
///
/// Under those three properties the wormhole simulator's adaptive mode
/// is deadlock-free for any selection policy that falls back to the
/// escape hop when every adaptive candidate is full.
///
/// `Sync` is a supertrait because the parallel engine's workers share
/// one router across threads; every query takes `&self`, so routers are
/// immutable lookup structures and the bound costs implementors nothing.
pub trait AdaptiveRouter: Sync {
    /// The routing graph the simulator runs on.
    fn graph(&self) -> &Graph;

    /// Pushes the adaptive-lane candidate hops from `at` toward `dst` as
    /// `(edge, profitable)` pairs, in a deterministic order. With
    /// `misroutes` set, non-minimal hops are included (flagged
    /// unprofitable); the caller bounds their use.
    fn candidates(&self, at: NodeId, dst: NodeId, misroutes: bool, out: &mut Vec<(EdgeId, bool)>);

    /// The deadlock-free oblivious continuation from `at` to `dst` on
    /// the escape subnetwork. Empty iff `at == dst`.
    fn escape_route(&self, at: NodeId, dst: NodeId) -> Path;

    /// The first hop of [`escape_route`](Self::escape_route) — what a
    /// blocked header contends for when falling back. The default
    /// computes the full route; implementations should override with a
    /// constant-time version.
    fn escape_hop(&self, at: NodeId, dst: NodeId) -> EdgeId {
        self.escape_route(at, dst).edges()[0]
    }

    /// Whether `e` belongs to the escape subnetwork.
    fn is_escape(&self, e: EdgeId) -> bool;
}

impl AdaptiveRouter for Mesh {
    fn graph(&self) -> &Graph {
        Mesh::graph(self)
    }

    fn candidates(&self, at: NodeId, dst: NodeId, misroutes: bool, out: &mut Vec<(EdgeId, bool)>) {
        self.adaptive_candidates(at, dst, misroutes, out);
    }

    fn escape_route(&self, at: NodeId, dst: NodeId) -> Path {
        Mesh::escape_route(self, at, dst)
    }

    fn escape_hop(&self, at: NodeId, dst: NodeId) -> EdgeId {
        // First hop of the dateline path: lowest unresolved dimension,
        // minimal direction, always class 0 (a fresh escape entry is
        // before its dateline by definition; the class-1 switch can only
        // happen after the wrap hop is crossed).
        self.escape_first_hop(at, dst)
    }

    fn is_escape(&self, e: EdgeId) -> bool {
        self.is_escape_edge(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dateline::channel_dependency_graph;
    use crate::mesh::RoutingDiscipline;

    fn torus(radix: u32, dims: u32) -> Mesh {
        Mesh::new_disciplined(radix, dims, true, RoutingDiscipline::AdaptiveEscape)
    }

    #[test]
    fn candidates_are_adaptive_lane_only_and_profitable_reduce_distance() {
        // Even radix included: at exactly half-ring distance both
        // directions are minimal and must be flagged profitable.
        for radix in [4u32, 5] {
            candidates_contract(torus(radix, 2));
        }
    }

    fn candidates_contract(t: Mesh) {
        let g = AdaptiveRouter::graph(&t);
        let mut cand = Vec::new();
        for s in 0..t.num_nodes() {
            for d in 0..t.num_nodes() {
                if s == d {
                    continue;
                }
                let (s, d) = (NodeId(s), NodeId(d));
                let dist = |v: NodeId| t.escape_route(v, d).len();
                for &mis in &[false, true] {
                    cand.clear();
                    t.candidates(s, d, mis, &mut cand);
                    assert!(!cand.is_empty(), "{s:?}->{d:?}");
                    for &(e, profitable) in &cand {
                        assert!(!t.is_escape(e), "candidate {e:?} is an escape edge");
                        assert_eq!(g.src(e), s);
                        let next = g.dst(e);
                        if profitable {
                            assert_eq!(dist(next), dist(s) - 1, "{s:?}->{d:?} via {e:?}");
                        } else {
                            assert!(mis, "unprofitable candidate without misroutes");
                            assert!(dist(next) >= dist(s));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn escape_hop_matches_escape_route_head() {
        for (radix, dims) in [(4u32, 1u32), (4, 2), (3, 3)] {
            let t = torus(radix, dims);
            for s in 0..t.num_nodes() {
                for d in 0..t.num_nodes() {
                    if s == d {
                        continue;
                    }
                    let (s, d) = (NodeId(s), NodeId(d));
                    assert_eq!(
                        AdaptiveRouter::escape_hop(&t, s, d),
                        t.escape_route(s, d).edges()[0],
                        "{radix}^{dims}: {s:?}->{d:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn escape_subgraph_is_acyclic_on_the_three_class_torus() {
        // The Duato condition: all-pairs escape routes — which is what a
        // worm can be following after falling back from any node — have
        // an acyclic channel-dependency graph. (The proptest suite
        // re-proves this over random radices/dims.)
        for (radix, dims) in [(6u32, 1u32), (4, 2)] {
            let t = torus(radix, dims);
            let mut paths = Vec::new();
            for s in 0..t.num_nodes() {
                for d in 0..t.num_nodes() {
                    if s != d {
                        paths.push(t.escape_route(NodeId(s), NodeId(d)));
                    }
                }
            }
            assert!(
                channel_dependency_graph(Mesh::graph(&t), &paths).is_acyclic(),
                "escape routes on {radix}^{dims} must be acyclic"
            );
        }
    }

    #[test]
    fn mesh_without_wrap_supports_adaptive_escape() {
        let m = Mesh::new_disciplined(3, 2, false, RoutingDiscipline::AdaptiveEscape);
        assert_eq!(m.discipline(), RoutingDiscipline::AdaptiveEscape);
        let p = m.escape_route(NodeId(0), NodeId(8));
        p.validate(Mesh::graph(&m)).unwrap();
        assert!(p.edges().iter().all(|&e| m.is_escape_edge(e)));
        let mut cand = Vec::new();
        m.candidates(NodeId(0), NodeId(8), true, &mut cand);
        // Corner node: two profitable directions exist, no minus links.
        assert_eq!(cand.len(), 2);
        assert!(cand.iter().all(|&(_, p)| p));
    }
}
