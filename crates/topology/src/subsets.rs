//! Small combinatorics toolkit: binomial coefficients and enumeration /
//! ranking of fixed-size subsets. Used by the Theorem 2.2.1 lower-bound
//! construction, which allocates one *primary edge* per `(B+1)`-subset of
//! base messages.

/// Binomial coefficient `C(n, k)` with saturation at `u64::MAX`.
pub fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc * (n - i) as u128 / (i + 1) as u128;
        if acc > u64::MAX as u128 {
            return u64::MAX;
        }
    }
    acc as u64
}

/// Enumerates all `k`-subsets of `0..n` in lexicographic order.
///
/// Each subset is emitted as a sorted `Vec<u32>`. The enumeration order
/// defines the *rank* used by [`subset_rank`].
pub fn enumerate_subsets(n: u32, k: u32) -> Vec<Vec<u32>> {
    let mut out = Vec::with_capacity(binomial(n as u64, k as u64).min(1 << 24) as usize);
    if k > n {
        return out;
    }
    if k == 0 {
        out.push(Vec::new());
        return out;
    }
    let mut cur: Vec<u32> = (0..k).collect();
    loop {
        out.push(cur.clone());
        // Advance to next lexicographic k-subset.
        let mut i = k as usize;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if cur[i] != n - (k - i as u32) {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        cur[i] += 1;
        for j in i + 1..k as usize {
            cur[j] = cur[j - 1] + 1;
        }
    }
}

/// Lexicographic rank of a sorted `k`-subset of `0..n` (inverse of the
/// order produced by [`enumerate_subsets`]).
pub fn subset_rank(n: u32, subset: &[u32]) -> u64 {
    let k = subset.len() as u64;
    let mut rank = 0u64;
    let mut prev = 0u32; // smallest value allowed at this position
    for (i, &v) in subset.iter().enumerate() {
        let remaining = k - i as u64 - 1;
        for skipped in prev..v {
            rank += binomial((n - skipped - 1) as u64, remaining);
        }
        prev = v + 1;
    }
    rank
}

/// `true` if `sorted` is strictly increasing and within `0..n`.
pub fn is_valid_subset(n: u32, sorted: &[u32]) -> bool {
    sorted.windows(2).all(|w| w[0] < w[1]) && sorted.last().is_none_or(|&v| v < n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_small_values() {
        assert_eq!(binomial(0, 0), 1);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(10, 3), 120);
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(binomial(52, 5), 2_598_960);
    }

    #[test]
    fn binomial_saturates() {
        assert_eq!(binomial(500, 250), u64::MAX);
    }

    #[test]
    fn enumeration_count_and_order() {
        let subs = enumerate_subsets(5, 3);
        assert_eq!(subs.len() as u64, binomial(5, 3));
        assert_eq!(subs[0], vec![0, 1, 2]);
        assert_eq!(subs[subs.len() - 1], vec![2, 3, 4]);
        // Strictly lexicographically increasing.
        for w in subs.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn enumeration_edge_cases() {
        assert_eq!(enumerate_subsets(4, 0), vec![Vec::<u32>::new()]);
        assert_eq!(enumerate_subsets(3, 4).len(), 0);
        assert_eq!(enumerate_subsets(3, 3), vec![vec![0, 1, 2]]);
        assert_eq!(enumerate_subsets(1, 1), vec![vec![0]]);
    }

    #[test]
    fn rank_is_inverse_of_enumeration() {
        for (n, k) in [(6u32, 3u32), (7, 2), (5, 5), (8, 1), (9, 4)] {
            for (i, s) in enumerate_subsets(n, k).iter().enumerate() {
                assert_eq!(subset_rank(n, s), i as u64, "n={n} k={k} s={s:?}");
            }
        }
    }

    #[test]
    fn validity_check() {
        assert!(is_valid_subset(5, &[0, 2, 4]));
        assert!(is_valid_subset(5, &[]));
        assert!(!is_valid_subset(5, &[0, 0]));
        assert!(!is_valid_subset(5, &[3, 5]));
        assert!(!is_valid_subset(5, &[4, 2]));
    }
}
