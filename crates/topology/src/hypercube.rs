//! Hypercube networks with e-cube (dimension-order) routing — the substrate
//! of the Aiello et al. result cited in §1.3.4 and a useful
//! moderate-dilation workload generator.

use crate::graph::{EdgeId, Graph, GraphBuilder, NodeId};
use crate::path::Path;

/// A `2^dim`-node hypercube; each undirected link is a pair of directed
/// edges, optionally replicated into several virtual-channel *classes*
/// (parallel edges). Two classes make Valiant's two-phase routing
/// deadlock-free — the Aiello et al. requirement of "a small constant
/// larger than one" VCs (paper §1.3.4).
#[derive(Clone, Debug)]
pub struct Hypercube {
    dim: u32,
    classes: u32,
    graph: Graph,
    /// `edge_lookup[(v * dim + d) * classes + c]` = class-`c` edge flipping
    /// bit `d` out of node `v`.
    edge_lookup: Vec<u32>,
}

impl Hypercube {
    /// Builds a single-class hypercube of dimension `dim ≥ 1`.
    pub fn new(dim: u32) -> Self {
        Self::new_multiclass(dim, 1)
    }

    /// Builds a hypercube whose every physical link carries `classes`
    /// parallel edges (VC classes).
    pub fn new_multiclass(dim: u32, classes: u32) -> Self {
        assert!((1..=24).contains(&dim), "dimension out of range");
        assert!((1..=4).contains(&classes), "1–4 VC classes supported");
        let n = 1u32 << dim;
        let mut b = GraphBuilder::new(n as usize);
        let mut lookup = vec![u32::MAX; (n as usize) * (dim * classes) as usize];
        for v in 0..n {
            for d in 0..dim {
                let w = v ^ (1 << d);
                for c in 0..classes {
                    let e = b.add_edge(NodeId(v), NodeId(w));
                    lookup[((v * dim + d) * classes + c) as usize] = e.0;
                }
            }
        }
        Self {
            dim,
            classes,
            graph: b.build(),
            edge_lookup: lookup,
        }
    }

    /// Number of VC classes per physical link.
    #[inline]
    pub fn classes(&self) -> u32 {
        self.classes
    }

    /// The underlying graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Dimension (log2 of node count).
    #[inline]
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> u32 {
        1 << self.dim
    }

    /// The class-0 directed edge from `v` flipping bit `d`.
    #[inline]
    pub fn edge(&self, v: NodeId, d: u32) -> EdgeId {
        self.edge_cls(v, d, 0)
    }

    /// The class-`c` directed edge from `v` flipping bit `d`.
    #[inline]
    pub fn edge_cls(&self, v: NodeId, d: u32, class: u32) -> EdgeId {
        debug_assert!(class < self.classes);
        EdgeId(self.edge_lookup[((v.0 * self.dim + d) * self.classes + class) as usize])
    }

    /// E-cube path on VC class `class`: correct differing bits from bit 0
    /// upward. Length equals the Hamming distance.
    pub fn ecube_path_cls(&self, src: NodeId, dst: NodeId, class: u32) -> Path {
        let mut edges = Vec::new();
        let mut cur = src.0;
        for d in 0..self.dim {
            let bit = 1u32 << d;
            if (cur ^ dst.0) & bit != 0 {
                edges.push(self.edge_cls(NodeId(cur), d, class));
                cur ^= bit;
            }
        }
        debug_assert_eq!(cur, dst.0);
        Path::new(edges)
    }

    /// E-cube path on class 0.
    pub fn ecube_path(&self, src: NodeId, dst: NodeId) -> Path {
        self.ecube_path_cls(src, dst, 0)
    }

    /// Valiant two-phase path (§1.3.3, \[47\]): e-cube to a random
    /// intermediate node, then e-cube to the destination. Randomizing the
    /// middle turns any permutation into two random-ish problems, defeating
    /// adversarial patterns like transpose.
    ///
    /// On a multiclass cube, phase 2 routes on class 1 — the dependency
    /// graph then stays acyclic (each class is dimension-ordered and
    /// transitions go only 0 → 1), so wormhole routing cannot deadlock;
    /// with a single class the second phase re-enters low dimensions and
    /// deadlock is possible (demonstrated in experiment X4). Returns `None`
    /// when the combined path would repeat an edge (single-class only) or
    /// is empty — callers re-draw the intermediate.
    pub fn valiant_path(&self, src: NodeId, dst: NodeId, intermediate: NodeId) -> Option<Path> {
        let phase2_class = if self.classes >= 2 { 1 } else { 0 };
        let p1 = self.ecube_path_cls(src, intermediate, 0);
        let p2 = self.ecube_path_cls(intermediate, dst, phase2_class);
        let mut edges = p1.edges().to_vec();
        edges.extend_from_slice(p2.edges());
        if edges.is_empty() {
            return None;
        }
        let p = Path::new(edges);
        match p.validate(&self.graph) {
            Ok(()) => Some(p),
            Err(_) => None, // repeated edge: caller re-draws the intermediate
        }
    }

    /// The bit-complement permutation `v → !v`. Every message has full
    /// dilation `dim`; under e-cube its paths are mutually edge-disjoint
    /// (each message's position determines it uniquely), so it is a
    /// *best*-case congestion workload — useful as a control.
    pub fn bit_complement_pairs(&self) -> Vec<(NodeId, NodeId)> {
        let mask = self.num_nodes() - 1;
        (0..self.num_nodes())
            .map(|v| (NodeId(v), NodeId(v ^ mask)))
            .collect()
    }

    /// The transpose permutation `(a, b) → (b, a)` (swap the high and low
    /// halves of the address) — the classic **adversarial** pattern for
    /// oblivious e-cube routing: `Θ(√n)` messages funnel through single
    /// channels (the Borodin–Hopcroft phenomenon, paper §1.3.2). Requires
    /// even dimension.
    pub fn transpose_pairs(&self) -> Vec<(NodeId, NodeId)> {
        assert!(
            self.dim.is_multiple_of(2),
            "transpose needs an even dimension"
        );
        let half = self.dim / 2;
        let low_mask = (1u32 << half) - 1;
        (0..self.num_nodes())
            .map(|v| {
                let (a, b) = (v >> half, v & low_mask);
                (NodeId(v), NodeId((b << half) | a))
            })
            .collect()
    }

    /// E-cube paths for a pair list, as a `PathSet` (pairs with src = dst
    /// are skipped).
    pub fn ecube_paths(&self, pairs: &[(NodeId, NodeId)]) -> crate::path::PathSet {
        crate::path::PathSet::new(
            pairs
                .iter()
                .filter(|(s, d)| s != d)
                .map(|&(s, d)| self.ecube_path(s, d))
                .collect(),
        )
    }

    /// Valiant paths for a pair list with a seeded RNG; re-draws the random
    /// intermediate until the two phases are edge-simple (≤ 64 attempts
    /// each, then falls back to the direct e-cube path).
    pub fn valiant_paths(&self, pairs: &[(NodeId, NodeId)], seed: u64) -> crate::path::PathSet {
        use rand::prelude::*;
        use rand::rngs::StdRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.num_nodes();
        crate::path::PathSet::new(
            pairs
                .iter()
                .filter(|(s, d)| s != d)
                .map(|&(s, d)| {
                    for _ in 0..64 {
                        let mid = NodeId(rng.random_range(0..n));
                        if let Some(p) = self.valiant_path(s, d, mid) {
                            return p;
                        }
                    }
                    self.ecube_path(s, d)
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        let h = Hypercube::new(4);
        assert_eq!(h.graph().num_nodes(), 16);
        assert_eq!(h.graph().num_edges(), 16 * 4); // directed
        let h2 = Hypercube::new_multiclass(4, 2);
        assert_eq!(h2.graph().num_edges(), 16 * 4 * 2);
    }

    #[test]
    fn two_class_valiant_uses_class_1_for_phase_2() {
        let h = Hypercube::new_multiclass(4, 2);
        let p = h.valiant_path(NodeId(0), NodeId(15), NodeId(6)).unwrap();
        p.validate(h.graph()).unwrap();
        // Class of an edge: parity within its (v, d) pair in build order.
        let class_of = |e: EdgeId| e.0 % 2;
        let classes: Vec<u32> = p.edges().iter().map(|&e| class_of(e)).collect();
        // Phase 1 = hamming(0,6) = 2 edges on class 0, then class 1.
        assert_eq!(classes, vec![0, 0, 1, 1]);
    }

    #[test]
    fn two_class_valiant_never_repeats_edges_even_out_and_back() {
        // Out-and-back overlaps are fine with two classes: phase 2 rides
        // class 1 edges, distinct from phase 1's class 0.
        let h = Hypercube::new_multiclass(3, 2);
        let p = h.valiant_path(NodeId(0), NodeId(0), NodeId(5));
        // src == dst: phases are exact reverses node-wise, but edge-simple.
        let p = p.expect("two-class out-and-back is edge-simple");
        assert_eq!(p.len(), 4);
        p.validate(h.graph()).unwrap();
    }

    #[test]
    fn ecube_length_is_hamming_distance() {
        let h = Hypercube::new(5);
        for (s, d) in [(0u32, 31u32), (3, 3), (7, 8), (21, 10)] {
            let p = h.ecube_path(NodeId(s), NodeId(d));
            assert_eq!(p.len(), (s ^ d).count_ones() as usize);
            if !p.is_empty() {
                p.validate(h.graph()).unwrap();
                assert_eq!(p.src(h.graph()), NodeId(s));
                assert_eq!(p.dst(h.graph()), NodeId(d));
            }
        }
    }

    #[test]
    fn edge_lookup_consistent() {
        let h = Hypercube::new(3);
        for v in 0..8u32 {
            for d in 0..3 {
                let e = h.edge(NodeId(v), d);
                assert_eq!(h.graph().src(e), NodeId(v));
                assert_eq!(h.graph().dst(e), NodeId(v ^ (1 << d)));
            }
        }
    }

    #[test]
    fn bit_complement_is_edge_disjoint_under_ecube() {
        // Full dilation but congestion exactly 1: a control workload.
        let h = Hypercube::new(6);
        let pairs = h.bit_complement_pairs();
        let direct = h.ecube_paths(&pairs);
        assert_eq!(direct.dilation(), 6);
        assert_eq!(direct.congestion(h.graph()), 1);
    }

    #[test]
    fn transpose_is_adversarial_and_valiant_fixes_it() {
        // Transpose under e-cube funnels Θ(√n) messages through single
        // channels; Valiant's random intermediates smooth it out.
        let h = Hypercube::new(8); // n = 256
        let pairs = h.transpose_pairs();
        let direct = h.ecube_paths(&pairs);
        let cd = direct.congestion(h.graph());
        // Θ(√n) funnel: measured 8 = 16× the average edge load of 0.5.
        assert!(cd >= 8, "transpose should congest ≈ √n/2, got {cd}");
        let valiant = h.valiant_paths(&pairs, 9);
        valiant.validate(h.graph()).unwrap();
        let cv = valiant.congestion(h.graph());
        assert!(
            cv < cd && cv <= 6,
            "Valiant should smooth transpose congestion: {cv} vs {cd}"
        );
    }

    #[test]
    fn transpose_is_an_involution() {
        let h = Hypercube::new(6);
        for (s, d) in h.transpose_pairs() {
            let back = h.transpose_pairs()[d.idx()].1;
            assert_eq!(back, s);
        }
    }

    #[test]
    fn valiant_path_visits_intermediate() {
        let h = Hypercube::new(4);
        let p = h.valiant_path(NodeId(0), NodeId(15), NodeId(6)).unwrap();
        p.validate(h.graph()).unwrap();
        assert_eq!(p.src(h.graph()), NodeId(0));
        assert_eq!(p.dst(h.graph()), NodeId(15));
        // Length = hamming(0,6) + hamming(6,15) = 2 + 2.
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn valiant_rejects_overlapping_phases() {
        let h = Hypercube::new(3);
        // src == dst with a detour: out-and-back repeats edges' reverses but
        // not edges themselves... choose a case where phase 2 re-crosses a
        // phase-1 edge: src=0, mid=0 gives empty+direct = fine; build the
        // degenerate empty case instead.
        assert!(h.valiant_path(NodeId(3), NodeId(3), NodeId(3)).is_none());
    }
}
