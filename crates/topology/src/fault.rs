//! Fault plans and fault-aware routing: timed link/router kills with a
//! deadlock-free escape network on the surviving topology.
//!
//! A [`FaultPlan`] is a validated list of timed kill events. The
//! simulator (`wormhole-flitsim`) applies them as discrete events — a
//! killed channel stops accepting new virtual channels and every worm
//! holding or committed to it is discarded — while this module answers
//! the topology-side question: *which fault patterns leave the escape
//! network deadlock-free, and what do its routes look like afterwards?*
//!
//! # Escape-subgraph recomputation rule
//!
//! On a dateline torus the surviving escape network is **pre-partitioned
//! per dimension**: every escape route still corrects dimensions in
//! strictly ascending order, travels one fixed direction per ring, and
//! switches from class 0 to class 1 exactly after the hop leaving that
//! `(ring, direction)`'s dateline coordinate ([`Mesh::dateline_path`]'s
//! rule with the direction *forced* rather than minimal). Under those
//! three properties the channel-dependency graph stays acyclic on
//! **every** faulted torus this module accepts:
//!
//! * within one `(ring, direction)`, a route shorter than the full ring
//!   uses class-0 edges before its dateline and class-1 edges after, so
//!   dependencies only ascend the order `class-0 ring edges, then
//!   class-1 ring edges` — the single back-edge (class 1 into the
//!   dateline hop) is never used because no route crosses its dateline
//!   twice;
//! * across dimensions, dependencies point from lower to higher
//!   dimension only.
//!
//! The rule needs two structural guarantees, enforced by
//! [`FaultedMesh::new`]:
//!
//! 1. **whole-channel kills** — all VC classes of a physical channel
//!    share fate (a partial kill would let a route change direction
//!    mid-ring, breaking the fixed-direction argument);
//! 2. **per-ring connectivity** — each ring must keep every ordered pair
//!    of its nodes connected in *some* single direction. Writing `P` for
//!    the set of ring positions whose `+` channel died and `M` for those
//!    whose `−` channel died, the ring stays all-pairs routable iff
//!    `P = ∅`, or `M = ∅`, or `P` and `M` name the same single position
//!    (both directions of one physical link — the ring splits into one
//!    arc, still traversable around the long way in either direction).
//!
//! The seeded generators ([`FaultPlan::bernoulli_channels`],
//! [`FaultPlan::exponential_channels`]) only emit plans satisfying both,
//! so acyclicity — and with it deadlock freedom — holds on every faulted
//! topology they can produce (re-proved over random tori by
//! `proptest_invariants`).

use std::error::Error;
use std::fmt;

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::adaptive::AdaptiveRouter;
use crate::graph::{EdgeId, Graph, NodeId};
use crate::mesh::Mesh;
use crate::path::Path;

/// What a single fault event kills.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultTarget {
    /// One directed edge (a single physical link direction; on a
    /// multi-class mesh, one VC class of it — use whole-channel kills
    /// when the faulted escape network must stay deadlock-free).
    Link(EdgeId),
    /// A whole router: every edge into or out of the node dies.
    Router(NodeId),
}

impl fmt::Display for FaultTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultTarget::Link(e) => write!(f, "link {}", e.0),
            FaultTarget::Router(v) => write!(f, "router {}", v.0),
        }
    }
}

/// One timed kill: `target` dies at the start of step `at`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Simulation step at which the kill takes effect.
    pub at: u64,
    /// What dies.
    pub target: FaultTarget,
}

/// A validated schedule of kill events.
///
/// Build one with the fluent constructors and hand it to the simulator
/// via `SimConfig::faults`, or derive the end-of-plan surviving topology
/// with [`FaultPlan::dead_edges`] / [`FaultedMesh::new`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

/// Errors reported by [`FaultPlan::validate`], [`FaultedMesh::new`], and
/// [`FaultPlan::validate_oblivious_routes`]. Every variant names the
/// offending kill by its index in the plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultError {
    /// A kill names an edge id the graph does not have.
    UnknownLink {
        /// Index of the offending event in the plan.
        kill: usize,
        /// The out-of-range edge id.
        edge: u32,
        /// Number of edges in the graph.
        num_edges: usize,
    },
    /// A kill names a node id the graph does not have.
    UnknownRouter {
        /// Index of the offending event in the plan.
        kill: usize,
        /// The out-of-range node id.
        router: u32,
        /// Number of nodes in the graph.
        num_nodes: usize,
    },
    /// The same target is killed twice.
    DuplicateKill {
        /// Index of the later (offending) event.
        kill: usize,
        /// Index of the earlier event with the same target.
        first: usize,
        /// The doubly-killed target.
        target: FaultTarget,
    },
    /// A kill severs the only route of an oblivious flow: the flow's
    /// fixed path crosses the killed edge, and oblivious routing has no
    /// way around it.
    SeversObliviousRoute {
        /// Index of the event whose kill cuts the route.
        kill: usize,
        /// Index of the severed flow in the route set.
        flow: usize,
        /// The killed edge the flow's path crosses.
        edge: u32,
    },
    /// On a mesh, a kill took some VC classes of a physical channel but
    /// not all of them. The faulted escape network's acyclicity proof
    /// needs whole-channel kills (all classes share fate).
    PartialChannelKill {
        /// Router the channel leaves.
        node: u32,
        /// Dimension of the channel.
        dim: u32,
        /// `true` for the `−` direction.
        minus: bool,
        /// A dead class edge of the channel.
        dead_edge: u32,
        /// A surviving class edge of the same channel.
        alive_edge: u32,
    },
    /// The kills disconnect a ring of the mesh: some ordered node pair
    /// on the ring is no longer reachable in either single direction, so
    /// no fixed-direction escape route exists.
    RingSevered {
        /// Dimension of the severed ring.
        dim: u32,
        /// A node on the severed ring (identifies it).
        ring_node: u32,
        /// A ring position whose `+` channel died.
        plus_at: u32,
        /// A different ring position whose `−` channel died.
        minus_at: u32,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::UnknownLink {
                kill,
                edge,
                num_edges,
            } => write!(
                f,
                "kill #{kill}: unknown link {edge} (graph has {num_edges} edges)"
            ),
            FaultError::UnknownRouter {
                kill,
                router,
                num_nodes,
            } => write!(
                f,
                "kill #{kill}: unknown router {router} (graph has {num_nodes} routers)"
            ),
            FaultError::DuplicateKill {
                kill,
                first,
                target,
            } => write!(
                f,
                "kill #{kill}: duplicate kill of {target} (first killed by kill #{first})"
            ),
            FaultError::SeversObliviousRoute { kill, flow, edge } => write!(
                f,
                "kill #{kill}: severs the only route of oblivious flow {flow} \
                 (its path crosses killed link {edge})"
            ),
            FaultError::PartialChannelKill {
                node,
                dim,
                minus,
                dead_edge,
                alive_edge,
            } => write!(
                f,
                "partial channel kill at router {node}, dim {dim}, {} direction: \
                 link {dead_edge} is dead but same-channel link {alive_edge} survives \
                 (escape deadlock freedom needs whole-channel kills)",
                if *minus { "-" } else { "+" }
            ),
            FaultError::RingSevered {
                dim,
                ring_node,
                plus_at,
                minus_at,
            } => write!(
                f,
                "ring through router {ring_node} in dim {dim} is severed: \
                 dead + channel at position {plus_at} and dead - channel at \
                 position {minus_at} leave some pairs unreachable in either direction"
            ),
        }
    }
}

impl Error for FaultError {}

impl FaultPlan {
    /// An empty plan (no kills).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a link kill at step `at`.
    pub fn kill_link(mut self, at: u64, edge: EdgeId) -> Self {
        self.events.push(FaultEvent {
            at,
            target: FaultTarget::Link(edge),
        });
        self
    }

    /// Adds link kills for every class edge of the physical channel
    /// `(coords, dim, ±)` of `mesh` at step `at` — the whole-channel
    /// granularity [`FaultedMesh`] requires ([partial-channel
    /// kills](FaultError::PartialChannelKill) are rejected there).
    ///
    /// Panics if the channel does not exist (a non-wrap boundary).
    pub fn kill_channel(
        mut self,
        at: u64,
        mesh: &Mesh,
        coords: &[u32],
        dim: u32,
        minus: bool,
    ) -> Self {
        let v = mesh.node(coords);
        for class in 0..mesh.classes() {
            let e = mesh
                .try_step_edge(v, dim, minus, class)
                .expect("no channel at a non-wrap mesh boundary");
            self = self.kill_link(at, e);
        }
        self
    }

    /// Adds a router kill at step `at` (all its in- and out-edges die).
    pub fn kill_router(mut self, at: u64, router: NodeId) -> Self {
        self.events.push(FaultEvent {
            at,
            target: FaultTarget::Router(router),
        });
        self
    }

    /// The kill events in plan order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// `true` if the plan kills nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Earliest kill time, or `None` for an empty plan.
    pub fn first_kill_at(&self) -> Option<u64> {
        self.events.iter().map(|e| e.at).min()
    }

    /// Checks every event against `graph`: targets must exist and no
    /// target may be killed twice.
    pub fn validate(&self, graph: &Graph) -> Result<(), FaultError> {
        for (i, ev) in self.events.iter().enumerate() {
            match ev.target {
                FaultTarget::Link(e) => {
                    if e.idx() >= graph.num_edges() {
                        return Err(FaultError::UnknownLink {
                            kill: i,
                            edge: e.0,
                            num_edges: graph.num_edges(),
                        });
                    }
                }
                FaultTarget::Router(v) => {
                    if v.idx() >= graph.num_nodes() {
                        return Err(FaultError::UnknownRouter {
                            kill: i,
                            router: v.0,
                            num_nodes: graph.num_nodes(),
                        });
                    }
                }
            }
            if let Some(first) = self.events[..i].iter().position(|p| p.target == ev.target) {
                return Err(FaultError::DuplicateKill {
                    kill: i,
                    first,
                    target: ev.target,
                });
            }
        }
        Ok(())
    }

    /// [`FaultPlan::validate`], plus: no kill may sever the only route
    /// of an oblivious flow. `routes[f]` is flow `f`'s fixed path; a
    /// path crossing any killed edge has nowhere else to go under
    /// `Oblivious` routing, so such plans are rejected at config time
    /// instead of silently discarding the flow forever.
    pub fn validate_oblivious_routes(
        &self,
        graph: &Graph,
        routes: &[Path],
    ) -> Result<(), FaultError> {
        self.validate(graph)?;
        // Map each dead edge to the (first) kill that took it down.
        let mut killed_by: Vec<Option<usize>> = vec![None; graph.num_edges()];
        for (i, ev) in self.events.iter().enumerate() {
            match ev.target {
                FaultTarget::Link(e) => {
                    killed_by[e.idx()].get_or_insert(i);
                }
                FaultTarget::Router(v) => {
                    for e in graph.edges() {
                        if graph.src(e) == v || graph.dst(e) == v {
                            killed_by[e.idx()].get_or_insert(i);
                        }
                    }
                }
            }
        }
        for (flow, p) in routes.iter().enumerate() {
            for &e in p.edges() {
                if let Some(kill) = killed_by[e.idx()] {
                    return Err(FaultError::SeversObliviousRoute {
                        kill,
                        flow,
                        edge: e.0,
                    });
                }
            }
        }
        Ok(())
    }

    /// The end-of-plan dead set: `dead[e]` is `true` iff edge `e` is
    /// killed by some event (directly, or via a router kill of either
    /// endpoint). The plan must already be valid for `graph`.
    pub fn dead_edges(&self, graph: &Graph) -> Vec<bool> {
        let mut dead = vec![false; graph.num_edges()];
        for ev in &self.events {
            match ev.target {
                FaultTarget::Link(e) => dead[e.idx()] = true,
                FaultTarget::Router(v) => {
                    for e in graph.edges() {
                        if graph.src(e) == v || graph.dst(e) == v {
                            dead[e.idx()] = true;
                        }
                    }
                }
            }
        }
        dead
    }

    /// Expands the plan to a per-edge kill schedule sorted by
    /// `(time, edge)`: each entry is `(at, edge)` with router kills
    /// expanded to all incident edges. An edge killed by several events
    /// keeps its earliest time.
    pub fn edge_schedule(&self, graph: &Graph) -> Vec<(u64, u32)> {
        let mut at: Vec<Option<u64>> = vec![None; graph.num_edges()];
        let mut note = |e: usize, t: u64| {
            at[e] = Some(at[e].map_or(t, |p: u64| p.min(t)));
        };
        for ev in &self.events {
            match ev.target {
                FaultTarget::Link(e) => note(e.idx(), ev.at),
                FaultTarget::Router(v) => {
                    for e in graph.edges() {
                        if graph.src(e) == v || graph.dst(e) == v {
                            note(e.idx(), ev.at);
                        }
                    }
                }
            }
        }
        let mut sched: Vec<(u64, u32)> = at
            .iter()
            .enumerate()
            .filter_map(|(e, t)| t.map(|t| (t, e as u32)))
            .collect();
        sched.sort_unstable();
        sched
    }

    /// Seeded Bernoulli failure process over the directed edges of an
    /// arbitrary graph: each edge independently dies with probability
    /// `p`, at a uniform time in `1..=horizon`. No connectivity or
    /// deadlock-freedom guarantee — use the `_channels` generators for
    /// meshes whose escape network must survive.
    pub fn bernoulli_links(graph: &Graph, p: f64, horizon: u64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        assert!(horizon >= 1, "horizon must be at least 1");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = Self::new();
        for e in graph.edges() {
            if rng.random_bool(p) {
                let at = rng.random_range(1..=horizon);
                plan = plan.kill_link(at, e);
            }
        }
        plan
    }

    /// Seeded exponential-lifetime failure process over directed edges:
    /// each edge draws an i.i.d. `Exp(rate)` lifetime and dies if it
    /// expires within `horizon` steps. Same caveat as
    /// [`FaultPlan::bernoulli_links`].
    pub fn exponential_links(graph: &Graph, rate: f64, horizon: u64, seed: u64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        assert!(horizon >= 1, "horizon must be at least 1");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = Self::new();
        for e in graph.edges() {
            if let Some(at) = exp_lifetime(&mut rng, rate, horizon) {
                plan = plan.kill_link(at, e);
            }
        }
        plan
    }

    /// Ring-safe Bernoulli channel failures on a wrap mesh: each
    /// physical channel (a `(node, dim, ±)` link bundle — **all** VC
    /// classes) proposes death with probability `p` at a uniform time in
    /// `1..=horizon`, then per ring only the earliest proposal survives
    /// (plus, if proposed, the opposite direction of the *same* physical
    /// link). Every emitted plan therefore satisfies [`FaultedMesh`]'s
    /// whole-channel and ring-connectivity rules by construction: the
    /// faulted escape network is deadlock-free.
    pub fn bernoulli_channels(mesh: &Mesh, p: f64, horizon: u64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        assert!(horizon >= 1, "horizon must be at least 1");
        let mut rng = StdRng::seed_from_u64(seed);
        Self::ring_safe_channels(
            mesh,
            |rng| {
                if rng.random_bool(p) {
                    Some(rng.random_range(1..=horizon))
                } else {
                    None
                }
            },
            &mut rng,
        )
    }

    /// Ring-safe exponential-lifetime channel failures on a wrap mesh:
    /// like [`FaultPlan::bernoulli_channels`] but each channel draws an
    /// `Exp(rate)` lifetime and proposes death if it expires within
    /// `horizon`.
    pub fn exponential_channels(mesh: &Mesh, rate: f64, horizon: u64, seed: u64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        assert!(horizon >= 1, "horizon must be at least 1");
        let mut rng = StdRng::seed_from_u64(seed);
        Self::ring_safe_channels(mesh, |rng| exp_lifetime(rng, rate, horizon), &mut rng)
    }

    /// Shared body of the ring-safe channel generators: `propose` draws
    /// an optional kill time per physical channel; per ring, only the
    /// earliest proposal (breaking ties toward lower position, `+`
    /// before `−`) is kept — plus the opposite direction of the same
    /// physical link if it also proposed.
    fn ring_safe_channels(
        mesh: &Mesh,
        mut propose: impl FnMut(&mut StdRng) -> Option<u64>,
        rng: &mut StdRng,
    ) -> Self {
        assert!(
            mesh.wraps(),
            "ring-safe channel faults need a wrap mesh: a dead channel on a \
             non-wrap line always severs dimension-order routes"
        );
        let radix = mesh.radix();
        let mut plan = Self::new();
        for d in 0..mesh.dims() {
            for base in ring_bases(mesh, d) {
                // Draw one proposal per (position, direction) of this ring.
                // Boundary b sits between ring coords b and b+1: the `+`
                // channel at b leaves coord b, the `−` channel at b leaves
                // coord b+1.
                let mut proposals: Vec<(u64, u32, bool)> = Vec::new(); // (at, boundary, minus)
                for c in 0..radix {
                    if let Some(at) = propose(rng) {
                        proposals.push((at, c, false)); // + channel leaving c = boundary c
                    }
                    if let Some(at) = propose(rng) {
                        // − channel leaving coord c covers boundary c−1.
                        proposals.push((at, (c + radix - 1) % radix, true));
                    }
                }
                let Some(&(_, boundary, _)) =
                    proposals.iter().min_by_key(|&&(at, b, m)| (at, b, m))
                else {
                    continue;
                };
                for &(at, b, minus) in &proposals {
                    if b != boundary {
                        continue; // ring rule: one physical boundary at most
                    }
                    // + channel of boundary b leaves coord b; − channel of
                    // boundary b leaves coord b+1.
                    let coord = if minus { (b + 1) % radix } else { b };
                    let v = ring_node(mesh, base, d, coord);
                    for class in 0..mesh.classes() {
                        let e = mesh
                            .try_step_edge(v, d, minus, class)
                            .expect("wrap ring channel must exist");
                        plan = plan.kill_link(at, e);
                    }
                }
            }
        }
        plan
    }
}

/// Draws an `Exp(rate)` lifetime, returning the (clamped-to-`1`) kill
/// step if it lands within `horizon`.
fn exp_lifetime(rng: &mut StdRng, rate: f64, horizon: u64) -> Option<u64> {
    let u: f64 = rng.random_range(0.0..1.0);
    let life = -(1.0 - u).ln() / rate;
    (life < horizon as f64).then(|| (life.floor() as u64).max(1))
}

/// The base nodes (coordinate 0 in dimension `d`) of every ring along
/// dimension `d`.
fn ring_bases(mesh: &Mesh, d: u32) -> Vec<NodeId> {
    (0..mesh.num_nodes())
        .map(NodeId)
        .filter(|&v| mesh.coord(v, d) == 0)
        .collect()
}

/// The node of `base`'s ring (dimension `d`) at ring coordinate `c`.
fn ring_node(mesh: &Mesh, base: NodeId, d: u32, c: u32) -> NodeId {
    let mut coords = mesh.coords(base);
    coords[d as usize] = c;
    mesh.node(&coords)
}

/// A mesh with a validated fault pattern applied: the fault-aware
/// [`AdaptiveRouter`] of the tentpole.
///
/// Construction re-checks the two structural rules the faulted escape
/// network's deadlock-freedom proof needs (whole-channel kills, per-ring
/// connectivity — see the module docs); [`FaultedMesh::escape_route`]
/// then produces per-dimension dateline routes on the surviving torus,
/// forcing the non-minimal direction around any ring whose minimal arc
/// is dead. Adaptive candidates are the underlying mesh's with dead
/// edges filtered out.
#[derive(Debug)]
pub struct FaultedMesh<'a> {
    mesh: &'a Mesh,
    dead: Vec<bool>,
}

impl<'a> FaultedMesh<'a> {
    /// Applies `plan`'s end state to `mesh`, validating the plan against
    /// the graph and the escape network's survival rules.
    pub fn new(mesh: &'a Mesh, plan: &FaultPlan) -> Result<Self, FaultError> {
        plan.validate(mesh.graph())?;
        let dead = plan.dead_edges(mesh.graph());
        let fm = Self { mesh, dead };
        fm.check_whole_channels()?;
        fm.check_rings()?;
        Ok(fm)
    }

    /// The underlying (unfaulted) mesh.
    pub fn mesh(&self) -> &Mesh {
        self.mesh
    }

    /// The per-edge dead set.
    pub fn dead(&self) -> &[bool] {
        &self.dead
    }

    /// Whether the whole physical channel `(v, d, ±)` is dead (classes
    /// share fate after validation, so class 0 is representative).
    fn channel_dead(&self, v: NodeId, d: u32, minus: bool) -> bool {
        match self.mesh.try_step_edge(v, d, minus, 0) {
            Some(e) => self.dead[e.idx()],
            None => true, // non-wrap boundary: no channel there at all
        }
    }

    fn check_whole_channels(&self) -> Result<(), FaultError> {
        let m = self.mesh;
        for v in (0..m.num_nodes()).map(NodeId) {
            for d in 0..m.dims() {
                for minus in [false, true] {
                    let mut dead_e = None;
                    let mut alive_e = None;
                    for class in 0..m.classes() {
                        if let Some(e) = m.try_step_edge(v, d, minus, class) {
                            if self.dead[e.idx()] {
                                dead_e.get_or_insert(e);
                            } else {
                                alive_e.get_or_insert(e);
                            }
                        }
                    }
                    if let (Some(de), Some(ae)) = (dead_e, alive_e) {
                        return Err(FaultError::PartialChannelKill {
                            node: v.0,
                            dim: d,
                            minus,
                            dead_edge: de.0,
                            alive_edge: ae.0,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    fn check_rings(&self) -> Result<(), FaultError> {
        let m = self.mesh;
        let radix = m.radix();
        for d in 0..m.dims() {
            for base in ring_bases(m, d) {
                // Collect dead boundaries per direction. Boundary b lies
                // between ring coords b and b+1 (mod radix); the `+`
                // channel at coord c covers boundary c, the `−` channel
                // at coord c covers boundary c−1.
                let mut plus: Vec<u32> = Vec::new();
                let mut minus: Vec<u32> = Vec::new();
                for c in 0..radix {
                    let v = ring_node(m, base, d, c);
                    // Skip boundaries a line does not have (the `+`
                    // channel of the last coord, the `−` of the first).
                    if (m.wraps() || c + 1 < radix) && self.channel_dead(v, d, false) {
                        plus.push(c);
                    }
                    if (m.wraps() || c > 0) && self.channel_dead(v, d, true) {
                        minus.push((c + radix - 1) % radix);
                    }
                }
                let ok = if m.wraps() {
                    // All-pairs single-direction reachability on a ring:
                    // fine iff one direction is fully alive, or both dead
                    // sets name the same single physical boundary.
                    plus.is_empty()
                        || minus.is_empty()
                        || (plus.len() == 1 && minus.len() == 1 && plus[0] == minus[0])
                } else {
                    // A line has no long way around: any dead boundary in
                    // either direction severs some pair.
                    plus.is_empty() && minus.is_empty()
                };
                if !ok {
                    let (p, mn) = if m.wraps() {
                        // Name a witness pair of distinct boundaries.
                        let p = *plus.first().unwrap_or(&0);
                        let q = minus
                            .iter()
                            .copied()
                            .find(|&b| b != p)
                            .or_else(|| minus.first().copied())
                            .unwrap_or(0);
                        (p, q)
                    } else {
                        (
                            plus.first().copied().unwrap_or(0),
                            minus.first().copied().unwrap_or(0),
                        )
                    };
                    return Err(FaultError::RingSevered {
                        dim: d,
                        ring_node: base.0,
                        plus_at: p,
                        minus_at: mn,
                    });
                }
            }
        }
        Ok(())
    }

    /// Whether the whole directed arc from coordinate `have` to `want`
    /// (exclusive) of `at`'s ring in dimension `d` is alive in direction
    /// `minus`.
    fn arc_alive(&self, at: NodeId, d: u32, have: u32, want: u32, minus: bool) -> bool {
        let m = self.mesh;
        let mut cur = at;
        let mut c = have;
        while c != want {
            match m.try_step_edge(cur, d, minus, 0) {
                Some(e) if !self.dead[e.idx()] => {
                    cur = m.graph().dst(e);
                    c = m.coord(cur, d);
                }
                _ => return false,
            }
        }
        true
    }

    /// The surviving travel direction from `have` to `want` on `at`'s
    /// ring in dimension `d`: minimal if its whole arc is alive, else
    /// the long way around (validation guarantees one direction works).
    fn surviving_direction(&self, at: NodeId, d: u32, have: u32, want: u32) -> bool {
        let m = self.mesh;
        let minimal = m.travels_minus(have, want);
        if !m.wraps() || self.arc_alive(at, d, have, want, minimal) {
            minimal
        } else {
            debug_assert!(
                self.arc_alive(at, d, have, want, !minimal),
                "ring validated connected but both arcs dead"
            );
            !minimal
        }
    }
}

impl AdaptiveRouter for FaultedMesh<'_> {
    fn graph(&self) -> &Graph {
        self.mesh.graph()
    }

    fn candidates(&self, at: NodeId, dst: NodeId, misroutes: bool, out: &mut Vec<(EdgeId, bool)>) {
        self.mesh.adaptive_candidates(at, dst, misroutes, out);
        out.retain(|&(e, _)| !self.dead[e.idx()]);
    }

    /// Per-dimension dateline route on the surviving torus: dimensions
    /// corrected in ascending order, one forced direction per ring
    /// (minimal when its arc survives), class 0 → 1 exactly after the
    /// hop leaving that `(ring, direction)`'s dateline coordinate — the
    /// pre-partitioned escape rule whose dependency graph is acyclic on
    /// every validated fault pattern (module docs).
    fn escape_route(&self, at: NodeId, dst: NodeId) -> Path {
        let m = self.mesh;
        let g = m.graph();
        let dateline = m.classes() >= 2 && m.wraps();
        let mut edges = Vec::new();
        let mut cur = at;
        for d in 0..m.dims() {
            let mut have = m.coord(cur, d);
            let want = m.coord(dst, d);
            if have == want {
                continue;
            }
            let minus = self.surviving_direction(cur, d, have, want);
            let dateline_coord = if minus { 0 } else { m.radix() - 1 };
            let mut class = 0u32;
            while have != want {
                let e = m.step_edge(cur, d, minus, class);
                debug_assert!(!self.dead[e.idx()], "escape route crossed a dead edge");
                edges.push(e);
                if dateline && have == dateline_coord {
                    class = 1; // crossed this ring's dateline
                }
                cur = g.dst(e);
                have = m.coord(cur, d);
            }
        }
        debug_assert_eq!(cur, dst);
        Path::new(edges)
    }

    fn is_escape(&self, e: EdgeId) -> bool {
        self.mesh.is_escape_edge(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dateline::channel_dependency_graph;
    use crate::mesh::RoutingDiscipline;

    fn torus(radix: u32, dims: u32) -> Mesh {
        Mesh::new_disciplined(radix, dims, true, RoutingDiscipline::AdaptiveEscape)
    }

    /// Kills all classes of the physical channel `(coords, d, ±)`.
    fn kill_channel(
        plan: FaultPlan,
        m: &Mesh,
        at: u64,
        coords: &[u32],
        d: u32,
        minus: bool,
    ) -> FaultPlan {
        plan.kill_channel(at, m, coords, d, minus)
    }

    #[test]
    fn validate_names_the_offending_kill() {
        let m = torus(4, 1);
        let g = m.graph();
        let bad = FaultPlan::new().kill_link(3, EdgeId(g.num_edges() as u32));
        let err = bad.validate(g).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("kill #0"), "{msg}");
        assert!(msg.contains("unknown link"), "{msg}");

        let bad = FaultPlan::new()
            .kill_link(1, EdgeId(0))
            .kill_router(2, NodeId(99));
        let msg = bad.validate(g).unwrap_err().to_string();
        assert!(msg.contains("kill #1"), "{msg}");
        assert!(msg.contains("unknown router 99"), "{msg}");

        let dup = FaultPlan::new()
            .kill_link(1, EdgeId(0))
            .kill_link(5, EdgeId(0));
        let msg = dup.validate(g).unwrap_err().to_string();
        assert!(msg.contains("kill #1"), "{msg}");
        assert!(msg.contains("duplicate kill of link 0"), "{msg}");
        assert!(msg.contains("kill #0"), "{msg}");
    }

    #[test]
    fn oblivious_route_severing_is_named() {
        let m = torus(4, 1);
        let route = m.route(NodeId(0), NodeId(1));
        let e = route.edges()[0];
        let plan = FaultPlan::new().kill_link(7, e);
        let err = plan
            .validate_oblivious_routes(m.graph(), std::slice::from_ref(&route))
            .unwrap_err();
        assert_eq!(
            err,
            FaultError::SeversObliviousRoute {
                kill: 0,
                flow: 0,
                edge: e.0
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("flow 0"), "{msg}");
        assert!(msg.contains(&format!("link {}", e.0)), "{msg}");
    }

    #[test]
    fn partial_channel_kill_rejected() {
        let m = torus(4, 2);
        // Kill only class 0 of a channel: classes 1 and 2 survive.
        let e0 = m.try_step_edge(NodeId(0), 0, false, 0).unwrap();
        let plan = FaultPlan::new().kill_link(2, e0);
        let err = FaultedMesh::new(&m, &plan).unwrap_err();
        assert!(
            matches!(err, FaultError::PartialChannelKill { .. }),
            "{err:?}"
        );
        assert!(err.to_string().contains("whole-channel"), "{err}");
    }

    #[test]
    fn severed_ring_rejected_and_single_boundary_accepted() {
        let m = torus(5, 1);
        // Distinct boundaries, opposite directions: + at coord 0 (boundary
        // 0) and − at coord 3 (boundary 2) → pairs straddling both are cut.
        let plan = kill_channel(FaultPlan::new(), &m, 1, &[0], 0, false);
        let plan = kill_channel(plan, &m, 1, &[3], 0, true);
        let err = FaultedMesh::new(&m, &plan).unwrap_err();
        assert!(matches!(err, FaultError::RingSevered { .. }), "{err:?}");

        // Same physical boundary both directions (between coords 1 and 2):
        // + leaving 1, − leaving 2. Ring becomes one arc — still fine.
        let plan = kill_channel(FaultPlan::new(), &m, 1, &[1], 0, false);
        let plan = kill_channel(plan, &m, 1, &[2], 0, true);
        let fm = FaultedMesh::new(&m, &plan).unwrap();
        // Every pair still has an escape route avoiding dead edges.
        for s in 0..5u32 {
            for t in 0..5u32 {
                if s == t {
                    continue;
                }
                let p = fm.escape_route(NodeId(s), NodeId(t));
                p.validate(m.graph()).unwrap();
                assert!(p.edges().iter().all(|&e| !fm.dead()[e.idx()]));
            }
        }
    }

    #[test]
    fn faulted_escape_routes_stay_acyclic() {
        for (radix, dims) in [(6u32, 1u32), (4, 2), (3, 3)] {
            let m = torus(radix, dims);
            // One dead + channel per dimension-0 ring coordinate 1.
            let mut plan = FaultPlan::new();
            let mut coords = vec![0u32; dims as usize];
            coords[0] = 1;
            plan = kill_channel(plan, &m, 1, &coords, 0, false);
            let fm = FaultedMesh::new(&m, &plan).unwrap();
            let mut paths = Vec::new();
            for s in 0..m.num_nodes() {
                for t in 0..m.num_nodes() {
                    if s != t {
                        let p = fm.escape_route(NodeId(s), NodeId(t));
                        assert!(p.edges().iter().all(|&e| !fm.dead()[e.idx()]));
                        assert!(p.edges().iter().all(|&e| m.is_escape_edge(e)));
                        paths.push(p);
                    }
                }
            }
            assert!(
                channel_dependency_graph(m.graph(), &paths).is_acyclic(),
                "faulted escape routes on {radix}^{dims} must stay acyclic"
            );
        }
    }

    #[test]
    fn candidates_filter_dead_edges() {
        let m = torus(4, 2);
        let plan = kill_channel(FaultPlan::new(), &m, 1, &[0, 0], 0, false);
        let fm = FaultedMesh::new(&m, &plan).unwrap();
        let mut cand = Vec::new();
        fm.candidates(m.node(&[0, 0]), m.node(&[1, 1]), true, &mut cand);
        assert!(!cand.is_empty());
        assert!(cand.iter().all(|&(e, _)| !fm.dead()[e.idx()]));
        // The unfaulted mesh offers strictly more candidates here.
        let mut full = Vec::new();
        m.adaptive_candidates(m.node(&[0, 0]), m.node(&[1, 1]), true, &mut full);
        assert!(full.len() > cand.len());
    }

    #[test]
    fn ring_safe_generators_always_yield_valid_faulted_meshes() {
        for seed in 0..20u64 {
            for (radix, dims) in [(4u32, 1u32), (4, 2), (3, 3)] {
                let m = torus(radix, dims);
                let b = FaultPlan::bernoulli_channels(&m, 0.3, 100, seed);
                let x = FaultPlan::exponential_channels(&m, 0.02, 100, seed);
                for plan in [b, x] {
                    let fm = FaultedMesh::new(&m, &plan)
                        .unwrap_or_else(|e| panic!("seed {seed} {radix}^{dims}: {e}"));
                    // Deterministic for a fixed seed.
                    let _ = fm;
                }
            }
        }
        // And reproducible: same seed, same plan.
        let m = torus(4, 2);
        assert_eq!(
            FaultPlan::bernoulli_channels(&m, 0.3, 50, 9),
            FaultPlan::bernoulli_channels(&m, 0.3, 50, 9)
        );
    }

    #[test]
    fn generic_generators_cover_edges() {
        let m = torus(4, 2);
        let g = m.graph();
        let plan = FaultPlan::bernoulli_links(g, 0.5, 10, 3);
        assert!(!plan.is_empty());
        plan.validate(g).unwrap();
        assert!(plan.events().iter().all(|ev| (1..=10).contains(&ev.at)));
        let exp = FaultPlan::exponential_links(g, 0.05, 10, 3);
        exp.validate(g).unwrap();
    }

    #[test]
    fn router_kill_expands_to_incident_edges() {
        let m = torus(4, 1);
        let g = m.graph();
        let plan = FaultPlan::new().kill_router(4, NodeId(1));
        let dead = plan.dead_edges(g);
        for e in g.edges() {
            let incident = g.src(e) == NodeId(1) || g.dst(e) == NodeId(1);
            assert_eq!(dead[e.idx()], incident, "{e:?}");
        }
        let sched = plan.edge_schedule(g);
        assert_eq!(sched.len(), dead.iter().filter(|&&d| d).count());
        assert!(sched.iter().all(|&(at, _)| at == 4));
        assert!(sched.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn edge_schedule_keeps_earliest_time() {
        let m = torus(4, 1);
        let g = m.graph();
        let e = EdgeId(0);
        let v = g.src(e);
        // Link killed at 9, then its router at 3: the edge dies at 3.
        let plan = FaultPlan::new().kill_link(9, e).kill_router(3, v);
        let sched = plan.edge_schedule(g);
        let (at, _) = sched.iter().find(|&&(_, id)| id == e.0).unwrap();
        assert_eq!(*at, 3);
    }
}
