//! Workload generators: random leveled networks and path sets with
//! controllable congestion `C` and dilation `D`.
//!
//! The network-independent results (Thm 2.1.6) are stated purely in terms of
//! `(L, C, D, B)`, so the experiment harness needs instances where `C` and
//! `D` can be dialed precisely (staggered-window instances on a long array)
//! as well as organically (random walks through random leveled networks,
//! where achieved `C` is measured afterwards).

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::graph::{EdgeId, Graph, GraphBuilder, NodeId};
use crate::path::{Path, PathSet};

/// A leveled network (paper §1.3.1): nodes carry levels `0..=depth` and all
/// edges go from level `i` to level `i+1`. Wormhole routing cannot deadlock
/// here (the channel graph is acyclic).
#[derive(Clone, Debug)]
pub struct LeveledNet {
    depth: u32,
    width: u32,
    graph: Graph,
}

impl LeveledNet {
    /// Random leveled network: `width` nodes per level, each node at level
    /// `i < depth` gets `out_degree` edges to *distinct* random nodes at
    /// level `i+1`.
    pub fn random(depth: u32, width: u32, out_degree: u32, seed: u64) -> Self {
        assert!(depth >= 1 && width >= 1);
        assert!(out_degree >= 1 && out_degree <= width);
        let mut rng = StdRng::seed_from_u64(seed);
        let node = |level: u32, i: u32| NodeId(level * width + i);
        let mut b = GraphBuilder::new(((depth + 1) * width) as usize);
        let mut targets: Vec<u32> = (0..width).collect();
        for level in 0..depth {
            for i in 0..width {
                targets.shuffle(&mut rng);
                for &t in targets.iter().take(out_degree as usize) {
                    b.add_edge(node(level, i), node(level + 1, t));
                }
            }
        }
        Self {
            depth,
            width,
            graph: b.build(),
        }
    }

    /// The underlying graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of edge levels.
    #[inline]
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Nodes per level.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Node at `(level, index)`.
    #[inline]
    pub fn node(&self, level: u32, i: u32) -> NodeId {
        NodeId(level * self.width + i)
    }

    /// Random full-depth walks: each message starts at a random level-0 node
    /// and follows uniformly random out-edges to the last level, giving
    /// dilation exactly `depth`. Congestion is emergent; measure it with
    /// [`PathSet::congestion`].
    pub fn random_walk_paths(&self, num_msgs: usize, seed: u64) -> PathSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut paths = Vec::with_capacity(num_msgs);
        for _ in 0..num_msgs {
            let mut cur = self.node(0, rng.random_range(0..self.width));
            let mut edges = Vec::with_capacity(self.depth as usize);
            for _ in 0..self.depth {
                let deg = self.graph.out_degree(cur);
                debug_assert!(deg > 0);
                let pick = rng.random_range(0..deg);
                let e = self.graph.out_edges(cur).nth(pick).expect("degree checked");
                edges.push(e);
                cur = self.graph.dst(e);
            }
            paths.push(Path::new(edges));
        }
        PathSet::new(paths)
    }
}

/// A controlled-`(C, D)` instance: a single directed chain of `d` edges
/// shared by `c` identical messages. This is the tightest possible instance
/// (`C = c`, `D = d`, conflict graph complete).
pub fn shared_chain_instance(c: u32, d: u32) -> (Graph, PathSet) {
    assert!(c >= 1 && d >= 1);
    let mut b = GraphBuilder::new(d as usize + 1);
    let edges: Vec<EdgeId> = (0..d)
        .map(|i| b.add_edge(NodeId(i), NodeId(i + 1)))
        .collect();
    let g = b.build();
    let paths = (0..c).map(|_| Path::new(edges.clone())).collect();
    (g, PathSet::new(paths))
}

/// Staggered-window instance on a long array: message `i` occupies edges
/// `[i·s, i·s + d)` of a chain, with stride `s = max(1, d / c)`. Every edge
/// is covered by at most `ceil(d / s)` messages, so congestion is `≈ c`
/// (exactly `min(c_eff, num_msgs)` in the steady interior) while keeping
/// many messages alive — a `C`-and-`D`-controlled workload with nontrivial
/// structure.
pub fn staggered_instance(c: u32, d: u32, num_msgs: u32) -> (Graph, PathSet) {
    assert!(c >= 1 && d >= 1 && num_msgs >= 1);
    let stride = (d / c).max(1);
    let chain_len = stride as u64 * (num_msgs as u64 - 1) + d as u64;
    assert!(chain_len < u32::MAX as u64, "instance too long");
    let chain_len = chain_len as u32;
    let mut b = GraphBuilder::new(chain_len as usize + 1);
    let edges: Vec<EdgeId> = (0..chain_len)
        .map(|i| b.add_edge(NodeId(i), NodeId(i + 1)))
        .collect();
    let g = b.build();
    let mut paths = Vec::with_capacity(num_msgs as usize);
    for i in 0..num_msgs {
        let start = (i * stride) as usize;
        paths.push(Path::new(edges[start..start + d as usize].to_vec()));
    }
    (g, PathSet::new(paths))
}

/// Random permutation pairs `(src, dst)` over `0..n` with a seeded RNG —
/// workload helper shared by several experiments.
pub fn random_permutation(n: u32, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut perm: Vec<u32> = (0..n).collect();
    perm.shuffle(&mut rng);
    perm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leveled_net_structure() {
        let net = LeveledNet::random(5, 8, 2, 7);
        let g = net.graph();
        assert_eq!(g.num_nodes(), 48);
        assert_eq!(g.num_edges(), 5 * 8 * 2);
        assert!(g.is_acyclic());
        // All edges go one level down.
        for e in g.edges() {
            assert_eq!(g.dst(e).0 / 8, g.src(e).0 / 8 + 1);
        }
    }

    #[test]
    fn random_walks_have_exact_dilation() {
        let net = LeveledNet::random(6, 4, 2, 1);
        let ps = net.random_walk_paths(20, 2);
        assert_eq!(ps.len(), 20);
        ps.validate(net.graph()).unwrap();
        assert_eq!(ps.dilation(), 6);
        for p in ps.paths() {
            assert_eq!(p.len(), 6);
        }
    }

    #[test]
    fn random_walks_deterministic_per_seed() {
        let net = LeveledNet::random(4, 4, 2, 3);
        let a = net.random_walk_paths(10, 9);
        let b = net.random_walk_paths(10, 9);
        for (pa, pb) in a.paths().iter().zip(b.paths()) {
            assert_eq!(pa, pb);
        }
        let c = net.random_walk_paths(10, 10);
        assert!(a.paths().iter().zip(c.paths()).any(|(x, y)| x != y));
    }

    #[test]
    fn shared_chain_has_exact_parameters() {
        let (g, ps) = shared_chain_instance(7, 13);
        assert_eq!(ps.congestion(&g), 7);
        assert_eq!(ps.dilation(), 13);
        ps.validate(&g).unwrap();
    }

    #[test]
    fn staggered_instance_parameters() {
        let (g, ps) = staggered_instance(8, 32, 64);
        ps.validate(&g).unwrap();
        assert_eq!(ps.dilation(), 32);
        let c = ps.congestion(&g);
        assert!(c <= 8, "congestion {c} exceeds target");
        assert!(c >= 7, "congestion {c} far below target");
        assert_eq!(ps.len(), 64);
    }

    #[test]
    fn staggered_handles_c_greater_than_d() {
        let (g, ps) = staggered_instance(16, 4, 32);
        ps.validate(&g).unwrap();
        // stride clamps to 1, so congestion is min(d/1, ...) = 4-ish window
        // overlap; just check validity and dilation.
        assert_eq!(ps.dilation(), 4);
        assert!(ps.congestion(&g) <= 16);
    }

    #[test]
    fn permutation_is_permutation() {
        let p = random_permutation(100, 5);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_eq!(p, random_permutation(100, 5));
        assert_ne!(p, random_permutation(100, 6));
    }
}
