//! Butterfly networks (paper §1.2, Fig. 1) and the unrolled two-pass
//! butterfly used by the §3.1 routing algorithm (Fig. 2).
//!
//! An `n`-input butterfly (`n = 2^k`) has `k+1` levels of `n` nodes. Node
//! `(w, i)` is linked to `(w', i+1)` iff `w' = w` (a *straight* edge) or `w`
//! and `w'` differ exactly in bit position `i+1` (a *cross* edge), with bit
//! positions numbered 1 through `k` from the most significant bit — the
//! convention of the paper. Between any input `(w, 0)` and output `(x, k)`
//! there is a unique path: at each level the crossing bit is corrected
//! toward the destination.
//!
//! The *two-pass* variant concatenates two butterflies (`2k` edge levels):
//! the §3.1 algorithm routes each message to a random column at level `k`,
//! then onward to its true destination. First-pass and second-pass edges are
//! distinct, matching the analysis in Lemma 3.1.3 (see DESIGN.md §4.6).

use crate::graph::{EdgeId, Graph, GraphBuilder, NodeId};
use crate::path::Path;

/// A butterfly network with one or two passes of `k` edge-levels over
/// `n = 2^k` columns.
#[derive(Clone, Debug)]
pub struct Butterfly {
    k: u32,
    passes: u32,
    graph: Graph,
}

impl Butterfly {
    /// Builds a single-pass `2^k`-input butterfly (`k ≥ 1`).
    pub fn new(k: u32) -> Self {
        Self::build(k, 1)
    }

    /// Builds the unrolled two-pass butterfly (`2k` edge levels).
    pub fn two_pass(k: u32) -> Self {
        Self::build(k, 2)
    }

    fn build(k: u32, passes: u32) -> Self {
        assert!(k >= 1, "butterfly needs at least one level of edges");
        assert!(k <= 26, "butterfly of 2^{k} columns is too large");
        let n = 1u32 << k;
        let levels = passes * k;
        let mut b = GraphBuilder::new(((levels + 1) * n) as usize);
        for i in 0..levels {
            let mask = 1u32 << (k - 1 - (i % k));
            for w in 0..n {
                let src = NodeId(i * n + w);
                // Straight edge first, then cross edge: the edge id layout
                // `2*(i*n + w) + {0,1}` is relied upon by `edge()`.
                b.add_edge(src, NodeId((i + 1) * n + w));
                b.add_edge(src, NodeId((i + 1) * n + (w ^ mask)));
            }
        }
        Self {
            k,
            passes,
            graph: b.build(),
        }
    }

    /// `log2` of the number of inputs.
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of inputs (= columns), `n = 2^k`.
    #[inline]
    pub fn n_inputs(&self) -> u32 {
        1 << self.k
    }

    /// Number of passes (1 or 2).
    #[inline]
    pub fn passes(&self) -> u32 {
        self.passes
    }

    /// Number of edge levels (`k` per pass).
    #[inline]
    pub fn num_levels(&self) -> u32 {
        self.passes * self.k
    }

    /// The underlying graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Node at `(col, level)`, `0 ≤ level ≤ num_levels()`.
    #[inline]
    pub fn node(&self, col: u32, level: u32) -> NodeId {
        debug_assert!(col < self.n_inputs() && level <= self.num_levels());
        NodeId(level * self.n_inputs() + col)
    }

    /// Column of a node.
    #[inline]
    pub fn col_of(&self, v: NodeId) -> u32 {
        v.0 % self.n_inputs()
    }

    /// Level of a node.
    #[inline]
    pub fn level_of(&self, v: NodeId) -> u32 {
        v.0 / self.n_inputs()
    }

    /// Input node of a column (level 0).
    #[inline]
    pub fn input(&self, col: u32) -> NodeId {
        self.node(col, 0)
    }

    /// Output node of a column (last level).
    #[inline]
    pub fn output(&self, col: u32) -> NodeId {
        self.node(col, self.num_levels())
    }

    /// The edge leaving `(col, level)`: straight (`cross = false`) or cross.
    #[inline]
    pub fn edge(&self, col: u32, level: u32, cross: bool) -> EdgeId {
        debug_assert!(level < self.num_levels());
        EdgeId(2 * (level * self.n_inputs() + col) + cross as u32)
    }

    /// The bit mask flipped by cross edges leaving `level`.
    #[inline]
    fn cross_mask(&self, level: u32) -> u32 {
        1 << (self.k - 1 - (level % self.k))
    }

    /// Greedy (bit-correcting) edge sequence from column `src_col` at level
    /// `from_level` to column `dst_col` at level `from_level + k`. This is
    /// the unique path between those nodes within one pass.
    fn greedy_segment(&self, src_col: u32, dst_col: u32, from_level: u32, out: &mut Vec<EdgeId>) {
        debug_assert!(from_level.is_multiple_of(self.k));
        let mut col = src_col;
        for i in from_level..from_level + self.k {
            let mask = self.cross_mask(i);
            let cross = (col & mask) != (dst_col & mask);
            out.push(self.edge(col, i, cross));
            if cross {
                col ^= mask;
            }
        }
        debug_assert_eq!(col, dst_col);
    }

    /// The unique single-pass path from input `src_col` to the column
    /// `dst_col` at level `k`. Panics on a two-pass butterfly if you want a
    /// full route — use [`Butterfly::two_pass_path`] there.
    pub fn greedy_path(&self, src_col: u32, dst_col: u32) -> Path {
        let mut edges = Vec::with_capacity(self.k as usize);
        self.greedy_segment(src_col, dst_col, 0, &mut edges);
        Path::new(edges)
    }

    /// Two-pass route (Fig. 2): input `src_col` → random intermediate
    /// `mid_col` at level `k` → output `dst_col` at level `2k`. Requires a
    /// two-pass butterfly.
    pub fn two_pass_path(&self, src_col: u32, mid_col: u32, dst_col: u32) -> Path {
        assert_eq!(self.passes, 2, "two_pass_path needs a two-pass butterfly");
        let mut edges = Vec::with_capacity(2 * self.k as usize);
        self.greedy_segment(src_col, mid_col, 0, &mut edges);
        self.greedy_segment(mid_col, dst_col, self.k, &mut edges);
        Path::new(edges)
    }

    /// The level crossed by the `j`-th edge of any path starting at level 0
    /// (paths here are level-aligned: edge `j` spans levels `j → j+1`).
    #[inline]
    pub fn edge_level(&self, e: EdgeId) -> u32 {
        e.0 / (2 * self.n_inputs())
    }

    /// ASCII rendering of a small single-pass butterfly (Fig. 1 for `k=3`).
    /// Columns run left to right, levels top to bottom; `|` marks straight
    /// edges and the `\ /` pairs mark cross pairs within each block.
    pub fn ascii_art(&self) -> String {
        let n = self.n_inputs();
        assert!(n <= 16, "ascii rendering only for small butterflies");
        let mut s = String::new();
        for level in 0..=self.num_levels() {
            for col in 0..n {
                s.push_str(&format!("({col:>2},{level}) "));
            }
            s.push('\n');
            if level < self.num_levels() {
                let mask = self.cross_mask(level);
                for col in 0..n {
                    let partner = col ^ mask;
                    let c = if partner > col { '\\' } else { '/' };
                    s.push_str(&format!("  |{c}   "));
                }
                s.push('\n');
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_counts_match_paper() {
        // An n-input butterfly has n(log n + 1) nodes (paper §1.2).
        for k in 1..=6 {
            let bf = Butterfly::new(k);
            let n = 1usize << k;
            assert_eq!(bf.graph().num_nodes(), n * (k as usize + 1));
            // Each of the k levels contributes 2n edges.
            assert_eq!(bf.graph().num_edges(), 2 * n * k as usize);
        }
    }

    #[test]
    fn edges_link_adjacent_levels_with_correct_bits() {
        let bf = Butterfly::new(4);
        let g = bf.graph();
        for e in g.edges() {
            let (s, d) = (g.src(e), g.dst(e));
            let (ls, ld) = (bf.level_of(s), bf.level_of(d));
            assert_eq!(ld, ls + 1);
            let (cs, cd) = (bf.col_of(s), bf.col_of(d));
            let diff = cs ^ cd;
            assert!(diff == 0 || diff == bf.cross_mask(ls), "bad cross bit");
        }
    }

    #[test]
    fn edge_accessor_matches_graph() {
        let bf = Butterfly::new(3);
        let g = bf.graph();
        for level in 0..bf.num_levels() {
            for col in 0..bf.n_inputs() {
                for cross in [false, true] {
                    let e = bf.edge(col, level, cross);
                    assert_eq!(g.src(e), bf.node(col, level));
                    let expect_col = if cross {
                        col ^ bf.cross_mask(level)
                    } else {
                        col
                    };
                    assert_eq!(g.dst(e), bf.node(expect_col, level + 1));
                }
            }
        }
    }

    #[test]
    fn greedy_path_reaches_destination_and_is_unique() {
        let bf = Butterfly::new(4);
        let g = bf.graph();
        for src in 0..bf.n_inputs() {
            for dst in 0..bf.n_inputs() {
                let p = bf.greedy_path(src, dst);
                p.validate(g).unwrap();
                assert_eq!(p.len(), 4);
                assert_eq!(p.src(g), bf.input(src));
                assert_eq!(p.dst(g), bf.output(dst));
            }
        }
        // Uniqueness: the greedy path must coincide with BFS shortest path
        // and have length exactly k (all input→output paths have length k).
        let p = bf.greedy_path(3, 12);
        let sp = g.shortest_path(bf.input(3), bf.output(12)).unwrap();
        assert_eq!(p.edges(), &sp[..]);
    }

    #[test]
    fn two_pass_path_visits_intermediate() {
        let bf = Butterfly::two_pass(3);
        let g = bf.graph();
        let p = bf.two_pass_path(5, 2, 7);
        p.validate(g).unwrap();
        assert_eq!(p.len(), 6);
        assert_eq!(p.src(g), bf.input(5));
        assert_eq!(p.dst(g), bf.output(7));
        // After k edges the path must sit at (mid, k).
        let mid_node = g.dst(p.edges()[2]);
        assert_eq!(bf.level_of(mid_node), 3);
        assert_eq!(bf.col_of(mid_node), 2);
    }

    #[test]
    fn two_pass_passes_are_disjoint_edge_sets() {
        let bf = Butterfly::two_pass(3);
        let p = bf.two_pass_path(0, 7, 0);
        let (first, second) = p.edges().split_at(3);
        for e in first {
            assert!(bf.edge_level(*e) < 3);
        }
        for e in second {
            assert!(bf.edge_level(*e) >= 3);
        }
    }

    #[test]
    fn butterfly_is_leveled_and_acyclic() {
        assert!(Butterfly::new(5).graph().is_acyclic());
        assert!(Butterfly::two_pass(4).graph().is_acyclic());
    }

    #[test]
    fn edge_level_matches_src_level() {
        let bf = Butterfly::two_pass(3);
        let g = bf.graph();
        for e in g.edges() {
            assert_eq!(bf.edge_level(e), bf.level_of(g.src(e)));
        }
    }

    #[test]
    fn ascii_art_renders_fig1() {
        let bf = Butterfly::new(3);
        let art = bf.ascii_art();
        // 4 node rows + 3 connector rows.
        assert_eq!(art.lines().count(), 7);
        assert!(art.contains("( 0,0)"));
        assert!(art.contains("( 7,3)"));
    }

    #[test]
    fn every_edge_carries_the_same_number_of_paths() {
        // An edge spanning levels i → i+1 is used by 2^i sources (bits 1..i
        // of the source are free) times 2^(k-i-1) destinations (bits i+2..k
        // of the destination are free) = 2^(k-1) full paths — the counting
        // fact behind Lemma 3.1.3. Verify by brute force for k = 3.
        let bf = Butterfly::new(3);
        let mut uses = vec![0u32; bf.graph().num_edges()];
        for src in 0..8 {
            for dst in 0..8 {
                for &e in bf.greedy_path(src, dst).edges() {
                    uses[e.idx()] += 1;
                }
            }
        }
        for e in bf.graph().edges() {
            assert_eq!(uses[e.idx()], 4, "each edge carries 2^(k-1) paths");
        }
    }
}
