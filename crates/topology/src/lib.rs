//! Network topologies and path analysis for the Cole–Maggs–Sitaraman
//! wormhole-routing reproduction.
//!
//! This crate provides every network substrate the paper touches:
//!
//! * a flat CSR [`graph::Graph`] with dense node/edge ids,
//! * [`path::Path`] / [`path::PathSet`] with the congestion–dilation
//!   analysis of §1.1,
//! * [`butterfly::Butterfly`] networks (Fig. 1) including the unrolled
//!   two-pass variant used by the §3.1 algorithm (Fig. 2),
//! * the [`lowerbound`] construction of Theorem 2.2.1,
//! * [`mesh::Mesh`] / [`hypercube::Hypercube`] substrates from the related
//!   work the paper compares against — tori optionally carry the two-class
//!   Dally–Seitz dateline routing graph
//!   ([`mesh::RoutingDiscipline::DatelineClasses`]) whose
//!   dimension-order routes are deadlock-free by construction,
//! * [`adaptive`] — the [`adaptive::AdaptiveRouter`] abstraction for
//!   per-hop adaptive route selection over an adaptive VC lane with
//!   Dally–Seitz escape channels
//!   ([`mesh::RoutingDiscipline::AdaptiveEscape`]), and
//! * [`random_nets`] workload generators with controllable `C` and `D`.
//!
//! # Example
//!
//! ```
//! use wormhole_topology::butterfly::Butterfly;
//!
//! let bf = Butterfly::new(3); // the 8-input butterfly of Fig. 1
//! assert_eq!(bf.graph().num_nodes(), 8 * 4);
//! let path = bf.greedy_path(0b101, 0b010);
//! assert_eq!(path.len(), 3); // unique input→output path has log n edges
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod benes;
pub mod butterfly;
pub mod dateline;
pub mod fault;
pub mod graph;
pub mod hypercube;
pub mod lowerbound;
pub mod mesh;
pub mod path;
pub mod random_nets;
pub mod region;
pub mod subsets;

pub use adaptive::AdaptiveRouter;
pub use dateline::channel_dependency_graph;
pub use fault::{FaultError, FaultEvent, FaultPlan, FaultTarget, FaultedMesh};
pub use graph::{EdgeId, Graph, GraphBuilder, NodeId};
pub use mesh::RoutingDiscipline;
pub use path::{Path, PathError, PathSet};
pub use region::RegionPlan;
