//! Plain-text tables for the experiment output (also valid Markdown).

use std::fmt::Write as _;

/// A column-aligned table with a title and optional footnotes.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Appends a row where some outcome columns may not apply — `None`
    /// renders as `-`. Mixed simulated/analytic sweeps need this: a
    /// bound-only row has no saturation verdict, a simulated row has no
    /// certificate column, yet both live in one table.
    pub fn row_opt(&mut self, cells: &[Option<String>]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(
            cells
                .iter()
                .map(|c| c.clone().unwrap_or_else(|| "-".into()))
                .collect(),
        );
        self
    }

    /// Appends a footnote line.
    pub fn note(&mut self, s: impl Into<String>) -> &mut Self {
        self.notes.push(s.into());
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Renders as a Markdown-compatible aligned table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "### {}", self.title);
        out.push('\n');
        let line = |cells: &[String], width: &[usize], out: &mut String| {
            out.push('|');
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, " {:>w$} |", c, w = width[i]);
            }
            out.push('\n');
        };
        line(&self.headers, &width, &mut out);
        out.push('|');
        for w in &width {
            let _ = write!(out, "{}|", "-".repeat(w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            line(row, &width, &mut out);
        }
        for n in &self.notes {
            let _ = writeln!(out, "\n> {n}");
        }
        out
    }
}

/// Formats a float compactly (3 significant-ish digits).
pub fn fnum(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

/// Builds a row from display-able cells (an array, so `&cells!(..)`
/// coerces straight to `&[String]`).
#[macro_export]
macro_rules! cells {
    ($($x:expr),* $(,)?) => {
        [$(($x).to_string()),*]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_and_is_markdown() {
        let mut t = Table::new("Demo", &["B", "steps"]);
        t.row(&cells!(1, 100));
        t.row(&cells!(2, 42));
        t.note("measured on seed 0");
        let s = t.render();
        assert!(s.contains("### Demo"));
        assert!(s.contains("| B | steps |"));
        assert!(s.contains("| 2 |    42 |"));
        assert!(s.contains("> measured"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn row_arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&cells!(1));
    }

    #[test]
    fn optional_cells_render_as_dashes() {
        let mut t = Table::new("Mixed", &["row", "p99", "bound", "saturated"]);
        t.row_opt(&[
            Some("sim".into()),
            Some("12.5".into()),
            None,
            Some("no".into()),
        ]);
        t.row_opt(&[Some("analytic".into()), None, Some("40.0".into()), None]);
        let s = t.render();
        assert!(s.contains("| analytic |    - |  40.0 |         - |"), "{s}");
        assert!(s.contains("|      sim | 12.5 |     - |        no |"), "{s}");
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn row_opt_arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row_opt(&[None]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(6.54321), "6.543");
        assert_eq!(fnum(42.4242), "42.4");
        assert_eq!(fnum(123456.7), "123457");
    }
}
