//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (DESIGN.md §5 maps experiment ids to claims).
//!
//! Run `cargo run --release -p wormhole-harness --bin experiments -- all`
//! to print every table; pass an id (`e1`..`e9`, `f1`, `f2`, `x1`..`x8`)
//! for one (the README carries the full catalog with one-line purposes
//! and key figures). `x2` is the open-loop traffic family:
//! latency-vs-offered-load curves over the `wormhole-workloads` pattern
//! suite; `x8` compares oblivious vs minimal- vs fully-adaptive route
//! selection on the three-class escape torus.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod stats;
pub mod sweep;
pub mod table;

pub use experiments::{all_ids, run_by_id};
pub use table::Table;
