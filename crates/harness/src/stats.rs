//! Summary statistics and log–log scaling fits for the experiment tables.

/// Summary of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (`n−1` denominator; 0 for n ≤ 1).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a slice (empty slices produce a zeroed summary).
    pub fn of(xs: &[f64]) -> Self {
        let n = xs.len();
        if n == 0 {
            return Self {
                n: 0,
                mean: 0.0,
                std: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        Self {
            n,
            mean,
            std: var.sqrt(),
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// Least-squares line `y = a + b·x`; returns `(a, b)`.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    assert!(sxx > 0.0, "x values are constant");
    let b = sxy / sxx;
    (my - b * mx, b)
}

/// Fits `y ≈ c·x^e` by regressing `ln y` on `ln x`; returns the exponent
/// `e`. All inputs must be positive.
pub fn power_law_exponent(xs: &[f64], ys: &[f64]) -> f64 {
    let lx: Vec<f64> = xs.iter().map(|&x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|&y| y.ln()).collect();
    linear_fit(&lx, &ly).1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!((s.min, s.max), (1.0, 4.0));
    }

    #[test]
    fn summary_degenerate() {
        assert_eq!(Summary::of(&[]).n, 0);
        let one = Summary::of(&[7.0]);
        assert_eq!(one.std, 0.0);
        assert_eq!(one.mean, 7.0);
    }

    #[test]
    fn linear_fit_exact() {
        let (a, b) = linear_fit(&[0.0, 1.0, 2.0], &[1.0, 3.0, 5.0]);
        assert!((a - 1.0).abs() < 1e-12);
        assert!((b - 2.0).abs() < 1e-12);
    }

    #[test]
    fn power_law_recovers_exponent() {
        let xs = [2.0f64, 4.0, 8.0, 16.0];
        let ys: Vec<f64> = xs.iter().map(|x: &f64| 3.0 * x.powf(1.5)).collect();
        assert!((power_law_exponent(&xs, &ys) - 1.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "constant")]
    fn fit_rejects_constant_x() {
        linear_fit(&[1.0, 1.0], &[1.0, 2.0]);
    }
}
