//! Parallel parameter sweeps using std scoped threads.
//!
//! Experiments evaluate many independent `(parameters, seed)` points; this
//! helper fans them across cores while keeping results in input order
//! (determinism of the tables does not depend on thread scheduling).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Maps `f` over `inputs` in parallel, preserving order. Spawns at most
/// `threads` workers (clamped to the input length, min 1).
///
/// Work items are claimed through an atomic cursor; each worker sends its
/// `(index, result)` pairs over a channel and the caller scatters them into
/// a dense result vector — no locks anywhere on the hot path, and output
/// order is the input order regardless of thread scheduling.
pub fn parallel_map<T, R, F>(inputs: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return inputs.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let (f, inputs, next) = (&f, &inputs, &next);
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // A send error means the receiver is gone, which only
                // happens if the scope is unwinding; stop quietly.
                if tx.send((i, f(&inputs[i]))).is_err() {
                    break;
                }
            });
        }
        drop(tx); // the scope's clones are the only remaining senders
        for (i, r) in rx {
            debug_assert!(results[i].is_none(), "slot {i} written twice");
            results[i] = Some(r);
        }
    });
    results
        .into_iter()
        .map(|c| c.expect("every slot filled by a worker"))
        .collect()
}

/// Default worker count: available parallelism minus one (leave a core for
/// the harness), at least 1.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get().saturating_sub(1).max(1))
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let inputs: Vec<u64> = (0..100).collect();
        let out = parallel_map(inputs, 8, |&x| x * x);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i * i) as u64);
        }
    }

    #[test]
    fn single_thread_path() {
        let out = parallel_map(vec![1, 2, 3], 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map(vec![5], 64, |&x| x * 2);
        assert_eq!(out, vec![10]);
    }

    #[test]
    fn uneven_work_still_lands_in_order() {
        // Early indices take longest: without indexed collection the fast
        // tail items would land first and scramble the output.
        let inputs: Vec<u64> = (0..32).collect();
        let out = parallel_map(inputs, 8, |&x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(10 - 2 * x));
            }
            x * 3
        });
        assert_eq!(out, (0..32).map(|x| x * 3).collect::<Vec<u64>>());
    }

    #[test]
    fn non_clone_results_supported() {
        // R only needs Send: boxed values exercise the move path.
        let out = parallel_map((0..10).collect::<Vec<u32>>(), 4, |&x| Box::new(x + 1));
        assert_eq!(out.len(), 10);
        assert_eq!(*out[9], 10);
    }
}
