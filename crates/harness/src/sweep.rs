//! Parallel parameter sweeps using crossbeam scoped threads.
//!
//! Experiments evaluate many independent `(parameters, seed)` points; this
//! helper fans them across cores while keeping results in input order
//! (determinism of the tables does not depend on thread scheduling).

/// Maps `f` over `inputs` in parallel, preserving order. Spawns at most
/// `threads` workers (clamped to the input length, min 1).
pub fn parallel_map<T, R, F>(inputs: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return inputs.iter().map(|t| f(t)).collect();
    }
    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    let next = std::sync::atomic::AtomicUsize::new(0);
    // Hand each worker exclusive slices via a mutex-free claim of indices:
    // collect (index, &input) work items behind an atomic cursor and write
    // into disjoint result slots through a lock guarded by index ownership.
    let result_cells: Vec<std::sync::Mutex<Option<R>>> =
        results.drain(..).map(std::sync::Mutex::new).collect();
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&inputs[i]);
                *result_cells[i].lock().unwrap() = Some(r);
            });
        }
    })
    .expect("sweep worker panicked");
    result_cells
        .into_iter()
        .map(|c| c.into_inner().unwrap().expect("slot not filled"))
        .collect()
}

/// Default worker count: available parallelism minus one (leave a core for
/// the harness), at least 1.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get().saturating_sub(1).max(1))
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let inputs: Vec<u64> = (0..100).collect();
        let out = parallel_map(inputs, 8, |&x| x * x);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i * i) as u64);
        }
    }

    #[test]
    fn single_thread_path() {
        let out = parallel_map(vec![1, 2, 3], 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map(vec![5], 64, |&x| x * 2);
        assert_eq!(out, vec![10]);
    }
}
