//! CLI that regenerates the paper's tables and figures.
//!
//! ```text
//! experiments all            # every experiment, full-size sweeps
//! experiments e1 e3          # selected experiments
//! experiments --fast all     # reduced sweeps (CI-sized)
//! ```

use std::time::Instant;

use wormhole_harness::experiments::{all_ids, run_by_id};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let ids: Vec<String> = args.into_iter().filter(|a| a != "--fast").collect();
    let ids: Vec<String> = if ids.is_empty() || ids.iter().any(|a| a == "all") {
        all_ids().iter().map(|s| s.to_string()).collect()
    } else {
        ids
    };

    println!("# Wormhole virtual-channel reproduction — experiment report");
    println!(
        "\nMode: {} | seeds fixed | times in flit steps unless noted\n",
        if fast { "fast" } else { "full" }
    );
    let t0 = Instant::now();
    for id in &ids {
        let started = Instant::now();
        match run_by_id(id, fast) {
            Some((preamble, tables)) => {
                println!("\n---\n\n## Experiment {}\n", id.to_uppercase());
                if !preamble.is_empty() {
                    println!("{preamble}");
                }
                for t in &tables {
                    println!("{}", t.render());
                }
                eprintln!("[{id}] done in {:.1?}", started.elapsed());
            }
            None => {
                eprintln!("unknown experiment id: {id}");
                std::process::exit(2);
            }
        }
    }
    eprintln!("total: {:.1?}", t0.elapsed());
}
