//! CLI that regenerates the paper's tables and figures.
//!
//! ```text
//! experiments all            # every experiment, full-size sweeps
//! experiments e1 e3          # selected experiments
//! experiments --fast all     # reduced sweeps (CI-sized)
//! experiments --threads 2 x13  # x13 with a single-entry worker ladder
//! experiments bench-json     # time fast x2/x7/x9–x13 → BENCH_sim.json
//! ```

use std::time::Instant;

use wormhole_flitsim::config::Engine;
use wormhole_harness::experiments::{
    all_ids, run_by_id, x10_bounds, x11_closed_loop, x12_faults, x13_parallel, x2_open_loop,
    x7_dateline, x9_dynamic_vcs,
};

/// Times the fast x2/x7/x9/x11/x12 families on both simulator engines and writes
/// the wall-clock trajectory record (`BENCH_sim.json` unless a path is
/// given). Committed once per perf-relevant PR so regressions have a
/// baseline.
fn bench_json(out_path: &str) {
    let engines = [(Engine::EventDriven, "event"), (Engine::Legacy, "legacy")];
    // (family, engine, wall_ms, speedup-vs-1-worker) — the speedup
    // column only exists on parallel rows, so a 2t-slower-than-1t
    // regression shows up as `"speedup": 0.xx` in the JSON diff
    // instead of hiding in raw wall clocks.
    let mut rows: Vec<(&str, &str, f64, Option<f64>)> = Vec::new();
    for (engine, ename) in engines {
        let t0 = Instant::now();
        let points = x2_open_loop::sweep_points_with(true, engine);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        assert!(!points.is_empty());
        eprintln!("[bench-json] x2 {ename}: {ms:.3} ms");
        rows.push(("x2", ename, ms, None));

        let t0 = Instant::now();
        let tables = x7_dateline::run_with(true, engine);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        assert!(!tables.is_empty());
        eprintln!("[bench-json] x7 {ename}: {ms:.3} ms");
        rows.push(("x7", ename, ms, None));

        let t0 = Instant::now();
        let points = x9_dynamic_vcs::sweep_points_with(true, engine);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        assert!(!points.is_empty());
        eprintln!("[bench-json] x9 {ename}: {ms:.3} ms");
        rows.push(("x9", ename, ms, None));

        // x11 exercises the pull-based source path on both arms: replay
        // sources on the open sweep, reactive closed-loop sources (with
        // the event engine's batched fast-forwards disabled) on the
        // window sweep.
        let t0 = Instant::now();
        let points = x11_closed_loop::sweep_points_with(true, engine);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        assert!(!points.is_empty());
        eprintln!("[bench-json] x11 {ename}: {ms:.3} ms");
        rows.push(("x11", ename, ms, None));

        // x12 times the fault machinery: the kill phase, severed-worm
        // sweeps, and fault-filtered adaptive routing across the
        // fault-rate × selection × VC-arm grid.
        let t0 = Instant::now();
        let points = x12_faults::sweep_points_with(true, engine);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        assert!(!points.is_empty());
        eprintln!("[bench-json] x12 {ename}: {ms:.3} ms");
        rows.push(("x12", ename, ms, None));
    }

    // x10 splits along a different axis than the simulator engines: the
    // cross-validation sweep simulates (event engine), the frontier scan
    // is pure bound computation — the "no-simulation" arm of the crate.
    let t0 = Instant::now();
    let points = x10_bounds::sweep_points(true);
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(!points.is_empty());
    eprintln!("[bench-json] x10 sim: {ms:.3} ms");
    rows.push(("x10", "sim", ms, None));

    let t0 = Instant::now();
    let points = x10_bounds::analytic_points(true);
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(!points.is_empty());
    eprintln!("[bench-json] x10 analytic: {ms:.3} ms");
    rows.push(("x10", "analytic", ms, None));

    // x13 times the partitioned engine itself against its sequential
    // baseline on the fast scaling sweep (which now includes the
    // large-torus strong-scaling arm); the 4-worker row is the one CI
    // smoke-runs. Each parallel row carries its speedup vs the
    // 1-worker row.
    let mut one_worker_ms = None;
    for workers in [1u32, 2, 4] {
        let t0 = Instant::now();
        let points = x13_parallel::sweep_points_with(true, &[workers]);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        assert!(!points.is_empty());
        let ename: &'static str = match workers {
            1 => "parallel-1t",
            2 => "parallel-2t",
            _ => "parallel-4t",
        };
        if workers == 1 {
            one_worker_ms = Some(ms);
        }
        let speedup = one_worker_ms.map(|t1| t1 / ms);
        eprintln!("[bench-json] x13 {ename}: {ms:.3} ms");
        rows.push(("x13", ename, ms, speedup));
    }
    let mut json = String::from("{\n  \"benchmark\": \"experiments bench-json\",\n  \"mode\": \"fast\",\n  \"unit\": \"wall_ms\",\n  \"families\": [\n");
    for (i, (family, engine, ms, speedup)) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        let speedup = speedup
            .map(|s| format!(", \"speedup\": {s:.3}"))
            .unwrap_or_default();
        json.push_str(&format!(
            "    {{ \"family\": \"{family}\", \"engine\": \"{engine}\", \"wall_ms\": {ms:.3}{speedup} }}{sep}\n"
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(out_path, json).expect("write bench json");
    eprintln!("[bench-json] wrote {out_path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("bench-json") {
        // bench-json always times the fast families; tolerate a stray
        // --fast and never mistake a flag for the output path.
        let out = args
            .iter()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .map(String::as_str)
            .unwrap_or("BENCH_sim.json");
        bench_json(out);
        return;
    }
    let fast = args.iter().any(|a| a == "--fast");
    // `--threads N` narrows x13's worker ladder to a single entry (the
    // CI smoke run uses `--threads 4`); other experiments ignore it.
    let threads: Option<u32> = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--threads takes a positive integer"));
    let mut skip_next = false;
    let ids: Vec<String> = args
        .into_iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if a == "--threads" {
                skip_next = true;
                return false;
            }
            a != "--fast"
        })
        .collect();
    let ids: Vec<String> = if ids.is_empty() || ids.iter().any(|a| a == "all") {
        all_ids().iter().map(|s| s.to_string()).collect()
    } else {
        ids
    };

    println!("# Wormhole virtual-channel reproduction — experiment report");
    println!(
        "\nMode: {} | seeds fixed | times in flit steps unless noted\n",
        if fast { "fast" } else { "full" }
    );
    let t0 = Instant::now();
    for id in &ids {
        let started = Instant::now();
        let result = match threads {
            Some(n) if id == "x13" => Some((String::new(), x13_parallel::run_with(fast, &[n]))),
            _ => run_by_id(id, fast),
        };
        match result {
            Some((preamble, tables)) => {
                println!("\n---\n\n## Experiment {}\n", id.to_uppercase());
                if !preamble.is_empty() {
                    println!("{preamble}");
                }
                for t in &tables {
                    println!("{}", t.render());
                }
                eprintln!("[{id}] done in {:.1?}", started.elapsed());
            }
            None => {
                eprintln!("unknown experiment id: {id}");
                std::process::exit(2);
            }
        }
    }
    eprintln!("total: {:.1?}", t0.elapsed());
}
