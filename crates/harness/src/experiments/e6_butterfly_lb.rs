//! E6 — §3.2: the one-pass butterfly lower bound.
//!
//! Two measurements: (a) Theorem 3.2.5's collision property — random
//! `s`-subsets of a random routing problem collide w.h.p. once `s` crosses
//! the threshold; (b) the phase-decomposition bound `T ≥ nqL/s` against the
//! measured makespan of a real one-pass greedy wormhole router.

use wormhole_baselines::greedy_wormhole::one_pass_butterfly;
use wormhole_core::butterfly::lower_bound::{
    collision_rate, one_pass_paths, phase_lower_bound, s_threshold,
};
use wormhole_core::butterfly::relation::QRelation;
use wormhole_topology::butterfly::Butterfly;

use crate::cells;
use crate::table::{fnum, Table};

/// Runs E6.
pub fn run(fast: bool) -> Vec<Table> {
    let (k, q, trials) = if fast {
        (6u32, 4u32, 100u32)
    } else {
        (9, 8, 400)
    };
    let n = 1u32 << k;
    let l = k; // L = log n
    let bf = Butterfly::new(k);
    let rel = QRelation::random_destinations(n, q, 42);
    let paths = one_pass_paths(&bf, &rel, None);
    let total = paths.len();

    // (a) collision rate vs subset size.
    let mut t1 = Table::new(
        format!("E6a — collision probability of random s-subsets (n={n}, q={q}, L={l})"),
        &[
            "B",
            "s threshold (Thm 3.2.5)",
            "s sampled",
            "collision rate",
        ],
    );
    let bs: &[u32] = if fast { &[1, 2] } else { &[1, 2, 3] };
    for &b in bs {
        let s_th = s_threshold(n, q, b, l);
        for frac in [0.25, 1.0] {
            let s = ((s_th * frac) as usize).clamp(b as usize + 1, total);
            let rate = collision_rate(&paths, s, b, trials, 7 + b as u64);
            t1.row(&cells!(b, fnum(s_th), s, fnum(rate)));
        }
    }
    t1.note("At and above the threshold the collision rate saturates at 1, as Thm 3.2.5 predicts (the threshold is far above the population at these n — every meaningful subset collides).");

    // (b) one-pass greedy makespan vs the phase bound.
    let mut t2 = Table::new(
        format!("E6b — one-pass greedy wormhole vs phase bound (n={n}, q={q}, L={l})"),
        &[
            "B",
            "measured T (flit steps)",
            "phase bound nqL/s",
            "measured/bound",
            "two-pass §3.1 T (for contrast)",
        ],
    );
    for &b in bs {
        let (res, _) = one_pass_butterfly(&bf, &rel, l, b, 9);
        let s_th = s_threshold(n, q, b, l).min(total as f64);
        let bound = phase_lower_bound(n, q, l, s_th);
        let two_pass = wormhole_core::butterfly::algorithm::route_q_relation(
            k,
            &rel,
            &wormhole_core::butterfly::algorithm::AlgoParams::new(b, l, 3),
        );
        t2.row(&cells!(
            b,
            res.total_steps,
            fnum(bound),
            fnum(res.total_steps as f64 / bound.max(1.0)),
            two_pass.flit_steps
        ));
    }
    t2.note("Measured one-pass times sit above the phase bound. (The §3.1 two-pass algorithm is *not* subject to this bound — it is not a one-pass algorithm.)");
    vec![t1, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_collision_saturates_and_bound_holds() {
        let tables = run(true);
        // Full-threshold rows must have collision rate 1.
        let s = tables[0].render();
        let full_rows: Vec<&str> = s.lines().filter(|r| r.starts_with('|')).skip(2).collect();
        assert!(!full_rows.is_empty());
        // Table b: measured/bound column ≥ 1 for all rows.
        let s2 = tables[1].render();
        for row in s2.lines().filter(|r| r.starts_with('|')).skip(2) {
            let cols: Vec<&str> = row.split('|').map(str::trim).collect();
            if cols.len() >= 5 {
                if let Ok(ratio) = cols[4].parse::<f64>() {
                    assert!(ratio >= 1.0, "one-pass bound violated: {row}");
                }
            }
        }
    }
}
