//! X4 (extension) — Valiant's two-phase trick (§1.3.3, \[47\]) on the
//! hypercube, and the VC-class requirement it drags in (Aiello et al. \[1\],
//! §1.3.4: bit-serial hypercube routing "requires the number of virtual
//! channels to be a small constant larger than one").
//!
//! Three arms on the transpose permutation (the `√n`-funnel adversary for
//! oblivious e-cube):
//!
//! * **e-cube, 1 class** — deadlock-free but congested;
//! * **Valiant, 1 class** — congestion fixed, but phase 2 re-enters low
//!   dimensions and the channel-dependency cycle **deadlocks** at `B = 1`;
//! * **Valiant, 2 classes** — phase 2 rides VC class 1: acyclic
//!   dependencies, deadlock-free at every `B`, and fast.

use wormhole_flitsim::config::{Arbitration, SimConfig};
use wormhole_flitsim::message::specs_from_paths;
use wormhole_flitsim::stats::Outcome;
use wormhole_flitsim::wormhole;
use wormhole_topology::hypercube::Hypercube;
use wormhole_topology::path::PathSet;

use crate::cells;
use crate::table::Table;

fn route(ps: &PathSet, g: &wormhole_topology::graph::Graph, l: u32, b: u32) -> (String, u64) {
    let specs = specs_from_paths(ps, l);
    let config = SimConfig::new(b)
        .arbitration(Arbitration::Random)
        .seed(31)
        .max_steps(1_000_000);
    let r = wormhole::run(g, &specs, &config);
    match r.outcome {
        Outcome::Completed => (r.total_steps.to_string(), r.total_steps),
        Outcome::Deadlock(_) => ("DEADLOCK".into(), u64::MAX),
        Outcome::MaxSteps => ("timeout".into(), u64::MAX),
    }
}

/// Runs X4.
pub fn run(fast: bool) -> Vec<Table> {
    let dims: &[u32] = if fast { &[6] } else { &[6, 8, 10] };
    let l = 16u32;
    let mut t = Table::new(
        "X4 — transpose on the hypercube: e-cube vs Valiant, 1 vs 2 VC classes",
        &["n", "paths", "classes", "C", "D", "T B=1", "T B=2", "T B=4"],
    );
    for &dim in dims {
        let h1 = Hypercube::new(dim);
        let h2 = Hypercube::new_multiclass(dim, 2);
        let pairs1 = h1.transpose_pairs();
        let pairs2 = h2.transpose_pairs();
        let arms: [(&str, &Hypercube, PathSet); 3] = [
            ("e-cube", &h1, h1.ecube_paths(&pairs1)),
            ("Valiant", &h1, h1.valiant_paths(&pairs1, 31)),
            ("Valiant", &h2, h2.valiant_paths(&pairs2, 31)),
        ];
        for (name, h, ps) in arms {
            let c = ps.congestion(h.graph());
            let d = ps.dilation();
            let b1 = route(&ps, h.graph(), l, 1);
            let b2 = route(&ps, h.graph(), l, 2);
            let b4 = route(&ps, h.graph(), l, 4);
            t.row(&cells!(
                1u32 << dim,
                name,
                h.classes(),
                c,
                d,
                b1.0,
                b2.0,
                b4.0
            ));
        }
    }
    t.note("Single-class Valiant deadlocks at B=1 (phase 2 re-enters low dimensions — the Aiello et al. observation); with a second VC class the dependency graph is acyclic and Valiant is both safe and fast. Congestion C falls from ≈√n (e-cube) to O(log n/loglog n)-ish under random intermediates.");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x4_single_class_valiant_deadlocks_two_class_completes() {
        let tables = run(true);
        let s = tables[0].render();
        let mut saw_deadlock = false;
        let mut ecube_b1 = None;
        let mut valiant2_b1 = None;
        for row in s.lines().filter(|r| r.starts_with('|')).skip(2) {
            let cols: Vec<&str> = row.split('|').map(str::trim).collect();
            if cols.len() < 9 {
                continue;
            }
            match (cols[2], cols[3]) {
                ("Valiant", "1") => {
                    assert_eq!(cols[6], "DEADLOCK", "1-class Valiant at B=1: {row}");
                    saw_deadlock = true;
                }
                ("Valiant", "2") => {
                    valiant2_b1 = cols[6].parse::<u64>().ok();
                }
                ("e-cube", _) => {
                    ecube_b1 = cols[6].parse::<u64>().ok();
                }
                _ => {}
            }
        }
        assert!(saw_deadlock);
        let (e, v) = (ecube_b1.unwrap(), valiant2_b1.unwrap());
        assert!(
            v < e,
            "2-class Valiant ({v}) should beat e-cube ({e}) at B=1"
        );
    }
}
