//! E3 — Theorem 2.2.1: measured routing time on the subset network always
//! respects `(L−D)·M/B = Ω(LCD^{1/B}/B)`.

use wormhole_core::lower_bound::run_experiment;

use crate::cells;
use crate::table::{fnum, Table};

/// Runs E3.
pub fn run(fast: bool) -> Vec<Table> {
    let mut t = Table::new(
        "E3 — Thm 2.2.1 lower-bound instances (L = 2D, replication 2)",
        &[
            "B",
            "M'",
            "C",
            "D",
            "M",
            "greedy T",
            "scheduled T",
            "bound (L-D)M/B",
            "greedy/bound",
            "asympt LCD^{1/B}/B",
        ],
    );
    let cases: &[(u32, u32)] = if fast {
        &[(1, 21), (2, 25)]
    } else {
        &[(1, 41), (1, 81), (2, 41), (2, 85), (3, 41), (3, 111)]
    };
    for &(b, d) in cases {
        let r = run_experiment(b, d, 2, 2.0, 17);
        assert!(r.bound_respected(), "bound violated: {r:?}");
        t.row(&cells!(
            r.b,
            r.m_prime,
            r.congestion,
            r.dilation,
            r.messages,
            r.greedy_steps,
            r.scheduled_steps,
            r.progress_bound,
            fnum(r.greedy_steps as f64 / r.progress_bound.max(1) as f64),
            fnum(r.asymptotic_bound)
        ));
    }
    t.note("Every measured schedule (greedy and LLL/first-fit) sits above the progress bound, as the theorem requires.");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_all_bounds_respected() {
        // `run` asserts bound_respected internally; reaching here means pass.
        let tables = run(true);
        assert_eq!(tables[0].num_rows(), 2);
    }
}
