//! X13 (extension) — partitioned parallel engine scaling on dateline
//! tori.
//!
//! The partitioned engine
//! ([`wormhole_flitsim::config::Engine::Parallel`]) shards the torus
//! into coordinate-plane slabs ([`Substrate::region_plan`]) and
//! advances each slab on its own worker under conservative,
//! plan-aware lookahead windows: each region's window grant is the
//! minimum distance-to-cut over its resident worms, so regions whose
//! traffic never touches a cut (tornado traffic travels only in
//! dimension 0; the slabs cut the last dimension) run whole drain
//! phases barrier-free with in-region fast-forwards. The contract is
//! *bit-identity*: every point in this sweep re-runs the same batch on
//! the sequential event-driven engine and asserts the [`SimResult`]s
//! are field-for-field equal — the worker column may only ever change
//! the wall-clock column.
//!
//! The sweep batches tornado traffic (the all-rings-busy adversary) on
//! dateline tori and ladders the worker count over the same region
//! plan, so the table reads as a strong-scaling curve: one substrate,
//! one workload, one partition, 1 → 2 → 4 → 8 workers. On hosts with
//! at least four cores the largest torus point — the strong-scaling
//! arm — must show the 4-worker run strictly faster than both the
//! 1-worker parallel run and the sequential event engine — asserted,
//! in fast mode too, so CI catches scaling regressions, not just
//! correctness ones.

use std::time::Instant;

use wormhole_flitsim::config::{Engine, SimConfig};
use wormhole_flitsim::stats::{Outcome, SimResult};
use wormhole_flitsim::wormhole;
use wormhole_workloads::{ArrivalProcess, RoutingDiscipline, Substrate, TrafficPattern, Workload};

use crate::cells;
use crate::table::Table;

const MSG_LEN: u32 = 8;
const REGIONS: u32 = 8;

/// One measured run: a sequential baseline (`workers == 0`) or a
/// parallel run at `workers` threads.
pub struct ScalePoint {
    /// Substrate name (table key).
    pub substrate: String,
    /// `"event"` for the sequential baseline, `"parallel"` otherwise.
    pub engine: &'static str,
    /// Worker threads (0 on the sequential baseline row).
    pub workers: u32,
    /// Regions in the plan the parallel runs share.
    pub regions: u32,
    /// Messages in the batch.
    pub msgs: usize,
    /// Total simulated flit steps.
    pub total_steps: u64,
    /// Wall-clock time of the run.
    pub wall_ms: f64,
    /// Speedup of this parallel run over the 1-worker parallel run.
    pub speedup: Option<f64>,
}

/// Torus radii for the sweep; the last entry is the large-torus
/// strong-scaling arm the speedup floor is asserted on. It is present
/// in fast mode too (CI smoke-runs it with `--fast --threads 4`).
fn radii(fast: bool) -> &'static [u32] {
    if fast {
        &[6, 10, 16]
    } else {
        &[6, 10, 16, 24]
    }
}

fn timed_run(
    graph: &wormhole_topology::graph::Graph,
    specs: &[wormhole_flitsim::MessageSpec],
    cfg: &SimConfig,
) -> (SimResult, f64) {
    let t0 = Instant::now();
    let r = wormhole::run(graph, specs, cfg);
    (r, t0.elapsed().as_secs_f64() * 1e3)
}

/// Runs the scaling sweep: per torus size, one sequential baseline and
/// one parallel run per ladder entry, all on the same
/// [`Substrate::region_plan`]. Panics if any parallel run falls back
/// or diverges from the baseline — bit-identity is the experiment's
/// precondition, not one of its findings.
pub fn sweep_points_with(fast: bool, ladder: &[u32]) -> Vec<ScalePoint> {
    let window = if fast { 150 } else { 400 };
    let mut out = Vec::new();
    for &radix in radii(fast) {
        let substrate = Substrate::torus_with(radix, 2, RoutingDiscipline::DatelineClasses);
        let w = Workload::new(
            substrate.clone(),
            TrafficPattern::Tornado,
            ArrivalProcess::bernoulli(0.35),
            MSG_LEN,
            9 + radix as u64,
        );
        let specs = w.generate(window);
        let plan = substrate.region_plan(REGIONS);
        let regions = plan.num_regions();
        let cfg = SimConfig::new(2).seed(13).regions(plan);

        let (base, base_ms) = timed_run(
            substrate.graph(),
            &specs,
            &cfg.clone().engine(Engine::EventDriven),
        );
        assert_eq!(base.outcome, Outcome::Completed, "baseline must finish");
        out.push(ScalePoint {
            substrate: substrate.name(),
            engine: "event",
            workers: 0,
            regions,
            msgs: specs.len(),
            total_steps: base.total_steps,
            wall_ms: base_ms,
            speedup: None,
        });

        let mut one_worker_ms = None;
        for &workers in ladder {
            let (par, ms) = timed_run(
                substrate.graph(),
                &specs,
                &cfg.clone().engine(Engine::Parallel { threads: workers }),
            );
            assert!(
                par.engine_fallback.is_none(),
                "scaling sweep config must run natively, fell back: {:?}",
                par.engine_fallback
            );
            assert!(
                par.same_execution(&base),
                "parallel({workers}w) diverged from the sequential baseline on {}",
                substrate.name()
            );
            if workers == 1 {
                one_worker_ms = Some(ms);
            }
            out.push(ScalePoint {
                substrate: substrate.name(),
                engine: "parallel",
                workers,
                regions,
                msgs: specs.len(),
                total_steps: par.total_steps,
                wall_ms: ms,
                speedup: one_worker_ms.map(|t1| t1 / ms),
            });
        }
    }
    out
}

/// Whether this host can meaningfully check the 4-worker speedup floor.
fn host_has_four_cores() -> bool {
    std::thread::available_parallelism()
        .map(|p| p.get() >= 4)
        .unwrap_or(false)
}

/// Asserts the scaling floor on the largest torus point (the
/// strong-scaling arm): the 4-worker run must be strictly faster than
/// the 1-worker parallel run *and* strictly faster than the sequential
/// event-driven engine — real speedup, not just engine-internal
/// scaling. Skipped (returning `false`) on hosts with fewer than four
/// cores, where the ladder is physically serialized and wall-clock
/// ratios say nothing about the engine.
pub fn assert_speedup_floor(points: &[ScalePoint]) -> bool {
    if !host_has_four_cores() {
        return false;
    }
    let largest = match points.last() {
        Some(p) => p.substrate.clone(),
        None => return false,
    };
    let wall = |engine: &str, w: u32| {
        points
            .iter()
            .find(|p| p.substrate == largest && p.engine == engine && p.workers == w)
            .map(|p| p.wall_ms)
    };
    match (wall("event", 0), wall("parallel", 1), wall("parallel", 4)) {
        (Some(te), Some(t1), Some(t4)) => {
            assert!(
                t4 < t1,
                "scaling floor violated on {largest}: 4 workers ({t4:.3} ms) not faster \
                 than 1 worker ({t1:.3} ms)"
            );
            assert!(
                t4 < te,
                "scaling floor violated on {largest}: 4 workers ({t4:.3} ms) not faster \
                 than the sequential event engine ({te:.3} ms)"
            );
            true
        }
        _ => false,
    }
}

/// Runs X13 with the default 1/2/4/8 worker ladder.
pub fn run(fast: bool) -> Vec<Table> {
    run_with(fast, &[1, 2, 4, 8])
}

/// [`run`] on an explicit worker ladder — the hook behind the
/// `experiments --threads N` flag and the CI smoke run.
pub fn run_with(fast: bool, ladder: &[u32]) -> Vec<Table> {
    let points = sweep_points_with(fast, ladder);
    let floor_checked = assert_speedup_floor(&points);

    let mut t = Table::new(
        format!(
            "X13 — partitioned parallel engine scaling: tornado batches on dateline tori, \
             L = {MSG_LEN}, B = 2, {REGIONS} slab regions, bit-identity asserted per point"
        ),
        &[
            "substrate",
            "engine",
            "workers",
            "regions",
            "msgs",
            "flit steps",
            "wall ms",
            "speedup vs 1w",
        ],
    );
    for p in &points {
        t.row(&cells!(
            p.substrate.clone(),
            p.engine,
            if p.workers == 0 {
                "-".to_string()
            } else {
                p.workers.to_string()
            },
            p.regions,
            p.msgs,
            p.total_steps,
            format!("{:.3}", p.wall_ms),
            p.speedup
                .map(|s| format!("{s:.2}x"))
                .unwrap_or_else(|| "-".to_string())
        ));
    }
    t.note(
        "Every parallel row is field-for-field identical to its sequential baseline row \
         (same SimResult; asserted before the table is rendered) — workers only move the \
         wall-clock column. The region plan cuts the torus into whole coordinate-plane \
         slabs of the last dimension; tornado traffic travels only in dimension 0, so no \
         route crosses a cut and the plan-aware lookahead grants each region unbounded \
         windows once injection ends: the drain phase runs barrier-free with in-region \
         fast-forwards, and only the injection phase steps in lockstep.",
    );
    t.note(if floor_checked {
        "Scaling floor checked on this host: on the largest torus (the strong-scaling \
         arm) the 4-worker run beat both the 1-worker parallel run and the sequential \
         event engine."
    } else {
        "Scaling floor not checked: this host has fewer than four cores (or the ladder \
         omits 1 or 4 workers), so wall-clock ratios would measure the scheduler, not \
         the engine. Bit-identity is still asserted on every point."
    });
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x13_fast_sweep_is_bit_identical_and_floor_checked_when_possible() {
        // sweep_points_with asserts identity internally; the floor
        // assert runs whenever the host can support it.
        let points = sweep_points_with(true, &[1, 2, 4]);
        assert_speedup_floor(&points);
        // One baseline plus three ladder entries per torus size.
        assert_eq!(points.len(), radii(true).len() * 4);
        for p in &points {
            assert!(p.msgs > 0, "sweep points must carry traffic");
        }
    }

    #[test]
    fn x13_smoke_ladder_matches_ci_invocation() {
        // The CI smoke run ladders only 2 workers; the table must still
        // render with the floor note explaining why no floor was checked.
        let tables = run_with(true, &[2]);
        assert_eq!(tables.len(), 1);
        let s = tables[0].render();
        assert!(s.contains("parallel"), "{s}");
    }
}
