//! F1/F2 — the paper's two figures, regenerated.
//!
//! Fig. 1 is the eight-input butterfly; Fig. 2 shows a message routed in
//! two passes (input → random intermediate at level log n → output).

use wormhole_core::bounds::log2_1;
use wormhole_topology::butterfly::Butterfly;

use crate::cells;
use crate::table::Table;

/// F1: renders the 8-input butterfly and checks its §1.2 structure facts.
pub fn run_f1(_fast: bool) -> (String, Vec<Table>) {
    let bf = Butterfly::new(3);
    let art = bf.ascii_art();
    let mut t = Table::new(
        "F1 — butterfly structure facts (paper §1.2)",
        &[
            "n",
            "nodes n(log n+1)",
            "edges 2n·log n",
            "unique path len",
            "acyclic",
        ],
    );
    for k in [3u32, 5, 8] {
        let b = Butterfly::new(k);
        let n = 1u32 << k;
        t.row(&cells!(
            n,
            b.graph().num_nodes(),
            b.graph().num_edges(),
            b.greedy_path(0, n - 1).len(),
            b.graph().is_acyclic()
        ));
    }
    (art, vec![t])
}

/// F2: a two-pass route, printed level by level.
pub fn run_f2(_fast: bool) -> (String, Vec<Table>) {
    let k = 3u32;
    let bf = Butterfly::two_pass(k);
    let (src, mid, dst) = (0b101u32, 0b010, 0b110);
    let p = bf.two_pass_path(src, mid, dst);
    let g = bf.graph();
    let mut trace = String::new();
    trace.push_str(&format!(
        "Message p: input {src:03b} → random intermediate {mid:03b} (level {k}) → output {dst:03b}\n"
    ));
    for (i, &e) in p.edges().iter().enumerate() {
        let (s, d) = (g.src(e), g.dst(e));
        let pass = if (i as u32) < k { 1 } else { 2 };
        trace.push_str(&format!(
            "  step {i}: pass {pass}, ({:03b}, {}) -> ({:03b}, {})\n",
            bf.col_of(s),
            bf.level_of(s),
            bf.col_of(d),
            bf.level_of(d),
        ));
    }
    let mut t = Table::new(
        "F2 — two-pass routing (Fig. 2)",
        &["pass", "levels", "edges", "distinct edge sets"],
    );
    t.row(&cells!(1, format!("0..{k}"), k, true));
    t.row(&cells!(2, format!("{k}..{}", 2 * k), k, true));
    t.note(format!(
        "Each pass corrects all log n = {} bits; the full route has 2·log n = {} edges (log2 sanity: {}).",
        k,
        2 * k,
        log2_1(8.0)
    ));
    (trace, vec![t])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f1_facts_match_paper() {
        let (art, tables) = run_f1(true);
        assert!(art.contains("( 0,0)"));
        let s = tables[0].render();
        // n = 8 row: 32 nodes, 48 edges.
        assert!(s.contains("32"));
        assert!(s.contains("48"));
        assert!(!s.contains("false"));
    }

    #[test]
    fn f2_trace_has_both_passes() {
        let (trace, tables) = run_f2(true);
        assert!(trace.contains("pass 1"));
        assert!(trace.contains("pass 2"));
        assert_eq!(trace.lines().count(), 1 + 6);
        assert_eq!(tables[0].num_rows(), 2);
    }
}
