//! The per-experiment runners (see DESIGN.md §5 for the index).

pub mod e1_upper_bound;
pub mod e2_superlinear;
pub mod e3_lower_bound;
pub mod e4_store_forward;
pub mod e5_butterfly;
pub mod e6_butterfly_lb;
pub mod e7_cut_through;
pub mod e8_restricted;
pub mod e9_naive;
pub mod figures;
pub mod x10_bounds;
pub mod x11_closed_loop;
pub mod x12_faults;
pub mod x13_parallel;
pub mod x1_circuit;
pub mod x2_open_loop;
pub mod x3_throughput;
pub mod x4_valiant;
pub mod x5_arbitration;
pub mod x6_waksman;
pub mod x7_dateline;
pub mod x8_adaptive;
pub mod x9_dynamic_vcs;

use crate::table::Table;

/// All experiment ids in report order.
pub fn all_ids() -> &'static [&'static str] {
    &[
        "f1", "f2", "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "x1", "x2", "x3", "x4",
        "x5", "x6", "x7", "x8", "x9", "x10", "x11", "x12", "x13",
    ]
}

/// Runs one experiment by id; returns `(preamble text, tables)`.
/// Unknown ids return `None`.
pub fn run_by_id(id: &str, fast: bool) -> Option<(String, Vec<Table>)> {
    Some(match id {
        "e1" => (String::new(), e1_upper_bound::run(fast)),
        "e2" => (String::new(), e2_superlinear::run(fast)),
        "e3" => (String::new(), e3_lower_bound::run(fast)),
        "e4" => (String::new(), e4_store_forward::run(fast)),
        "e5" => (String::new(), e5_butterfly::run(fast)),
        "e6" => (String::new(), e6_butterfly_lb::run(fast)),
        "e7" => (String::new(), e7_cut_through::run(fast)),
        "e8" => (String::new(), e8_restricted::run(fast)),
        "e9" => (String::new(), e9_naive::run(fast)),
        "f1" => {
            let (art, tables) = figures::run_f1(fast);
            (format!("```\n{art}```\n"), tables)
        }
        "f2" => {
            let (trace, tables) = figures::run_f2(fast);
            (format!("```\n{trace}```\n"), tables)
        }
        "x1" => (String::new(), x1_circuit::run(fast)),
        "x2" => (String::new(), x2_open_loop::run(fast)),
        "x3" => (String::new(), x3_throughput::run(fast)),
        "x4" => (String::new(), x4_valiant::run(fast)),
        "x5" => (String::new(), x5_arbitration::run(fast)),
        "x6" => (String::new(), x6_waksman::run(fast)),
        "x7" => (String::new(), x7_dateline::run(fast)),
        "x8" => (String::new(), x8_adaptive::run(fast)),
        "x9" => (String::new(), x9_dynamic_vcs::run(fast)),
        "x10" => (String::new(), x10_bounds::run(fast)),
        "x11" => (String::new(), x11_closed_loop::run(fast)),
        "x12" => (String::new(), x12_faults::run(fast)),
        "x13" => (String::new(), x13_parallel::run(fast)),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip() {
        for id in all_ids() {
            assert!(run_by_id(id, true).is_some(), "id {id} must run");
        }
        assert!(run_by_id("nope", true).is_none());
    }
}
