//! E1 — Theorem 2.1.6: schedule length scales as `C·(D log D)^{1/B}/B`
//! color classes.
//!
//! Sweeps `B` on a fixed controlled-(C, D) instance and `D` at fixed `B`,
//! reporting the class counts of the adaptive LLL pipeline and first-fit
//! against the theorem's formula, plus the executed (zero-stall) makespan.

use wormhole_core::bounds::{general_upper_bound, general_upper_bound_colors};
use wormhole_core::firstfit::{first_fit, FirstFitOrder};
use wormhole_core::pipeline::adaptive_min_colors;
use wormhole_core::schedule::ColorSchedule;
use wormhole_topology::random_nets::staggered_instance;

use crate::cells;
use crate::stats::power_law_exponent;
use crate::table::{fnum, Table};

/// Runs E1. `fast` shrinks the sweep for tests/benches.
pub fn run(fast: bool) -> Vec<Table> {
    let (c, d, l, msgs) = if fast {
        (8u32, 32u32, 8u32, 64u32)
    } else {
        (16, 128, 16, 384)
    };
    let (graph, paths) = staggered_instance(c, d, msgs);
    let c_meas = paths.congestion(&graph);
    let d_meas = paths.dilation();

    let mut t1 = Table::new(
        format!("E1a — color classes vs B (C={c_meas}, D={d_meas}, L={l}, {msgs} messages)"),
        &[
            "B",
            "κ first-fit",
            "κ LLL-adaptive",
            "κ formula C(DlogD)^{1/B}/B",
            "makespan (flit steps)",
            "bound (L+D)·κ_formula",
            "stalls",
        ],
    );
    let bs: &[u32] = if fast { &[1, 2, 4] } else { &[1, 2, 3, 4, 5] };
    for &b in bs {
        let ff = first_fit(&paths, &graph, b, FirstFitOrder::Input);
        let lll = adaptive_min_colors(&paths, &graph, b, 1000 + b as u64, 64)
            .expect("adaptive refinement failed");
        let kappa = ff.num_colors().min(lll.coloring.num_colors());
        let best = if ff.num_colors() <= lll.coloring.num_colors() {
            ff.clone()
        } else {
            lll.coloring.clone()
        };
        let sched = ColorSchedule::new(best, l, d_meas);
        let run = sched.execute_checked(&graph, &paths, l, b);
        let _ = kappa;
        t1.row(&cells!(
            b,
            ff.num_colors(),
            lll.coloring.num_colors(),
            fnum(general_upper_bound_colors(c_meas, d_meas, b)),
            run.total_steps,
            fnum(general_upper_bound(l, c_meas, d_meas, b)),
            run.total_stalls
        ));
    }
    t1.note(
        "Schedules execute with zero stalls (the paper's guarantee); κ falls superlinearly in B.",
    );

    // D sweep at fixed B: fitted exponent of κ·B/C against (D·log D)
    // should approach 1/B.
    let mut t2 = Table::new(
        "E1b — κ vs D at fixed B (exponent fit)",
        &[
            "B",
            "D values",
            "κ values",
            "fitted exp of κ vs DlogD",
            "paper exp 1/B",
        ],
    );
    let dvals: &[u32] = if fast { &[16, 64] } else { &[32, 128, 512] };
    for &b in if fast { &[2u32][..] } else { &[2u32, 3][..] } {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut kappas = Vec::new();
        for &dv in dvals {
            let (g2, ps2) = staggered_instance(c, dv, msgs);
            let lll = adaptive_min_colors(&ps2, &g2, b, 2000 + dv as u64, 64)
                .expect("adaptive refinement failed");
            let ff = first_fit(&ps2, &g2, b, FirstFitOrder::Input);
            let kappa = lll.coloring.num_colors().min(ff.num_colors());
            xs.push(dv as f64 * (dv as f64).ln());
            ys.push(kappa as f64);
            kappas.push(kappa);
        }
        let exp = power_law_exponent(&xs, &ys);
        t2.row(&cells!(
            b,
            format!("{dvals:?}"),
            format!("{kappas:?}"),
            fnum(exp),
            fnum(1.0 / b as f64)
        ));
    }
    t2.note("κ is lower-bounded by ⌈C/B⌉ independent of D, so on benign instances the fit flattens toward 0; the exponent must sit in [0, 1/B].");

    // E1c: on the Thm 2.2.1 networks the optimal κ genuinely scales with D
    // (every B+1 base messages share an edge, so a B-bounded class holds at
    // most B bases and κ ≈ M'/B·reps = Θ(D^{1/B})). The fitted exponent of
    // κ against D should approach 1/B.
    let mut t3 = Table::new(
        "E1c — κ vs D on the worst-case (Thm 2.2.1) networks",
        &[
            "B",
            "D values",
            "κ values",
            "fitted exp of κ vs D",
            "paper exp 1/B",
        ],
    );
    let bs3: &[u32] = if fast { &[1, 2] } else { &[1, 2, 3] };
    for &b in bs3 {
        let dvals3: &[u32] = if fast {
            &[15, 31, 61]
        } else {
            &[31, 61, 121, 241]
        };
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut kappas = Vec::new();
        let mut ds = Vec::new();
        for &dv in dvals3 {
            let net = wormhole_topology::lowerbound::build(b, dv, 1, false);
            let ff = first_fit(&net.paths, &net.graph, b, FirstFitOrder::Input);
            let lll = adaptive_min_colors(&net.paths, &net.graph, b, 4000 + dv as u64, 64)
                .expect("adaptive refinement failed");
            let kappa = ff.num_colors().min(lll.coloring.num_colors());
            xs.push(net.dilation as f64);
            ys.push(kappa as f64);
            kappas.push(kappa);
            ds.push(net.dilation);
        }
        let exp = power_law_exponent(&xs, &ys);
        t3.row(&cells!(
            b,
            format!("{ds:?}"),
            format!("{kappas:?}"),
            fnum(exp),
            fnum(1.0 / b as f64)
        ));
    }
    t3.note("On worst-case instances the measured exponent tracks 1/B — the (D·)^{1/B} dependence of Thm 2.1.6 is real, not an artifact of the proof.");
    vec![t1, t2, t3]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_fast_runs_and_shapes_hold() {
        let tables = run(true);
        assert_eq!(tables.len(), 3);
        assert_eq!(tables[0].num_rows(), 3);
        // Every schedule executed with zero stalls (last column).
        let s = tables[0].render();
        for row in s.lines().filter(|l| l.starts_with('|')).skip(2) {
            let cols: Vec<&str> = row.split('|').map(str::trim).collect();
            if cols.len() >= 8 && cols[1].parse::<u32>().is_ok() {
                assert_eq!(cols[7], "0", "stall-free execution expected: {row}");
            }
        }
        // E1c exponents land in (0, 1/B].
        let s3 = tables[2].render();
        for row in s3.lines().filter(|l| l.starts_with('|')).skip(2) {
            let cols: Vec<&str> = row.split('|').map(str::trim).collect();
            if cols.len() >= 6 {
                if let (Ok(b), Ok(exp)) = (cols[1].parse::<f64>(), cols[4].parse::<f64>()) {
                    assert!(exp > 0.0 && exp <= 1.0 / b + 0.25, "exponent off: {row}");
                }
            }
        }
    }
}
