//! X8 (extension) — adaptive route selection on escape VCs: open-loop
//! latency-vs-load knees for oblivious vs minimal-adaptive vs
//! fully-adaptive routing on the three-class `AdaptiveEscape` torus.
//!
//! The paper's claim is that virtual channels buy throughput when worms
//! block on each other; adaptive route *selection* is the classic way to
//! convert spare VCs into usable path diversity (Dally \[16\]; Duato's
//! escape-channel framework; the multi-lane MIN studies in PAPERS.md).
//! Every arm runs on the **same hardware** — the
//! `RoutingDiscipline::AdaptiveEscape` torus, whose physical channels
//! carry a class-0/class-1 Dally–Seitz escape pair plus a class-2
//! adaptive lane, each with `B` VCs:
//!
//! * **oblivious** — the dateline dimension-order route fixed at
//!   injection (never touches the adaptive lane; the control arm);
//! * **minimal** — per-hop selection among profitable adaptive-lane
//!   hops by start-of-step occupancy, escape fallback when all are full;
//! * **fully** — minimal plus budgeted misroutes when no profitable
//!   hop has a free VC.
//!
//! Adaptive arms never deadlock (the escape subnetwork is acyclic and a
//! worm that enters it never leaves), and on tornado traffic their
//! measured saturation throughput is at least the oblivious arm's at
//! equal `B` — the acceptance headline, asserted by this module's tests.

use wormhole_flitsim::config::{Arbitration, RouteSelection, SimConfig};
use wormhole_flitsim::open_loop::{run_open_loop, run_open_loop_adaptive, OpenLoopConfig};
use wormhole_flitsim::stats::{OpenLoopStats, Outcome};
use wormhole_workloads::{ArrivalProcess, RoutingDiscipline, Substrate, TrafficPattern, Workload};

use crate::cells;
use crate::sweep::{default_threads, parallel_map};
use crate::table::{fnum, Table};

/// One measured point of the sweep.
pub struct Point {
    /// Pattern name.
    pub pattern: &'static str,
    /// Route-selection arm.
    pub selection: RouteSelection,
    /// Offered load, messages per endpoint per step.
    pub rate: f64,
    /// Virtual channels per lane.
    pub b: u32,
    /// Endpoint count (for per-endpoint normalization).
    pub endpoints: f64,
    /// How the underlying simulation ended.
    pub outcome: Outcome,
    /// Worms that fell back onto the escape network.
    pub escape_fallbacks: u64,
    /// Non-minimal hops taken (fully-adaptive only).
    pub misroute_hops: u64,
    /// Windowed measurement.
    pub stats: OpenLoopStats,
}

impl Point {
    /// Accepted throughput in flits per endpoint per step.
    pub fn accepted_per_endpoint(&self) -> f64 {
        self.stats.accepted_flits_per_step / self.endpoints
    }
}

/// Sweep geometry per mode: (radix, dims, message length, warmup,
/// measurement window).
fn params(fast: bool) -> (u32, u32, u32, u64, u64) {
    if fast {
        (4, 2, 4, 150, 400)
    } else {
        (8, 2, 8, 500, 1500)
    }
}

fn patterns(fast: bool) -> Vec<TrafficPattern> {
    let n = {
        let (radix, dims, ..) = params(fast);
        radix.pow(dims)
    };
    vec![
        TrafficPattern::Tornado,
        TrafficPattern::Transpose,
        TrafficPattern::Hotspot {
            fraction: 0.2,
            hotspots: vec![0, n / 2],
        },
    ]
}

const ARMS: [RouteSelection; 3] = [
    RouteSelection::Oblivious,
    RouteSelection::MinimalAdaptive,
    RouteSelection::FullyAdaptive,
];

/// Runs the full measurement sweep, in input order: per pattern, per
/// offered rate × VC count × route-selection arm. All three arms of a
/// point share the same workload (substrate, traffic, seed) — only the
/// route selection differs.
pub fn sweep_points(fast: bool) -> Vec<Point> {
    let (radix, dims, l, warmup, measure) = params(fast);
    let rates: &[f64] = if fast {
        &[0.02, 0.10, 0.25, 0.45]
    } else {
        &[0.02, 0.05, 0.10, 0.20, 0.30, 0.45]
    };
    let bs: &[u32] = if fast { &[2, 4] } else { &[2, 4, 8] };

    let mut jobs = Vec::new();
    for (pi, pattern) in patterns(fast).into_iter().enumerate() {
        for &rate in rates {
            for &b in bs {
                for sel in ARMS {
                    jobs.push((pi, pattern.clone(), rate, b, sel));
                }
            }
        }
    }
    parallel_map(jobs, default_threads(), |(pi, pattern, rate, b, sel)| {
        let substrate = Substrate::torus_with(radix, dims, RoutingDiscipline::AdaptiveEscape);
        let w = Workload::new(
            substrate.clone(),
            pattern.clone(),
            ArrivalProcess::bernoulli(*rate),
            l,
            0xada9 ^ ((*pi as u64) << 4),
        );
        let specs = w.generate(warmup + measure);
        let ol = OpenLoopConfig::new(warmup, measure);
        let cfg = SimConfig::new(*b)
            .arbitration(Arbitration::Random)
            .seed(0x5eed ^ *b as u64)
            .route_selection(*sel);
        let r = match sel {
            RouteSelection::Oblivious => run_open_loop(substrate.graph(), &specs, &cfg, &ol),
            _ => {
                let mesh = substrate.as_mesh().expect("adaptive torus is mesh-based");
                run_open_loop_adaptive(mesh, &specs, &cfg, &ol)
            }
        };
        Point {
            pattern: pattern.name(),
            selection: *sel,
            rate: *rate,
            b: *b,
            endpoints: substrate.endpoints() as f64,
            outcome: r.outcome.clone(),
            escape_fallbacks: r.escape_fallbacks,
            misroute_hops: r.misroute_hops,
            stats: r.open_loop.expect("open-loop run carries stats"),
        }
    })
}

/// Saturation throughput (max accepted flit rate over the rate sweep)
/// per `(pattern, selection, B)`, in first-appearance order.
pub fn saturation_throughputs(points: &[Point]) -> Vec<(&'static str, RouteSelection, u32, f64)> {
    let mut out: Vec<(&'static str, RouteSelection, u32, f64)> = Vec::new();
    for p in points {
        let v = p.accepted_per_endpoint();
        match out
            .iter_mut()
            .find(|(pat, sel, b, _)| *pat == p.pattern && *sel == p.selection && *b == p.b)
        {
            Some(entry) => entry.3 = entry.3.max(v),
            None => out.push((p.pattern, p.selection, p.b, v)),
        }
    }
    out
}

/// Runs X8.
pub fn run(fast: bool) -> Vec<Table> {
    let (radix, dims, l, warmup, measure) = params(fast);
    let points = sweep_points(fast);

    let mut tables = Vec::new();
    let mut curves = Table::new(
        format!(
            "X8 — adaptive routing on escape VCs: torus({radix}^{dims},adaptive), \
             L = {l}, warmup {warmup}, window {measure}"
        ),
        &[
            "pattern",
            "selection",
            "offered (msg/ep/step)",
            "B",
            "mean lat",
            "p50",
            "p99",
            "accepted (flit/ep/step)",
            "escapes",
            "misroutes",
            "saturated",
            "outcome",
        ],
    );
    for p in &points {
        let outcome = match &p.outcome {
            Outcome::Completed => "ok",
            Outcome::MaxSteps => "cap",
            Outcome::Deadlock(_) => "DEADLOCK",
        };
        curves.row(&cells!(
            p.pattern,
            p.selection.name(),
            fnum(p.rate),
            p.b,
            fnum(p.stats.latency.mean),
            p.stats.latency.p50,
            p.stats.latency.p99,
            fnum(p.accepted_per_endpoint()),
            p.escape_fallbacks,
            p.misroute_hops,
            if p.stats.saturated { "yes" } else { "-" },
            outcome
        ));
    }
    curves.note(
        "All arms share one substrate (escape pair + adaptive lane, B VCs per lane) and one \
         workload; only route selection differs. The oblivious arm rides the dateline route and \
         leaves the adaptive lane idle; the adaptive arms convert it into path diversity, falling \
         back to the escape pair ('escapes') when it saturates — which is why they never deadlock.",
    );
    tables.push(curves);

    let mut sat = Table::new(
        "X8 — measured saturation throughput (max accepted load over the rate sweep)",
        &[
            "pattern",
            "selection",
            "B",
            "sat. throughput (flit/ep/step)",
        ],
    );
    for (pat, sel, b, best) in saturation_throughputs(&points) {
        sat.row(&cells!(pat, sel.name(), b, fnum(best)));
    }
    sat.note(
        "On tornado traffic the adaptive arms' saturation throughput is ≥ the oblivious arm's at \
         every B (the acceptance criterion, asserted in tests): minimal adaptivity spreads the \
         per-dimension rotation over both dimensions' spare VCs, and the budgeted fully-adaptive \
         arm adds misroutes on top.",
    );
    tables.push(sat);
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One shared fast sweep (deterministic, so every assertion can read
    /// the same points).
    fn fast_points() -> Vec<Point> {
        sweep_points(true)
    }

    #[test]
    fn x8_adaptive_beats_oblivious_on_tornado_and_never_deadlocks() {
        let points = fast_points();

        // No arm may deadlock: oblivious rides dateline routes, adaptive
        // arms have the escape network. (This is the whole design.)
        for p in &points {
            assert!(
                !matches!(p.outcome, Outcome::Deadlock(_)),
                "{} {} B={} rate={} deadlocked",
                p.pattern,
                p.selection.name(),
                p.b,
                p.rate
            );
        }

        // Acceptance: on torus tornado, each adaptive arm's saturation
        // throughput >= the oblivious arm's at equal B.
        let sat = saturation_throughputs(&points);
        let lookup = |sel: RouteSelection, b: u32| {
            sat.iter()
                .find(|(pat, s, bb, _)| *pat == "tornado" && *s == sel && *bb == b)
                .map(|(_, _, _, v)| *v)
                .expect("tornado arm swept")
        };
        for &b in &[2u32, 4] {
            let obl = lookup(RouteSelection::Oblivious, b);
            for sel in [
                RouteSelection::MinimalAdaptive,
                RouteSelection::FullyAdaptive,
            ] {
                let adp = lookup(sel, b);
                assert!(
                    adp >= obl,
                    "B={b}: {} saturation {adp} < oblivious {obl}",
                    sel.name()
                );
            }
            assert!(obl > 0.0, "oblivious arm must carry traffic at B={b}");
        }

        // Where routes genuinely conflict, adaptivity wins strictly: on
        // transpose at B=2 the minimal arm clears the oblivious knee by
        // a wide margin (≈0.79 → ≈1.32 flit/ep/step in fast mode; the
        // sweep is deterministic, so this is a stable regression line).
        let transpose = |sel: RouteSelection| {
            sat.iter()
                .find(|(pat, s, b, _)| *pat == "transpose" && *s == sel && *b == 2)
                .map(|(_, _, _, v)| *v)
                .expect("transpose arm swept")
        };
        assert!(
            transpose(RouteSelection::MinimalAdaptive) > 1.2 * transpose(RouteSelection::Oblivious),
            "minimal-adaptive transpose win collapsed: {} vs {}",
            transpose(RouteSelection::MinimalAdaptive),
            transpose(RouteSelection::Oblivious)
        );

        // The escape network is actually exercised somewhere in the
        // sweep: at high load the adaptive lane saturates and worms fall
        // back (the counters are how the regression fixture sees it too).
        assert!(
            points
                .iter()
                .any(|p| p.selection != RouteSelection::Oblivious && p.escape_fallbacks > 0),
            "no adaptive point ever used the escape network"
        );
        // And the fully-adaptive arm misroutes somewhere.
        assert!(
            points
                .iter()
                .any(|p| p.selection == RouteSelection::FullyAdaptive && p.misroute_hops > 0),
            "fully-adaptive arm never misrouted"
        );
        // Oblivious arms never touch the adaptive machinery.
        for p in &points {
            if p.selection == RouteSelection::Oblivious {
                assert_eq!(p.escape_fallbacks, 0);
                assert_eq!(p.misroute_hops, 0);
            }
        }
    }

    #[test]
    fn x8_tables_render() {
        let tables = run(true);
        assert_eq!(tables.len(), 2);
        let s = tables[0].render();
        for needle in [
            "tornado",
            "transpose",
            "hotspot",
            "oblivious",
            "minimal",
            "fully",
        ] {
            assert!(s.contains(needle), "missing {needle}");
        }
        assert!(tables[1].render().contains("sat. throughput"));
    }
}
