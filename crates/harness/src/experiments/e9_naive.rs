//! E9 — footnote 5: the naive conflict-free coloring (`≤ D(C−1)+1`
//! classes, `O((L+D)CD)` flit steps) versus the Theorem 2.1.6 pipeline and
//! first-fit. The naive schedule's class count grows with `D`; the
//! B-bounded schedules' counts do not.

use wormhole_baselines::naive_coloring::{naive_color_bound, naive_coloring};
use wormhole_core::firstfit::{first_fit, FirstFitOrder};
use wormhole_core::pipeline::adaptive_min_colors;
use wormhole_topology::random_nets::LeveledNet;

use crate::cells;
use crate::table::Table;

/// Runs E9.
pub fn run(fast: bool) -> Vec<Table> {
    let mut t = Table::new(
        "E9 — naive conflict-free coloring vs B-bounded colorings (random leveled nets)",
        &[
            "D",
            "C",
            "msgs",
            "κ naive",
            "naive bound D(C-1)+1",
            "κ first-fit (B=2)",
            "κ LLL (B=2)",
            "naive/best-bounded",
        ],
    );
    let depths: &[u32] = if fast { &[8, 16] } else { &[8, 16, 32, 64] };
    for &depth in depths {
        let net = LeveledNet::random(depth, 8, 2, depth as u64);
        let msgs = if fast { 48 } else { 96 };
        let ps = net.random_walk_paths(msgs, depth as u64 + 1);
        let g = net.graph();
        let c = ps.congestion(g);
        let naive = naive_coloring(&ps, g);
        let ff = first_fit(&ps, g, 2, FirstFitOrder::Input);
        let lll = adaptive_min_colors(&ps, g, 2, 3, 64).expect("refinement failed");
        let best = ff.num_colors().min(lll.coloring.num_colors());
        let ratio = naive.num_colors() as f64 / best as f64;
        t.row(&cells!(
            depth,
            c,
            msgs,
            naive.num_colors(),
            naive_color_bound(c, depth),
            ff.num_colors(),
            lll.coloring.num_colors(),
            format!("{ratio:.2}")
        ));
    }
    t.note("The naive/LLL gap widens with D — the naive schedule pays the Θ(D) factor the theorem removes.");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_naive_never_beats_bounded() {
        let tables = run(true);
        let s = tables[0].render();
        for row in s.lines().filter(|r| r.starts_with('|')).skip(2) {
            let cols: Vec<&str> = row.split('|').map(str::trim).collect();
            if cols.len() < 9 || cols[1].parse::<u32>().is_err() {
                continue;
            }
            let naive: u32 = cols[4]
                .parse()
                .expect("column 4 (naive class count) is an integer");
            let lll: u32 = cols[7]
                .parse()
                .expect("column 7 (LLL class count at B=2) is an integer");
            assert!(naive >= lll, "naive should use ≥ classes: {row}");
        }
    }
}
