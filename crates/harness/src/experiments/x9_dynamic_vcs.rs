//! X9 (extension) — dynamic VC allocation: static per-edge VCs vs
//! demand-driven router pooling at **equal total buffer budget**.
//!
//! The paper answers "how much does `B` buy?" for a *static, uniform*
//! `B`. The dynamic-allocation literature (Onsori–Safaei's DVC router;
//! Stergiou's multi-lane storage comparison) argues a router that shares
//! one VC store across its output channels on demand beats static
//! partitioning at the same aggregate storage, because real traffic is
//! asymmetric: hot output channels starve while cold ones idle their
//! dedicated VCs. This experiment re-runs the x2-style open-loop
//! latency-vs-load sweep with both arms on the **same budget**:
//!
//! * **static** — [`VcPolicy::Static`]`(B)`: every routing edge owns `B`
//!   VCs, `B · fanout` per router;
//! * **pooled** — [`VcPolicy::RouterPooled`] with `pool = B · fanout`,
//!   `per_edge_min = 1` (the floor the deadlock-freedom arguments
//!   need), `per_edge_max = pool`: identical aggregate storage, freely
//!   shiftable toward whichever output channels the pattern loads.
//!
//! The substrate is the Dally–Seitz dateline torus (deadlock-free by
//! construction on both arms — pooling preserves the dateline argument
//! because every class edge keeps its floor VC). On the asymmetric
//! patterns (tornado drives one direction of one dimension; hotspot
//! concentrates on a few sinks) the pooled arm's measured saturation
//! throughput is at least the static arm's at every shared budget — the
//! acceptance headline, asserted by this module's tests. Uniform random
//! rides along as the symmetric control where pooling has the least to
//! offer.

use wormhole_flitsim::config::{Arbitration, Engine, SimConfig, VcPolicy};
use wormhole_flitsim::open_loop::{run_open_loop, OpenLoopConfig};
use wormhole_flitsim::stats::{OpenLoopStats, Outcome};
use wormhole_workloads::{ArrivalProcess, RoutingDiscipline, Substrate, TrafficPattern, Workload};

use crate::cells;
use crate::sweep::{default_threads, parallel_map};
use crate::table::{fnum, Table};

/// One measured point of the sweep.
pub struct Point {
    /// Pattern name.
    pub pattern: &'static str,
    /// Capacity arm (`"static"` or `"pooled"`).
    pub arm: &'static str,
    /// Offered load, messages per endpoint per step.
    pub rate: f64,
    /// Budget factor: the per-edge VC count whose aggregate storage
    /// (`b · fanout` per router) both arms share.
    pub b: u32,
    /// Endpoint count (for per-endpoint normalization).
    pub endpoints: f64,
    /// How the underlying simulation ended.
    pub outcome: Outcome,
    /// Peak per-router VC occupancy observed (≤ the shared budget).
    pub max_pool_in_use: u32,
    /// Windowed measurement.
    pub stats: OpenLoopStats,
}

impl Point {
    /// Accepted throughput in flits per endpoint per step.
    pub fn accepted_per_endpoint(&self) -> f64 {
        self.stats.accepted_flits_per_step / self.endpoints
    }
}

/// Sweep geometry per mode: (radix, dims, message length, warmup,
/// measurement window).
fn params(fast: bool) -> (u32, u32, u32, u64, u64) {
    if fast {
        (8, 1, 4, 150, 400)
    } else {
        (8, 2, 8, 500, 1500)
    }
}

fn patterns(fast: bool) -> Vec<TrafficPattern> {
    let n = {
        let (radix, dims, ..) = params(fast);
        radix.pow(dims)
    };
    vec![
        TrafficPattern::Tornado,
        TrafficPattern::Hotspot {
            fraction: 0.3,
            hotspots: vec![0, n / 2],
        },
        TrafficPattern::UniformRandom,
    ]
}

const ARMS: [&str; 2] = ["static", "pooled"];

/// The two capacity policies of one budget step: `Static(b)` and the
/// equal-storage pooling (`pool = b · fanout`, floor 1, cap = pool).
fn arm_policy(arm: &str, b: u32, fanout: u32) -> VcPolicy {
    match arm {
        "static" => VcPolicy::Static(b),
        "pooled" => VcPolicy::pooled(b * fanout, 1, b * fanout),
        _ => unreachable!("unknown arm {arm}"),
    }
}

/// Runs the full measurement sweep, in input order: per pattern, per
/// offered rate × budget factor × capacity arm. Both arms of a point
/// share the same workload (substrate, traffic, seed) — only the VC
/// policy differs.
pub fn sweep_points(fast: bool) -> Vec<Point> {
    sweep_points_with(fast, Engine::EventDriven)
}

/// [`sweep_points`] on an explicit simulator engine — the differential /
/// timing hook used by `experiments bench-json` and the benches.
pub fn sweep_points_with(fast: bool, engine: Engine) -> Vec<Point> {
    let (radix, dims, l, warmup, measure) = params(fast);
    let rates: &[f64] = if fast {
        &[0.02, 0.10, 0.25, 0.45]
    } else {
        &[0.02, 0.05, 0.10, 0.20, 0.30, 0.45]
    };
    let bs: &[u32] = if fast { &[2, 4] } else { &[2, 4, 8] };

    let mut jobs = Vec::new();
    for (pi, pattern) in patterns(fast).into_iter().enumerate() {
        for &rate in rates {
            for &b in bs {
                for arm in ARMS {
                    jobs.push((pi, pattern.clone(), rate, b, arm));
                }
            }
        }
    }
    parallel_map(jobs, default_threads(), |(pi, pattern, rate, b, arm)| {
        let substrate = Substrate::torus_with(radix, dims, RoutingDiscipline::DatelineClasses);
        let fanout = substrate.graph().max_out_degree() as u32;
        let w = Workload::new(
            substrate.clone(),
            pattern.clone(),
            ArrivalProcess::bernoulli(*rate),
            l,
            0xd9c ^ ((*pi as u64) << 4),
        );
        let specs = w.generate(warmup + measure);
        let ol = OpenLoopConfig::new(warmup, measure);
        let cfg = SimConfig::new(1)
            .vc_policy(arm_policy(arm, *b, fanout))
            .arbitration(Arbitration::Random)
            .seed(0x5eed ^ *b as u64)
            .engine(engine);
        let r = run_open_loop(substrate.graph(), &specs, &cfg, &ol);
        Point {
            pattern: pattern.name(),
            arm,
            rate: *rate,
            b: *b,
            endpoints: substrate.endpoints() as f64,
            outcome: r.outcome.clone(),
            max_pool_in_use: r.max_pool_in_use,
            stats: r.open_loop.expect("open-loop run carries stats"),
        }
    })
}

/// Saturation throughput (max accepted flit rate over the rate sweep)
/// per `(pattern, arm, B)`, in first-appearance order.
pub fn saturation_throughputs(points: &[Point]) -> Vec<(&'static str, &'static str, u32, f64)> {
    let mut out: Vec<(&'static str, &'static str, u32, f64)> = Vec::new();
    for p in points {
        let v = p.accepted_per_endpoint();
        match out
            .iter_mut()
            .find(|(pat, arm, b, _)| *pat == p.pattern && *arm == p.arm && *b == p.b)
        {
            Some(entry) => entry.3 = entry.3.max(v),
            None => out.push((p.pattern, p.arm, p.b, v)),
        }
    }
    out
}

/// Runs X9.
pub fn run(fast: bool) -> Vec<Table> {
    let (radix, dims, l, warmup, measure) = params(fast);
    let points = sweep_points(fast);

    let mut tables = Vec::new();
    let mut curves = Table::new(
        format!(
            "X9 — dynamic VC allocation at equal buffer budget: torus({radix}^{dims},dateline), \
             L = {l}, warmup {warmup}, window {measure}"
        ),
        &[
            "pattern",
            "arm",
            "offered (msg/ep/step)",
            "budget B",
            "mean lat",
            "p50",
            "p99",
            "accepted (flit/ep/step)",
            "peak pool",
            "saturated",
            "outcome",
        ],
    );
    for p in &points {
        let outcome = match &p.outcome {
            Outcome::Completed => "ok",
            Outcome::MaxSteps => "cap",
            Outcome::Deadlock(_) => "DEADLOCK",
        };
        curves.row(&cells!(
            p.pattern,
            p.arm,
            fnum(p.rate),
            p.b,
            fnum(p.stats.latency.mean),
            p.stats.latency.p50,
            p.stats.latency.p99,
            fnum(p.accepted_per_endpoint()),
            p.max_pool_in_use,
            if p.stats.saturated { "yes" } else { "-" },
            outcome
        ));
    }
    curves.note(
        "Both arms of a (pattern, B) point share one workload and one aggregate buffer budget \
         per router (B x fanout VCs): 'static' dedicates B to every routing edge, 'pooled' \
         shares the same storage on demand with a floor of 1 per edge ('peak pool' = largest \
         per-router occupancy actually reached). Floors keep the dateline deadlock-freedom \
         argument intact, so neither arm can wedge.",
    );
    tables.push(curves);

    let mut sat = Table::new(
        "X9 — measured saturation throughput (max accepted load over the rate sweep)",
        &[
            "pattern",
            "arm",
            "budget B",
            "sat. throughput (flit/ep/step)",
        ],
    );
    for (pat, arm, b, best) in saturation_throughputs(&points) {
        sat.row(&cells!(pat, arm, b, fnum(best)));
    }
    sat.note(
        "On the asymmetric patterns (tornado, hotspot) the pooled arm's saturation throughput \
         is >= the static arm's at every shared budget (the acceptance criterion, asserted in \
         tests): pooling shifts idle cold-channel VCs to the loaded direction, which in the \
         full-bandwidth model is extra usable channel bandwidth. Uniform random is the \
         symmetric control where the two arms track each other.",
    );
    tables.push(sat);
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One shared fast sweep (deterministic, so every assertion can read
    /// the same points).
    fn fast_points() -> Vec<Point> {
        sweep_points(true)
    }

    #[test]
    fn x9_pooled_matches_or_beats_static_on_asymmetric_patterns() {
        let points = fast_points();

        // The dateline substrate keeps both arms deadlock-free — floors
        // included.
        for p in &points {
            assert!(
                !matches!(p.outcome, Outcome::Deadlock(_)),
                "{} {} B={} rate={} deadlocked",
                p.pattern,
                p.arm,
                p.b,
                p.rate
            );
        }

        let sat = saturation_throughputs(&points);
        let lookup = |pat: &str, arm: &str, b: u32| {
            sat.iter()
                .find(|(p, a, bb, _)| *p == pat && *a == arm && *bb == b)
                .map(|(_, _, _, v)| *v)
                .unwrap_or_else(|| panic!("{pat}/{arm}/B={b} swept"))
        };

        // Acceptance: on the tornado pattern — the starkest asymmetry,
        // all load on one direction of one dimension — pooled >= static
        // at every shared budget, with a strict win somewhere (the fast
        // sweep measures ≈2-3x). Hotspot may land within measurement
        // wiggle of static at large budgets, so it is only held to "no
        // significant regression".
        let mut pooled_wins = 0usize;
        for &b in &[2u32, 4] {
            let stat = lookup("tornado", "static", b);
            let pooled = lookup("tornado", "pooled", b);
            assert!(
                pooled >= stat,
                "tornado B={b}: pooled saturation {pooled} < static {stat}"
            );
            assert!(stat > 0.0, "static arm must carry traffic: tornado B={b}");
            if pooled > stat {
                pooled_wins += 1;
            }
        }
        assert!(
            pooled_wins >= 1,
            "pooling must strictly beat static partitioning on tornado: {sat:?}"
        );
        for &b in &[2u32, 4] {
            let stat = lookup("hotspot", "static", b);
            let pooled = lookup("hotspot", "pooled", b);
            assert!(
                pooled >= 0.95 * stat,
                "hotspot B={b}: pooled saturation {pooled} regressed past static {stat}"
            );
        }

        // The pool is genuinely exercised: some pooled point drives a
        // router past its static per-edge share.
        assert!(
            points
                .iter()
                .any(|p| p.arm == "pooled" && p.max_pool_in_use > p.b),
            "no pooled point ever borrowed beyond the static share"
        );
    }

    #[test]
    fn x9_engines_agree_pointwise() {
        // Pooled arbitration and router-keyed wakeups are new engine
        // surface: every measured point must match the legacy oracle.
        let ev = sweep_points_with(true, Engine::EventDriven);
        let lg = sweep_points_with(true, Engine::Legacy);
        assert_eq!(ev.len(), lg.len());
        for (a, b) in ev.iter().zip(&lg) {
            let ctx = format!("{} {} rate={} B={}", a.pattern, a.arm, a.rate, a.b);
            assert_eq!(a.outcome, b.outcome, "{ctx}");
            assert_eq!(a.max_pool_in_use, b.max_pool_in_use, "{ctx}");
            assert_eq!(a.stats.latency, b.stats.latency, "{ctx}");
            assert_eq!(a.stats.accepted_msgs, b.stats.accepted_msgs, "{ctx}");
            assert_eq!(a.stats.backlog, b.stats.backlog, "{ctx}");
            assert_eq!(a.stats.saturated, b.stats.saturated, "{ctx}");
        }
    }

    #[test]
    fn x9_tables_render() {
        let tables = run(true);
        assert_eq!(tables.len(), 2);
        let s = tables[0].render();
        for needle in ["tornado", "hotspot", "uniform", "static", "pooled"] {
            assert!(s.contains(needle), "missing {needle}");
        }
        assert!(tables[1].render().contains("sat. throughput"));
    }
}
