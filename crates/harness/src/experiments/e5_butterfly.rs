//! E5 — Theorem 3.1.1: the §3.1 two-pass algorithm routes q-relations in
//! `O(L(q+log n)·log^{1/B} n·log log(nq)/B)` flit steps w.h.p.

use wormhole_core::butterfly::algorithm::{route_q_relation, AlgoParams};
use wormhole_core::butterfly::relation::QRelation;

use crate::cells;
use crate::sweep::{default_threads, parallel_map};
use crate::table::{fnum, Table};

/// Runs E5.
pub fn run(fast: bool) -> Vec<Table> {
    // Sweep n at q = log n, L = log n (the paper's featured regime).
    let ks: &[u32] = if fast { &[5, 6] } else { &[6, 8, 10, 12] };
    let bs: &[u32] = if fast { &[1, 2] } else { &[1, 2, 3] };
    let mut points = Vec::new();
    for &k in ks {
        for &b in bs {
            points.push((k, b));
        }
    }
    let rows = parallel_map(points, default_threads(), |&(k, b)| {
        let n = 1u32 << k;
        let q = k; // q = log n
        let rel = QRelation::random_relation(n, q, 100 + k as u64);
        let res = route_q_relation(k, &rel, &AlgoParams::new(b, k, 7 + b as u64));
        (k, b, n, q, res)
    });
    let mut t1 = Table::new(
        "E5a — §3.1 algorithm, q = L = log n",
        &[
            "n",
            "q",
            "B",
            "delivered",
            "rounds used/planned",
            "Δ",
            "flit steps",
            "formula",
            "measured/formula",
        ],
    );
    for (k, b, n, q, res) in &rows {
        let _ = k;
        t1.row(&cells!(
            n,
            q,
            b,
            res.all_delivered,
            format!("{}/{}", res.rounds.len(), res.planned_rounds),
            res.delta,
            res.flit_steps,
            fnum(res.formula_flit_steps),
            fnum(res.flit_steps as f64 / res.formula_flit_steps)
        ));
    }
    t1.note("All relations deliver w.h.p.; flit steps track the formula within a small constant, and B cuts Δ (and time) superlinearly via log^{1/B} n.");

    // Sweep q at fixed n.
    let k = if fast { 6u32 } else { 10 };
    let n = 1u32 << k;
    let qs: &[u32] = if fast { &[1, 4] } else { &[1, 4, 16, 32] };
    let mut t2 = Table::new(
        format!("E5b — §3.1 algorithm, q sweep at n = {n}, L = log n"),
        &[
            "q",
            "B",
            "delivered",
            "rounds",
            "Δ",
            "flit steps",
            "formula",
        ],
    );
    for &q in qs {
        for &b in bs {
            let rel = QRelation::random_relation(n, q, 55 + q as u64);
            let res = route_q_relation(k, &rel, &AlgoParams::new(b, k, 5 + q as u64));
            t2.row(&cells!(
                q,
                b,
                res.all_delivered,
                res.rounds.len(),
                res.delta,
                res.flit_steps,
                fnum(res.formula_flit_steps)
            ));
        }
    }
    vec![t1, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_everything_delivers() {
        let tables = run(true);
        let s = tables[0].render();
        assert!(
            !s.contains("false"),
            "some relation failed to deliver:\n{s}"
        );
        assert!(tables[1].num_rows() >= 4);
    }
}
