//! X10 (extension) — the network-calculus bound engine cross-validated
//! against flitsim, plus no-simulation capacity certificates.
//!
//! Two kinds of rows share one mixed table (via
//! [`Table::row_opt`](crate::table::Table::row_opt)):
//!
//! * **sim+analytic** — on butterfly and Beneš substrates, generate an
//!   open-loop workload, fit every `(path, length)` flow with the
//!   tightest concave envelope of its realized releases
//!   ([`wormhole_netcalc::flows_from_specs`]), solve the feedforward
//!   closure ([`wormhole_netcalc::delay_bounds`]), then run the same
//!   trace to completion in the simulator. The oracle invariant —
//!   every simulated latency at or below its flow's analytic bound, so
//!   in particular `sim p100 ≤ bound` — is asserted per point by this
//!   module's tests (and fuzzed repo-wide by
//!   `tests/proptest_netcalc_oracle.rs`).
//! * **analytic-only** — a 1024-input butterfly under leaky-bucket
//!   bit-complement contracts, far past what the sweep simulates. These
//!   rows have no simulated percentiles and no saturation verdict, only
//!   a certificate (or `-` where none exists): at low `B` the closure
//!   finds no finite fixed point, at higher `B` it certifies tight
//!   worst-case delays — the paper's "what does `B` buy?" answered
//!   without simulating a flit.
//!
//! Both row kinds sweep `B ∈ {1, 2, 4, 8}` with the workload held fixed
//! across `B`, so bound columns are directly comparable (and are
//! asserted monotone nonincreasing in `B`).

use wormhole_flitsim::config::SimConfig;
use wormhole_flitsim::stats::Outcome;
use wormhole_flitsim::wormhole::run as wormhole_run;
use wormhole_netcalc::{delay_bounds, flows_from_specs, BoundConfig, Flow};
use wormhole_topology::butterfly::Butterfly;
use wormhole_workloads::{ArrivalProcess, Substrate, TrafficPattern, Workload};

use crate::sweep::{default_threads, parallel_map};
use crate::table::{fnum, Table};

/// Virtual-channel counts swept by every row kind.
pub const B_SWEEP: [u32; 4] = [1, 2, 4, 8];

/// One cross-validated point: an analytic certificate and the simulated
/// ground truth for the same trace.
pub struct SimPoint {
    /// Substrate display name.
    pub substrate: String,
    /// Pattern name.
    pub pattern: &'static str,
    /// Offered load, messages per endpoint per step.
    pub rate: f64,
    /// Virtual channels per edge.
    pub b: u32,
    /// Messages in the trace.
    pub messages: usize,
    /// Distinct `(path, length)` flows.
    pub flows: usize,
    /// Worst simulated release-to-delivery latency.
    pub sim_p100: u64,
    /// Worst analytic delay bound over all flows (`INFINITY` when the
    /// closure found no finite certificate — seen at B = 1 under hot
    /// adversarial patterns, where worst-case certification is vacuous).
    pub bound: f64,
    /// Whether every simulated latency sat at or below its own flow's
    /// bound — the oracle invariant.
    pub oracle_ok: bool,
    /// How the (run-to-completion) simulation ended.
    pub outcome: Outcome,
}

/// One no-simulation certificate row.
pub struct AnalyticPoint {
    /// Substrate display name.
    pub substrate: String,
    /// Contract rate, messages per endpoint per step.
    pub rate: f64,
    /// Virtual channels per edge.
    pub b: u32,
    /// Flows in the contract set.
    pub flows: usize,
    /// Worst certified delay, or `None` when no finite certificate
    /// exists at this `B`.
    pub bound: Option<f64>,
}

/// Sweep geometry per mode: substrate × patterns, rates, message length,
/// workload window.
fn substrates(fast: bool) -> Vec<(Substrate, Vec<TrafficPattern>)> {
    let (bk, nk) = if fast { (5, 3) } else { (6, 4) };
    vec![
        (
            Substrate::butterfly(bk),
            vec![TrafficPattern::UniformRandom, TrafficPattern::BitReversal],
        ),
        (
            Substrate::benes(nk),
            vec![TrafficPattern::UniformRandom, TrafficPattern::Permutation],
        ),
    ]
}

fn rates(fast: bool) -> &'static [f64] {
    if fast {
        &[0.02, 0.05]
    } else {
        &[0.01, 0.02, 0.05, 0.08]
    }
}

const MSG_LEN: u32 = 4;

fn window(fast: bool) -> u64 {
    if fast {
        300
    } else {
        800
    }
}

/// Runs the cross-validated sweep: per substrate × pattern × rate, one
/// workload trace shared by all `B ∈ {1,2,4,8}`, each `B` solved
/// analytically and simulated to completion.
pub fn sweep_points(fast: bool) -> Vec<SimPoint> {
    let mut jobs = Vec::new();
    for (si, (substrate, pats)) in substrates(fast).into_iter().enumerate() {
        for pattern in pats {
            for &rate in rates(fast) {
                for &b in &B_SWEEP {
                    jobs.push((si, substrate.clone(), pattern.clone(), rate, b));
                }
            }
        }
    }
    parallel_map(
        jobs,
        default_threads(),
        |(si, substrate, pattern, rate, b)| {
            // Seed depends on the workload, never on B: every B row of a
            // point bounds and simulates the identical trace.
            let seed = 0xb0_04 ^ ((*si as u64) << 8) ^ (rate.to_bits() >> 17);
            let w = Workload::new(
                substrate.clone(),
                pattern.clone(),
                ArrivalProcess::bernoulli(*rate),
                MSG_LEN,
                seed,
            );
            let specs = w.generate(window(fast));
            let tf = flows_from_specs(&specs);
            let report = delay_bounds(substrate.graph(), &tf.flows, &BoundConfig::new(*b))
                .expect("butterfly/benes routing sets are feedforward");

            // Run the trace to completion; trace-derived certificates are
            // finite, so the cap only guards a (would-be) soundness bug.
            let last_release = specs.last().map_or(0, |s| s.release);
            let cap = last_release + report.max_delay().min(1e9) as u64 + 10_000;
            let cfg = SimConfig::new(*b).max_steps(cap).seed(seed ^ 0x51);
            let r = wormhole_run(substrate.graph(), &specs, &cfg);

            let mut sim_p100 = 0u64;
            let mut oracle_ok = r.outcome == Outcome::Completed;
            for (i, (spec, m)) in specs.iter().zip(&r.messages).enumerate() {
                let Some(lat) = m.latency(spec.release) else {
                    oracle_ok = false;
                    continue;
                };
                sim_p100 = sim_p100.max(lat);
                if lat as f64 > report.flow_delay[tf.spec_flow[i]] {
                    oracle_ok = false;
                }
            }
            SimPoint {
                substrate: substrate.name(),
                pattern: pattern.name(),
                rate: *rate,
                b: *b,
                messages: specs.len(),
                flows: tf.flows.len(),
                sim_p100,
                bound: report.max_delay(),
                oracle_ok,
                outcome: r.outcome,
            }
        },
    )
}

/// The no-simulation certificate sweep: a 1024-input butterfly under
/// per-input leaky-bucket bit-complement contracts (`σ = 1` message of
/// burst, rate as listed), across the same `B` sweep.
pub fn analytic_points(fast: bool) -> Vec<AnalyticPoint> {
    let bf = Butterfly::new(10);
    let n = 1u32 << 10;
    let substrate_name = format!("butterfly(n={n})");
    let contract_rates: &[f64] = if fast {
        &[0.002, 0.01]
    } else {
        &[0.001, 0.002, 0.005, 0.01]
    };
    let mut out = Vec::new();
    for &rate in contract_rates {
        let flows: Vec<Flow> = (0..n)
            .map(|s| {
                let p = bf.greedy_path(s, s ^ (n - 1)); // bit complement
                Flow::synthetic(p.edges().to_vec(), MSG_LEN, 1.0, rate)
            })
            .collect();
        for &b in &B_SWEEP {
            let report = delay_bounds(bf.graph(), &flows, &BoundConfig::new(b))
                .expect("butterfly routing sets are feedforward");
            out.push(AnalyticPoint {
                substrate: substrate_name.clone(),
                rate,
                b,
                flows: flows.len(),
                bound: report.bounded.then(|| report.max_delay()),
            });
        }
    }
    out
}

/// Runs X10.
pub fn run(fast: bool) -> Vec<Table> {
    let sim = sweep_points(fast);
    let analytic = analytic_points(fast);

    let mut tables = Vec::new();
    let mut t = Table::new(
        format!(
            "X10 — analytic delay bounds vs simulated worst case: L = {MSG_LEN}, \
             window {}, B in {{1,2,4,8}}",
            window(fast)
        ),
        &[
            "substrate",
            "pattern",
            "rate",
            "B",
            "msgs",
            "flows",
            "sim p100",
            "bound",
            "p100<=bound",
            "outcome",
        ],
    );
    for p in &sim {
        let outcome = match &p.outcome {
            Outcome::Completed => "ok",
            Outcome::MaxSteps => "cap",
            Outcome::Deadlock(_) => "DEADLOCK",
        };
        t.row_opt(&[
            Some(p.substrate.clone()),
            Some(p.pattern.into()),
            Some(fnum(p.rate)),
            Some(p.b.to_string()),
            Some(p.messages.to_string()),
            Some(p.flows.to_string()),
            Some(p.sim_p100.to_string()),
            p.bound.is_finite().then(|| fnum(p.bound)),
            if p.bound.is_finite() {
                Some(if p.oracle_ok { "yes" } else { "VIOLATED" }.into())
            } else {
                None
            },
            Some(outcome.into()),
        ]);
    }
    for p in &analytic {
        t.row_opt(&[
            Some(p.substrate.clone()),
            Some("bit-complement".into()),
            Some(fnum(p.rate)),
            Some(p.b.to_string()),
            None,
            Some(p.flows.to_string()),
            None,
            p.bound.map(fnum),
            None,
            None,
        ]);
    }
    t.note(
        "Upper rows are cross-validated: the analytic bound is computed from the realized \
         release trace (tightest concave envelope per flow) and the very same trace is \
         simulated to completion — 'yes' certifies that every message, not just the p100, \
         finished at or below its flow's bound. Lower rows are analytic-only capacity \
         certificates on a 1024-input butterfly under leaky-bucket contracts; they have no \
         simulated columns and no saturation verdict ('-'). In either kind a '-' bound means \
         no finite certificate exists at that B (seen at B = 1 under hot adversarial \
         patterns) — more VCs literally buy certifiability.",
    );
    t.note(
        "Bounds are valid for the default full-bandwidth model (static B VCs per edge, any \
         arbitration) on feedforward routing sets, and are monotone nonincreasing in B for \
         the fixed workload of each point.",
    );
    tables.push(t);
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x10_oracle_holds_on_every_simulated_point() {
        let points = sweep_points(true);
        assert!(!points.is_empty());
        for p in &points {
            assert_eq!(
                p.outcome,
                Outcome::Completed,
                "{} {} rate={} B={} did not finish",
                p.substrate,
                p.pattern,
                p.rate,
                p.b
            );
            assert!(
                p.oracle_ok,
                "{} {} rate={} B={}: sim p100 {} exceeded analytic bound {}",
                p.substrate, p.pattern, p.rate, p.b, p.sim_p100, p.bound
            );
            // B = 1 certificates can be vacuous under hot patterns; from
            // B = 2 up every trace certifies finitely.
            assert!(
                p.b == 1 || p.bound.is_finite(),
                "{} {} rate={} B={}: expected a finite certificate",
                p.substrate,
                p.pattern,
                p.rate,
                p.b
            );
            assert!(p.sim_p100 as f64 <= p.bound);
        }
    }

    #[test]
    fn x10_bounds_are_monotone_in_b() {
        // Workload seeds do not depend on B, so rows of one point bound
        // the identical flow set and must shrink (weakly) as B grows.
        let points = sweep_points(true);
        for chunk in points.chunks(B_SWEEP.len()) {
            assert_eq!(chunk.len(), B_SWEEP.len());
            for w in chunk.windows(2) {
                assert_eq!(w[0].messages, w[1].messages, "same trace across B");
                assert!(
                    w[1].bound <= w[0].bound + 1e-6,
                    "{} {} rate={}: bound grew from B={} ({}) to B={} ({})",
                    w[0].substrate,
                    w[0].pattern,
                    w[0].rate,
                    w[0].b,
                    w[0].bound,
                    w[1].b,
                    w[1].bound
                );
            }
        }
    }

    #[test]
    fn x10_analytic_certificates_show_the_b_frontier() {
        let points = analytic_points(true);
        assert_eq!(points.len(), 2 * B_SWEEP.len());
        // Certificates are monotone in B: once certified, stays
        // certified, and the certified bound shrinks.
        for chunk in points.chunks(B_SWEEP.len()) {
            let mut prev: Option<f64> = None;
            for p in chunk {
                if let (Some(prev_bound), Some(bound)) = (prev, p.bound) {
                    assert!(
                        bound <= prev_bound + 1e-6,
                        "rate={} B={}: certified bound grew",
                        p.rate,
                        p.b
                    );
                }
                if prev.is_some() {
                    assert!(
                        p.bound.is_some(),
                        "certificate lost going up in B at rate={}",
                        p.rate
                    );
                }
                if p.bound.is_some() {
                    prev = p.bound;
                }
            }
        }
        // The frontier is non-trivial in both directions: some B is
        // certified, and low B at the hotter rate is not.
        assert!(points.iter().any(|p| p.bound.is_some()));
        assert!(points.iter().any(|p| p.bound.is_none()));
    }

    #[test]
    fn x10_tables_render_mixed_rows() {
        let tables = run(true);
        assert_eq!(tables.len(), 1);
        let s = tables[0].render();
        for needle in ["butterfly", "benes", "bit-complement", "p100<=bound"] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
        // Analytic-only rows carry dashes in the simulated columns.
        assert!(s
            .lines()
            .any(|l| l.contains("bit-complement") && l.contains(" - ")));
    }
}
