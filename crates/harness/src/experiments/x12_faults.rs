//! X12 (extension) — fault injection and fault-aware routing: keep the
//! network deadlock-free while it breaks.
//!
//! The paper's model assumes the network survives the run. This
//! experiment injects timed link/channel kills ([`FaultPlan`]) and
//! measures what each routing discipline salvages, on three arms:
//!
//! * **fault-rate sweep** — a uniform-random batch on the
//!   `AdaptiveEscape` torus under seeded Bernoulli channel kills
//!   ([`FaultPlan::bernoulli_channels`], which never disconnects a
//!   ring), oblivious vs minimal- vs fully-adaptive × static vs
//!   router-pooled VCs. Oblivious worms whose fixed route dies are
//!   discarded (`LinkDown`); adaptive worms route around through
//!   [`FaultedMesh`]'s filtered candidates, falling back to the
//!   fault-avoiding escape subnetwork — which stays acyclic on every
//!   plan the generator emits, so no arm can deadlock.
//! * **directional blackout** — the acceptance arm: tornado traffic,
//!   then every `+` channel of dimension 0 dies at once. The oblivious
//!   dateline route has nowhere to go and its delivered fraction
//!   collapses; the adaptive arms take the `−` ring (equal distance on
//!   tornado) and keep delivering — asserted in this module's tests.
//! * **path diversity** — the same offered traffic on a butterfly
//!   (unique paths — the control) and a Benes network (middle-column
//!   diversity): after a mid-run kill, fault-aware sources re-route
//!   via [`Substrate::route_avoiding`], which the Benes can honor and
//!   the butterfly cannot.
//!
//! Every point reports the [`SimResult`] fault counters (kills applied,
//! fault discards, detour hops, recovery steps), and both simulator
//! engines produce bit-identical results on all three arms.

use wormhole_flitsim::config::{Arbitration, Engine, RouteSelection, SimConfig, VcPolicy};
use wormhole_flitsim::stats::{Outcome, SimResult};
use wormhole_flitsim::wormhole::{run as sim_run, run_adaptive};
use wormhole_topology::fault::{FaultPlan, FaultedMesh};
use wormhole_topology::mesh::Mesh;
use wormhole_workloads::{ArrivalProcess, RoutingDiscipline, Substrate, TrafficPattern, Workload};

use crate::cells;
use crate::sweep::{default_threads, parallel_map};
use crate::table::{fnum, Table};

/// One measured point of a faulted batch run.
pub struct Point {
    /// Route-selection arm.
    pub selection: RouteSelection,
    /// Capacity arm (`"static"` or `"pooled"`).
    pub vc_arm: &'static str,
    /// Per-channel kill probability of the plan generator.
    pub fault_rate: f64,
    /// Messages offered (the batch size).
    pub offered: usize,
    /// Messages delivered before the run ended.
    pub delivered: usize,
    /// Mean delivered latency (release → last flit), if any delivered.
    pub mean_latency: Option<f64>,
    /// Edge kills actually applied.
    pub kills: u64,
    /// Worms discarded because their path died (`LinkDown`).
    pub fault_discards: u64,
    /// Non-minimal hops taken after the first kill.
    pub fault_detours: u64,
    /// Worms that fell back onto the (fault-avoiding) escape network.
    pub escapes: u64,
    /// Steps from the last kill to the first delivery after it.
    pub recovery: u64,
    /// How the underlying simulation ended.
    pub outcome: Outcome,
}

impl Point {
    /// Fraction of offered messages delivered.
    pub fn delivered_fraction(&self) -> f64 {
        if self.offered == 0 {
            return 1.0;
        }
        self.delivered as f64 / self.offered as f64
    }
}

/// Sweep geometry per mode: (radix, dims, message length, injection
/// window).
fn params(fast: bool) -> (u32, u32, u32, u64) {
    if fast {
        (4, 2, 4, 150)
    } else {
        (8, 2, 6, 400)
    }
}

fn fault_rates(fast: bool) -> &'static [f64] {
    if fast {
        &[0.0, 0.05, 0.15]
    } else {
        &[0.0, 0.02, 0.05, 0.10, 0.20]
    }
}

const SELECTIONS: [RouteSelection; 3] = [
    RouteSelection::Oblivious,
    RouteSelection::MinimalAdaptive,
    RouteSelection::FullyAdaptive,
];

const VC_ARMS: [&str; 2] = ["static", "pooled"];

/// The two capacity policies at the shared per-lane budget `b`:
/// `Static(b)` and the equal-storage router pool with the floor-1
/// deadlock-freedom guarantee.
fn arm_policy(arm: &str, b: u32, fanout: u32) -> VcPolicy {
    match arm {
        "static" => VcPolicy::Static(b),
        "pooled" => VcPolicy::pooled(b * fanout, 1, b * fanout),
        _ => unreachable!("unknown arm {arm}"),
    }
}

/// Runs one faulted batch: the oblivious arm replays the fixed routes
/// through the plain simulator; the adaptive arms route per hop through
/// the [`FaultedMesh`] (dead-edge-filtered candidates, fault-avoiding
/// escape routes). Both get the same timed kills via
/// `SimConfig::faults`.
fn run_arm(
    mesh: &Mesh,
    specs: &[wormhole_flitsim::message::MessageSpec],
    plan: &FaultPlan,
    sel: RouteSelection,
    cfg: &SimConfig,
) -> SimResult {
    match sel {
        RouteSelection::Oblivious => sim_run(mesh.graph(), specs, cfg),
        _ => {
            let fm = FaultedMesh::new(mesh, plan).expect("generated plans keep rings connected");
            run_adaptive(&fm, specs, &cfg.clone().route_selection(sel))
        }
    }
}

fn point_from(
    sel: RouteSelection,
    vc_arm: &'static str,
    fault_rate: f64,
    releases: &[u64],
    r: &SimResult,
) -> Point {
    Point {
        selection: sel,
        vc_arm,
        fault_rate,
        offered: r.messages.len(),
        delivered: r.delivered(),
        mean_latency: r.mean_latency(releases),
        kills: r.kills_applied,
        fault_discards: r.fault_discards,
        fault_detours: r.fault_detour_hops,
        escapes: r.escape_fallbacks,
        recovery: r.fault_recovery_steps,
        outcome: r.outcome.clone(),
    }
}

/// The fault-rate sweep (arm 1), in input order: per fault rate ×
/// route selection × capacity arm. All arms of a rate share the same
/// batch workload and the same kill plan — only routing and VC policy
/// differ.
pub fn sweep_points(fast: bool) -> Vec<Point> {
    sweep_points_with(fast, Engine::EventDriven)
}

/// [`sweep_points`] on an explicit simulator engine — the differential /
/// timing hook used by `experiments bench-json` and the tests.
pub fn sweep_points_with(fast: bool, engine: Engine) -> Vec<Point> {
    let (radix, dims, l, window) = params(fast);
    let mut jobs = Vec::new();
    for (ri, &rate) in fault_rates(fast).iter().enumerate() {
        for sel in SELECTIONS {
            for arm in VC_ARMS {
                jobs.push((ri, rate, sel, arm));
            }
        }
    }
    parallel_map(jobs, default_threads(), |(ri, rate, sel, arm)| {
        let substrate = Substrate::torus_with(radix, dims, RoutingDiscipline::AdaptiveEscape);
        let mesh = substrate.as_mesh().expect("adaptive torus is mesh-based");
        let w = Workload::new(
            substrate.clone(),
            TrafficPattern::UniformRandom,
            ArrivalProcess::bernoulli(0.04),
            l,
            0xfa17,
        );
        let specs = w.generate(window);
        let releases: Vec<u64> = specs.iter().map(|s| s.release).collect();
        // One plan per rate (not per arm): every arm of a rate sees the
        // same network break the same way at the same times.
        let plan = FaultPlan::bernoulli_channels(mesh, *rate, window, 0xdead ^ *ri as u64);
        let cfg = SimConfig::new(2)
            .vc_policy(arm_policy(arm, 2, mesh.graph().max_out_degree() as u32))
            .arbitration(Arbitration::Random)
            .seed(0x5eed)
            .max_steps(window + 4000)
            .faults(plan.clone())
            .engine(engine);
        let r = run_arm(mesh, &specs, &plan, *sel, &cfg);
        point_from(*sel, arm, *rate, &releases, &r)
    })
}

/// The directional-blackout arm (arm 2): tornado traffic, then at step
/// `kill_at` every `+` channel of dimension 0 dies at once (all
/// boundaries of every dim-0 ring in one direction — the other
/// direction survives, so the ring-connectivity rule holds). Returns
/// one point per route selection × capacity arm.
pub fn blackout_points(fast: bool) -> Vec<Point> {
    blackout_points_with(fast, Engine::EventDriven)
}

/// [`blackout_points`] on an explicit simulator engine.
pub fn blackout_points_with(fast: bool, engine: Engine) -> Vec<Point> {
    let (radix, dims, l, _) = params(fast);
    let window = if fast { 100 } else { 200 };
    let kill_at = 5u64;
    let mut jobs = Vec::new();
    for sel in SELECTIONS {
        for arm in VC_ARMS {
            jobs.push((sel, arm));
        }
    }
    parallel_map(jobs, default_threads(), |(sel, arm)| {
        let substrate = Substrate::torus_with(radix, dims, RoutingDiscipline::AdaptiveEscape);
        let mesh = substrate.as_mesh().expect("adaptive torus is mesh-based");
        let w = Workload::new(
            substrate.clone(),
            TrafficPattern::Tornado,
            ArrivalProcess::bernoulli(0.05),
            l,
            0xb1ac,
        );
        let specs = w.generate(window);
        let releases: Vec<u64> = specs.iter().map(|s| s.release).collect();
        let mut plan = FaultPlan::new();
        for v in 0..mesh.num_nodes() {
            let coords = mesh.coords(wormhole_topology::graph::NodeId(v));
            plan = plan.kill_channel(kill_at, mesh, &coords, 0, false);
        }
        let cfg = SimConfig::new(2)
            .vc_policy(arm_policy(arm, 2, mesh.graph().max_out_degree() as u32))
            .arbitration(Arbitration::Random)
            .seed(0x5eed)
            .max_steps(window + 4000)
            .faults(plan.clone())
            .engine(engine);
        let r = run_arm(mesh, &specs, &plan, *sel, &cfg);
        point_from(*sel, arm, 1.0, &releases, &r)
    })
}

/// The path-diversity arm (arm 3): the same offered rows (source,
/// destination, release — identical seeds and endpoint count) on a
/// butterfly and a Benes network; a mid-run kill takes out the middle
/// edge of several canonical routes, and fault-aware sources re-route
/// post-kill traffic via [`Substrate::route_avoiding`]. The butterfly
/// has no second path, so its re-route falls back to the dead canonical
/// route and the worm is discarded on admission.
pub fn diversity_points(fast: bool) -> Vec<(&'static str, Point)> {
    diversity_points_with(fast, Engine::EventDriven)
}

/// [`diversity_points`] on an explicit simulator engine.
pub fn diversity_points_with(fast: bool, engine: Engine) -> Vec<(&'static str, Point)> {
    let k = if fast { 3 } else { 4 };
    let window = if fast { 150 } else { 300 };
    let kill_at = 30u64;
    let nets: Vec<(&'static str, Substrate)> = vec![
        ("butterfly", Substrate::butterfly(k)),
        ("benes", Substrate::benes(k)),
    ];
    parallel_map(nets, default_threads(), |(name, sub)| {
        let w = Workload::new(
            sub.clone(),
            TrafficPattern::UniformRandom,
            ArrivalProcess::bernoulli(0.05),
            4,
            0xd1ff,
        );
        let rows = w.generate_rows(window);
        let n = sub.endpoints();
        // Kill the middle edge of a few canonical routes: shared
        // interior edges in the butterfly, exactly where the Benes has
        // its middle-column diversity.
        let mut plan = FaultPlan::new();
        let mut killed = Vec::new();
        for i in 0..n.min(4) / 2 {
            let p = sub.route(i, (i + n / 2) % n);
            let e = p.edges()[p.edges().len() / 2];
            if !killed.contains(&e) {
                killed.push(e);
                plan = plan.kill_link(kill_at, e);
            }
        }
        let dead = plan.dead_edges(sub.graph());
        let specs: Vec<_> = rows
            .iter()
            .map(|r| {
                // Fault-aware source: post-kill traffic asks for an
                // alive route; pre-kill traffic (and pairs with no
                // alive route left) keeps the canonical one.
                let path = if r.release >= kill_at {
                    sub.route_avoiding(r.src, r.dst, &dead)
                        .unwrap_or_else(|| sub.route(r.src, r.dst))
                } else {
                    sub.route(r.src, r.dst)
                };
                wormhole_flitsim::message::MessageSpec::new(path, r.length).release_at(r.release)
            })
            .collect();
        let releases: Vec<u64> = specs.iter().map(|s| s.release).collect();
        let cfg = SimConfig::new(2)
            .arbitration(Arbitration::Random)
            .seed(0x5eed)
            .max_steps(window + 4000)
            .faults(plan.clone())
            .engine(engine);
        let r = sim_run(sub.graph(), &specs, &cfg);
        (
            *name,
            point_from(RouteSelection::Oblivious, "static", 1.0, &releases, &r),
        )
    })
}

fn outcome_str(o: &Outcome) -> &'static str {
    match o {
        Outcome::Completed => "ok",
        Outcome::MaxSteps => "cap",
        Outcome::Deadlock(_) => "DEADLOCK",
    }
}

fn point_row(t: &mut Table, label: &str, p: &Point) {
    t.row(&cells!(
        label,
        p.selection.name(),
        p.vc_arm,
        p.offered,
        p.delivered,
        fnum(p.delivered_fraction()),
        p.mean_latency.map(fnum).unwrap_or_else(|| "-".into()),
        p.kills,
        p.fault_discards,
        p.fault_detours,
        p.escapes,
        p.recovery,
        outcome_str(&p.outcome)
    ));
}

const POINT_COLS: [&str; 13] = [
    "arm",
    "selection",
    "VCs",
    "offered",
    "delivered",
    "frac",
    "mean lat",
    "kills",
    "discards",
    "detours",
    "escapes",
    "recovery",
    "outcome",
];

/// Runs X12.
pub fn run(fast: bool) -> Vec<Table> {
    let (radix, dims, l, window) = params(fast);
    let mut tables = Vec::new();

    let mut sweep = Table::new(
        format!(
            "X12 — delivered fraction vs channel-fault rate: torus({radix}^{dims},adaptive), \
             uniform random batch, L = {l}, window {window}"
        ),
        &POINT_COLS,
    );
    for p in &sweep_points(fast) {
        sweep.row(&cells!(
            format!("p={}", fnum(p.fault_rate)),
            p.selection.name(),
            p.vc_arm,
            p.offered,
            p.delivered,
            fnum(p.delivered_fraction()),
            p.mean_latency.map(fnum).unwrap_or_else(|| "-".into()),
            p.kills,
            p.fault_discards,
            p.fault_detours,
            p.escapes,
            p.recovery,
            outcome_str(&p.outcome)
        ));
    }
    sweep.note(
        "All arms of a rate share one batch and one seeded Bernoulli channel-kill plan (which \
         never disconnects a ring, so the escape subnetwork survives acyclically). Oblivious \
         worms on a killed route are discarded (LinkDown); adaptive worms route around the dead \
         channels and cannot deadlock — no row may read DEADLOCK. 'recovery' is steps from the \
         last kill to the first delivery after it.",
    );
    tables.push(sweep);

    let mut blackout = Table::new(
        format!(
            "X12 — directional blackout: tornado on torus({radix}^{dims},adaptive), every \
             dim-0 '+' channel killed at step 5"
        ),
        &POINT_COLS,
    );
    for p in &blackout_points(fast) {
        point_row(&mut blackout, "blackout", p);
    }
    blackout.note(
        "Tornado's dateline route runs '+' in dimension 0, so the oblivious arm's delivered \
         fraction collapses to the pre-kill trickle; the adaptive arms take the surviving '−' \
         ring (equal tornado distance) at full delivered fraction — the graceful-degradation \
         acceptance criterion, asserted in tests for both VC arms.",
    );
    tables.push(blackout);

    let mut div = Table::new(
        "X12 — path diversity under a mid-run kill: identical offered rows, fault-aware re-routing",
        &POINT_COLS,
    );
    for (name, p) in &diversity_points(fast) {
        point_row(&mut div, name, p);
    }
    div.note(
        "Both networks carry the same (source, destination, release) rows and lose the middle \
         edge of the same canonical flows at step 30. Post-kill traffic re-routes via \
         route_avoiding: the Benes shifts to another middle column and keeps its delivered \
         fraction; the butterfly's unique paths leave re-routing nothing to offer, so severed \
         flows are discarded dead-on-arrival.",
    );
    tables.push(div);
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x12_adaptive_survives_fault_rates_that_starve_oblivious() {
        let points = sweep_points(true);
        // Deadlock freedom on every faulted topology, both VC arms.
        for p in &points {
            assert!(
                !matches!(p.outcome, Outcome::Deadlock(_)),
                "{} {} p={} deadlocked",
                p.selection.name(),
                p.vc_arm,
                p.fault_rate
            );
        }
        let frac = |sel: RouteSelection, arm: &str, rate: f64| {
            points
                .iter()
                .find(|p| p.selection == sel && p.vc_arm == arm && p.fault_rate == rate)
                .map(Point::delivered_fraction)
                .unwrap_or_else(|| panic!("{} {arm} p={rate} swept", sel.name()))
        };
        for arm in VC_ARMS {
            // No faults: everyone delivers everything.
            for sel in SELECTIONS {
                assert_eq!(frac(sel, arm, 0.0), 1.0, "{} {arm} at p=0", sel.name());
            }
            // Faults: each adaptive arm delivers at least what oblivious
            // does at every rate, strictly more at the highest rate.
            for &rate in fault_rates(true) {
                let obl = frac(RouteSelection::Oblivious, arm, rate);
                for sel in [
                    RouteSelection::MinimalAdaptive,
                    RouteSelection::FullyAdaptive,
                ] {
                    assert!(
                        frac(sel, arm, rate) >= obl,
                        "{} {arm} under-delivered oblivious at p={rate}",
                        sel.name()
                    );
                }
            }
            let top = *fault_rates(true).last().unwrap();
            assert!(
                frac(RouteSelection::MinimalAdaptive, arm, top)
                    > frac(RouteSelection::Oblivious, arm, top),
                "routing around faults must save messages oblivious loses ({arm})"
            );
        }
        // The fault machinery is genuinely exercised.
        assert!(points.iter().any(|p| p.fault_discards > 0));
        assert!(points.iter().any(|p| p.kills > 0));
    }

    #[test]
    fn x12_blackout_collapses_oblivious_but_not_adaptive() {
        // The acceptance criterion: at a fault pattern where the
        // oblivious arm's delivered fraction collapses, the adaptive
        // arms sustain most of the traffic — with static and with
        // pooled VCs.
        for p in &blackout_points(true) {
            assert!(
                !matches!(p.outcome, Outcome::Deadlock(_)),
                "{} {} deadlocked under blackout",
                p.selection.name(),
                p.vc_arm
            );
            let f = p.delivered_fraction();
            match p.selection {
                RouteSelection::Oblivious => assert!(
                    f < 0.3,
                    "oblivious should collapse under the dim-0 '+' blackout ({}, frac {f})",
                    p.vc_arm
                ),
                _ => assert!(
                    f > 0.7,
                    "{} ({}) should route around the blackout, frac {f}",
                    p.selection.name(),
                    p.vc_arm
                ),
            }
        }
    }

    #[test]
    fn x12_benes_diversity_beats_butterfly_under_the_same_kill() {
        let points = diversity_points(true);
        let frac = |name: &str| {
            points
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, p)| p.delivered_fraction())
                .unwrap_or_else(|| panic!("{name} arm ran"))
        };
        let (bfly, benes) = (frac("butterfly"), frac("benes"));
        assert!(
            benes > bfly,
            "middle-column diversity must save traffic the butterfly loses: \
             benes {benes} vs butterfly {bfly}"
        );
        assert!(benes > 0.95, "benes re-routes around the kill: {benes}");
        let bfly_p = &points.iter().find(|(n, _)| *n == "butterfly").unwrap().1;
        assert!(
            bfly_p.fault_discards > 0,
            "the butterfly arm's severed flows are discarded"
        );
    }

    #[test]
    fn x12_engines_agree_pointwise() {
        // The kill hooks are new engine surface: every measured point of
        // all three arms must match the legacy oracle, fault counters
        // included.
        let check = |ev: &Point, lg: &Point, ctx: &str| {
            assert_eq!(ev.outcome, lg.outcome, "{ctx}");
            assert_eq!(ev.delivered, lg.delivered, "{ctx}");
            assert_eq!(ev.mean_latency, lg.mean_latency, "{ctx}");
            assert_eq!(ev.kills, lg.kills, "{ctx}");
            assert_eq!(ev.fault_discards, lg.fault_discards, "{ctx}");
            assert_eq!(ev.fault_detours, lg.fault_detours, "{ctx}");
            assert_eq!(ev.escapes, lg.escapes, "{ctx}");
            assert_eq!(ev.recovery, lg.recovery, "{ctx}");
        };
        let ev = sweep_points_with(true, Engine::EventDriven);
        let lg = sweep_points_with(true, Engine::Legacy);
        assert_eq!(ev.len(), lg.len());
        for (a, b) in ev.iter().zip(&lg) {
            check(
                a,
                b,
                &format!(
                    "sweep {} {} p={}",
                    a.selection.name(),
                    a.vc_arm,
                    a.fault_rate
                ),
            );
        }
        let ev = blackout_points_with(true, Engine::EventDriven);
        let lg = blackout_points_with(true, Engine::Legacy);
        for (a, b) in ev.iter().zip(&lg) {
            check(
                a,
                b,
                &format!("blackout {} {}", a.selection.name(), a.vc_arm),
            );
        }
        let ev = diversity_points_with(true, Engine::EventDriven);
        let lg = diversity_points_with(true, Engine::Legacy);
        for ((na, a), (nb, b)) in ev.iter().zip(&lg) {
            assert_eq!(na, nb);
            check(a, b, &format!("diversity {na}"));
        }
    }

    #[test]
    fn x12_tables_render() {
        let tables = run(true);
        assert_eq!(tables.len(), 3);
        let s = tables[0].render();
        for needle in ["oblivious", "minimal", "fully", "static", "pooled"] {
            assert!(s.contains(needle), "missing {needle}");
        }
        assert!(tables[1].render().contains("blackout"));
        let d = tables[2].render();
        assert!(d.contains("butterfly") && d.contains("benes"));
    }
}
