//! X2 (extension) — open-loop latency-vs-offered-load curves over the
//! synthetic traffic suite (`wormhole-workloads`), sweeping the VC count.
//!
//! The paper's theorems are batch statements; the standard NoC evidence
//! for virtual-channel benefit (Dally \[16\]; Onsori–Safaei; Stergiou) is
//! open-loop: every endpoint injects by a timed process, and the latency
//! curve's saturation knee moves right as `B` grows. This experiment
//! sweeps offered load × traffic pattern × `B ∈ {1,2,4,8}` and reports
//! per-window latency percentiles, accepted throughput, and the measured
//! saturation throughput (max accepted load over the sweep) per `(pattern,
//! B)` — which increases monotonically in `B` on the uniform-random
//! butterfly workload.
//!
//! Torus points run on both routing disciplines: the naive arm wedges
//! into deadlock on tornado traffic at `B = 1` (worms chasing tails
//! around a wrap ring), while the Dally–Seitz dateline arm
//! ([`RoutingDiscipline::DatelineClasses`]) is deadlock-free by
//! construction and keeps accepting traffic at every `B`.

use wormhole_flitsim::config::{Arbitration, Engine, SimConfig};
use wormhole_flitsim::open_loop::{run_open_loop, OpenLoopConfig};
use wormhole_flitsim::stats::{OpenLoopStats, Outcome};
use wormhole_workloads::{ArrivalProcess, RoutingDiscipline, Substrate, TrafficPattern, Workload};

use crate::cells;
use crate::sweep::{default_threads, parallel_map};
use crate::table::{fnum, Table};

/// One measured point of the sweep.
pub struct Point {
    /// Pattern name.
    pub pattern: &'static str,
    /// Substrate name.
    pub substrate: String,
    /// Endpoint count of the substrate (for per-endpoint normalization).
    pub endpoints: f64,
    /// Offered load, messages per endpoint per step.
    pub rate: f64,
    /// Virtual channels.
    pub b: u32,
    /// How the underlying simulation ended (a deadlocked point is the
    /// torus headline the dateline discipline exists to remove).
    pub outcome: Outcome,
    /// Windowed measurement.
    pub stats: OpenLoopStats,
}

impl Point {
    /// Accepted throughput in flits per endpoint per step.
    pub fn accepted_per_endpoint(&self) -> f64 {
        self.stats.accepted_flits_per_step / self.endpoints
    }

    /// Whether the simulation wedged into a deadlock.
    pub fn deadlocked(&self) -> bool {
        matches!(self.outcome, Outcome::Deadlock(_))
    }
}

fn patterns(fast: bool) -> Vec<(TrafficPattern, Substrate)> {
    let k = if fast { 5 } else { 6 };
    let bf = || Substrate::butterfly(k);
    let mut v = vec![
        (TrafficPattern::UniformRandom, bf()),
        (TrafficPattern::Permutation, bf()),
        (TrafficPattern::BitReversal, bf()),
        (TrafficPattern::Shuffle, bf()),
        (
            TrafficPattern::Hotspot {
                fraction: 0.2,
                hotspots: vec![0, 1 << (k - 1)],
            },
            bf(),
        ),
    ];
    // Torus arms run twice — naive vs dateline discipline — so the curves
    // show the B=1 tornado deadlock and its removal side by side.
    let (tr, td) = if fast { (8, 1) } else { (8, 2) };
    for discipline in [RoutingDiscipline::Naive, RoutingDiscipline::DatelineClasses] {
        v.push((
            TrafficPattern::Tornado,
            Substrate::torus_with(tr, td, discipline),
        ));
        v.push((
            TrafficPattern::UniformRandom,
            Substrate::torus_with(tr, td, discipline),
        ));
    }
    if !fast {
        v.push((TrafficPattern::Transpose, bf()));
        v.push((TrafficPattern::UniformRandom, Substrate::hypercube(6)));
    }
    v
}

/// Sweep parameters per mode: (message length, warmup, measure window).
fn params(fast: bool) -> (u32, u64, u64) {
    if fast {
        (4, 150, 400)
    } else {
        (8, 500, 1500)
    }
}

/// Runs the full measurement sweep, in input order: for each pattern,
/// each offered rate × VC count.
pub fn sweep_points(fast: bool) -> Vec<Point> {
    sweep_points_with(fast, Engine::EventDriven)
}

/// [`sweep_points`] on an explicit simulator engine — the differential /
/// timing hook used by `experiments bench-json` and the benches (both
/// engines are bit-identical; only their cost differs).
pub fn sweep_points_with(fast: bool, engine: Engine) -> Vec<Point> {
    let (l, warmup, measure) = params(fast);
    let rates: &[f64] = if fast {
        &[0.02, 0.10, 0.25, 0.45]
    } else {
        &[0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.55]
    };
    let bs: &[u32] = if fast { &[1, 2, 4] } else { &[1, 2, 4, 8] };

    let mut jobs = Vec::new();
    for (pi, (pattern, substrate)) in patterns(fast).into_iter().enumerate() {
        for &rate in rates {
            for &b in bs {
                jobs.push((pi, pattern.clone(), substrate.clone(), rate, b));
            }
        }
    }
    parallel_map(
        jobs,
        default_threads(),
        |(pi, pattern, substrate, rate, b)| {
            let w = Workload::new(
                substrate.clone(),
                pattern.clone(),
                ArrivalProcess::bernoulli(*rate),
                l,
                0xa11ce ^ (*pi as u64) << 4,
            );
            let specs = w.generate(warmup + measure);
            let ol = OpenLoopConfig::new(warmup, measure);
            let cfg = SimConfig::new(*b)
                .arbitration(Arbitration::Random)
                .seed(0x5eed ^ *b as u64)
                .engine(engine);
            let r = run_open_loop(substrate.graph(), &specs, &cfg, &ol);
            Point {
                pattern: pattern.name(),
                substrate: substrate.name(),
                endpoints: substrate.endpoints() as f64,
                rate: *rate,
                b: *b,
                outcome: r.outcome.clone(),
                stats: r.open_loop.expect("open-loop run carries stats"),
            }
        },
    )
}

/// Saturation throughput (max accepted flit rate over the rate sweep)
/// per `(substrate, pattern, B)`, in first-appearance order.
pub fn saturation_throughputs(points: &[Point]) -> Vec<(String, &'static str, u32, f64)> {
    let mut out: Vec<(String, &'static str, u32, f64)> = Vec::new();
    for p in points {
        let v = p.accepted_per_endpoint();
        match out
            .iter_mut()
            .find(|(s, pat, b, _)| *s == p.substrate && *pat == p.pattern && *b == p.b)
        {
            Some(entry) => entry.3 = entry.3.max(v),
            None => out.push((p.substrate.clone(), p.pattern, p.b, v)),
        }
    }
    out
}

/// Saturation throughputs for uniform-random butterfly traffic keyed by
/// `B` — the monotonicity headline, computed from the structured sweep
/// (no table parsing).
pub fn uniform_saturation_curve(points: &[Point]) -> Vec<(u32, f64)> {
    let mut out: Vec<(u32, f64)> = saturation_throughputs(points)
        .into_iter()
        .filter(|(s, pat, _, _)| s.starts_with("butterfly") && *pat == "uniform")
        .map(|(_, _, b, v)| (b, v))
        .collect();
    out.sort_by_key(|&(b, _)| b);
    out
}

/// Runs X2.
pub fn run(fast: bool) -> Vec<Table> {
    let (l, warmup, measure) = params(fast);
    let points = sweep_points(fast);

    let mut tables = Vec::new();
    let mut curves = Table::new(
        format!(
            "X2 — open-loop latency vs offered load (L = {l}, warmup {warmup}, window {measure})"
        ),
        &[
            "substrate",
            "pattern",
            "offered (msg/ep/step)",
            "B",
            "mean lat",
            "p50",
            "p95",
            "p99",
            "accepted (flit/ep/step)",
            "saturated",
            "outcome",
        ],
    );
    for p in &points {
        let outcome = match &p.outcome {
            Outcome::Completed => "ok",
            Outcome::MaxSteps => "cap",
            Outcome::Deadlock(_) => "DEADLOCK",
        };
        curves.row(&cells!(
            p.substrate,
            p.pattern,
            fnum(p.rate),
            p.b,
            fnum(p.stats.latency.mean),
            p.stats.latency.p50,
            p.stats.latency.p95,
            p.stats.latency.p99,
            fnum(p.accepted_per_endpoint()),
            if p.stats.saturated { "yes" } else { "-" },
            outcome
        ));
    }
    curves.note(
        "Latency sits at the D+L−1 floor until the knee; the knee's offered load rises with B. \
         'saturated' = accepted < 95% of offered or growing backlog over the window. \
         Tornado on the naive torus wedges into DEADLOCK at B=1; the dateline arm \
         (two VC classes, per-dimension dateline switch) never deadlocks.",
    );
    tables.push(curves);

    let mut sat = Table::new(
        "X2 — measured saturation throughput (max accepted load over the rate sweep)",
        &[
            "substrate",
            "pattern",
            "B",
            "sat. throughput (flit/ep/step)",
        ],
    );
    for (sub, pat, b, best) in saturation_throughputs(&points) {
        sat.row(&cells!(sub, pat, b, fnum(best)));
    }
    sat.note(
        "On uniform-random butterfly traffic the saturation throughput increases monotonically \
         in B — the open-loop face of the paper's batch speedup. The naive-torus tornado rows \
         collapse to ≈ 0 at B=1 (deadlock); the dateline rows stay live at every B.",
    );
    tables.push(sat);
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One shared fast sweep: the measurement is deterministic, so every
    /// assertion can read the same points.
    fn fast_points() -> Vec<Point> {
        sweep_points(true)
    }

    #[test]
    fn x2_sweep_properties() {
        let points = fast_points();

        // Saturation throughput is monotone in B on uniform butterfly.
        let curve = uniform_saturation_curve(&points);
        assert!(curve.len() >= 3, "need ≥ 3 VC counts, got {curve:?}");
        for w in curve.windows(2) {
            assert!(
                w[1].1 >= w[0].1,
                "saturation throughput must not drop with more VCs: {curve:?}"
            );
        }
        assert!(
            curve.last().unwrap().1 > curve.first().unwrap().1,
            "B must buy measurable throughput: {curve:?}"
        );

        // Coverage: ≥ 4 patterns × ≥ 3 VC counts.
        let mut pats: Vec<&str> = points.iter().map(|p| p.pattern).collect();
        pats.sort_unstable();
        pats.dedup();
        assert!(pats.len() >= 4, "patterns covered: {pats:?}");
        let mut bs: Vec<u32> = points.iter().map(|p| p.b).collect();
        bs.sort_unstable();
        bs.dedup();
        assert!(bs.len() >= 3, "VC counts covered: {bs:?}");

        // At the lightest load with ample VCs, p50 latency sits at the
        // D + L − 1 floor (k = 5, L = 4 in fast mode).
        let floor = (5 + 4 - 1) as u64;
        let light = points
            .iter()
            .find(|p| p.pattern == "uniform" && p.rate < 0.03 && p.b == 4)
            .expect("light-load uniform point exists");
        assert_eq!(light.stats.latency.p50, floor, "p50 at light load");
        assert!(!light.stats.saturated);
    }

    #[test]
    fn x2_dateline_discipline_removes_the_tornado_deadlock() {
        let points = fast_points();
        let naive: Vec<&Point> = points
            .iter()
            .filter(|p| {
                p.pattern == "tornado"
                    && p.substrate.starts_with("torus")
                    && !p.substrate.contains("dateline")
            })
            .collect();
        let dateline: Vec<&Point> = points
            .iter()
            .filter(|p| p.pattern == "tornado" && p.substrate.contains("dateline"))
            .collect();
        assert!(!naive.is_empty() && !dateline.is_empty(), "both arms swept");

        // The control arm wedges: some naive B=1 point deadlocks.
        assert!(
            naive.iter().any(|p| p.b == 1 && p.deadlocked()),
            "naive tornado-on-torus must deadlock at B=1"
        );
        // The dateline arm never deadlocks — at any B, any rate.
        for p in &dateline {
            assert!(
                !p.deadlocked(),
                "dateline tornado must not deadlock: B={} rate={}",
                p.b,
                p.rate
            );
        }
        // And at B=1 it carries real traffic: nonzero measured saturation
        // throughput (the acceptance headline).
        let sat = saturation_throughputs(&points);
        let (_, _, _, dl_b1) = sat
            .iter()
            .find(|(s, pat, b, _)| s.contains("dateline") && *pat == "tornado" && *b == 1)
            .expect("dateline tornado B=1 swept");
        assert!(
            *dl_b1 > 0.0,
            "dateline tornado at B=1 must accept traffic, got {dl_b1}"
        );
    }

    #[test]
    fn x2_engines_agree_pointwise() {
        // The sweep is the engine's production workload: every measured
        // point must be identical under the legacy differential oracle.
        let ev = sweep_points_with(true, Engine::EventDriven);
        let lg = sweep_points_with(true, Engine::Legacy);
        assert_eq!(ev.len(), lg.len());
        for (a, b) in ev.iter().zip(&lg) {
            let ctx = format!("{} {} rate={} B={}", a.substrate, a.pattern, a.rate, a.b);
            assert_eq!(a.outcome, b.outcome, "{ctx}");
            assert_eq!(a.stats.latency, b.stats.latency, "{ctx}");
            assert_eq!(a.stats.offered_msgs, b.stats.offered_msgs, "{ctx}");
            assert_eq!(a.stats.delivered_msgs, b.stats.delivered_msgs, "{ctx}");
            assert_eq!(a.stats.accepted_msgs, b.stats.accepted_msgs, "{ctx}");
            assert_eq!(a.stats.backlog, b.stats.backlog, "{ctx}");
            assert_eq!(a.stats.saturated, b.stats.saturated, "{ctx}");
        }
    }

    #[test]
    fn x2_tables_render() {
        let tables = run(true);
        assert_eq!(tables.len(), 2);
        let s = tables[0].render();
        for pat in [
            "uniform",
            "permutation",
            "bit-reversal",
            "shuffle",
            "hotspot",
            "tornado",
        ] {
            assert!(s.contains(pat), "missing pattern {pat}");
        }
        assert!(s.contains("dateline"), "dateline arm missing from curves");
        assert!(s.contains("DEADLOCK"), "naive deadlock missing from curves");
        assert!(tables[1].render().contains("sat. throughput"));
    }
}
