//! E2 — §1.4: adding `B` virtual channels can speed wormhole routing up by
//! a **superlinear** factor.
//!
//! The instance is the Theorem 2.2.1 worst case built for `B=1` (every pair
//! of base messages shares a primary edge), which forces `Ω(LCD)` at one
//! VC. The same network and messages are then routed with more VCs, both
//! greedily and with the adaptive LLL schedule. The speedup
//! `T(1)/T(B)` is compared against the linear reference `B` and the paper's
//! `B·D^{1−1/B}`.

use wormhole_core::bounds::superlinear_speedup;
use wormhole_core::firstfit::{first_fit, FirstFitOrder};
use wormhole_core::pipeline::adaptive_min_colors;
use wormhole_core::schedule::ColorSchedule;

use wormhole_baselines::greedy_wormhole::greedy_wormhole;
use wormhole_topology::lowerbound::build;

use crate::cells;
use crate::table::{fnum, Table};

/// Runs E2.
pub fn run(fast: bool) -> Vec<Table> {
    let (target_d, reps) = if fast { (21u32, 2u32) } else { (61, 2) };
    let net = build(1, target_d, reps, false);
    let d = net.dilation;
    let l = 2 * d;
    let c = net.congestion();

    let mut t = Table::new(
        format!(
            "E2 — superlinear speedup on the B=1 worst case (C={c}, D={d}, L={l}, M={})",
            net.num_messages()
        ),
        &[
            "router B",
            "greedy T",
            "scheduled T",
            "speedup (sched)",
            "linear ref B",
            "paper B·D^(1-1/B)",
        ],
    );
    let bs: &[u32] = if fast { &[1, 2, 4] } else { &[1, 2, 3, 4, 6] };
    let mut t1_sched = 0u64;
    for &b in bs {
        let greedy = greedy_wormhole(&net.graph, &net.paths, l, b, 7).total_steps;
        let coloring = {
            let ff = first_fit(&net.paths, &net.graph, b, FirstFitOrder::Input);
            match adaptive_min_colors(&net.paths, &net.graph, b, 11 + b as u64, 64) {
                Some(rep) if rep.coloring.num_colors() < ff.num_colors() => rep.coloring,
                _ => ff,
            }
        };
        let sched = ColorSchedule::new(coloring, l, d);
        let scheduled = sched
            .execute_checked(&net.graph, &net.paths, l, b)
            .total_steps;
        if b == 1 {
            t1_sched = scheduled;
        }
        t.row(&cells!(
            b,
            greedy,
            scheduled,
            fnum(t1_sched as f64 / scheduled as f64),
            b,
            fnum(superlinear_speedup(d, b))
        ));
    }
    t.note("Speedup beyond the `linear ref B` column demonstrates the paper's headline claim R3.");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_speedup_is_superlinear() {
        let tables = run(true);
        let s = tables[0].render();
        // Extract the B=4 data row (first cell == "4") and check that the
        // speedup column exceeds the linear reference 4.
        let row4 = s
            .lines()
            .filter(|l| l.starts_with('|'))
            .find(|l| l.split('|').nth(1).map(str::trim) == Some("4"))
            .expect("B=4 row present");
        let cols: Vec<&str> = row4.split('|').map(str::trim).collect();
        let speedup: f64 = cols[4].parse().expect("speedup cell numeric");
        assert!(speedup > 4.0, "expected superlinear speedup, got {speedup}");
    }
}
