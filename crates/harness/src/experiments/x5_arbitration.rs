//! X5 (extension, ablation) — header arbitration policies. The paper's
//! bounds are policy-agnostic (schedules never contend), but *greedy*
//! routing lives on arbitration. This ablation measures makespan and
//! latency fairness across the four policies the simulator supports.

use wormhole_flitsim::config::{Arbitration, SimConfig};
use wormhole_flitsim::message::specs_from_paths;
use wormhole_flitsim::wormhole;
use wormhole_topology::random_nets::LeveledNet;

use crate::cells;
use crate::stats::Summary;
use crate::table::{fnum, Table};

/// Runs X5.
pub fn run(fast: bool) -> Vec<Table> {
    let (depth, width, msgs) = if fast {
        (10u32, 6u32, 80usize)
    } else {
        (20, 10, 320)
    };
    let net = LeveledNet::random(depth, width, 2, 21);
    let ps = net.random_walk_paths(msgs, 22);
    let l = 12u32;
    let (c, d) = (ps.congestion(net.graph()), ps.dilation());

    let mut t = Table::new(
        format!("X5 — arbitration ablation, greedy wormhole (C={c}, D={d}, L={l}, {msgs} msgs)"),
        &[
            "policy",
            "B",
            "makespan",
            "mean latency",
            "latency std (fairness)",
            "total stalls",
        ],
    );
    let policies = [
        ("FifoById", Arbitration::FifoById),
        ("Random", Arbitration::Random),
        ("OldestFirst", Arbitration::OldestFirst),
        ("PriorityRank", Arbitration::PriorityRank),
    ];
    for &b in if fast { &[2u32][..] } else { &[1u32, 2, 4][..] } {
        for (name, pol) in policies {
            let specs = specs_from_paths(&ps, l);
            let config = SimConfig::new(b).arbitration(pol).seed(5);
            let r = wormhole::run_to_completion(net.graph(), &specs, &config);
            let lat: Vec<f64> = r
                .messages
                .iter()
                .map(|m| m.finished.unwrap() as f64)
                .collect();
            let s = Summary::of(&lat);
            t.row(&cells!(
                name,
                b,
                r.total_steps,
                fnum(s.mean),
                fnum(s.std),
                r.total_stalls
            ));
        }
    }
    t.note("All policies complete (leveled network); makespans sit within a small band — VC count, not arbitration, is the first-order effect, which is why the paper's analysis can ignore the policy.");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x5_policies_within_band() {
        let tables = run(true);
        let s = tables[0].render();
        let mut spans = Vec::new();
        for row in s.lines().filter(|r| r.starts_with('|')).skip(2) {
            let cols: Vec<&str> = row.split('|').map(str::trim).collect();
            if cols.len() >= 7 {
                if let Ok(t) = cols[3].parse::<u64>() {
                    spans.push(t);
                }
            }
        }
        assert_eq!(spans.len(), 4);
        let (min, max) = (*spans.iter().min().unwrap(), *spans.iter().max().unwrap());
        assert!(
            max as f64 <= min as f64 * 1.8,
            "policies should land within ~2x: {spans:?}"
        );
    }
}
