//! E4 — §1.3.2 contrast (Ranade et al.): on the `B=1` worst-case instance,
//! store-and-forward routing (`O(L(C+D))` flit steps) beats wormhole
//! routing (`Ω(LCD)` flit steps) — buffering whole messages pays when
//! worms would otherwise weave every pair through a shared edge.

use wormhole_baselines::greedy_wormhole::greedy_wormhole;
use wormhole_baselines::store_forward::{farthest_first_store_forward, greedy_store_forward};
use wormhole_core::bounds::{general_lower_bound, store_forward_bound};
use wormhole_topology::lowerbound::build;

use crate::cells;
use crate::table::{fnum, Table};

/// Runs E4.
pub fn run(fast: bool) -> Vec<Table> {
    // Large replication: the contrast LCD vs L(C+D) needs C ≫ 1 to show
    // (at C = O(1) and L = 2D both sides are Θ(D²)).
    let reps = 16;
    let dvals: &[u32] = if fast { &[21, 41] } else { &[41, 81, 161, 241] };
    let mut t = Table::new(
        "E4 — store-and-forward vs wormhole at B=1 on the Thm 2.2.1 instance (L = 2D, C = 32)",
        &[
            "D",
            "C",
            "M",
            "wormhole greedy (flit steps)",
            "S&F greedy (flit steps)",
            "S&F farthest-first",
            "wormhole bound LCD",
            "S&F bound L(C+D)",
            "wormhole/S&F",
        ],
    );
    for &d in dvals {
        let net = build(1, d, reps, false);
        let l = 2 * net.dilation;
        let worm = greedy_wormhole(&net.graph, &net.paths, l, 1, 3).total_steps;
        let sf = greedy_store_forward(&net.graph, &net.paths);
        let sf_ff = farthest_first_store_forward(&net.graph, &net.paths);
        let sf_flits = sf.flit_steps(l);
        t.row(&cells!(
            net.dilation,
            net.congestion(),
            net.num_messages(),
            worm,
            sf_flits,
            sf_ff.flit_steps(l),
            fnum(general_lower_bound(l, net.congestion(), net.dilation, 1)),
            fnum(store_forward_bound(l, net.congestion(), net.dilation)),
            fnum(worm as f64 / sf_flits as f64)
        ));
    }
    t.note("The wormhole/S&F ratio grows with D: wormhole pays Θ(D) more on this instance, exactly the paper's point that store-and-forward can beat B=1 wormhole.");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_store_forward_wins() {
        let tables = run(true);
        let s = tables[0].render();
        for row in s.lines().filter(|l| l.starts_with('|')).skip(2) {
            let cols: Vec<&str> = row.split('|').map(str::trim).collect();
            if cols.len() < 10 || cols[1].parse::<u32>().is_err() {
                continue;
            }
            let ratio: f64 = cols[9]
                .parse()
                .expect("column 9 (wormhole/store-and-forward ratio) is a number");
            assert!(ratio > 1.0, "wormhole should be slower: {row}");
        }
    }
}
