//! X11 (extension) — open-loop vs closed-loop measurement at the
//! saturation knee, across static vs pooled VC budgets.
//!
//! Every latency-vs-load curve in x2/x9 is *open-loop*: sources inject
//! by a timed process no matter what the network delivers, so past the
//! knee the backlog — and with it the measured latency — grows without
//! bound. Real clients are *closed-loop*: each keeps at most `W`
//! requests outstanding and issues the next only after the previous
//! reply returns, so congestion throttles injection instead of
//! inflating a queue. The two methodologies agree below the knee and
//! diverge exactly at it (Schwetman's classic critique of open-loop
//! simulation applies verbatim to NoC sweeps).
//!
//! Both arms run the same client/server partitions over the same
//! substrates — a Dally–Seitz dateline torus and a butterfly — at the
//! same VC budgets (x9's `static` vs `pooled` arms):
//!
//! * **open** — a [`ServiceScenario`] stream at swept injection rates,
//!   driven through [`run_open_loop`]; the top rate is far past
//!   saturation, where the latency percentiles diverge and the
//!   saturation detector fires.
//! * **closed** — [`run_closed_loop`] request→reply chains at swept
//!   window sizes `W`; the in-flight population is structurally capped
//!   at `clients × W` chains, so accepted throughput self-limits near
//!   the knee and the end-of-run backlog stays bounded no matter how
//!   hot the loop runs.
//!
//! The tests assert the divergence headline on both topologies and both
//! VC policies, and hold every measured point to engine equality.

use wormhole_flitsim::config::{Arbitration, Engine, SimConfig, VcPolicy};
use wormhole_flitsim::open_loop::{run_open_loop, OpenLoopConfig};
use wormhole_flitsim::stats::{ClosedLoopStats, OpenLoopStats, Outcome};
use wormhole_workloads::{
    run_closed_loop, ClosedLoopConfig, RoutingDiscipline, ServiceScenario, Substrate,
};

use crate::cells;
use crate::sweep::{default_threads, parallel_map};
use crate::table::{fnum, Table};

/// Message length in flits (requests and replies alike).
const L: u32 = 4;

/// One measured point of the sweep.
pub struct Point {
    /// Topology name.
    pub topo: &'static str,
    /// Measurement methodology (`"open"` or `"closed"`).
    pub arm: &'static str,
    /// VC budget arm (`"static"` or `"pooled"`).
    pub policy: &'static str,
    /// The swept knob: offered rate (msg/client/step) for the open arm,
    /// outstanding-window size `W` for the closed arm.
    pub knob: f64,
    /// Client endpoints (the injecting half of the partition).
    pub clients: u32,
    /// How the underlying simulation ended.
    pub outcome: Outcome,
    /// Windowed open-loop-style measurement (both arms carry one).
    pub stats: OpenLoopStats,
    /// Chain-level statistics (closed arm only).
    pub closed: Option<ClosedLoopStats>,
}

impl Point {
    /// Accepted throughput in flits per client per step.
    pub fn accepted_per_client(&self) -> f64 {
        self.stats.accepted_flits_per_step / self.clients as f64
    }
}

/// Sweep geometry per mode: (warmup, measurement window).
fn params(fast: bool) -> (u64, u64) {
    if fast {
        (150, 400)
    } else {
        (400, 1200)
    }
}

/// The two topologies: `(name, substrate, clients)` — clients are the
/// first half of the endpoint space, servers the last half.
fn topologies(fast: bool) -> Vec<(&'static str, Substrate)> {
    if fast {
        vec![
            (
                "torus(8,dateline)",
                Substrate::torus_with(8, 1, RoutingDiscipline::DatelineClasses),
            ),
            ("butterfly(3)", Substrate::butterfly(3)),
        ]
    } else {
        vec![
            (
                "torus(8^2,dateline)",
                Substrate::torus_with(8, 2, RoutingDiscipline::DatelineClasses),
            ),
            ("butterfly(4)", Substrate::butterfly(4)),
        ]
    }
}

const POLICIES: [&str; 2] = ["static", "pooled"];

/// Budget factor shared by both policy arms (x9's equal-storage pairing:
/// `Static(b)` vs a router pool of `b · fanout` with floor 1).
const BUDGET: u32 = 2;

fn policy_for(policy: &str, fanout: u32) -> VcPolicy {
    match policy {
        "static" => VcPolicy::Static(BUDGET),
        "pooled" => VcPolicy::pooled(BUDGET * fanout, 1, BUDGET * fanout),
        _ => unreachable!("unknown policy {policy}"),
    }
}

/// The service-traffic description both arms share: clients (first half
/// of the endpoints) send fixed-length messages to uniformly drawn
/// servers (last half).
fn scenario(sub: &Substrate, rate: f64, seed: u64) -> ServiceScenario {
    let half = sub.endpoints() / 2;
    ServiceScenario::new(sub.clone(), half, half, rate, seed).pareto_lengths(1.5, L, L)
}

/// The closed-loop counterpart over the same partitions: `w` outstanding
/// request→reply chains per client, think and service times short enough
/// to drive the loop against its window bound.
fn closed_cfg(sub: &Substrate, w: u32, horizon: u64, seed: u64) -> ClosedLoopConfig {
    let half = sub.endpoints() / 2;
    ClosedLoopConfig {
        clients: half,
        servers: half,
        window: w,
        req_len: L,
        reply_len: L,
        think: (1, 8),
        server_delay: (1, 4),
        start_spread: 16,
        horizon,
        seed,
    }
}

/// Runs the full sweep, in input order: per topology, per policy, the
/// open-arm rate sweep then the closed-arm window sweep.
pub fn sweep_points(fast: bool) -> Vec<Point> {
    sweep_points_with(fast, Engine::EventDriven)
}

/// [`sweep_points`] on an explicit simulator engine — the differential /
/// timing hook used by `experiments bench-json` and the tests.
pub fn sweep_points_with(fast: bool, engine: Engine) -> Vec<Point> {
    let (warmup, measure) = params(fast);
    let rates: &[f64] = if fast {
        &[0.05, 0.25, 0.90]
    } else {
        &[0.02, 0.05, 0.10, 0.25, 0.50, 0.90]
    };
    let windows: &[u32] = if fast { &[1, 4] } else { &[1, 2, 4, 8] };

    enum Job {
        Open(f64),
        Closed(u32),
    }
    let mut jobs = Vec::new();
    for (ti, (topo, sub)) in topologies(fast).into_iter().enumerate() {
        for policy in POLICIES {
            for &rate in rates {
                jobs.push((topo, sub.clone(), ti, policy, Job::Open(rate)));
            }
            for &w in windows {
                jobs.push((topo, sub.clone(), ti, policy, Job::Closed(w)));
            }
        }
    }
    parallel_map(jobs, default_threads(), |(topo, sub, ti, policy, job)| {
        let fanout = sub.graph().max_out_degree() as u32;
        let seed = 0xb0b ^ ((*ti as u64) << 6);
        let ol = OpenLoopConfig::new(warmup, measure);
        let cfg = SimConfig::new(1)
            .vc_policy(policy_for(policy, fanout))
            .arbitration(Arbitration::Random)
            .seed(0x5eed ^ (*ti as u64))
            .engine(engine);
        let clients = sub.endpoints() / 2;
        let (knob, r) = match job {
            Job::Open(rate) => {
                let specs = scenario(sub, *rate, seed).generate(ol.window_end());
                (*rate, run_open_loop(sub.graph(), &specs, &cfg, &ol))
            }
            Job::Closed(w) => {
                let ccfg = closed_cfg(sub, *w, ol.window_end(), seed);
                (*w as f64, run_closed_loop(sub, &ccfg, &cfg, &ol))
            }
        };
        Point {
            topo,
            arm: if matches!(job, Job::Open(_)) {
                "open"
            } else {
                "closed"
            },
            policy,
            knob,
            clients,
            outcome: r.outcome.clone(),
            stats: r.open_loop.expect("windowed stats attached"),
            closed: r.closed_loop,
        }
    })
}

/// Runs X11.
pub fn run(fast: bool) -> Vec<Table> {
    let (warmup, measure) = params(fast);
    let points = sweep_points(fast);

    let mut tables = Vec::new();
    let mut curves = Table::new(
        format!(
            "X11 — open-loop vs closed-loop measurement near saturation: client/server service \
             traffic, L = {L}, budget B = {BUDGET}, warmup {warmup}, window {measure}"
        ),
        &[
            "topology",
            "arm",
            "policy",
            "knob (rate | W)",
            "offered (msg/step)",
            "accepted (flit/client/step)",
            "p50",
            "p99",
            "backlog end",
            "chains done",
            "chain p50",
            "saturated",
            "outcome",
        ],
    );
    for p in &points {
        let outcome = match &p.outcome {
            Outcome::Completed => "ok",
            Outcome::MaxSteps => "cap",
            Outcome::Deadlock(_) => "DEADLOCK",
        };
        let (chains, chain_p50) = match &p.closed {
            Some(cl) => (
                cl.chains_completed.to_string(),
                cl.chain_latency.p50.to_string(),
            ),
            None => ("-".to_string(), "-".to_string()),
        };
        curves.row(&cells!(
            p.topo,
            p.arm,
            p.policy,
            fnum(p.knob),
            fnum(p.stats.offered_msgs_per_step),
            fnum(p.accepted_per_client()),
            p.stats.latency.p50,
            p.stats.latency.p99,
            p.stats.backlog.1,
            chains,
            chain_p50,
            if p.stats.saturated { "yes" } else { "-" },
            outcome
        ));
    }
    curves.note(
        "Both arms share the topology, client/server partition, message length, and VC budget; \
         only the injection discipline differs. The open arm's knob is the per-client injection \
         rate — past the knee its backlog and latency percentiles diverge and the saturation \
         detector fires. The closed arm's knob is the outstanding-request window W — its \
         in-flight population is structurally capped at clients x W chains, so the end-of-window \
         backlog stays bounded and accepted throughput self-limits at the knee instead of \
         queueing without bound.",
    );
    tables.push(curves);

    let mut summary = Table::new(
        "X11 — the divergence, summarized per (topology, policy)",
        &[
            "topology",
            "policy",
            "open sat. accepted",
            "open p99 @ top rate",
            "open backlog @ top rate",
            "closed max accepted",
            "closed backlog bound",
            "closed worst backlog",
        ],
    );
    for (topo, _) in topologies(fast) {
        for policy in POLICIES {
            let mine: Vec<&Point> = points
                .iter()
                .filter(|p| p.topo == topo && p.policy == policy)
                .collect();
            let open_sat = mine
                .iter()
                .filter(|p| p.arm == "open")
                .map(|p| p.accepted_per_client())
                .fold(0.0f64, f64::max);
            let top_open = mine
                .iter()
                .filter(|p| p.arm == "open")
                .max_by(|a, b| a.knob.total_cmp(&b.knob))
                .expect("open arm swept");
            let closed_best = mine
                .iter()
                .filter(|p| p.arm == "closed")
                .map(|p| p.accepted_per_client())
                .fold(0.0f64, f64::max);
            let bound = mine
                .iter()
                .filter_map(|p| p.closed.as_ref())
                .map(|c| 2 * c.outstanding_bound())
                .max()
                .unwrap_or(0);
            let worst = mine
                .iter()
                .filter(|p| p.arm == "closed")
                .map(|p| p.stats.backlog.1.max(p.stats.backlog.0))
                .max()
                .unwrap_or(0);
            summary.row(&cells!(
                topo,
                policy,
                fnum(open_sat),
                top_open.stats.latency.p99,
                top_open.stats.backlog.1,
                fnum(closed_best),
                bound,
                worst
            ));
        }
    }
    summary.note(
        "At the top open-loop rate the offered load is far beyond capacity: the backlog at the \
         measurement-window edge grows with the window length and the p99 latency diverges. The \
         closed arm running against the same fabric never holds more than clients x W chains \
         (requests + replies <= twice that in messages), so its worst observed backlog respects \
         the structural bound while it keeps completing chains — accepted throughput self-limits \
         where the open curve queues.",
    );
    tables.push(summary);
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_points() -> Vec<Point> {
        sweep_points(true)
    }

    #[test]
    fn x11_closed_loop_self_limits_where_open_loop_diverges() {
        let points = fast_points();

        for p in &points {
            assert!(
                !matches!(p.outcome, Outcome::Deadlock(_)),
                "{} {} {} knob={} deadlocked",
                p.topo,
                p.arm,
                p.policy,
                p.knob
            );
        }

        for (topo, _) in topologies(true) {
            for policy in POLICIES {
                let mine: Vec<&Point> = points
                    .iter()
                    .filter(|p| p.topo == topo && p.policy == policy)
                    .collect();

                // Open arm: the top rate is past the knee — the detector
                // fires and the end backlog dwarfs the closed arm's.
                let top_open = mine
                    .iter()
                    .filter(|p| p.arm == "open")
                    .max_by(|a, b| a.knob.total_cmp(&b.knob))
                    .expect("open arm swept");
                assert!(
                    top_open.stats.saturated,
                    "{topo}/{policy}: top open rate must saturate: {:?}",
                    top_open.stats
                );

                // Closed arm: chains complete, and the backlog respects
                // the structural clients x W bound (requests + replies)
                // at every window.
                for p in mine.iter().filter(|p| p.arm == "closed") {
                    let cl = p.closed.as_ref().expect("closed arm carries chain stats");
                    assert!(
                        cl.chains_completed > 0,
                        "{topo}/{policy} W={}: no chains completed",
                        p.knob
                    );
                    assert!(cl.requests_issued >= cl.chains_completed);
                    assert!(cl.chain_latency.p50 > 0);
                    let bound = 2 * cl.outstanding_bound() as usize;
                    assert!(
                        p.stats.backlog.0 <= bound && p.stats.backlog.1 <= bound,
                        "{topo}/{policy} W={}: backlog {:?} exceeds structural bound {bound}",
                        p.knob,
                        p.stats.backlog
                    );
                    assert!(
                        p.stats.backlog.1 < top_open.stats.backlog.1,
                        "{topo}/{policy} W={}: closed backlog should stay below the \
                         saturated open arm's ({} vs {})",
                        p.knob,
                        p.stats.backlog.1,
                        top_open.stats.backlog.1
                    );
                }

                // A larger window buys throughput (weakly) — the closed
                // loop tracks the knee from below.
                let mut by_w: Vec<(f64, f64)> = mine
                    .iter()
                    .filter(|p| p.arm == "closed")
                    .map(|p| (p.knob, p.accepted_per_client()))
                    .collect();
                by_w.sort_by(|a, b| a.0.total_cmp(&b.0));
                assert!(by_w.len() >= 2);
                assert!(
                    by_w.last().unwrap().1 > 0.0,
                    "{topo}/{policy}: closed loop carried no traffic"
                );
            }
        }
    }

    #[test]
    fn x11_engines_agree_pointwise() {
        // The pull-based source path (reactive closed-loop sources
        // included) must keep the two engines bit-identical.
        let ev = sweep_points_with(true, Engine::EventDriven);
        let lg = sweep_points_with(true, Engine::Legacy);
        assert_eq!(ev.len(), lg.len());
        for (a, b) in ev.iter().zip(&lg) {
            let ctx = format!("{} {} {} knob={}", a.topo, a.arm, a.policy, a.knob);
            assert_eq!(a.outcome, b.outcome, "{ctx}");
            assert_eq!(a.stats.latency, b.stats.latency, "{ctx}");
            assert_eq!(a.stats.accepted_msgs, b.stats.accepted_msgs, "{ctx}");
            assert_eq!(a.stats.backlog, b.stats.backlog, "{ctx}");
            assert_eq!(a.stats.saturated, b.stats.saturated, "{ctx}");
            assert_eq!(a.closed, b.closed, "{ctx}");
        }
    }

    #[test]
    fn x11_tables_render() {
        let tables = run(true);
        assert_eq!(tables.len(), 2);
        let s = tables[0].render();
        for needle in ["torus", "butterfly", "open", "closed", "static", "pooled"] {
            assert!(s.contains(needle), "missing {needle}");
        }
        assert!(tables[1].render().contains("divergence"));
    }
}
