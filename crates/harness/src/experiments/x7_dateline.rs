//! X7 (extension) — Dally–Seitz deadlock avoidance (paper §1, citation
//! \[14\]): the *original* reason virtual channels exist.
//!
//! Two stages:
//!
//! 1. **Ring** — on a wrap-around ring, single-class wormhole routing
//!    deadlocks on rotation traffic; the two-class dateline scheme makes
//!    the channel-dependency graph acyclic and the same traffic completes.
//! 2. **Torus** — the same machinery generalized per dimension
//!    ([`wormhole_topology::mesh::RoutingDiscipline::DatelineClasses`]):
//!    tornado traffic wedges naive dimension-order tori of radix ≥ 5 into
//!    deadlock at `B = 1`, while the dateline discipline completes on
//!    1D/2D/3D tori. Both stages verify the Dally–Seitz acyclicity
//!    criterion through the shared
//!    [`wormhole_topology::dateline::channel_dependency_graph`].

use wormhole_flitsim::config::{Engine, SimConfig};
use wormhole_flitsim::message::specs_from_path_slice;
use wormhole_flitsim::stats::Outcome;
use wormhole_flitsim::wormhole;
use wormhole_topology::dateline::{channel_dependency_graph, rotation_paths, DatelineRing};
use wormhole_topology::graph::NodeId;
use wormhole_topology::mesh::{Mesh, RoutingDiscipline};
use wormhole_topology::path::Path;

use crate::cells;
use crate::table::Table;

/// Batch tornado paths on `mesh`: every node sends `⌈radix/2⌉ − 1` hops
/// forward in dimension 0, routed under the mesh's own discipline.
fn tornado_paths(mesh: &Mesh) -> Vec<Path> {
    let radix = mesh.radix();
    let off = radix.div_ceil(2) - 1;
    (0..mesh.num_nodes())
        .map(|s| {
            let d0 = s % radix;
            let dst = (s - d0) + (d0 + off) % radix;
            mesh.route(NodeId(s), NodeId(dst))
        })
        .collect()
}

fn outcome_cells(r: &wormhole_flitsim::stats::SimResult) -> (String, String) {
    match (&r.outcome, &r.deadlock) {
        (Outcome::Completed, _) => ("completed".to_string(), "-".to_string()),
        (Outcome::Deadlock(_), Some(rep)) => ("DEADLOCK".to_string(), rep.cycle.len().to_string()),
        (o, _) => (format!("{o:?}"), "-".to_string()),
    }
}

/// Runs X7.
pub fn run(fast: bool) -> Vec<Table> {
    run_with(fast, Engine::EventDriven)
}

/// [`run`] on an explicit simulator engine — the timing hook used by
/// `experiments bench-json` (results are engine-independent).
pub fn run_with(fast: bool, engine: Engine) -> Vec<Table> {
    let l = 8u32;
    let mut tables = Vec::new();

    // Stage 1: the single unidirectional ring (rotation traffic).
    let radixes: &[u32] = if fast { &[6, 10] } else { &[6, 10, 16, 24] };
    let mut t = Table::new(
        "X7 — Dally–Seitz dateline VCs on a wrap-around ring (rotation traffic)",
        &[
            "ring size",
            "scheme",
            "dep. graph acyclic",
            "outcome",
            "flit steps",
            "deadlock cycle len",
        ],
    );
    for &n in radixes {
        let ring = DatelineRing::new(n);
        for (scheme, ds) in [("1 class (naive)", false), ("2 classes (dateline)", true)] {
            let paths = rotation_paths(&ring, n - 1, ds);
            let acyclic = channel_dependency_graph(ring.graph(), &paths).is_acyclic();
            let specs = specs_from_path_slice(&paths, l);
            let r = wormhole::run(ring.graph(), &specs, &SimConfig::new(1).engine(engine));
            let (outcome, cycle) = outcome_cells(&r);
            t.row(&cells!(n, scheme, acyclic, outcome, r.total_steps, cycle));
        }
    }
    t.note("Rotation traffic (every node sends n−1 hops forward) wedges the single-class ring into a full-cycle deadlock; the dateline split always completes. Acyclic dependency graph ⇒ deadlock-free (Dally–Seitz Thm 1).");
    tables.push(t);

    // Stage 2: the torus generalization (per-dimension datelines).
    let tori: &[(u32, u32)] = if fast {
        &[(8, 1), (5, 2)]
    } else {
        &[(8, 1), (5, 2), (8, 2), (5, 3)]
    };
    let mut t = Table::new(
        "X7 — per-dimension dateline classes on k-ary d-tori (tornado traffic, B = 1)",
        &[
            "torus",
            "discipline",
            "dep. graph acyclic",
            "outcome",
            "flit steps",
            "deadlock cycle len",
        ],
    );
    for &(radix, dims) in tori {
        for discipline in [RoutingDiscipline::Naive, RoutingDiscipline::DatelineClasses] {
            let mesh = Mesh::new_disciplined(radix, dims, true, discipline);
            let paths = tornado_paths(&mesh);
            let acyclic = channel_dependency_graph(mesh.graph(), &paths).is_acyclic();
            let specs = specs_from_path_slice(&paths, l);
            let r = wormhole::run(mesh.graph(), &specs, &SimConfig::new(1).engine(engine));
            let (outcome, cycle) = outcome_cells(&r);
            t.row(&cells!(
                format!("{radix}^{dims}"),
                discipline.name(),
                acyclic,
                outcome,
                r.total_steps,
                cycle
            ));
        }
    }
    t.note("Tornado (⌈k/2⌉−1 hops forward per dimension-0 ring) deadlocks every naive wrap ring at B=1; splitting each physical channel into two classes with a per-dimension dateline switch makes the dependency graph acyclic and the batch completes — the machinery Substrate::torus_with exposes to the open-loop workloads (x2).");
    tables.push(t);
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x7_naive_deadlocks_dateline_completes() {
        let tables = run(true);
        assert_eq!(tables.len(), 2, "ring + torus stages");
        for (stage, s) in tables.iter().map(|t| t.render()).enumerate() {
            let mut saw_deadlock = false;
            let mut saw_completed = false;
            for row in s.lines().filter(|r| r.starts_with('|')).skip(2) {
                if row.contains("naive") {
                    assert!(row.contains("DEADLOCK"), "naive must deadlock: {row}");
                    assert!(row.contains("false"), "naive dep graph must be cyclic");
                    saw_deadlock = true;
                }
                if row.contains("dateline") {
                    assert!(row.contains("completed"), "dateline must complete: {row}");
                    assert!(row.contains("true"), "dateline dep graph must be acyclic");
                    saw_completed = true;
                }
            }
            assert!(
                saw_deadlock && saw_completed,
                "stage {stage} covers both arms"
            );
        }
    }

    #[test]
    fn x7_torus_batch_matches_x2_wiring() {
        // The batch tornado paths are exactly the routes the open-loop
        // substrate serves: same hop counts, same class structure.
        let mesh = Mesh::new_disciplined(5, 2, true, RoutingDiscipline::DatelineClasses);
        let paths = tornado_paths(&mesh);
        assert_eq!(paths.len() as u32, mesh.num_nodes());
        for p in &paths {
            assert_eq!(p.len(), 2, "tornado on radix 5 is 2 forward hops");
            p.validate(mesh.graph()).unwrap();
        }
    }
}
