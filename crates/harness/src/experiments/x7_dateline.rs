//! X7 (extension) — Dally–Seitz deadlock avoidance (paper §1, citation
//! [14]): the *original* reason virtual channels exist. On a wrap-around
//! ring, single-class wormhole routing deadlocks on rotation traffic; the
//! two-class dateline scheme makes the channel-dependency graph acyclic
//! and the same traffic completes.

use wormhole_flitsim::config::SimConfig;
use wormhole_flitsim::message::MessageSpec;
use wormhole_flitsim::stats::Outcome;
use wormhole_flitsim::wormhole;
use wormhole_topology::dateline::{rotation_paths, DatelineRing};

use crate::cells;
use crate::table::Table;

/// Runs X7.
pub fn run(fast: bool) -> Vec<Table> {
    let radixes: &[u32] = if fast { &[6, 10] } else { &[6, 10, 16, 24] };
    let l = 8u32;
    let mut t = Table::new(
        "X7 — Dally–Seitz dateline VCs on a wrap-around ring (rotation traffic)",
        &[
            "ring size",
            "scheme",
            "dep. graph acyclic",
            "outcome",
            "flit steps",
            "deadlock cycle len",
        ],
    );
    for &n in radixes {
        let ring = DatelineRing::new(n);
        for (scheme, ds) in [("1 class (naive)", false), ("2 classes (dateline)", true)] {
            let paths = rotation_paths(&ring, n - 1, ds);
            let acyclic = ring.channel_dependency_graph(&paths).is_acyclic();
            let specs: Vec<MessageSpec> = paths
                .iter()
                .map(|p| MessageSpec::new(p.clone(), l))
                .collect();
            let r = wormhole::run(ring.graph(), &specs, &SimConfig::new(1));
            let (outcome, cycle) = match (&r.outcome, &r.deadlock) {
                (Outcome::Completed, _) => ("completed".to_string(), "-".to_string()),
                (Outcome::Deadlock(_), Some(rep)) => {
                    ("DEADLOCK".to_string(), rep.cycle.len().to_string())
                }
                (o, _) => (format!("{o:?}"), "-".to_string()),
            };
            t.row(&cells!(n, scheme, acyclic, outcome, r.total_steps, cycle));
        }
    }
    t.note("Rotation traffic (every node sends n−1 hops forward) wedges the single-class ring into a full-cycle deadlock; the dateline split always completes. Acyclic dependency graph ⇒ deadlock-free (Dally–Seitz Thm 1).");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x7_naive_deadlocks_dateline_completes() {
        let tables = run(true);
        let s = tables[0].render();
        let mut saw_deadlock = false;
        let mut saw_completed = false;
        for row in s.lines().filter(|r| r.starts_with('|')).skip(2) {
            if row.contains("naive") {
                assert!(row.contains("DEADLOCK"), "naive must deadlock: {row}");
                assert!(row.contains("false"), "naive dep graph must be cyclic");
                saw_deadlock = true;
            }
            if row.contains("dateline") {
                assert!(row.contains("completed"), "dateline must complete: {row}");
                assert!(row.contains("true"), "dateline dep graph must be acyclic");
                saw_completed = true;
            }
        }
        assert!(saw_deadlock && saw_completed);
    }
}
