//! X6 (extension) — Waksman's Beneš routing (§1.3.3): with global
//! knowledge of the permutation, switch settings give edge-disjoint paths
//! and wormhole routing needs `2·log n + L − 1` flit steps exactly, zero
//! stalls, zero virtual channels. The §3.1 randomized online algorithm and
//! greedy one-pass routing are the comparison arms — the paper's
//! offline/online trade-off, measured.

use wormhole_baselines::greedy_wormhole::one_pass_butterfly;
use wormhole_core::butterfly::algorithm::{route_q_relation, AlgoParams};
use wormhole_core::butterfly::relation::QRelation;
use wormhole_flitsim::config::SimConfig;
use wormhole_flitsim::message::specs_from_paths;
use wormhole_flitsim::wormhole;
use wormhole_topology::benes::BenesNetwork;
use wormhole_topology::butterfly::Butterfly;
use wormhole_topology::random_nets::random_permutation;

use crate::cells;
use crate::table::Table;

/// Runs X6.
pub fn run(fast: bool) -> Vec<Table> {
    let ks: &[u32] = if fast { &[5, 6] } else { &[6, 8, 10] };
    let mut t = Table::new(
        "X6 — offline Waksman/Beneš vs online algorithms on random permutations (L = log n)",
        &[
            "n",
            "Waksman T (=2logn+L-1)",
            "Waksman stalls",
            "Waksman C",
            "greedy 1-pass T (B=2)",
            "§3.1 online T (B=2)",
        ],
    );
    for &k in ks {
        let n = 1u32 << k;
        let l = k;
        let perm = random_permutation(n, 17 + k as u64);

        // Offline gold standard: conflict-free Beneš paths, B = 1.
        let net = BenesNetwork::new(k);
        let paths = net.route(&perm);
        assert_eq!(paths.congestion(net.graph()), 1);
        let specs = specs_from_paths(&paths, l);
        let wak = wormhole::run_to_completion(net.graph(), &specs, &SimConfig::new(1));

        // Online arms on the plain butterfly.
        let rel = QRelation {
            n,
            q: 1,
            pairs: (0..n).map(|i| (i, perm[i as usize])).collect(),
        };
        let bf = Butterfly::new(k);
        let (greedy, _) = one_pass_butterfly(&bf, &rel, l, 2, 23);
        let online = route_q_relation(k, &rel, &AlgoParams::new(2, l, 29));
        assert!(online.all_delivered);

        t.row(&cells!(
            n,
            wak.total_steps,
            wak.total_stalls,
            paths.congestion(net.graph()),
            greedy.total_steps,
            online.flit_steps
        ));
    }
    t.note("Waksman achieves the conflict-free optimum (2·log n + L − 1, zero stalls, B=1) but needs the whole permutation up front; the online §3.1 algorithm pays a log^{1/B} n·loglog factor for locality — the paper's offline/online gap, measured.");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x6_waksman_is_exact_and_stall_free() {
        let tables = run(true);
        let s = tables[0].render();
        for row in s.lines().filter(|r| r.starts_with('|')).skip(2) {
            let cols: Vec<&str> = row.split('|').map(str::trim).collect();
            if cols.len() < 7 {
                continue;
            }
            if let (Ok(n), Ok(t), Ok(stalls)) = (
                cols[1].parse::<u32>(),
                cols[2].parse::<u64>(),
                cols[3].parse::<u64>(),
            ) {
                let k = n.trailing_zeros() as u64;
                assert_eq!(t, 2 * k + k - 1, "Waksman time exact: {row}");
                assert_eq!(stalls, 0, "Waksman must be conflict-free: {row}");
            }
        }
    }
}
