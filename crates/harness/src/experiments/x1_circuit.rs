//! X1 (extension) — circuit switching on the butterfly (§1.3.3 context):
//! Kruskal–Snir's `Θ(n/log n)` success count at `B = 1` and Koch's
//! `Θ(n/log^{1/B} n)` with `B` circuits per edge — the original superlinear
//! resource-performance observation this paper generalizes.

use wormhole_baselines::circuit::{koch_prediction, mean_success_fraction};

use crate::cells;
use crate::sweep::{default_threads, parallel_map};
use crate::table::{fnum, Table};

/// Runs X1.
pub fn run(fast: bool) -> Vec<Table> {
    let ks: &[u32] = if fast { &[6, 7] } else { &[7, 9, 11] };
    let bs: &[u32] = if fast { &[1, 2] } else { &[1, 2, 3, 4] };
    let trials = if fast { 5 } else { 20 };
    let mut points = Vec::new();
    for &k in ks {
        for &b in bs {
            points.push((k, b));
        }
    }
    let rows = parallel_map(points, default_threads(), |&(k, b)| {
        let frac = mean_success_fraction(k, b, trials, 1234 + k as u64);
        (k, b, frac)
    });
    let mut t = Table::new(
        "X1 — circuit switching success (random destinations, 1 msg/input)",
        &[
            "n",
            "B",
            "success fraction",
            "succeeded ≈",
            "Koch pred n/log^{1/B}n",
        ],
    );
    for (k, b, frac) in rows {
        let n = 1u32 << k;
        t.row(&cells!(
            n,
            b,
            fnum(frac),
            fnum(frac * n as f64),
            fnum(koch_prediction(n, b))
        ));
    }
    t.note("Success counts track Koch's Θ(n/log^{1/B} n): each extra circuit per edge recovers a log^{1-1/B-ish} factor — superlinear resource benefit, the precursor to this paper's wormhole result.");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x1_success_improves_with_b() {
        let tables = run(true);
        let s = tables[0].render();
        let mut by_n: std::collections::HashMap<String, Vec<f64>> = Default::default();
        for row in s.lines().filter(|r| r.starts_with('|')).skip(2) {
            let cols: Vec<&str> = row.split('|').map(str::trim).collect();
            if cols.len() >= 4 {
                if let Ok(frac) = cols[3].parse::<f64>() {
                    by_n.entry(cols[1].to_string()).or_default().push(frac);
                }
            }
        }
        for (n, fracs) in by_n {
            for w in fracs.windows(2) {
                assert!(
                    w[1] >= w[0] - 0.02,
                    "n={n}: fraction fell with B: {fracs:?}"
                );
            }
        }
    }
}
