//! X3 (extension) — latency–throughput curves under continuous injection
//! (Dally \[16\], §1.3.4 category 2): virtual channels raise the saturation
//! load of a butterfly. The batch theorems' `log^{1/B} n` factor shows up
//! here as a higher knee in the latency curve.

use wormhole_core::continuous::measure_throughput;

use crate::cells;
use crate::sweep::{default_threads, parallel_map};
use crate::table::{fnum, Table};

/// Runs X3.
pub fn run(fast: bool) -> Vec<Table> {
    let (k, window, l) = if fast {
        (5u32, 300u64, 4u32)
    } else {
        (7, 1500, 8)
    };
    let rates: &[f64] = if fast {
        &[0.05, 0.20]
    } else {
        &[0.02, 0.05, 0.10, 0.15, 0.20, 0.30]
    };
    let bs: &[u32] = if fast { &[1, 4] } else { &[1, 2, 4] };
    let mut points = Vec::new();
    for &rate in rates {
        for &b in bs {
            points.push((rate, b));
        }
    }
    let rows = parallel_map(points, default_threads(), |&(rate, b)| {
        (rate, b, measure_throughput(k, rate, window, l, b, 77))
    });
    let mut t = Table::new(
        format!(
            "X3 — open-loop latency vs offered load (n = {} butterfly, L = {l}, window {window})",
            1u32 << k
        ),
        &[
            "offered (msg/input/step)",
            "B",
            "injected",
            "mean latency",
            "p95 latency",
            "throughput (flit/input/step)",
        ],
    );
    for (rate, b, p) in rows {
        t.row(&cells!(
            fnum(rate),
            b,
            p.injected,
            fnum(p.mean_latency),
            p.p95_latency,
            fnum(p.throughput)
        ));
    }
    t.note("At low load all curves sit at the D+L−1 floor; past saturation the B=1 latency explodes while B=4 stays flat — VCs raise the knee, Dally's classic result in this model.");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x3_vcs_cut_saturated_latency() {
        let tables = run(true);
        let s = tables[0].render();
        // At the high rate, B=4 mean latency < B=1 mean latency.
        let mut high: Vec<(u32, f64)> = Vec::new();
        for row in s.lines().filter(|r| r.starts_with('|')).skip(2) {
            let cols: Vec<&str> = row.split('|').map(str::trim).collect();
            if cols.len() >= 6 {
                if let (Ok(rate), Ok(b), Ok(lat)) = (
                    cols[1].parse::<f64>(),
                    cols[2].parse::<u32>(),
                    cols[4].parse::<f64>(),
                ) {
                    if rate > 0.15 {
                        high.push((b, lat));
                    }
                }
            }
        }
        let l1 = high.iter().find(|(b, _)| *b == 1).map(|(_, l)| *l).unwrap();
        let l4 = high.iter().find(|(b, _)| *b == 4).map(|(_, l)| *l).unwrap();
        assert!(
            l4 < l1,
            "B=4 latency {l4} should beat B=1 {l1} at high load"
        );
    }
}
