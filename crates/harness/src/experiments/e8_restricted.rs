//! E8 — §1.4 Remarks: the restricted model (buffers ×B, bandwidth ×1).
//!
//! Claims: (i) the paper's algorithms emulate in the restricted model with
//! a factor-`B` slowdown; (ii) therefore increasing *buffering alone* still
//! buys a `≈ D^{1−1/B}` speedup on worst-case instances — superlinear
//! benefit without any extra wire bandwidth.

use wormhole_baselines::greedy_wormhole::greedy_wormhole;
use wormhole_core::firstfit::{first_fit, FirstFitOrder};
use wormhole_core::pipeline::adaptive_min_colors;
use wormhole_core::schedule::ColorSchedule;
use wormhole_flitsim::config::{BandwidthModel, SimConfig};
use wormhole_flitsim::wormhole;
use wormhole_topology::lowerbound::build;

use crate::cells;
use crate::table::{fnum, Table};

/// Runs E8.
pub fn run(fast: bool) -> Vec<Table> {
    let target_d = if fast { 21 } else { 41 };
    let net = build(1, target_d, 2, false);
    let d = net.dilation;
    let l = 2 * d;

    let mut t = Table::new(
        format!(
            "E8 — restricted model (1 flit/step/channel) on the worst case (C={}, D={d}, L={l})",
            net.congestion()
        ),
        &[
            "B (buffers)",
            "full-bw scheduled T",
            "restricted scheduled T",
            "restricted/full (≈B)",
            "buffer-only speedup vs B=1",
            "paper pred D^(1-1/B)",
        ],
    );
    let bs: &[u32] = if fast { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let mut restricted_b1 = 0u64;
    for &b in bs {
        let coloring = {
            let ff = first_fit(&net.paths, &net.graph, b, FirstFitOrder::Input);
            match adaptive_min_colors(&net.paths, &net.graph, b, 31 + b as u64, 64) {
                Some(rep) if rep.coloring.num_colors() < ff.num_colors() => rep.coloring,
                _ => ff,
            }
        };
        // Restricted schedule spacing: each class still has multiplex ≤ B
        // but shares 1 flit/step of bandwidth per edge, so a class needs up
        // to B·L + D steps; space classes by B·(L+D−1) (the emulation's
        // factor-B slowdown).
        let full_sched = ColorSchedule::new(coloring.clone(), l, d);
        let full = full_sched
            .execute_checked(&net.graph, &net.paths, l, b)
            .total_steps;
        let restricted_sched = ColorSchedule {
            coloring,
            spacing: b as u64 * ColorSchedule::paper_spacing(l, d),
        };
        let specs = restricted_sched.to_specs(&net.paths, l);
        let config = SimConfig::new(b).bandwidth(BandwidthModel::OneFlitPerStep);
        let run = wormhole::run(&net.graph, &specs, &config);
        assert_eq!(
            run.outcome,
            wormhole_flitsim::stats::Outcome::Completed,
            "restricted schedule failed"
        );
        let restricted = run.total_steps;
        if b == 1 {
            restricted_b1 = restricted;
        }
        t.row(&cells!(
            b,
            full,
            restricted,
            fnum(restricted as f64 / full as f64),
            fnum(restricted_b1 as f64 / restricted as f64),
            fnum((d as f64).powf(1.0 - 1.0 / b as f64))
        ));
    }
    t.note("restricted/full stays ≤ B (claim R6's emulation); the buffer-only speedup column grows ≈ D^{1−1/B}: more buffers alone already beat linear scaling on this instance.");

    // Sanity companion: greedy in both models.
    let mut t2 = Table::new(
        "E8b — greedy routing under both bandwidth models",
        &["B", "full-bw greedy T", "restricted greedy T", "ratio"],
    );
    for &b in bs {
        let full = greedy_wormhole(&net.graph, &net.paths, l, b, 5).total_steps;
        let config = SimConfig::new(b)
            .bandwidth(BandwidthModel::OneFlitPerStep)
            .seed(5);
        let specs = wormhole_flitsim::message::specs_from_paths(&net.paths, l);
        let restricted = wormhole::run(&net.graph, &specs, &config);
        t2.row(&cells!(
            b,
            full,
            restricted.total_steps,
            fnum(restricted.total_steps as f64 / full as f64)
        ));
    }
    vec![t, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_emulation_slowdown_at_most_b_plus_slack() {
        let tables = run(true);
        let s = tables[0].render();
        for row in s.lines().filter(|r| r.starts_with('|')).skip(2) {
            let cols: Vec<&str> = row.split('|').map(str::trim).collect();
            if cols.len() < 7 {
                continue;
            }
            if let (Ok(b), Ok(ratio)) = (cols[1].parse::<f64>(), cols[4].parse::<f64>()) {
                assert!(
                    ratio <= b * 1.5 + 0.5,
                    "restricted slowdown {ratio} way past B={b}: {row}"
                );
            }
        }
    }
}
