//! E7 — §1.4 fixed-buffer comparison: spending a `B`-flit-per-edge buffer
//! budget on **virtual channels** (B × 1-flit, multi-message) versus
//! **virtual cut-through** (1 × B-flit, single-message).
//!
//! Normalization (footnote 4): in the `B`-VC model one flit step moves `B`
//! flits across each physical channel. The equal-resource VCT router gets
//! the same channel rate, which is exactly the paper's observation that it
//! behaves like a **B=1 wormhole router with messages of length `L/B`**
//! (each "superflit" is `B` flits wide and crosses in one step). We run
//! that emulation as the VCT column, plus the bandwidth-restricted direct
//! VCT simulation (1 flit/step) for context.
//!
//! Paper prediction: VCT speedup ≈ linear in `B`; wormhole + VCs ≈
//! superlinear `B·D^{1−1/B}` on worst-case instances (claim R7).

use wormhole_baselines::cut_through::{vct, vct_as_short_wormhole};
use wormhole_baselines::greedy_wormhole::greedy_wormhole;
use wormhole_core::firstfit::{first_fit, FirstFitOrder};
use wormhole_core::pipeline::adaptive_min_colors;
use wormhole_core::schedule::ColorSchedule;
use wormhole_topology::lowerbound::build;
use wormhole_topology::random_nets::shared_chain_instance;

use crate::cells;
use crate::table::{fnum, Table};

/// Runs E7.
pub fn run(fast: bool) -> Vec<Table> {
    // Part 1: shared chain (C worms, one path) — the cleanest equal-budget
    // microbenchmark; both routers are bandwidth-bound here so both
    // speedups are ≈ linear, and the VCT ≈ L/B-wormhole equivalence is
    // directly visible.
    let (c, d) = if fast { (6u32, 24u32) } else { (8, 64) };
    let l = 2 * d;
    let (g, ps) = shared_chain_instance(c, d);
    let base = greedy_wormhole(&g, &ps, l, 1, 1).total_steps;
    let mut t1 = Table::new(
        format!("E7a — equal buffer budget on a shared chain (C={c}, D={d}, L={l})"),
        &[
            "budget B",
            "wormhole+VC T",
            "VC speedup",
            "VCT T (L/B wormhole)",
            "VCT speedup",
            "direct VCT, 1 flit/step",
        ],
    );
    let budgets: &[u32] = if fast { &[2, 4] } else { &[2, 4, 8] };
    for &b in budgets {
        let vc = greedy_wormhole(&g, &ps, l, b, 1).total_steps;
        let ct = vct_as_short_wormhole(&g, &ps, l, b, 1).total_steps;
        let ct_direct = vct(&g, &ps, l, b, 1).total_steps;
        t1.row(&cells!(
            b,
            vc,
            fnum(base as f64 / vc as f64),
            ct,
            fnum(base as f64 / ct as f64),
            ct_direct
        ));
    }
    t1.note("Baseline: B=1 wormhole T. Both speedups are ≈ linear on a bandwidth-bound chain, as expected away from the worst case.");

    // Part 2: the Thm 2.2.1 worst case — virtual channels pull ahead
    // superlinearly while VCT stays ≈ linear.
    let target_d = if fast { 21 } else { 41 };
    let net = build(1, target_d, 2, false);
    let d2 = net.dilation;
    let l2 = 2 * d2;
    let base2 = greedy_wormhole(&net.graph, &net.paths, l2, 1, 2).total_steps;
    let mut t2 = Table::new(
        format!(
            "E7b — equal buffer budget on the worst-case instance (C={}, D={d2}, L={l2})",
            net.congestion()
        ),
        &[
            "budget B",
            "wormhole+VC scheduled T",
            "VC speedup",
            "VCT T (L/B wormhole)",
            "VCT speedup",
            "paper VC pred B·D^(1-1/B)",
        ],
    );
    for &b in budgets {
        let coloring = {
            let ff = first_fit(&net.paths, &net.graph, b, FirstFitOrder::Input);
            match adaptive_min_colors(&net.paths, &net.graph, b, 21 + b as u64, 64) {
                Some(rep) if rep.coloring.num_colors() < ff.num_colors() => rep.coloring,
                _ => ff,
            }
        };
        let sched = ColorSchedule::new(coloring, l2, d2);
        let vc = sched
            .execute_checked(&net.graph, &net.paths, l2, b)
            .total_steps;
        let ct = vct_as_short_wormhole(&net.graph, &net.paths, l2, b, 2).total_steps;
        t2.row(&cells!(
            b,
            vc,
            fnum(base2 as f64 / vc as f64),
            ct,
            fnum(base2 as f64 / ct as f64),
            fnum(wormhole_core::bounds::superlinear_speedup(d2, b))
        ));
    }
    t2.note("VC speedup exceeds the budget B (superlinear) and beats the VCT speedup, which stays ≈ linear. This is claim R7.");
    vec![t1, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_vc_beats_vct_on_worst_case() {
        let tables = run(true);
        let s = tables[1].render();
        let mut checked = 0;
        for row in s.lines().filter(|r| r.starts_with('|')).skip(2) {
            let cols: Vec<&str> = row.split('|').map(str::trim).collect();
            if cols.len() < 6 {
                continue;
            }
            if let (Ok(b), Ok(vc_speed), Ok(vct_speed)) = (
                cols[1].parse::<f64>(),
                cols[3].parse::<f64>(),
                cols[5].parse::<f64>(),
            ) {
                assert!(
                    vc_speed > vct_speed,
                    "VC should beat VCT at budget {b}: {row}"
                );
                assert!(vc_speed > b, "VC speedup should be superlinear: {row}");
                checked += 1;
            }
        }
        assert!(checked >= 2, "no data rows parsed");
    }
}
