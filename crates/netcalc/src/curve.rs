//! Min-plus curve algebra: piecewise-linear arrival curves (minima of
//! leaky buckets `γ_{b,r}`) and rate-latency service curves (`β_{R,T}`).
//!
//! An [`ArrivalCurve`] `α` upper-bounds traffic: the number of messages
//! released in any closed window of span `Δ` is at most `α(Δ)` (so
//! `α(0)` covers a single step). It is stored as the lower envelope of
//! finitely many affine token buckets, which is concave, nondecreasing,
//! and closed under the operations the calculus needs: addition
//! (aggregation), min-plus convolution `⊗` (both curves constrain the
//! same flow), deconvolution `⊘` by a service curve (output
//! characterization), and deconvolution by a pure delay (window
//! widening).
//!
//! A [`ServiceCurve`] `β_{R,T}` lower-bounds service: at least
//! `R·(t − T)⁺` work in any backlogged period of length `t`. Min-plus
//! convolution of rate-latency curves (tandem traversal) stays
//! rate-latency: `β_{R1,T1} ⊗ β_{R2,T2} = β_{min(R1,R2), T1+T2}`.
//!
//! All operations here are *exact* on the stored representations (no
//! sampling): concavity reduces every sup/inf to a finite scan over
//! segment endpoints.

/// One affine token bucket `γ_{b,r}`: `t ↦ b + r·t` (burst `b`, rate `r`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TokenBucket {
    /// Burst allowance `b ≥ 0` (messages).
    pub burst: f64,
    /// Long-run rate `r ≥ 0` (messages per step).
    pub rate: f64,
}

impl TokenBucket {
    /// A bucket with the given burst and rate (both finite and `≥ 0`).
    pub fn new(burst: f64, rate: f64) -> Self {
        assert!(burst.is_finite() && burst >= 0.0, "burst must be ≥ 0");
        assert!(rate.is_finite() && rate >= 0.0, "rate must be ≥ 0");
        Self { burst, rate }
    }

    /// Evaluates `b + r·t`.
    #[inline]
    pub fn eval(&self, t: f64) -> f64 {
        self.burst + self.rate * t
    }

    /// Min-plus deconvolution by a rate-latency service curve: the
    /// classic closed form `γ_{b,r} ⊘ β_{R,T} = γ_{b + r·T, r}`, valid
    /// when `r ≤ R`; `None` when the bucket's rate exceeds the service
    /// rate (the backlog, and with it the output burst, diverges).
    pub fn deconvolve(&self, beta: &ServiceCurve) -> Option<TokenBucket> {
        if self.rate > beta.rate {
            return None;
        }
        Some(TokenBucket::new(
            self.burst + self.rate * beta.latency,
            self.rate,
        ))
    }
}

/// A concave, nondecreasing piecewise-linear arrival curve: the lower
/// envelope (pointwise minimum) of finitely many [`TokenBucket`]s.
#[derive(Clone, Debug)]
pub struct ArrivalCurve {
    /// Envelope buckets, canonical: rates strictly decreasing, bursts
    /// strictly increasing, every bucket active on some interval.
    buckets: Vec<TokenBucket>,
}

impl ArrivalCurve {
    /// The envelope of the given buckets (at least one required).
    pub fn from_buckets(buckets: Vec<TokenBucket>) -> Self {
        assert!(!buckets.is_empty(), "an arrival curve needs ≥ 1 bucket");
        Self {
            buckets: canonicalize(buckets),
        }
    }

    /// A single leaky bucket `γ_{b,r}`.
    pub fn token_bucket(burst: f64, rate: f64) -> Self {
        Self::from_buckets(vec![TokenBucket::new(burst, rate)])
    }

    /// The tightest concave envelope of a finite arrival trace: given the
    /// (sorted, nondecreasing) release steps of one flow, returns the
    /// minimal concave `α` with `|{i : t_i ∈ [a, a+Δ]}| ≤ α(Δ)` for every
    /// closed window. Built from the minimal span `s(c)` holding `c`
    /// arrivals (`c = 1..m`) via the upper concave hull of the points
    /// `(s(c), c)`, plus the flat bucket `γ_{m,0}` — a finite trace has
    /// zero long-run rate, so every bound derived from a trace envelope
    /// is finite.
    pub fn from_trace(times: &[u64]) -> Self {
        let m = times.len();
        assert!(m >= 1, "an empty trace has no arrival curve");
        assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "trace must be sorted"
        );
        // Minimal span per count; spans are nondecreasing in c, so the
        // points are x-sorted. Equal spans keep only the largest count.
        let mut pts: Vec<(f64, f64)> = Vec::with_capacity(m);
        for c in 1..=m {
            let s = (0..=m - c)
                .map(|i| times[i + c - 1] - times[i])
                .min()
                .expect("c ≤ m") as f64;
            match pts.last_mut() {
                Some(last) if last.0 == s => last.1 = c as f64,
                _ => pts.push((s, c as f64)),
            }
        }
        // Upper concave hull (slopes strictly decreasing left to right).
        let mut hull: Vec<(f64, f64)> = Vec::with_capacity(pts.len());
        for p in pts {
            while hull.len() >= 2 {
                let a = hull[hull.len() - 2];
                let b = hull[hull.len() - 1];
                // Pop b when it is under (or on) chord a—p.
                if (b.1 - a.1) * (p.0 - b.0) <= (p.1 - b.1) * (b.0 - a.0) {
                    hull.pop();
                } else {
                    break;
                }
            }
            hull.push(p);
        }
        let mut buckets = vec![TokenBucket::new(m as f64, 0.0)];
        for w in hull.windows(2) {
            let (x1, y1) = w[0];
            let (x2, y2) = w[1];
            let rate = (y2 - y1) / (x2 - x1);
            buckets.push(TokenBucket::new(y1 - rate * x1, rate));
        }
        Self::from_buckets(buckets)
    }

    /// The envelope buckets (canonical form).
    pub fn buckets(&self) -> &[TokenBucket] {
        &self.buckets
    }

    /// Evaluates `α(t) = min_i (b_i + r_i·t)`.
    pub fn eval(&self, t: f64) -> f64 {
        self.buckets
            .iter()
            .map(|tb| tb.eval(t))
            .fold(f64::INFINITY, f64::min)
    }

    /// Instantaneous burst `α(0)`.
    pub fn burst(&self) -> f64 {
        self.eval(0.0)
    }

    /// The long-run rate `lim α(t)/t` — the smallest bucket rate.
    pub fn long_run_rate(&self) -> f64 {
        self.buckets
            .iter()
            .map(|tb| tb.rate)
            .fold(f64::INFINITY, f64::min)
    }

    /// Pointwise sum (aggregation of independent flows) — exact on the
    /// merged segment breakpoints of both envelopes.
    pub fn add(&self, other: &ArrivalCurve) -> ArrivalCurve {
        let mut xs: Vec<f64> = segments(&self.buckets)
            .iter()
            .chain(segments(&other.buckets).iter())
            .map(|&(x, _)| x)
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite breakpoints"));
        xs.dedup();
        let mut buckets = Vec::with_capacity(xs.len());
        for &x in &xs {
            let rate = slope_after(&self.buckets, x) + slope_after(&other.buckets, x);
            let value = self.eval(x) + other.eval(x);
            // Concavity puts every tangent's y-intercept at or above the
            // value at 0 (≥ 0); the clamp only absorbs f64 rounding.
            buckets.push(TokenBucket::new((value - rate * x).max(0.0), rate));
        }
        ArrivalCurve::from_buckets(buckets)
    }

    /// Scales the curve by a positive factor: `(c·α)(t) = c·α(t)`.
    pub fn scale(&self, c: f64) -> ArrivalCurve {
        assert!(c > 0.0 && c.is_finite(), "scale factor must be positive");
        ArrivalCurve::from_buckets(
            self.buckets
                .iter()
                .map(|tb| TokenBucket::new(tb.burst * c, tb.rate * c))
                .collect(),
        )
    }

    /// Min-plus convolution `(α ⊗ γ)(t) = inf_{0≤s≤t} α(s) + γ(t−s)`.
    /// For concave nondecreasing curves the infimum sits at an endpoint,
    /// so `α ⊗ γ = min(α + γ(0), γ + α(0))` — exactly representable as
    /// an envelope of shifted buckets.
    pub fn convolve(&self, other: &ArrivalCurve) -> ArrivalCurve {
        let (sa, sb) = (self.burst(), other.burst());
        let buckets = self
            .buckets
            .iter()
            .map(|tb| TokenBucket::new(tb.burst + sb, tb.rate))
            .chain(
                other
                    .buckets
                    .iter()
                    .map(|tb| TokenBucket::new(tb.burst + sa, tb.rate)),
            )
            .collect();
        ArrivalCurve::from_buckets(buckets)
    }

    /// Deconvolution by a pure delay `δ_d`: `(α ⊘ δ_d)(t) = α(t + d)` —
    /// each bucket's burst grows by `r·d`.
    pub fn deconvolve_delay(&self, d: f64) -> ArrivalCurve {
        assert!(d >= 0.0 && d.is_finite(), "delay must be ≥ 0");
        ArrivalCurve::from_buckets(
            self.buckets
                .iter()
                .map(|tb| TokenBucket::new(tb.burst + tb.rate * d, tb.rate))
                .collect(),
        )
    }

    /// Min-plus deconvolution by a rate-latency service curve:
    /// `(α ⊘ β_{R,T})(t) = sup_{u≥0} α(t+u) − β(u)` — the arrival curve
    /// of a flow's *output* after crossing a `β_{R,T}` server. `None`
    /// when `α`'s long-run rate exceeds `R` (the sup diverges). Exact:
    /// buckets with `r ≤ R` shift by the latency (`γ_{b+rT, r}`), and if
    /// any envelope segment is steeper than `R`, one extra rate-`R` line
    /// through the crest `max_v α(v) − R·v` caps the early segments.
    pub fn deconvolve(&self, beta: &ServiceCurve) -> Option<ArrivalCurve> {
        if self.long_run_rate() > beta.rate {
            return None;
        }
        let mut buckets: Vec<TokenBucket> = self
            .buckets
            .iter()
            .filter(|tb| tb.rate <= beta.rate)
            .map(|tb| tb.deconvolve(beta).expect("rate filtered ≤ R"))
            .collect();
        if self.buckets.iter().any(|tb| tb.rate > beta.rate) {
            let crest = segments(&self.buckets)
                .iter()
                .map(|&(x, _)| self.eval(x) - beta.rate * x)
                .fold(f64::NEG_INFINITY, f64::max);
            buckets.push(TokenBucket::new(
                crest + beta.rate * beta.latency,
                beta.rate,
            ));
        }
        Some(ArrivalCurve::from_buckets(buckets))
    }
}

/// A rate-latency service curve `β_{R,T}(t) = R·(t − T)⁺`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServiceCurve {
    /// Guaranteed service rate `R > 0` once the latency has elapsed.
    pub rate: f64,
    /// Worst-case service latency `T ≥ 0`.
    pub latency: f64,
}

impl ServiceCurve {
    /// A `β_{R,T}` curve (`R > 0`, `T ≥ 0`, both finite).
    pub fn rate_latency(rate: f64, latency: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "service rate must be > 0");
        assert!(latency.is_finite() && latency >= 0.0, "latency must be ≥ 0");
        Self { rate, latency }
    }

    /// Evaluates `R·(t − T)⁺`.
    pub fn eval(&self, t: f64) -> f64 {
        self.rate * (t - self.latency).max(0.0)
    }

    /// Tandem composition: `β_{R1,T1} ⊗ β_{R2,T2} =
    /// β_{min(R1,R2), T1+T2}` (rate-latency curves are closed under
    /// min-plus convolution).
    pub fn convolve(&self, other: &ServiceCurve) -> ServiceCurve {
        ServiceCurve::rate_latency(self.rate.min(other.rate), self.latency + other.latency)
    }

    /// Residual service left to one flow after blind (arbitration-
    /// agnostic) multiplexing with cross-traffic `cross` on this server:
    /// a pseudo rate-latency curve whose **rate** is the long-run
    /// leftover `R − ρ_∞(cross)` and whose **latency** is the first
    /// instant `t` beyond which `R·t` exceeds some bucket of `cross`
    /// (hence `cross` itself). `None` when the cross-traffic rate
    /// consumes the server. In the wormhole bound engine only the
    /// *latency* of this curve carries a per-edge guarantee (see
    /// `bounds`); the rate is the standard capacity-planning reading.
    pub fn residual(&self, cross: &ArrivalCurve) -> Option<ServiceCurve> {
        let leftover = self.rate - cross.long_run_rate();
        if leftover <= 0.0 {
            return None;
        }
        let latency = cross
            .buckets()
            .iter()
            .filter(|tb| tb.rate < self.rate)
            .map(|tb| (tb.burst + self.rate * self.latency) / (self.rate - tb.rate))
            .fold(f64::INFINITY, f64::min);
        if !latency.is_finite() {
            return None;
        }
        Some(ServiceCurve::rate_latency(leftover, latency))
    }
}

/// Horizontal deviation `h(α, β)`: the classic delay bound for a flow
/// with arrival curve `α` served at `β_{R,T}` — `T + sup_t (α(t)/R − t)`,
/// scanned over `α`'s segment endpoints. `None` when `α`'s long-run rate
/// exceeds `R`.
pub fn hdev(alpha: &ArrivalCurve, beta: &ServiceCurve) -> Option<f64> {
    if alpha.long_run_rate() > beta.rate {
        return None;
    }
    let sup = segments(alpha.buckets())
        .iter()
        .map(|&(x, _)| alpha.eval(x) / beta.rate - x)
        .fold(f64::NEG_INFINITY, f64::max);
    Some(beta.latency + sup.max(0.0))
}

/// Vertical deviation `v(α, β) = sup_t α(t) − β(t)`: the classic backlog
/// bound. `None` when `α`'s long-run rate exceeds `R`.
pub fn vdev(alpha: &ArrivalCurve, beta: &ServiceCurve) -> Option<f64> {
    if alpha.long_run_rate() > beta.rate {
        return None;
    }
    let sup = segments(alpha.buckets())
        .iter()
        .map(|&(x, _)| x)
        .chain(std::iter::once(beta.latency))
        .map(|x| alpha.eval(x) - beta.eval(x))
        .fold(f64::NEG_INFINITY, f64::max);
    Some(sup.max(0.0))
}

/// Reduces a set of buckets to its lower envelope: rates strictly
/// decreasing, bursts strictly increasing, each line active somewhere on
/// `[0, ∞)`.
fn canonicalize(mut buckets: Vec<TokenBucket>) -> Vec<TokenBucket> {
    // Sort by rate descending, then burst ascending; drop duplicate rates
    // (only the smallest burst per rate can be in the envelope).
    buckets.sort_by(|a, b| {
        b.rate
            .partial_cmp(&a.rate)
            .expect("finite rates")
            .then(a.burst.partial_cmp(&b.burst).expect("finite bursts"))
    });
    buckets.dedup_by(|next, kept| next.rate == kept.rate);
    // Classic line-envelope stack: `active[i]` is where stack line i
    // takes over from line i−1.
    let mut stack: Vec<TokenBucket> = Vec::with_capacity(buckets.len());
    let mut active: Vec<f64> = Vec::with_capacity(buckets.len());
    for line in buckets {
        loop {
            match stack.last() {
                None => {
                    stack.push(line);
                    active.push(0.0);
                    break;
                }
                Some(top) => {
                    if line.burst <= top.burst {
                        // Smaller rate and no larger burst: dominates top.
                        stack.pop();
                        active.pop();
                        continue;
                    }
                    let x = (line.burst - top.burst) / (top.rate - line.rate);
                    if x <= *active.last().expect("parallel stacks") {
                        stack.pop();
                        active.pop();
                        continue;
                    }
                    stack.push(line);
                    active.push(x);
                    break;
                }
            }
        }
    }
    stack
}

/// Segment starts of a canonical envelope: `(x_i, bucket_i)` with the
/// i-th bucket active on `[x_i, x_{i+1})` (last one to `∞`).
fn segments(buckets: &[TokenBucket]) -> Vec<(f64, TokenBucket)> {
    let mut out = Vec::with_capacity(buckets.len());
    for (i, &tb) in buckets.iter().enumerate() {
        let x = if i == 0 {
            0.0
        } else {
            let prev = buckets[i - 1];
            (tb.burst - prev.burst) / (prev.rate - tb.rate)
        };
        out.push((x, tb));
    }
    out
}

/// Slope of the envelope just after `x`.
fn slope_after(buckets: &[TokenBucket], x: f64) -> f64 {
    let segs = segments(buckets);
    let mut rate = segs[0].1.rate;
    for &(from, tb) in &segs {
        if from <= x {
            rate = tb.rate;
        }
    }
    rate
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_curves_eq(a: &ArrivalCurve, b: &ArrivalCurve) {
        for i in 0..400 {
            let t = i as f64 * 0.37;
            assert!(
                (a.eval(t) - b.eval(t)).abs() < 1e-9 * (1.0 + a.eval(t).abs()),
                "curves differ at t={t}: {} vs {}",
                a.eval(t),
                b.eval(t)
            );
        }
    }

    #[test]
    fn envelope_drops_dominated_lines() {
        let a = ArrivalCurve::from_buckets(vec![
            TokenBucket::new(5.0, 1.0),
            TokenBucket::new(4.0, 1.0),  // same rate, smaller burst wins
            TokenBucket::new(10.0, 0.5), // crosses the 1.0-line at t = 12
            TokenBucket::new(50.0, 0.4), // crosses the 0.5-line at t = 400
        ]);
        assert_eq!(a.buckets().len(), 3);
        assert_eq!(a.eval(0.0), 4.0);
        assert_eq!(a.eval(12.0), 16.0);
        assert_eq!(a.eval(100.0), 10.0 + 50.0);
        assert_eq!(a.eval(500.0), 50.0 + 200.0);
        assert_eq!(a.long_run_rate(), 0.4);
    }

    #[test]
    fn add_is_exact_pointwise() {
        let a = ArrivalCurve::from_buckets(vec![
            TokenBucket::new(2.0, 1.0),
            TokenBucket::new(8.0, 0.25),
        ]);
        let b = ArrivalCurve::from_buckets(vec![
            TokenBucket::new(1.0, 2.0),
            TokenBucket::new(5.0, 0.5),
        ]);
        let sum = a.add(&b);
        for i in 0..200 {
            let t = i as f64 * 0.13;
            assert!(
                (sum.eval(t) - (a.eval(t) + b.eval(t))).abs() < 1e-9,
                "sum wrong at t={t}"
            );
        }
    }

    #[test]
    fn convolution_matches_brute_force() {
        let a = ArrivalCurve::from_buckets(vec![
            TokenBucket::new(3.0, 1.5),
            TokenBucket::new(7.0, 0.5),
        ]);
        let b = ArrivalCurve::token_bucket(2.0, 1.0);
        let conv = a.convolve(&b);
        for i in 0..100 {
            let t = i as f64 * 0.25;
            // inf over a fine grid of split points.
            let brute = (0..=400)
                .map(|j| {
                    let s = t * j as f64 / 400.0;
                    a.eval(s) + b.eval(t - s)
                })
                .fold(f64::INFINITY, f64::min);
            assert!((conv.eval(t) - brute).abs() < 1e-6, "t={t}");
        }
    }

    #[test]
    fn deconvolve_delay_widens_windows() {
        let a = ArrivalCurve::token_bucket(2.0, 0.5);
        let d = a.deconvolve_delay(10.0);
        for i in 0..50 {
            let t = i as f64;
            assert!((d.eval(t) - a.eval(t + 10.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn deconvolve_matches_brute_force_sup() {
        let beta = ServiceCurve::rate_latency(1.0, 4.0);
        // Mixed slopes: one steeper than R, one shallower.
        let a = ArrivalCurve::from_buckets(vec![
            TokenBucket::new(1.0, 3.0),
            TokenBucket::new(9.0, 0.25),
        ]);
        let out = a.deconvolve(&beta).expect("long-run rate 0.25 ≤ 1");
        for i in 0..120 {
            let t = i as f64 * 0.2;
            let brute = (0..=4000)
                .map(|j| {
                    let u = j as f64 * 0.05;
                    a.eval(t + u) - beta.eval(u)
                })
                .fold(f64::NEG_INFINITY, f64::max);
            assert!(
                (out.eval(t) - brute).abs() < 1e-6,
                "deconvolution wrong at t={t}: {} vs {brute}",
                out.eval(t)
            );
        }
        // Diverging case: long-run rate above the service rate.
        let hot = ArrivalCurve::token_bucket(1.0, 2.0);
        assert!(hot.deconvolve(&beta).is_none());
    }

    #[test]
    fn trace_envelope_is_tight_and_valid() {
        let times = [0u64, 1, 2, 10, 11, 30];
        let a = ArrivalCurve::from_trace(&times);
        // Validity: every window count is covered.
        for i in 0..times.len() {
            for j in i..times.len() {
                let span = (times[j] - times[i]) as f64;
                let count = (j - i + 1) as f64;
                assert!(
                    a.eval(span) >= count - 1e-9,
                    "window [{},{}] holds {count} > α({span}) = {}",
                    times[i],
                    times[j],
                    a.eval(span)
                );
            }
        }
        // Tightness anchors: single step holds up to 1 message here; the
        // whole trace is 6 messages with zero long-run rate.
        assert!((a.eval(0.0) - 1.0).abs() < 1e-9);
        assert_eq!(a.long_run_rate(), 0.0);
        assert!((a.eval(1e9) - 6.0).abs() < 1e-9);
        // Tightness at the 3-in-2-steps cluster.
        assert!(a.eval(2.0) <= 3.0 + 1e-9);
    }

    #[test]
    fn trace_envelope_handles_bursts_at_one_step() {
        // Two flows merged at the same step (possible across sources).
        let a = ArrivalCurve::from_trace(&[5, 5, 5]);
        assert!((a.eval(0.0) - 3.0).abs() < 1e-9);
        let single = ArrivalCurve::from_trace(&[7]);
        assert!((single.eval(0.0) - 1.0).abs() < 1e-9);
        assert!((single.eval(100.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn convolution_of_zero_burst_is_min() {
        // With f(0) = g(0) = 0, f ⊗ g = min(f, g): the textbook identity.
        let f = ArrivalCurve::from_buckets(vec![
            TokenBucket::new(0.0, 1.0),
            TokenBucket::new(3.0, 0.4),
        ]);
        let g = ArrivalCurve::from_buckets(vec![
            TokenBucket::new(0.0, 2.0),
            TokenBucket::new(4.0, 0.5),
        ]);
        let conv = f.convolve(&g);
        let min =
            ArrivalCurve::from_buckets(f.buckets().iter().chain(g.buckets()).copied().collect());
        assert_curves_eq(&conv, &min);
    }

    #[test]
    fn service_convolution_and_residual() {
        let b1 = ServiceCurve::rate_latency(4.0, 2.0);
        let b2 = ServiceCurve::rate_latency(2.0, 3.0);
        let tandem = b1.convolve(&b2);
        assert_eq!(tandem.rate, 2.0);
        assert_eq!(tandem.latency, 5.0);

        let cross = ArrivalCurve::token_bucket(3.0, 1.0);
        let res = b2.residual(&cross).expect("1 < 2");
        assert!((res.rate - 1.0).abs() < 1e-12);
        // Latency solves 2(t − 3) = 3 + t → t = 9.
        assert!((res.latency - 9.0).abs() < 1e-9);
        // Saturated server leaves nothing.
        assert!(b2.residual(&ArrivalCurve::token_bucket(1.0, 2.5)).is_none());
    }

    #[test]
    fn hdev_and_vdev_closed_forms() {
        // Single bucket vs rate-latency: h = T + b/R, v = b + r·T.
        let a = ArrivalCurve::token_bucket(6.0, 1.0);
        let b = ServiceCurve::rate_latency(2.0, 5.0);
        assert!((hdev(&a, &b).unwrap() - (5.0 + 3.0)).abs() < 1e-9);
        assert!((vdev(&a, &b).unwrap() - (6.0 + 5.0)).abs() < 1e-9);
        let hot = ArrivalCurve::token_bucket(1.0, 3.0);
        assert!(hdev(&hot, &b).is_none());
        assert!(vdev(&hot, &b).is_none());
    }

    #[test]
    #[should_panic(expected = "≥ 1 bucket")]
    fn empty_curve_rejected() {
        ArrivalCurve::from_buckets(Vec::new());
    }
}
