//! The feedforward delay/backlog closure: certified per-hop header-wait
//! bounds under VC multiplexing, composed into end-to-end flow bounds.
//!
//! # The model being bounded
//!
//! `wormhole_flitsim`'s default semantics: rigid worms (a message's
//! flits advance in lockstep behind the header), `B` virtual channels
//! per directed edge ([`VcPolicy::Static`]), full per-VC bandwidth —
//! every held VC moves one flit per step
//! ([`BandwidthModel::BFlitsPerStep`]), so an edge's aggregate capacity
//! is `B` flits/step. A worm stalls only while its **header** waits for
//! a free VC on its next edge, and a step in which a header waits ends
//! with all `B` of that edge's VCs held by *other* worms (the arbiter
//! hands every free VC to some waiting header — any arbitration order
//! satisfies this, so the bound is arbitration-agnostic).
//!
//! # The inequality
//!
//! Let `S_{f,e}` bound the wait of flow `f`'s headers at edge `e` of its
//! path, and `D_f = (d_f + L_f − 1) + Σ_{e ∈ P_f} S_{f,e}` its
//! end-to-end latency bound. Two derived quantities close the system:
//!
//! * **occupancy** — while a worm of flow `f` holds a VC on `e` it
//!   blocks one of the `B` lanes for at most
//!   `H(f,e) = L_f + 1 + Σ_{e' after e} S_{f,e'}` steps (its `L_f − 1`
//!   streaming steps, its stalls at *downstream* edges, one step for a
//!   same-step grant, and one first-violation slack step);
//! * **windowing** — a worm holding `e` during a wait window of length
//!   `w` ending at time `t` was released within a span of `D_{f'} + w`
//!   steps, so at most `α_{f'}(D_{f'} + w)` worms of `f'` contribute;
//! * **self-exclusion** — the waiting worm itself holds *no* VC of `e`
//!   (it is waiting for one), yet the windowing count includes it, so
//!   its own charge `H(f,e)` can be subtracted. Without this refinement
//!   a lone message is billed for contending with itself at every hop
//!   and the closure diverges even at vanishing load.
//!
//! Counting the `B·w` lane-attributions of a `w`-step wait against the
//! cross-demand curve `W_e(w) = Σ_{f' ∋ e} H(f',e) · α_{f'}(D_{f'} + w)`
//! gives `B·w ≤ W_e(w) − H(f,e)`; the certified wait bound is the first
//! point past which the line `B·t` clears some bucket of the deflated
//! demand:
//!
//! ```text
//! S_{f,e} = min over buckets (σ, ρ) of W_e with ρ < B
//!           of max(0, σ − H(f,e)) / (B − ρ)
//! ```
//!
//! A *first-violation* induction turns these per-hop facts into a global
//! guarantee on feedforward routing sets: suppose some wait first
//! exceeds its bound at time `t*`; every occupancy and span entering
//! `W_e` at `≤ t*` then obeys its own bound (the boundary step is
//! absorbed by the slack unit in `H`), so `B·w ≤ W_e(w) − H(f,e)`
//! contradicts `w > S_{f,e}`. Hence no violation ever occurs and `D_f`
//! bounds every message's release-to-delivery latency — the oracle
//! invariant `sim p100 ≤ bound` that the cross-validation property tests
//! enforce.
//!
//! # Solving and certifying the fixed point
//!
//! The induction needs a **post-fixed point**: waits `S` with
//! `Φ(S) ≤ S`, where `Φ` is the update map above. The solver runs Picard
//! iteration from `S = 0`; on numerical convergence it inflates the
//! iterate by a hair and *verifies* `Φ(S) ≤ S` componentwise — only a
//! verified certificate is reported `bounded`. Divergence (no demand
//! bucket under rate `B`, a wait past `wait_cap`, or no convergence
//! within `max_iters`) is reported unbounded, which is always
//! conservative. Trace-derived envelopes are eventually flat (zero
//! long-run rate), so finite traces admit finite certificates whenever
//! the iteration converges; synthetic leaky-bucket sets lose their
//! certificate when some edge's occupancy-weighted long-run demand
//! reaches `B` — which is exactly the regime where more VCs buy
//! certifiability.
//!
//! [`VcPolicy::Static`]: wormhole_flitsim::config::VcPolicy::Static
//! [`BandwidthModel::BFlitsPerStep`]: wormhole_flitsim::config::BandwidthModel::BFlitsPerStep

use wormhole_topology::graph::Graph;

use crate::curve::{ArrivalCurve, ServiceCurve};
use crate::flow::Flow;

/// Knobs of the fixed-point solver.
#[derive(Clone, Copy, Debug)]
pub struct BoundConfig {
    /// Virtual channels per directed edge (`B ≥ 1`), matching
    /// `SimConfig::new(b)`.
    pub b: u32,
    /// Iteration cap before the instance is reported unbounded.
    pub max_iters: u32,
    /// Relative convergence tolerance on the wait vector.
    pub tol: f64,
    /// Divergence guard: any per-hop wait above this is unbounded.
    pub wait_cap: f64,
}

impl BoundConfig {
    /// Defaults for `b` VCs: 500 iterations, `1e-9` relative tolerance,
    /// `1e12`-step divergence guard.
    pub fn new(b: u32) -> Self {
        assert!(b >= 1, "at least one VC per edge");
        Self {
            b,
            max_iters: 500,
            tol: 1e-9,
            wait_cap: 1e12,
        }
    }
}

/// Why a bound computation refused the instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BoundError {
    /// The routing graph has a cycle; the feedforward closure does not
    /// apply (and wormhole routing could deadlock outright).
    NotFeedforward,
    /// A flow's path is empty or not a contiguous walk in the graph.
    BadPath(usize),
}

impl std::fmt::Display for BoundError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BoundError::NotFeedforward => write!(f, "routing graph is not feedforward"),
            BoundError::BadPath(i) => write!(f, "flow {i} has an invalid path"),
        }
    }
}

/// The solved bound system.
#[derive(Clone, Debug)]
pub struct BoundReport {
    /// Whether a post-fixed-point certificate was found and verified. If
    /// `false`, the per-flow bounds are `f64::INFINITY`.
    pub bounded: bool,
    /// Iterations the solver ran (including the verification pass).
    pub iterations: u32,
    /// Certified wait bound per flow per path position: `hop_wait[f][i]`
    /// bounds how long flow `f`'s headers wait for a VC on the `i`-th
    /// edge of its path.
    pub hop_wait: Vec<Vec<f64>>,
    /// Worst certified header wait per edge (indexed by `EdgeId`; max
    /// over flows crossing it, 0 where no flow does). A display-oriented
    /// aggregate of [`BoundReport::hop_wait`].
    pub edge_wait: Vec<f64>,
    /// End-to-end delay bound per flow: release-to-delivery steps,
    /// `(d + L − 1) + Σ_i hop_wait[f][i]`.
    pub flow_delay: Vec<f64>,
    /// Backlog bound per flow: at most `α_f(D_f) · L_f` flits of `f` in
    /// flight at any instant (each in-flight message was released within
    /// the last `D_f` steps).
    pub flow_backlog: Vec<f64>,
}

impl BoundReport {
    /// The worst end-to-end delay bound over all flows (`INFINITY` when
    /// unbounded, `0` for an empty flow set).
    pub fn max_delay(&self) -> f64 {
        self.flow_delay.iter().copied().fold(0.0, f64::max)
    }

    /// Total backlog bound: flits in flight network-wide.
    pub fn total_backlog(&self) -> f64 {
        self.flow_backlog.iter().sum()
    }

    /// The end-to-end pseudo-residual service curve of flow `fi`: the
    /// min-plus convolution of its per-hop rate-latency residuals
    /// `β_{B, S_{f,e}}` — rate `B` (the aggregate channel bandwidth),
    /// total latency `Σ_i hop_wait[fi][i]`. Only the latency term
    /// carries the per-hop guarantee (see the module docs); it is
    /// exactly `flow_delay[fi] − pipeline_floor`.
    pub fn end_to_end_service(&self, fi: usize, b: u32) -> ServiceCurve {
        self.hop_wait[fi]
            .iter()
            .map(|&s| ServiceCurve::rate_latency(b as f64, s))
            .reduce(|acc, s| acc.convolve(&s))
            .expect("flows have non-empty paths")
    }
}

/// One Picard step of the closure: from current per-hop waits, rebuild
/// delays/occupancies, then re-solve every hop's crossing point against
/// its edge's cross-demand curve. `None` when some hop diverges (demand
/// rate at or above `B`, or a wait past the cap).
fn phi(
    flows: &[Flow],
    incident: &[Vec<(usize, usize)>],
    cfg: &BoundConfig,
    s: &[Vec<f64>],
) -> Option<Vec<Vec<f64>>> {
    let b = cfg.b as f64;
    // delay[f] = pipeline floor + all hop waits;
    // suffix[f][i] = waits strictly after position i.
    let mut delay = Vec::with_capacity(flows.len());
    let mut suffix: Vec<Vec<f64>> = Vec::with_capacity(flows.len());
    for (f, waits) in flows.iter().zip(s) {
        let mut suf = vec![0.0; waits.len()];
        let mut acc = 0.0;
        for i in (0..waits.len()).rev() {
            suf[i] = acc;
            acc += waits[i];
        }
        delay.push(f.pipeline_floor() + acc);
        suffix.push(suf);
    }
    let occupancy = |fi: usize, pos: usize| flows[fi].len_flits as f64 + 1.0 + suffix[fi][pos];
    let mut next: Vec<Vec<f64>> = s.iter().map(|w| vec![0.0; w.len()]).collect();
    for inc in incident.iter() {
        if inc.is_empty() {
            continue;
        }
        // Cross-demand on this edge from every flow crossing it.
        let mut cross: Option<ArrivalCurve> = None;
        for &(fi, pos) in inc {
            let demand = flows[fi]
                .arrival
                .deconvolve_delay(delay[fi])
                .scale(occupancy(fi, pos));
            cross = Some(match cross {
                None => demand,
                Some(w) => w.add(&demand),
            });
        }
        let cross = cross.expect("non-empty incidence list");
        // Per crossing flow: deflate by its own charge and intersect
        // with the B-rate line.
        for &(fi, pos) in inc {
            let h = occupancy(fi, pos);
            let wait = cross
                .buckets()
                .iter()
                .filter(|tb| tb.rate < b)
                .map(|tb| (tb.burst - h).max(0.0) / (b - tb.rate))
                .fold(f64::INFINITY, f64::min);
            if !wait.is_finite() || wait > cfg.wait_cap {
                return None;
            }
            next[fi][pos] = wait;
        }
    }
    Some(next)
}

/// Computes certified delay and backlog bounds for `flows` on the
/// feedforward routing graph `graph` with `cfg.b` VCs per edge. See the
/// module docs for the model, the inequality, and its soundness
/// argument.
pub fn delay_bounds(
    graph: &Graph,
    flows: &[Flow],
    cfg: &BoundConfig,
) -> Result<BoundReport, BoundError> {
    if !graph.is_feedforward() {
        return Err(BoundError::NotFeedforward);
    }
    for (i, f) in flows.iter().enumerate() {
        if f.edges.is_empty() || f.edges.iter().any(|e| e.idx() >= graph.num_edges()) {
            return Err(BoundError::BadPath(i));
        }
        let contiguous = f
            .edges
            .windows(2)
            .all(|w| graph.dst(w[0]) == graph.src(w[1]));
        if !contiguous {
            return Err(BoundError::BadPath(i));
        }
    }

    // Incidence: which (flow, position) pairs cross each edge. A simple
    // path in an acyclic graph visits an edge at most once, so the pair
    // is unique per (flow, edge).
    let mut incident: Vec<Vec<(usize, usize)>> = vec![Vec::new(); graph.num_edges()];
    for (fi, f) in flows.iter().enumerate() {
        for (pos, e) in f.edges.iter().enumerate() {
            incident[e.idx()].push((fi, pos));
        }
    }

    let mut s: Vec<Vec<f64>> = flows.iter().map(|f| vec![0.0; f.edges.len()]).collect();
    let mut iterations = 0;
    let mut bounded = false;
    while iterations < cfg.max_iters {
        iterations += 1;
        let Some(next) = phi(flows, &incident, cfg, &s) else {
            break;
        };
        let mut delta = 0.0f64;
        let mut scale = 1.0f64;
        for (a, b) in s.iter().flatten().zip(next.iter().flatten()) {
            delta = delta.max((b - a).abs());
            scale = scale.max(*b);
        }
        s = next;
        if delta <= cfg.tol * scale {
            // Converged numerically; certify a post-fixed point by
            // inflating a hair and checking Φ(S) ≤ S componentwise up to
            // the numerical scale of the system. (The inflation is
            // amplified through each edge's demand row, so the check
            // must be relative — an exact ≤ would spuriously reject
            // instances whose per-edge message weight exceeds B.)
            for w in s.iter_mut().flatten() {
                *w = *w * (1.0 + 1e-7) + 1e-7;
            }
            iterations += 1;
            if let Some(check) = phi(flows, &incident, cfg, &s) {
                bounded = s
                    .iter()
                    .flatten()
                    .zip(check.iter().flatten())
                    .all(|(cand, chk)| *chk <= *cand + 1e-6 * scale.max(1.0));
            }
            break;
        }
    }

    let mut edge_wait = vec![0.0f64; graph.num_edges()];
    let (flow_delay, flow_backlog) = if bounded {
        for (f, waits) in flows.iter().zip(&s) {
            for (e, &w) in f.edges.iter().zip(waits) {
                edge_wait[e.idx()] = edge_wait[e.idx()].max(w);
            }
        }
        flows
            .iter()
            .zip(&s)
            .map(|(f, waits)| {
                let d = f.pipeline_floor() + waits.iter().sum::<f64>();
                (d, f.arrival.eval(d) * f.len_flits as f64)
            })
            .unzip()
    } else {
        (
            vec![f64::INFINITY; flows.len()],
            vec![f64::INFINITY; flows.len()],
        )
    };
    Ok(BoundReport {
        bounded,
        iterations,
        hop_wait: s,
        edge_wait,
        flow_delay,
        flow_backlog,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::Flow;
    use wormhole_topology::butterfly::Butterfly;
    use wormhole_topology::graph::{GraphBuilder, NodeId};
    use wormhole_topology::mesh::Mesh;

    fn chain(n: u32) -> (Graph, Vec<wormhole_topology::graph::EdgeId>) {
        let mut b = GraphBuilder::new(n as usize);
        let edges = (0..n - 1)
            .map(|i| b.add_edge(NodeId(i), NodeId(i + 1)))
            .collect();
        (b.build(), edges)
    }

    #[test]
    fn lone_message_is_bounded_by_its_pipeline_floor_exactly() {
        // A single message contends with nobody: self-exclusion deflates
        // every hop's demand to zero and the certified delay collapses
        // to the unblocked latency d + L − 1 — which the simulator
        // achieves exactly.
        let (g, edges) = chain(4);
        let f = Flow {
            edges,
            len_flits: 3,
            arrival: ArrivalCurve::from_trace(&[0]),
        };
        let r = delay_bounds(&g, std::slice::from_ref(&f), &BoundConfig::new(2)).unwrap();
        assert!(r.bounded);
        assert!((r.max_delay() - f.pipeline_floor()).abs() < 1e-3);
        assert!(r.hop_wait[0].iter().all(|&w| w < 1e-3));
        assert!(r.total_backlog() >= 3.0);
    }

    #[test]
    fn two_head_on_messages_pay_for_each_other_but_not_themselves() {
        // Two single-message flows sharing a path: each hop's wait is
        // the OTHER worm's occupancy divided by B, compounding upstream.
        let (g, edges) = chain(3);
        let mk = || Flow {
            edges: edges.clone(),
            len_flits: 4,
            arrival: ArrivalCurve::from_trace(&[0]),
        };
        let r = delay_bounds(&g, &[mk(), mk()], &BoundConfig::new(1)).unwrap();
        assert!(r.bounded);
        // Last hop: other worm's occupancy L + 1 = 5; one level up it is
        // 5 + 5 = 10 (within certification slack).
        assert!((r.hop_wait[0][1] - 5.0).abs() < 1e-3, "{:?}", r.hop_wait);
        assert!((r.hop_wait[0][0] - 10.0).abs() < 1e-3, "{:?}", r.hop_wait);
        assert!(r.max_delay() > mk().pipeline_floor());
    }

    #[test]
    fn bounds_shrink_with_more_vcs() {
        let (g, edges) = chain(5);
        let flows: Vec<Flow> = (0..4)
            .map(|i| Flow {
                edges: edges.clone(),
                len_flits: 4,
                arrival: ArrivalCurve::from_trace(&[i, i + 10, i + 20, i + 40]),
            })
            .collect();
        let mut prev = f64::INFINITY;
        for b in [1u32, 2, 4, 8] {
            let r = delay_bounds(&g, &flows, &BoundConfig::new(b)).unwrap();
            assert!(r.bounded, "trace flows at B={b} should certify");
            let d = r.max_delay();
            assert!(
                d <= prev + 1e-6,
                "B={b}: bound {d} must not exceed the previous B's {prev}"
            );
            prev = d;
        }
    }

    #[test]
    fn synthetic_overload_is_reported_unbounded() {
        // Long-run occupancy-weighted demand ≥ B on a shared edge: no
        // demand bucket under rate B survives, so no certificate exists.
        let (g, edges) = chain(2);
        let f = Flow::synthetic(edges, 4, 1.0, 0.5);
        let r = delay_bounds(&g, &[f.clone(), f.clone(), f], &BoundConfig::new(1)).unwrap();
        assert!(!r.bounded);
        assert!(r.max_delay().is_infinite());
        assert!(r.flow_backlog[0].is_infinite());
    }

    #[test]
    fn synthetic_light_load_is_bounded_and_b_sensitive() {
        // Identity traffic on a butterfly: paths are edge-disjoint, so
        // only rate-driven self-contention (later messages of the same
        // flow) remains and the closure certifies even B = 1. The gap to
        // B = 4 is pure VC benefit.
        let bf = Butterfly::new(5);
        let flows: Vec<Flow> = (0..32u32)
            .map(|s| Flow::synthetic(bf.greedy_path(s, s).edges().to_vec(), 4, 1.0, 0.005))
            .collect();
        let r1 = delay_bounds(bf.graph(), &flows, &BoundConfig::new(1)).unwrap();
        let r4 = delay_bounds(bf.graph(), &flows, &BoundConfig::new(4)).unwrap();
        assert!(r1.bounded && r4.bounded);
        assert!(r4.max_delay() < r1.max_delay());
        assert!(r4.max_delay() >= (5 + 4 - 1) as f64);
    }

    #[test]
    fn cyclic_graphs_are_rejected() {
        let torus = Mesh::new(4, 2, true);
        let p = torus.route(NodeId(0), NodeId(3));
        let f = Flow {
            edges: p.edges().to_vec(),
            len_flits: 2,
            arrival: ArrivalCurve::token_bucket(1.0, 0.01),
        };
        assert_eq!(
            delay_bounds(torus.graph(), &[f], &BoundConfig::new(2)).unwrap_err(),
            BoundError::NotFeedforward
        );
    }

    #[test]
    fn bad_paths_are_rejected() {
        let (g, edges) = chain(4);
        let gap = vec![edges[0], edges[2]]; // skips edge 1: not contiguous
        let f = Flow {
            edges: gap,
            len_flits: 2,
            arrival: ArrivalCurve::token_bucket(1.0, 0.0),
        };
        assert_eq!(
            delay_bounds(&g, &[f], &BoundConfig::new(1)).unwrap_err(),
            BoundError::BadPath(0)
        );
        let empty = Flow {
            edges: Vec::new(),
            len_flits: 2,
            arrival: ArrivalCurve::token_bucket(1.0, 0.0),
        };
        assert_eq!(
            delay_bounds(&g, &[empty], &BoundConfig::new(1)).unwrap_err(),
            BoundError::BadPath(0)
        );
    }

    #[test]
    fn end_to_end_service_matches_the_wait_sum() {
        let (g, edges) = chain(4);
        let mk = || Flow {
            edges: edges.clone(),
            len_flits: 2,
            arrival: ArrivalCurve::from_trace(&[0, 1, 2, 3]),
        };
        let r = delay_bounds(&g, &[mk(), mk()], &BoundConfig::new(2)).unwrap();
        let svc = r.end_to_end_service(0, 2);
        assert!((svc.rate - 2.0).abs() < 1e-12);
        let wait_sum: f64 = r.hop_wait[0].iter().sum();
        assert!((svc.latency - wait_sum).abs() < 1e-9);
        assert!((r.flow_delay[0] - (mk().pipeline_floor() + wait_sum)).abs() < 1e-9);
        // edge_wait aggregates the per-hop certificates.
        for (e, &w) in edges.iter().zip(r.hop_wait[0].iter()) {
            assert!(r.edge_wait[e.idx()] >= w);
        }
    }

    #[test]
    fn errors_render() {
        assert!(format!("{}", BoundError::NotFeedforward).contains("feedforward"));
        assert!(format!("{}", BoundError::BadPath(3)).contains("flow 3"));
    }
}
